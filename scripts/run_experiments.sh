#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: builds, runs the full
# test suite, then every bench binary (each prints its paper artifact
# before its timings). Outputs land in test_output.txt / bench_output.txt
# at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
