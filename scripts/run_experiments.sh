#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md: builds, runs the full
# test suite, then every bench binary (each prints its paper artifact
# before its timings). Outputs land in test_output.txt / bench_output.txt
# at the repository root, and the scaling benches' machine-readable
# records are collected into BENCH_scaling.json (an array of
# {"bench", "size", "threads", "wall_ms"} objects). The multilogd load
# generator writes its serving record (QPS, latency percentiles,
# byte-identity check) to BENCH_server.json, the storage benchmark
# writes its persistence record (append throughput, recovery latency,
# byte-identity check, per-append validation flatness) to
# BENCH_storage.json, the trace-overhead guard writes the per-stage
# latency breakdown to BENCH_stages.json, and the replication benchmark
# writes its lag percentiles and replica read throughput to
# BENCH_replication.json, and the sharding benchmark writes routed vs
# single-engine latency percentiles to BENCH_sharding.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

scaling_lines="$(mktemp)"
trap 'rm -f "$scaling_lines"' EXIT
for b in build/bench/*; do
  # The server load generator and the storage benchmark run separately
  # below (they take flags and write their own records); everything else
  # is a google-benchmark binary.
  case "$b" in
    */bench_server_loadgen|*/bench_storage_recovery|*/bench_trace_overhead|*/bench_mixed_workload|*/bench_magic_pointquery|*/bench_replication|*/bench_sharding)
      continue ;;
  esac
  [ -x "$b" ] && MULTILOG_SCALING_JSON="$scaling_lines" "$b"
done 2>&1 | tee bench_output.txt

# Serving: mixed sweep + connection soak (10k idle sessions parked in
# the epoll set, clamped to the fd limit, while 100 hot clients keep 16
# tagged queries pipelined each) + durable write throughput. Group
# commit with pipelined committers must beat the seed's commit path
# (fsync-per-write, blocking round-trips) by >= 2x for 8 writers, with
# byte-identical answers throughout.
build/bench/bench_server_loadgen --clients 8 --queries 200 --workers 4 \
  --idle 10000 --hot 100 --burst 16 --rounds 5 \
  --writers 8 --writes 128 --min-write-speedup 2 \
  --json BENCH_server.json 2>&1 | tee -a bench_output.txt

build/bench/bench_storage_recovery --records 2000 \
  --dir build/bench_storage_data --json BENCH_storage.json \
  2>&1 | tee -a bench_output.txt

build/bench/bench_trace_overhead --nodes 256 --reps 9 \
  --json BENCH_stages.json 2>&1 | tee -a bench_output.txt

# Incremental maintenance: the full-size 90/10 mixed workload must show
# >= 5x lower post-write query latency than write-through invalidation,
# with byte-identical answers throughout.
build/bench/bench_mixed_workload --keys 2000 --writes 60 \
  --reads-per-write 9 --min-speedup 5 \
  --json BENCH_incremental.json 2>&1 | tee -a bench_output.txt

# Goal-directed evaluation: cold selective point queries through the
# compiled magic-plan cache must be >= 5x faster than full bottom-up
# evaluation, with byte-identical answers throughout.
build/bench/bench_magic_pointquery --keys 3000 --writes 45 \
  --min-speedup 5 --json BENCH_magic.json 2>&1 | tee -a bench_output.txt

# Replication: a 400-write stream into two tailing replicas must show
# p99 replication lag under 250 ms, byte-identical replicas, zero
# reconnects, and error-free replica reads (lag p50/p99 + replica qps
# land in BENCH_replication.json).
build/bench/bench_replication --writes 400 --replicas 2 --clients 4 \
  --queries 200 --dir build/bench_replication_data \
  --json BENCH_replication.json 2>&1 | tee -a bench_output.txt

# Sharding: a 4-shard fleet behind the scatter-gather router must
# answer byte-identically to one engine holding all of Sigma, with the
# routed point-query and scatter latency split recorded
# (BENCH_sharding.json).
build/bench/bench_sharding --keys 240 --shards 4 --queries 400 \
  --scatters 60 --writes 60 \
  --json BENCH_sharding.json 2>&1 | tee -a bench_output.txt

{
  echo '['
  paste -sd ',' "$scaling_lines"
  echo ']'
} > BENCH_scaling.json
echo "wrote BENCH_scaling.json ($(wc -l < "$scaling_lines") records)"
