// Belief audit: using the library as a security-analysis tool.
//
// Replays a polyinstantiation history against an MLS relation and audits
// every level for the paper's *surprise stories* - null-bearing tuples
// that leak the existence of higher-level updates - then shows how a
// user-defined belief mode ("suspicious": distrust exactly one's own
// level, trust everything strictly below) changes what an auditor sees.

#include <cstdio>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/relation.h"
#include "msql/executor.h"

int main() {
  using namespace multilog;
  using mls::Value;

  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  Result<mls::Scheme> scheme = mls::Scheme::Create(
      "Personnel",
      {{"Agent", "u", "t"}, {"Role", "u", "t"}, {"Posting", "u", "t"}},
      "Agent", lat);
  if (!scheme.ok()) return 1;
  mls::Relation rel(std::move(scheme).value(), &lat);

  // History: HR (u) hires three agents; counter-intel (s) quietly
  // reassigns one and HR later deletes the stale record - the classic
  // surprise-story genesis.
  rel.InsertAt("u", {Value::Str("Archer"), Value::Str("analyst"),
                     Value::Str("hq")});
  rel.InsertAt("u", {Value::Str("Blake"), Value::Str("clerk"),
                     Value::Str("hq")});
  rel.InsertAt("u", {Value::Str("Casey"), Value::Str("courier"),
                     Value::Str("field")});
  rel.UpdateAt("s", Value::Str("Blake"), "Role", Value::Str("double-agent"));
  rel.DeleteAt("u", Value::Str("Blake"));

  std::printf("Stored relation after the history:\n%s",
              rel.ToString().c_str());

  // Audit every level for leaks.
  std::printf("\nSurprise-story audit:\n");
  for (const char* level : {"u", "c", "s"}) {
    Result<std::vector<mls::Tuple>> leaks =
        mls::FindSurpriseStories(rel, level);
    if (!leaks.ok()) return 1;
    std::printf("  level %s: %zu leaked tuple(s)\n", level, leaks->size());
    for (const mls::Tuple& t : *leaks) {
      std::printf("    %s\n", t.ToString().c_str());
    }
  }
  std::printf(
      "(The u and c views leak Blake's existence-with-hidden-role; the\n"
      " paper's beta never does - see below.)\n");

  // Root-cause the leak for the high-side security officer.
  Result<std::vector<mls::SurpriseStoryExplanation>> causes =
      mls::ExplainSurpriseStories(rel, "u");
  if (causes.ok()) {
    std::printf("\nRoot causes (high-side view):\n");
    for (const mls::SurpriseStoryExplanation& e : *causes) {
      std::printf("  leak %s\n    caused by stored %s\n",
                  e.leaked.ToString().c_str(), e.source.ToString().c_str());
      for (const auto& [attribute, classification] : e.masked) {
        std::printf("    masked attribute '%s' is classified '%s'\n",
                    attribute.c_str(), classification.c_str());
      }
    }
  }

  // Integrity stays intact throughout.
  Status consistent = mls::CheckConsistent(rel);
  std::printf("\nintegrity check: %s\n", consistent.ToString().c_str());

  // A user-defined mode, per Section 7 of the paper.
  mls::BeliefModeRegistry registry;
  registry.Register(
      "suspicious",
      [](const mls::Relation& r,
         const std::string& level) -> Result<std::vector<mls::Tuple>> {
        std::vector<mls::Tuple> out;
        for (const mls::Tuple& t : r.tuples()) {
          MULTILOG_ASSIGN_OR_RETURN(bool strictly_below,
                                    r.lat().Lt(t.tc, level));
          if (!strictly_below) continue;
          mls::Tuple copy = t;
          copy.tc = level;
          out.push_back(std::move(copy));
        }
        return out;
      });

  msql::Session session(&registry);
  session.RegisterRelation("personnel", &rel);
  session.SetUserContext("s");

  std::printf("\nWho does s believe is at hq, in each mode?\n");
  for (const char* mode :
       {"firmly", "optimistically", "cautiously", "suspicious"}) {
    Result<msql::ResultSet> rs = session.Execute(
        std::string("select agent, role from personnel where posting = hq "
                    "believed ") +
        mode);
    std::printf("\nbelieved %s:\n", mode);
    if (!rs.ok()) {
      std::printf("  error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s", rs->ToString().c_str());
  }

  // Beta's surprise-freedom, demonstrated.
  std::printf("\nNull cells inside believed relations:\n");
  for (const char* level : {"u", "c", "s"}) {
    for (mls::BeliefMode mode :
         {mls::BeliefMode::kFirm, mls::BeliefMode::kOptimistic,
          mls::BeliefMode::kCautious}) {
      Result<mls::BeliefOutcome> out = mls::Believe(rel, level, mode);
      if (!out.ok()) return 1;
      size_t nulls = 0;
      for (const mls::Tuple& t : out->relation.tuples()) {
        for (const mls::Cell& c : t.cells) nulls += c.value.is_null();
      }
      std::printf("  beta(%s, %s): %zu\n", level,
                  mls::BeliefModeToString(mode), nulls);
    }
  }
  return 0;
}
