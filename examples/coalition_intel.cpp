// Coalition intelligence: belief reasoning over a *partial* order.
//
// The paper notes (Section 3.1) that when security levels form a partial
// order - not a chain - cautious belief can face incomparable sources,
// "reminiscent of the problem in object oriented systems with multiple
// inheritance", forcing "multiple models and associated unpredictability".
// This example builds exactly that situation with Bell-LaPadula access
// classes (hierarchy x categories): two incomparable coalition partners
// report conflicting assessments, and a joint analyst above both must
// reason about what to believe.

#include <cstdio>

#include "lattice/lattice.h"
#include "mls/belief.h"
#include "mls/relation.h"
#include "multilog/engine.h"
#include "multilog/translate.h"

int main() {
  using namespace multilog;
  using mls::Value;

  // Levels: open < army, open < navy, army/navy < joint. army and navy
  // are incomparable - separate coalition compartments.
  lattice::SecurityLattice::Builder builder;
  builder.AddLevel("open").AddLevel("army").AddLevel("navy").AddLevel(
      "joint");
  builder.AddOrder("open", "army").AddOrder("open", "navy");
  builder.AddOrder("army", "joint").AddOrder("navy", "joint");
  Result<lattice::SecurityLattice> lat = builder.Build();
  if (!lat.ok()) return 1;
  std::printf("lattice is a total order: %s\n",
              lat->IsTotalOrder() ? "yes" : "no");

  Result<mls::Scheme> scheme = mls::Scheme::Create(
      "Sightings",
      {{"Target", "open", "joint"},
       {"Assessment", "open", "joint"},
       {"Region", "open", "joint"}},
      "Target", *lat);
  if (!scheme.ok()) return 1;
  mls::Relation rel(std::move(scheme).value(), &*lat);

  // The open press reports a freighter; army and navy intelligence file
  // incomparable corrections.
  rel.InsertAt("open", {Value::Str("vessel7"), Value::Str("freighter"),
                        Value::Str("gulf")});
  rel.UpdateAt("army", Value::Str("vessel7"), "Assessment",
               Value::Str("arms-runner"));
  rel.UpdateAt("navy", Value::Str("vessel7"), "Assessment",
               Value::Str("decoy"));

  std::printf("\nStored relation:\n%s", rel.ToString().c_str());

  // The joint analyst believes cautiously: army's and navy's assessments
  // are both classification-maximal and incomparable - a belief conflict
  // the paper predicts. Beta surfaces every maximal candidate and flags
  // the conflict.
  Result<mls::BeliefOutcome> joint =
      mls::Believe(rel, "joint", mls::BeliefMode::kCautious);
  if (!joint.ok()) return 1;
  std::printf("\nCautious belief at joint (conflict=%s):\n%s",
              joint->conflict ? "yes" : "no",
              joint->relation.ToString().c_str());

  // Each partner, below the other's compartment, sees no conflict.
  for (const char* level : {"army", "navy"}) {
    Result<mls::BeliefOutcome> partner =
        mls::Believe(rel, level, mls::BeliefMode::kCautious);
    std::printf("\nCautious belief at %s (conflict=%s):\n%s", level,
                partner->conflict ? "yes" : "no",
                partner->relation.ToString().c_str());
  }

  // The same through the deductive engine: the joint analyst speculates
  // about what each partner believes - the paper's "theorize about the
  // belief of others" - without leaving the logic.
  Result<ml::Database> db = ml::EncodeRelation(rel, "sightings");
  if (!db.ok()) return 1;
  Result<ml::Engine> engine = ml::Engine::FromDatabase(std::move(*db));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWhat does each level believe vessel7 to be (cautiously)?\n");
  for (const char* level : {"open", "army", "navy", "joint"}) {
    Result<ml::QueryResult> r = engine->QuerySource(
        std::string(level) +
            "[sightings(vessel7 : assessment -C-> V)] << cau",
        "joint", ml::ExecMode::kCheckBoth);
    std::printf("  %-5s:", level);
    if (!r.ok()) {
      std::printf(" error: %s\n", r.status().ToString().c_str());
      continue;
    }
    for (const datalog::Substitution& s : r->answers) {
      std::printf(" %s", s.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\n(Both semantics were cross-checked; the joint row shows the two\n"
      " incomparable maximal assessments side by side.)\n");
  return 0;
}
