#!/usr/bin/env bash
# Sharding, over the wire: starts TWO durable shard daemons seeded with
# the same base database (lattice + replicated rule, no ground keys), a
# read replica tailing shard 0, and multilogd --router in front of the
# fleet. A write batch at clearance c goes through the router - the
# router hashes each entity key and lands the fact on its owning shard,
# which IS the partitioning step. Then scatter-gather reads at every
# clearance must be byte-identical to a reference daemon fed the same
# stream directly, a point query must be answered by the owning shard
# (the response names it), and the replica must serve shard 0's facts
# under --min-seqno bounded staleness. Exits non-zero if any of that
# fails, which is how the integration suite runs it.
#
#   usage: examples/sharding_demo.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MULTILOGD="$BUILD/src/server/multilogd"
CLIENT="$BUILD/src/server/multilog_client"
BASE=examples/data/shard_base.mlog
WIDE='?- c[intel(K : val -R-> V)] << cau.'

[ -x "$MULTILOGD" ] || { echo "build first: cmake --build $BUILD" >&2; exit 2; }

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a daemon named $1 (remaining args are extra multilogd flags),
# waits for its port line, and leaves the port in $PORT. Runs in the
# top-level shell (no command substitution) so the pid lands in PIDS
# and cleanup can kill it.
start_daemon() {
  local name="$1"; shift
  local log="$WORK/$name.log"
  "$MULTILOGD" "$@" --port 0 > "$log" &
  PIDS+=("$!")
  PORT=""
  for _ in $(seq 100); do
    PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "daemon $name did not start (see $log)" >&2; exit 1; }
}

start_daemon shard0 --db "$BASE" --data-dir "$WORK/shard0"
S0_PORT="$PORT"
start_daemon shard1 --db "$BASE" --data-dir "$WORK/shard1"
S1_PORT="$PORT"
echo "shards up on ports $S0_PORT and $S1_PORT"

start_daemon replica --db "$BASE" --data-dir "$WORK/replica" \
  --replica-of "127.0.0.1:$S0_PORT"
REPLICA_PORT="$PORT"
echo "replica of shard 0 up on port $REPLICA_PORT"

start_daemon router --router --shards "127.0.0.1:$S0_PORT,127.0.0.1:$S1_PORT" \
  --db "$BASE"
ROUTER_PORT="$PORT"
grep -q "multilog-router" "$WORK/router.log" || {
  echo "FAIL: router banner missing" >&2; exit 1; }
echo "router up on port $ROUTER_PORT"

# The reference daemon holds the whole database in one engine: the
# byte-identity oracle for every scatter-gather merge.
start_daemon reference --db "$BASE" --data-dir "$WORK/reference"
REF_PORT="$PORT"

echo
echo "== the shard map, straight from the router =="
"$CLIENT" --port "$ROUTER_PORT" --connect-retries 20 --retry-backoff-ms 50 \
  shardmap

echo
echo "== writes through the router: the hash picks each owner =="
SHARD0_SEQNO=""
SHARD0_KEY=""
for KEY in alpha bravo charlie delta echo foxtrot golf hotel; do
  FACT="c[intel($KEY : id -c-> $KEY, val -c-> v_$KEY)]."
  RESP="$("$CLIENT" --port "$ROUTER_PORT" --level c \
    --connect-retries 20 --retry-backoff-ms 50 assert "$FACT")"
  SHARD="$(grep -o '"shard":[0-9]*' <<<"$RESP" | cut -d: -f2)"
  SEQNO="$(grep -o '"seqno":[0-9]*' <<<"$RESP" | cut -d: -f2)"
  [ -n "$SHARD" ] && [ -n "$SEQNO" ] || {
    echo "FAIL: assert response lacks shard/seqno: $RESP" >&2; exit 1; }
  if [ "$SHARD" = "0" ]; then SHARD0_SEQNO="$SEQNO"; SHARD0_KEY="$KEY"; fi
  "$CLIENT" --port "$REF_PORT" --level c assert "$FACT" > /dev/null
  echo "  $KEY -> shard $SHARD (seqno $SEQNO)"
done
[ -n "$SHARD0_KEY" ] || { echo "FAIL: no key landed on shard 0" >&2; exit 1; }

echo
echo "== scatter-gather vs the reference, every clearance =="
# The client prints the answer bindings one per line after the JSON
# response; those lines are the byte-identity oracle - the raw JSON
# carries per-query timings that naturally differ.
answers() { tail -n +2; }
for LEVEL in u c s; do
  VIA_ROUTER="$("$CLIENT" --port "$ROUTER_PORT" --level "$LEVEL" \
    query "$WIDE" | answers)"
  VIA_REF="$("$CLIENT" --port "$REF_PORT" --level "$LEVEL" \
    query "$WIDE" | answers)"
  [ "$VIA_ROUTER" = "$VIA_REF" ] || {
    echo "FAIL: clearance $LEVEL diverged" >&2
    echo "router:    $VIA_ROUTER" >&2
    echo "reference: $VIA_REF" >&2
    exit 1
  }
  echo "clearance $LEVEL: byte-identical with the single engine"
done

echo
echo "== the derived (replicated-rule) cells merge identically too =="
DERIVED='?- s[intel(K : vet -R-> V)] << cau.'
D_ROUTER="$("$CLIENT" --port "$ROUTER_PORT" --level s query "$DERIVED" | answers)"
D_REF="$("$CLIENT" --port "$REF_PORT" --level s query "$DERIVED" | answers)"
[ "$D_ROUTER" = "$D_REF" ] || { echo "FAIL: derived cells diverged" >&2; exit 1; }
echo "$D_ROUTER"

echo
echo "== a point query is answered by the owning shard =="
POINT="?- c[intel($SHARD0_KEY : val -R-> V)] << opt."
RAW="$("$CLIENT" --port "$ROUTER_PORT" --level s query "$POINT")"
head -1 <<<"$RAW"
grep -q '"shard":0' <<<"$RAW" || {
  echo "FAIL: $SHARD0_KEY not served by shard 0" >&2; exit 1; }

echo
echo "== the replica serves shard 0's facts (--min-seqno $SHARD0_SEQNO) =="
AT_SHARD="$("$CLIENT" --port "$S0_PORT" --level s query "$POINT" | answers)"
AT_REPLICA="$("$CLIENT" --port "$REPLICA_PORT" --level s \
  --min-seqno "$SHARD0_SEQNO" --wait-ms 10000 query "$POINT" | answers)"
[ "$AT_SHARD" = "$AT_REPLICA" ] || {
  echo "FAIL: replica diverged from shard 0" >&2
  echo "shard:   $AT_SHARD" >&2
  echo "replica: $AT_REPLICA" >&2
  exit 1
}
echo "$AT_REPLICA"

echo
echo "demo OK"
