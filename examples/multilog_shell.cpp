// An interactive MultiLog shell.
//
//   $ ./multilog_shell [file.mlog ...]
//   ml[u]> level(u). level(s). order(u, s).
//   ml[u]> s[intel(k1 : source -s-> mole)].
//   ml[u]> .level s
//   ml[s]> ?- s[intel(K : source -C-> V)] << cau.
//     {C=s, K=k1, V=mole}
//
// Commands:
//   .level <l>      set the session clearance (default: first level)
//   .mode op|red|both   execution mode (default both = Theorem 6.1 check)
//   .proof on|off   print proof trees for operational answers
//   .list           show the accumulated database
//   .help  .quit
// Any other input: MultiLog clauses (added to the database) or
// `?- goal.` queries.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/str_util.h"
#include "multilog/engine.h"
#include "multilog/parser.h"

namespace {

using namespace multilog;

struct Shell {
  std::string accumulated;
  std::string level;
  ml::ExecMode mode = ml::ExecMode::kCheckBoth;
  bool show_proofs = false;

  /// Rebuilds the engine from the accumulated source; returns the error
  /// instead of keeping a broken state.
  Result<ml::Engine> Build() const { return ml::Engine::FromSource(accumulated); }

  void EnsureLevel(const ml::Engine& engine) {
    if (!level.empty() && engine.lattice().Contains(level)) return;
    if (engine.lattice().size() > 0) {
      level = engine.lattice().TopologicalOrder().front();
    }
  }

  void RunQuery(const std::string& text) {
    Result<ml::Engine> engine = Build();
    if (!engine.ok()) {
      std::printf("  error: %s\n", engine.status().ToString().c_str());
      return;
    }
    EnsureLevel(*engine);
    if (level.empty()) {
      std::printf("  error: no levels declared yet\n");
      return;
    }
    Result<ml::QueryResult> r = engine->QuerySource(text, level, mode);
    if (!r.ok()) {
      std::printf("  error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (r->answers.empty()) {
      std::printf("  no\n");
      return;
    }
    for (size_t i = 0; i < r->answers.size(); ++i) {
      std::printf("  %s\n", r->answers[i].ToString().c_str());
      if (show_proofs && i < r->proofs.size()) {
        std::string proof = ml::RenderProof(*r->proofs[i]);
        std::istringstream lines(proof);
        std::string line;
        while (std::getline(lines, line)) {
          std::printf("    | %s\n", line.c_str());
        }
      }
    }
  }

  void AddClauses(const std::string& text) {
    std::string candidate = accumulated + text + "\n";
    Result<ml::Engine> engine = ml::Engine::FromSource(candidate);
    if (!engine.ok()) {
      std::printf("  rejected: %s\n", engine.status().ToString().c_str());
      return;
    }
    accumulated = std::move(candidate);
    EnsureLevel(*engine);
  }

  bool Command(const std::string& line) {
    std::vector<std::string> parts = Split(std::string(
        StripWhitespace(line)), ' ');
    const std::string& cmd = parts[0];
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::printf(
          "  .level <l> | .mode op|red|both | .proof on|off | .list | "
          ".quit\n  clauses end with '.', queries start with '?-'\n");
    } else if (cmd == ".level" && parts.size() > 1) {
      level = parts[1];
      Result<ml::Engine> engine = Build();
      if (engine.ok() && !engine->lattice().Contains(level)) {
        std::printf("  warning: level '%s' not declared (yet)\n",
                    level.c_str());
      }
    } else if (cmd == ".mode" && parts.size() > 1) {
      if (parts[1] == "op") {
        mode = ml::ExecMode::kOperational;
      } else if (parts[1] == "red") {
        mode = ml::ExecMode::kReduced;
      } else {
        mode = ml::ExecMode::kCheckBoth;
      }
    } else if (cmd == ".proof" && parts.size() > 1) {
      show_proofs = parts[1] == "on";
    } else if (cmd == ".list") {
      std::printf("%s", accumulated.c_str());
    } else {
      std::printf("  unknown command; try .help\n");
    }
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    shell.AddClauses(buffer.str());
    std::printf("loaded %s\n", argv[i]);
  }

  std::string line;
  while (true) {
    std::printf("ml[%s]> ", shell.level.empty() ? "-" : shell.level.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = multilog::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '.') {
      if (!shell.Command(std::string(trimmed))) break;
    } else if (trimmed.substr(0, 2) == "?-") {
      shell.RunQuery(std::string(trimmed));
    } else {
      shell.AddClauses(std::string(trimmed));
    }
  }
  return 0;
}
