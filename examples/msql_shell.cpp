// An interactive MSQL shell over the paper's Mission relation (plus a
// writable scratch copy), demonstrating the Section 3.2 dialect:
//
//   $ ./msql_shell
//   msql[-]> user context s
//   msql[s]> select starship from mission where objective = spying
//            believed cautiously;
//   msql[s]> insert into scratch values (nebula, survey, titan);
//   msql[s]> select count(*) from scratch;
//
// Statements may span lines; terminate with ';'. Commands: .help .quit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/str_util.h"
#include "mls/cuppens.h"
#include "mls/sample_data.h"
#include "msql/executor.h"

int main() {
  using namespace multilog;

  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  // A writable scratch relation sharing Mission's scheme.
  mls::Relation scratch(ds->mission->scheme(), ds->lattice.get());

  mls::BeliefModeRegistry registry;
  if (Status st = mls::RegisterCuppensModes(&registry); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  msql::Session session(&registry);
  session.RegisterRelation("mission", ds->mission.get());
  session.RegisterMutableRelation("scratch", &scratch);

  std::printf(
      "MSQL shell - relations: mission (read-only), scratch (writable).\n"
      "Belief modes: firmly, optimistically, cautiously, additive,\n"
      "trusted, suspicious. Start with `user context <u|c|s|t>;`.\n");

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "msql[%s]> " : "      ...> ",
                session.user_context().empty()
                    ? "-"
                    : session.user_context().c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf(
          "  user context <level>;\n"
          "  select cols|*|count(*) from rel [where ...] [believed m];\n"
          "  insert into rel values (...); update rel set c = v where "
          "k = x;\n"
          "  delete from rel where k = x;  set ops: intersect/union/"
          "except\n");
      continue;
    }
    buffer += std::string(trimmed) + " ";
    if (trimmed.empty() || trimmed.back() != ';') continue;

    Result<msql::ResultSet> result = session.Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString().c_str());
  }
  return 0;
}
