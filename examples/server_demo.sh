#!/usr/bin/env bash
# The Figure 11 proof, over the wire: starts multilogd on the D1
# database (examples/data/d1.mlog), then asks the paper's query
#
#     ?- c[p(k : a -R-> v)] << opt.
#
# at two clearances. At `s` the belief is provable (answer {R=u}, and
# --proofs shows the descend-o derivation of Figure 11); at `u` the
# same query has no answers - the session level IS the database level,
# so there is nothing to filter and nothing to leak. A final query at
# `ts` demonstrates read-down consistency: it matches `s` byte for
# byte. Exits non-zero if any of those expectations fail, which is how
# the integration suite runs it.
#
#   usage: examples/server_demo.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MULTILOGD="$BUILD/src/server/multilogd"
CLIENT="$BUILD/src/server/multilog_client"
GOAL='?- c[p(k : a -R-> v)] << opt.'

[ -x "$MULTILOGD" ] || { echo "build first: cmake --build $BUILD" >&2; exit 2; }

LOG="$(mktemp)"
"$MULTILOGD" --db examples/data/d1.mlog --port 0 > "$LOG" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null; rm -f "$LOG"' EXIT

# The server prints its ephemeral port on the first line.
for _ in $(seq 50); do
  PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server did not start" >&2; exit 1; }
echo "multilogd up on port $PORT"

echo
echo "== clearance s: the Figure 11 belief is provable =="
# --connect-retries rides out the accept loop still coming up after the
# banner - no sleep needed between spawn and first use.
AT_S="$("$CLIENT" --port "$PORT" --level s --mode operational --proofs \
  --connect-retries 20 --retry-backoff-ms 50 query "$GOAL")"
echo "$AT_S" | tail -n +2
echo "$AT_S" | head -1 | grep -q '"count":1' || { echo "FAIL: expected 1 answer at s" >&2; exit 1; }
echo "$AT_S" | grep -q 'descend-o' || { echo "FAIL: expected a descend-o proof step" >&2; exit 1; }

echo
echo "== clearance u: same query, no answers (no read-up) =="
AT_U="$("$CLIENT" --port "$PORT" --level u query "$GOAL")"
echo "$AT_U"
echo "$AT_U" | grep -q '"count":0' || { echo "FAIL: expected 0 answers at u" >&2; exit 1; }

echo
echo "== clearance ts: read-down consistency with s =="
ANSWERS_S="$("$CLIENT" --port "$PORT" --level s query "$GOAL" | tail -n +2)"
ANSWERS_TS="$("$CLIENT" --port "$PORT" --level ts query "$GOAL" | tail -n +2)"
echo "s:  $ANSWERS_S"
echo "ts: $ANSWERS_TS"
[ "$ANSWERS_S" = "$ANSWERS_TS" ] || { echo "FAIL: s and ts answers differ" >&2; exit 1; }

echo
echo "== server stats =="
"$CLIENT" --port "$PORT" stats

echo
echo "demo OK"
