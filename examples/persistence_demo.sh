#!/usr/bin/env bash
# Durable storage, over the wire: starts multilogd on the D1 database
# with a --data-dir, replays the write batch examples/data/writes.mlog
# (asserts, a retract, a checkpoint - all pinned to clearance s), then
# KILLS the server and restarts it from the same data dir. The restarted
# server must reproduce the written state exactly: the surviving intel
# fact answers at s, stays invisible at u, and the Figure 11 golden is
# untouched at every clearance. Exits non-zero if any of that fails,
# which is how the integration suite runs it.
#
#   usage: examples/persistence_demo.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MULTILOGD="$BUILD/src/server/multilogd"
CLIENT="$BUILD/src/server/multilog_client"
GOAL='?- s[intel(K : id -R-> K)] << opt.'
GOLDEN='?- c[p(k : a -R-> v)] << opt.'

[ -x "$MULTILOGD" ] || { echo "build first: cmake --build $BUILD" >&2; exit 2; }

DATA="$(mktemp -d)"
LOG="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DATA" "$LOG"
}
trap cleanup EXIT

start_server() {
  : > "$LOG"
  "$MULTILOGD" --db examples/data/d1.mlog --data-dir "$DATA" --port 0 > "$LOG" &
  SERVER_PID=$!
  for _ in $(seq 50); do
    PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "server did not start" >&2; exit 1; }
  grep -q "durable: $DATA" "$LOG" || { echo "FAIL: server is not durable" >&2; exit 1; }
}

start_server
echo "multilogd up on port $PORT, data dir $DATA"

echo
echo "== replay the write batch at clearance s =="
# --connect-retries rides out the accept loop still coming up after the
# banner - no sleep needed between spawn and first use.
"$CLIENT" --port "$PORT" --level s --connect-retries 20 \
  --retry-backoff-ms 50 --file examples/data/writes.mlog

echo
echo "== kill -9 the server, restart from the same data dir =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
start_server
echo "restarted on port $PORT (recovered: $(grep durable "$LOG"))"

echo
echo "== the surviving intel fact answers at s... =="
AT_S="$("$CLIENT" --port "$PORT" --level s query "$GOAL")"
echo "$AT_S"
echo "$AT_S" | grep -q '"count":1' || { echo "FAIL: expected 1 answer at s" >&2; exit 1; }
echo "$AT_S" | grep -q '{K=m1, R=u}' || { echo "FAIL: expected the m1 binding" >&2; exit 1; }

echo
echo "== ...stays invisible at u... =="
AT_U="$("$CLIENT" --port "$PORT" --level u query "$GOAL")"
echo "$AT_U"
echo "$AT_U" | grep -q '"count":0' || { echo "FAIL: expected 0 answers at u" >&2; exit 1; }

echo
echo "== ...and the Figure 11 golden still holds over the wire =="
AT_S_GOLDEN="$("$CLIENT" --port "$PORT" --level s query "$GOLDEN")"
echo "$AT_S_GOLDEN"
echo "$AT_S_GOLDEN" | grep -q '"count":1' || { echo "FAIL: golden lost at s" >&2; exit 1; }
AT_U_GOLDEN="$("$CLIENT" --port "$PORT" --level u query "$GOLDEN")"
echo "$AT_U_GOLDEN" | grep -q '"count":0' || { echo "FAIL: golden gained at u" >&2; exit 1; }

echo
echo "== storage stats after recovery =="
"$CLIENT" --port "$PORT" stats | grep -o '"storage":{[^}]*}' || true

echo
echo "demo OK"
