// The paper's running example, end to end: loads the Mission relation of
// Figure 1 and walks through every belief artifact the paper derives
// from it - the Jajodia-Sandhu views (Figures 2-3), the Jukic-Vrbsky
// interpretation (Figures 4-5), the three beta views (Figures 6-8), the
// Section 3.2 "spying on Mars without any doubt" query, and the
// deductive engine's answers with a proof tree.

#include <cstdio>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/sample_data.h"
#include "msql/executor.h"
#include "multilog/engine.h"
#include "multilog/translate.h"

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

}  // namespace

int main() {
  using namespace multilog;

  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  Banner("Figure 1: the Mission relation");
  std::printf("%s", ds->mission->ToString().c_str());

  Banner("Figure 2: the U-level view (sigma + subsumption)");
  std::printf("%s", ds->mission->ViewAt("u")->ToString().c_str());

  Banner("Figure 3: the C-level view - note the surprise stories");
  std::printf("%s", ds->mission->ViewAt("c")->ToString().c_str());
  Result<std::vector<mls::Tuple>> surprises =
      mls::FindSurpriseStories(*ds->mission, "c");
  std::printf("surprise stories at c: %zu\n", surprises->size());

  Banner("Figure 4: the Jukic-Vrbsky labeled relation");
  std::printf("%s", ds->jv_mission->RenderLabeled().c_str());

  Banner("Figure 5: J-V interpretations at U/C/S");
  std::printf(
      "%s",
      ds->jv_mission->RenderInterpretations({"u", "c", "s"})->c_str());

  Banner("Figures 6-8: the parametric belief function at C");
  for (auto [mode, figure] :
       {std::pair{mls::BeliefMode::kFirm, "Figure 6 (firm)"},
        std::pair{mls::BeliefMode::kOptimistic, "Figure 7 (optimistic)"},
        std::pair{mls::BeliefMode::kCautious, "Figure 8 (cautious)"}}) {
    Result<mls::BeliefOutcome> out = mls::Believe(*ds->mission, "c", mode);
    std::printf("\n%s:\n%s", figure, out->relation.ToString().c_str());
  }
  std::printf(
      "\n(beta omits the null-bearing tuples t4/t5 of Figures 7-8: the\n"
      " surprise stories never enter a believed relation.)\n");

  Banner("Section 3.2: spying on Mars, without any doubt (MSQL)");
  msql::Session session;
  session.RegisterRelation("mission", ds->mission.get());
  session.SetUserContext("s");
  const char* sql = R"(
    select starship from mission
    where destin = mars and objective = spying believed cautiously
    intersect
    select starship from mission
    where destin = mars and objective = spying believed firmly
    intersect
    select starship from mission
    where destin = mars and objective = spying believed optimistically
  )";
  Result<msql::ResultSet> rs = session.Execute(sql);
  if (rs.ok()) std::printf("%s", rs->ToString().c_str());

  Banner("The same question, deductively (both semantics, checked equal)");
  Result<ml::Database> db = ml::EncodeRelation(*ds->mission, "mission");
  Result<ml::Engine> engine = ml::Engine::FromDatabase(std::move(*db));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  Result<ml::QueryResult> r = engine->QuerySource(
      "s[mission(K : objective -C1-> spying)] << cau, "
      "s[mission(K : destin -C2-> mars)] << cau",
      "s", ml::ExecMode::kCheckBoth);
  if (r.ok()) {
    for (const datalog::Substitution& s : r->answers) {
      std::printf("answer: %s\n", s.ToString().c_str());
    }
    if (!r->proofs.empty()) {
      std::printf("\nproof (height %zu, size %zu):\n%s",
                  ml::ProofHeight(*r->proofs[0]),
                  ml::ProofSize(*r->proofs[0]),
                  ml::RenderProof(*r->proofs[0]).c_str());
    }
  }
  return 0;
}
