// Quickstart: the MultiLog engine in ~60 lines.
//
// Builds a tiny MLS deductive database in MultiLog's concrete syntax,
// then asks the same question at two clearance levels and in the three
// belief modes of the paper (firm / optimistic / cautious), printing the
// answers and one operational proof tree.

#include <cstdio>

#include "multilog/engine.h"

int main() {
  using namespace multilog;

  // A two-level database: unclassified logistics and a secret override.
  const char* source = R"(
    level(u). level(s). order(u, s).

    % The u-level clerk records the convoy's destination as the depot.
    u[convoy(c1 : destination -u-> depot, cargo -u-> food)].

    % The s-level planner overrides the destination.
    s[convoy(c1 : destination -s-> frontline, cargo -u-> food)].
  )";

  Result<ml::Engine> engine = ml::Engine::FromSource(source);
  if (!engine.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  auto show = [&](const char* level, const char* goal) {
    Result<ml::QueryResult> r =
        engine->QuerySource(goal, level, ml::ExecMode::kCheckBoth);
    std::printf("  [%s] ?- %s\n", level, goal);
    if (!r.ok()) {
      std::printf("      error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (r->answers.empty()) std::printf("      no\n");
    for (const datalog::Substitution& s : r->answers) {
      std::printf("      %s\n", s.ToString().c_str());
    }
  };

  std::printf("Where is convoy c1 going?\n\n");
  std::printf("At clearance u (the clerk):\n");
  show("u", "u[convoy(c1 : destination -C-> D)] << fir");
  show("u", "u[convoy(c1 : destination -C-> D)] << cau");

  std::printf("\nAt clearance s (the planner):\n");
  show("s", "s[convoy(c1 : destination -C-> D)] << fir");
  show("s", "s[convoy(c1 : destination -C-> D)] << opt");
  show("s", "s[convoy(c1 : destination -C-> D)] << cau");

  // One proof tree, straight from the operational semantics.
  Result<ml::QueryResult> proof = engine->QuerySource(
      "s[convoy(c1 : destination -C-> D)] << cau", "s",
      ml::ExecMode::kOperational);
  if (proof.ok() && !proof->proofs.empty()) {
    std::printf("\nProof of the cautious belief at s:\n%s",
                ml::RenderProof(*proof->proofs[0]).c_str());
  }
  return 0;
}
