#!/usr/bin/env bash
# Replication, over the wire: starts a durable primary multilogd on the
# D1 database, attaches TWO read replicas with --replica-of, writes a
# batch at clearance s through the primary, then reads everything back
# from both replicas with --min-seqno (read-your-writes bounded
# staleness - the replica either catches up to the write's seqno or the
# query fails, it never silently serves stale bytes). The answers at
# EVERY clearance must be byte-identical across the primary and both
# replicas, a write sent to a replica must bounce with the read-only
# status, and each replica's STATS must report a connected stream at
# the primary's seqno. Exits non-zero if any of that fails, which is
# how the integration suite runs it.
#
#   usage: examples/replication_demo.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
MULTILOGD="$BUILD/src/server/multilogd"
CLIENT="$BUILD/src/server/multilog_client"
GOAL='?- s[intel(K : id -R-> K)] << opt.'
GOLDEN='?- c[p(k : a -R-> v)] << opt.'

[ -x "$MULTILOGD" ] || { echo "build first: cmake --build $BUILD" >&2; exit 2; }

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Starts a daemon named $1 (remaining args are extra multilogd flags),
# waits for its port line, and leaves the port in $PORT. Runs in the
# top-level shell (no command substitution) so the pid lands in PIDS
# and cleanup can kill it.
start_daemon() {
  local name="$1"; shift
  local log="$WORK/$name.log"
  "$MULTILOGD" "$@" --port 0 > "$log" &
  PIDS+=("$!")
  PORT=""
  for _ in $(seq 100); do
    PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "daemon $name did not start (see $log)" >&2; exit 1; }
}

start_daemon primary --db examples/data/d1.mlog --data-dir "$WORK/primary"
PRIMARY_PORT="$PORT"
echo "primary up on port $PRIMARY_PORT"

# Both replicas seed from the same database and tail the primary. Their
# banners confirm read-only replica mode.
start_daemon r1 --db examples/data/d1.mlog --data-dir "$WORK/r1" \
  --replica-of "127.0.0.1:$PRIMARY_PORT"
R1_PORT="$PORT"
start_daemon r2 --db examples/data/d1.mlog --data-dir "$WORK/r2" \
  --replica-of "127.0.0.1:$PRIMARY_PORT"
R2_PORT="$PORT"
grep -q "read-only replica" "$WORK/r1.log" || { echo "FAIL: r1 is not a replica" >&2; exit 1; }
echo "replicas up on ports $R1_PORT and $R2_PORT"

echo
echo "== write a batch at clearance s through the primary =="
# --connect-retries rides out daemons still binding; no sleep loops.
BATCH="$("$CLIENT" --port "$PRIMARY_PORT" --level s \
  --connect-retries 20 --retry-backoff-ms 50 \
  --file examples/data/writes.mlog)"
echo "$BATCH"
# The last write's seqno is the staleness bound every replica read uses.
SEQNO="$(grep -o '"seqno":[0-9]*' <<<"$BATCH" | tail -1 | cut -d: -f2)"
[ -n "$SEQNO" ] || { echo "FAIL: no seqno in the batch output" >&2; exit 1; }
echo "last committed seqno: $SEQNO"

echo
echo "== read-your-writes from both replicas (--min-seqno $SEQNO) =="
# The client prints the answer bindings one per line after the JSON
# response; those lines (plus the count) are the byte-identity oracle -
# the raw JSON carries per-query timings that naturally differ.
answers() { tail -n +2; }
for LEVEL in u c s ts; do
  AT_P="$("$CLIENT" --port "$PRIMARY_PORT" --level "$LEVEL" query "$GOAL" \
    | answers)"
  for PORT in "$R1_PORT" "$R2_PORT"; do
    AT_R="$("$CLIENT" --port "$PORT" --level "$LEVEL" \
      --connect-retries 20 --retry-backoff-ms 50 \
      --min-seqno "$SEQNO" --wait-ms 10000 query "$GOAL" | answers)"
    [ "$AT_P" = "$AT_R" ] || {
      echo "FAIL: clearance $LEVEL diverged on port $PORT" >&2
      echo "primary: $AT_P" >&2
      echo "replica: $AT_R" >&2
      exit 1
    }
  done
  echo "clearance $LEVEL: byte-identical on both replicas"
done

echo
echo "== the Figure 11 golden holds on the replicas too =="
G_P="$("$CLIENT" --port "$PRIMARY_PORT" --level s query "$GOLDEN" | answers)"
G_R="$("$CLIENT" --port "$R1_PORT" --level s --min-seqno "$SEQNO" \
  --wait-ms 10000 query "$GOLDEN" | answers)"
[ "$G_P" = "$G_R" ] || { echo "FAIL: golden diverged" >&2; exit 1; }
echo "$G_R"

echo
echo "== a write to a replica bounces with the read-only status =="
set +e
RO="$("$CLIENT" --port "$R1_PORT" --level s \
  assert 's[intel(rogue : id -s-> rogue)].' 2>&1)"
RO_EXIT=$?
set -e
[ "$RO_EXIT" -ne 0 ] || { echo "FAIL: replica accepted a write" >&2; exit 1; }
grep -q "read-only replica" <<<"$RO" || { echo "FAIL: wrong rejection: $RO" >&2; exit 1; }
echo "$RO"

echo
echo "== replica stats report the replication link =="
STATS="$("$CLIENT" --port "$R1_PORT" stats)"
grep -o '"replication":{[^}]*}' <<<"$STATS" || true
grep -q '"connected":true' <<<"$STATS" || { echo "FAIL: replica not connected" >&2; exit 1; }
grep -q "\"applied_seqno\":$SEQNO" <<<"$STATS" || { echo "FAIL: replica behind seqno $SEQNO" >&2; exit 1; }

echo
echo "demo OK"
