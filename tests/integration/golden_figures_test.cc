#include "mls/belief.h"
#include <gtest/gtest.h>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "multilog/proof.h"

namespace multilog::mls {
namespace {

// The expected strings below were generated from the pre-interning
// (string-keyed) engine; they pin the symbol-interned representation to
// byte-identical renderings, i.e. interning is observationally invisible.

TEST(GoldenFigures, Figure1RawMission) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Starship | C | Objective  | C | Destin | C | TC |\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Avenger  | s | Shipping   | s | Pluto  | s | s  |\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | s  |\n"
      "| Voyager  | u | Spying     | s | Mars   | u | s  |\n"
      "| Phantom  | u | Spying     | s | Omega  | u | s  |\n"
      "| Phantom  | c | Supply     | s | Venus  | s | s  |\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | c  |\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | u  |\n"
      "| Voyager  | u | Training   | u | Mars   | u | u  |\n"
      "| Falcon   | u | Piracy     | u | Venus  | u | u  |\n"
      "| Eagle    | u | Patrolling | u | Degoba | u | u  |\n"
      "+----------+---+------------+---+--------+---+----+\n";
  EXPECT_EQ(ds->mission->ToString(), expected);
}

TEST(GoldenFigures, Figure2ULevelView) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<Relation> view = ds->mission->ViewAt("u");
  ASSERT_TRUE(view.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Starship | C | Objective  | C | Destin | C | TC |\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | u  |\n"
      "| Eagle    | u | Patrolling | u | Degoba | u | u  |\n"
      "| Falcon   | u | Piracy     | u | Venus  | u | u  |\n"
      "| Phantom  | u | ⊥          | u | Omega  | u | u  |\n"
      "| Voyager  | u | Training   | u | Mars   | u | u  |\n"
      "+----------+---+------------+---+--------+---+----+\n";
  EXPECT_EQ(view->ToString(), expected);
}

TEST(GoldenFigures, Figure3CLevelView) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<Relation> view = ds->mission->ViewAt("c");
  ASSERT_TRUE(view.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Starship | C | Objective  | C | Destin | C | TC |\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | c  |\n"
      "| Eagle    | u | Patrolling | u | Degoba | u | u  |\n"
      "| Falcon   | u | Piracy     | u | Venus  | u | u  |\n"
      "| Phantom  | c | ⊥          | c | ⊥      | c | c  |\n"
      "| Phantom  | u | ⊥          | u | Omega  | u | c  |\n"
      "| Voyager  | u | Training   | u | Mars   | u | u  |\n"
      "+----------+---+------------+---+--------+---+----+\n";
  EXPECT_EQ(view->ToString(), expected);
}

// Byte-exact golden renderings of the paper's tabular figures, freezing
// both content and presentation. Unit tests elsewhere pin the *content*
// set-theoretically; these pin the regenerated artifacts end to end.

TEST(GoldenFigures, Figure4LabeledMission) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  const char* expected =
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n"
      "| Tid | Starship |     | Objective  |     | Destin |     | TC  |\n"
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n"
      "| t1  | Avenger  | S   | Shipping   | S   | Pluto  | S   | S   |\n"
      "| t2  | Atlantis | UCS | Diplomacy  | UCS | Vulcan | UCS | UCS |\n"
      "| t3  | Voyager  | US  | Spying     | S   | Mars   | US  | S   |\n"
      "| t4  | Phantom  | US  | Spying     | U-S | Omega  | US  | U-S |\n"
      "| t4' | Phantom  | US  | Spying     | S   | Omega  | US  | S   |\n"
      "| t5  | Phantom  | CS  | Supply     | S   | Venus  | S   | S   |\n"
      "| t5' | Phantom  | CS  | Supply     | C-S | Venus  | C-S | C-S |\n"
      "| t8  | Voyager  | US  | Training   | U-S | Mars   | US  | U-S |\n"
      "| t9  | Falcon   | U-S | Piracy     | U-S | Venus  | U-S | U-S |\n"
      "| t10 | Eagle    | U   | Patrolling | U   | Degoba | U   | U   |\n"
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n";
  EXPECT_EQ(ds->jv_mission->RenderLabeled(), expected);
}

TEST(GoldenFigures, Figure5InterpretationMatrix) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<std::string> table =
      ds->jv_mission->RenderInterpretations({"u", "c", "s"});
  ASSERT_TRUE(table.ok());
  const char* expected =
      "+-----+-----------+------------+-------------+\n"
      "| Tid | U level   | C level    | S level     |\n"
      "+-----+-----------+------------+-------------+\n"
      "| t1  | invisible | invisible  | true        |\n"
      "| t2  | true      | true       | true        |\n"
      "| t3  | invisible | invisible  | true        |\n"
      "| t4  | true      | irrelevant | cover story |\n"
      "| t4' | invisible | invisible  | true        |\n"
      "| t5  | invisible | invisible  | true        |\n"
      "| t5' | invisible | true       | cover story |\n"
      "| t8  | true      | irrelevant | cover story |\n"
      "| t9  | true      | irrelevant | mirage      |\n"
      "| t10 | true      | irrelevant | irrelevant  |\n"
      "+-----+-----------+------------+-------------+\n";
  EXPECT_EQ(*table, expected);
}

TEST(GoldenFigures, Figure6FirmViewTable) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<BeliefOutcome> firm =
      Believe(*ds->mission, "c", BeliefMode::kFirm);
  ASSERT_TRUE(firm.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+-----------+---+--------+---+----+\n"
      "| Starship | C | Objective | C | Destin | C | TC |\n"
      "+----------+---+-----------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy | u | Vulcan | u | c  |\n"
      "+----------+---+-----------+---+--------+---+----+\n";
  EXPECT_EQ(firm->relation.ToString(), expected);
}

TEST(GoldenFigures, Figure7OptimisticViewTable) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<BeliefOutcome> opt =
      Believe(*ds->mission, "c", BeliefMode::kOptimistic);
  ASSERT_TRUE(opt.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Starship | C | Objective  | C | Destin | C | TC |\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | c  |\n"
      "| Eagle    | u | Patrolling | u | Degoba | u | c  |\n"
      "| Falcon   | u | Piracy     | u | Venus  | u | c  |\n"
      "| Voyager  | u | Training   | u | Mars   | u | c  |\n"
      "+----------+---+------------+---+--------+---+----+\n";
  EXPECT_EQ(opt->relation.ToString(), expected);
}

TEST(GoldenFigures, Figure8CautiousViewTable) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<BeliefOutcome> cau =
      Believe(*ds->mission, "c", BeliefMode::kCautious);
  ASSERT_TRUE(cau.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Starship | C | Objective  | C | Destin | C | TC |\n"
      "+----------+---+------------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy  | u | Vulcan | u | c  |\n"
      "| Eagle    | u | Patrolling | u | Degoba | u | c  |\n"
      "| Falcon   | u | Piracy     | u | Venus  | u | c  |\n"
      "| Voyager  | u | Training   | u | Mars   | u | c  |\n"
      "+----------+---+------------+---+--------+---+----+\n";
  EXPECT_EQ(cau->relation.ToString(), expected);
}

TEST(GoldenFigures, Figure11ProofTree) {
  Result<ml::Engine> engine = ml::Engine::FromSource(D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Result<ml::QueryResult> r = engine->QuerySource(
      "c[p(k : a -R-> v)] << opt", "c", ml::ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->answers.size(), 1u);
  ASSERT_EQ(r->proofs.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{R=u}");
  const char* expected =
      "(and) <D, c> |- (goal)\n"
      "  (belief) <D, c> |- c[p(k : a -u-> v)] << opt\n"
      "    (descend-o) <D, c> |- u[p(k : a -u-> v)] with u <= c\n"
      "      (transitivity) <D, c> |- u <= c\n"
      "      (deduction-g') <D, c> |- u[p(k : a -u-> v)]\n"
      "        (empty) []\n"
      "  (reflexivity) <D, c> |- c <= c\n"
      "  (transitivity) <D, c> |- u <= c\n";
  EXPECT_EQ(ml::RenderProof(*r->proofs[0]), expected);
  EXPECT_EQ(ml::ProofHeight(*r->proofs[0]), 5u);
  EXPECT_EQ(ml::ProofSize(*r->proofs[0]), 8u);
}

TEST(GoldenFigures, Figure11ByteIdenticalWithParallelEvaluation) {
  // The same Figure 11 artifact through an engine whose bottom-up
  // evaluator runs 8-way parallel, in kCheckBoth mode: the reduced
  // (parallel-evaluated) semantics must agree with the operational one,
  // and every rendered byte must match the sequential golden above.
  ml::EngineOptions options;
  options.eval.num_threads = 8;
  Result<ml::Engine> engine = ml::Engine::FromSource(D1Source(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Result<ml::QueryResult> r = engine->QuerySource(
      "c[p(k : a -R-> v)] << opt", "c", ml::ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->answers.size(), 1u);
  ASSERT_EQ(r->proofs.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{R=u}");
  const char* expected =
      "(and) <D, c> |- (goal)\n"
      "  (belief) <D, c> |- c[p(k : a -u-> v)] << opt\n"
      "    (descend-o) <D, c> |- u[p(k : a -u-> v)] with u <= c\n"
      "      (transitivity) <D, c> |- u <= c\n"
      "      (deduction-g') <D, c> |- u[p(k : a -u-> v)]\n"
      "        (empty) []\n"
      "  (reflexivity) <D, c> |- c <= c\n"
      "  (transitivity) <D, c> |- u <= c\n";
  EXPECT_EQ(ml::RenderProof(*r->proofs[0]), expected);
}

TEST(GoldenFigures, ReducedModelsByteIdenticalAcrossThreadCounts) {
  // The full reduced model of D1 at every level: the deterministic
  // parallel merge must reproduce the sequential model byte for byte.
  std::vector<std::string> sequential;
  {
    Result<ml::Engine> engine = ml::Engine::FromSource(D1Source());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const char* level : {"u", "c", "s"}) {
      Result<const datalog::Model*> m = engine->ReducedModel(level);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      sequential.push_back((*m)->ToString());
    }
  }
  for (size_t threads : {2u, 8u}) {
    ml::EngineOptions options;
    options.eval.num_threads = threads;
    Result<ml::Engine> engine = ml::Engine::FromSource(D1Source(), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    size_t i = 0;
    for (const char* level : {"u", "c", "s"}) {
      Result<const datalog::Model*> m = engine->ReducedModel(level);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      EXPECT_EQ((*m)->ToString(), sequential[i++])
          << "level " << level << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace multilog::mls
