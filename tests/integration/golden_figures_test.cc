#include "mls/belief.h"
#include <gtest/gtest.h>

#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

// Byte-exact golden renderings of the paper's tabular figures, freezing
// both content and presentation. Unit tests elsewhere pin the *content*
// set-theoretically; these pin the regenerated artifacts end to end.

TEST(GoldenFigures, Figure4LabeledMission) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  const char* expected =
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n"
      "| Tid | Starship |     | Objective  |     | Destin |     | TC  |\n"
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n"
      "| t1  | Avenger  | S   | Shipping   | S   | Pluto  | S   | S   |\n"
      "| t2  | Atlantis | UCS | Diplomacy  | UCS | Vulcan | UCS | UCS |\n"
      "| t3  | Voyager  | US  | Spying     | S   | Mars   | US  | S   |\n"
      "| t4  | Phantom  | US  | Spying     | U-S | Omega  | US  | U-S |\n"
      "| t4' | Phantom  | US  | Spying     | S   | Omega  | US  | S   |\n"
      "| t5  | Phantom  | CS  | Supply     | S   | Venus  | S   | S   |\n"
      "| t5' | Phantom  | CS  | Supply     | C-S | Venus  | C-S | C-S |\n"
      "| t8  | Voyager  | US  | Training   | U-S | Mars   | US  | U-S |\n"
      "| t9  | Falcon   | U-S | Piracy     | U-S | Venus  | U-S | U-S |\n"
      "| t10 | Eagle    | U   | Patrolling | U   | Degoba | U   | U   |\n"
      "+-----+----------+-----+------------+-----+--------+-----+-----+\n";
  EXPECT_EQ(ds->jv_mission->RenderLabeled(), expected);
}

TEST(GoldenFigures, Figure5InterpretationMatrix) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<std::string> table =
      ds->jv_mission->RenderInterpretations({"u", "c", "s"});
  ASSERT_TRUE(table.ok());
  const char* expected =
      "+-----+-----------+------------+-------------+\n"
      "| Tid | U level   | C level    | S level     |\n"
      "+-----+-----------+------------+-------------+\n"
      "| t1  | invisible | invisible  | true        |\n"
      "| t2  | true      | true       | true        |\n"
      "| t3  | invisible | invisible  | true        |\n"
      "| t4  | true      | irrelevant | cover story |\n"
      "| t4' | invisible | invisible  | true        |\n"
      "| t5  | invisible | invisible  | true        |\n"
      "| t5' | invisible | true       | cover story |\n"
      "| t8  | true      | irrelevant | cover story |\n"
      "| t9  | true      | irrelevant | mirage      |\n"
      "| t10 | true      | irrelevant | irrelevant  |\n"
      "+-----+-----------+------------+-------------+\n";
  EXPECT_EQ(*table, expected);
}

TEST(GoldenFigures, Figure6FirmViewTable) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<BeliefOutcome> firm =
      Believe(*ds->mission, "c", BeliefMode::kFirm);
  ASSERT_TRUE(firm.ok());
  const char* expected =
      "Mission\n"
      "+----------+---+-----------+---+--------+---+----+\n"
      "| Starship | C | Objective | C | Destin | C | TC |\n"
      "+----------+---+-----------+---+--------+---+----+\n"
      "| Atlantis | u | Diplomacy | u | Vulcan | u | c  |\n"
      "+----------+---+-----------+---+--------+---+----+\n";
  EXPECT_EQ(firm->relation.ToString(), expected);
}

}  // namespace
}  // namespace multilog::mls
