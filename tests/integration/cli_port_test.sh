#!/usr/bin/env bash
# Bad --port values must fail fast with a diagnostic. Before the
# ParsePort helper, "70000" silently truncated through a uint16_t cast
# to 4464 and the daemon served on the wrong port.
#
# Usage: cli_port_test.sh <build-dir>
set -u
bin="$1"
fail=0

check() {
  local desc="$1"
  shift
  local out
  if out=$("$@" 2>&1); then
    echo "FAIL($desc): expected a non-zero exit, got: $out"
    fail=1
  elif ! grep -q "invalid port" <<<"$out"; then
    echo "FAIL($desc): missing 'invalid port' diagnostic, got: $out"
    fail=1
  fi
}

check "daemon overflow" "$bin/src/server/multilogd" --sample --port 70000
check "daemon junk" "$bin/src/server/multilogd" --sample --port 80x
check "client overflow" "$bin/src/server/multilog_client" --port 70000 ping
check "client junk" "$bin/src/server/multilog_client" --port abc ping
# Port 0 means "OS-assigned" for the daemon (the demo scripts use it),
# but a client has nothing to dial at 0.
check "client zero" "$bin/src/server/multilog_client" --port 0 ping

# A good port must still parse: the client should get past argument
# parsing and fail at connect time (nothing listens on this port), with
# no port diagnostic.
out=$("$bin/src/server/multilog_client" --port 65535 ping 2>&1)
if [ $? -eq 0 ] || grep -q "invalid port" <<<"$out"; then
  echo "FAIL(valid port): $out"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "cli port validation: ok"
fi
exit $fail
