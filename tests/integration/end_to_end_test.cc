#include <gtest/gtest.h>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/sample_data.h"
#include "msql/executor.h"
#include "multilog/engine.h"
#include "multilog/translate.h"

namespace multilog {
namespace {

// The whole stack on one scenario: build an MLS relation through
// subject-level operations, check integrity, encode it as MultiLog, run
// both semantics, cross-check against beta and against MSQL.
TEST(EndToEndTest, FullStackRoundTrip) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  Result<mls::Scheme> scheme = mls::Scheme::Create(
      "Assets",
      {{"Asset", "u", "t"}, {"Status", "u", "t"}, {"Site", "u", "t"}},
      "Asset", lat);
  ASSERT_TRUE(scheme.ok());
  mls::Relation rel(std::move(scheme).value(), &lat);

  // A small polyinstantiation history.
  using mls::Value;
  ASSERT_TRUE(rel.InsertAt("u", {Value::Str("drone1"), Value::Str("idle"),
                                 Value::Str("base")})
                  .ok());
  ASSERT_TRUE(rel.InsertAt("u", {Value::Str("drone2"), Value::Str("idle"),
                                 Value::Str("base")})
                  .ok());
  ASSERT_TRUE(
      rel.UpdateAt("s", Value::Str("drone1"), "Status", Value::Str("strike"))
          .ok());
  ASSERT_TRUE(rel.UpdateAt("c", Value::Str("drone2"), "Site",
                           Value::Str("forward"))
                  .ok());
  ASSERT_TRUE(mls::CheckConsistent(rel).ok());

  // Relational belief.
  Result<mls::BeliefOutcome> cau =
      mls::Believe(rel, "s", mls::BeliefMode::kCautious,
                   mls::BeliefOptions{/*merge_key_versions=*/true});
  ASSERT_TRUE(cau.ok()) << cau.status();

  // Deductive belief through the engine agrees cell-wise.
  Result<ml::Database> db = ml::EncodeRelation(rel, "assets");
  ASSERT_TRUE(db.ok());
  Result<ml::Engine> engine = ml::Engine::FromDatabase(std::move(*db));
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<std::vector<ml::CellFact>> bel_cells =
      ml::BelievedCells(&*engine, "assets", "s", "cau");
  ASSERT_TRUE(bel_cells.ok()) << bel_cells.status();
  EXPECT_EQ(ml::RelationCells(cau->relation), *bel_cells);

  // Both semantics agree on a mixed query at every level.
  for (const std::string level : {"u", "c", "s"}) {
    Result<ml::QueryResult> r = engine->QuerySource(
        "L[assets(K : status -C-> V)] << cau", level,
        ml::ExecMode::kCheckBoth);
    ASSERT_TRUE(r.ok()) << "level " << level << ": " << r.status();
  }

  // And MSQL sees the same world through beta.
  msql::Session session;
  ASSERT_TRUE(session.RegisterRelation("assets", &rel).ok());
  ASSERT_TRUE(session.SetUserContext("s").ok());
  Result<msql::ResultSet> strike = session.Execute(
      "select asset from assets where status = strike believed cautiously");
  ASSERT_TRUE(strike.ok()) << strike.status();
  EXPECT_EQ(strike->rows,
            (std::vector<std::vector<std::string>>{{"drone1"}}));

  // The u subject, meanwhile, still believes drone1 idle - and the
  // engine enforces no-read-up on the s-level strike order.
  ASSERT_TRUE(session.SetUserContext("u").ok());
  Result<msql::ResultSet> idle = session.Execute(
      "select asset from assets where status = idle believed firmly");
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->rows.size(), 2u);
  Result<ml::QueryResult> no_read_up = engine->QuerySource(
      "s[assets(K : status -C-> V)]", "u", ml::ExecMode::kCheckBoth);
  ASSERT_TRUE(no_read_up.ok());
  EXPECT_TRUE(no_read_up->answers.empty());
}

// The Mission narrative end to end: surprise stories exist in the
// Jajodia-Sandhu views, the J-V model labels them, and beta suppresses
// them - the paper's core argument, executable.
TEST(EndToEndTest, PaperNarrative) {
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok());

  // 1. Jajodia-Sandhu: surprise stories at c.
  Result<std::vector<mls::Tuple>> surprises =
      mls::FindSurpriseStories(*ds->mission, "c");
  ASSERT_TRUE(surprises.ok());
  EXPECT_EQ(surprises->size(), 2u);

  // 2. Jukic-Vrbsky: fixed interpretations, no reasoning.
  Result<mls::JvInterpretation> t4_at_c = ds->jv_mission->Interpret(
      ds->jv_mission->tuples()[3], "c");  // t4
  ASSERT_TRUE(t4_at_c.ok());
  EXPECT_EQ(*t4_at_c, mls::JvInterpretation::kIrrelevant);

  // 3. MultiLog: dynamic belief, surprise-free.
  for (const char* mode : {"fir", "opt", "cau"}) {
    Result<mls::BeliefOutcome> out = mls::Believe(
        *ds->mission, "c", mls::ParseBeliefMode(mode).value());
    ASSERT_TRUE(out.ok());
    for (const mls::Tuple& t : out->relation.tuples()) {
      for (const mls::Cell& cell : t.cells) {
        EXPECT_FALSE(cell.value.is_null());
      }
    }
  }
}

}  // namespace
}  // namespace multilog
