#include <gtest/gtest.h>

#include <random>

#include "lattice/lattice.h"

namespace multilog::lattice {
namespace {

/// Builds a random DAG poset over n levels, deterministic in `seed`:
/// edges only go from lower to higher index, guaranteeing acyclicity.
SecurityLattice RandomPoset(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> size_dist(2, 8);
  std::uniform_int_distribution<int> coin(0, 2);
  const int n = size_dist(rng);

  SecurityLattice::Builder b;
  auto name = [](int i) { return "l" + std::to_string(i); };
  for (int i = 0; i < n; ++i) b.AddLevel(name(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (coin(rng) == 0) b.AddOrder(name(i), name(j));
    }
  }
  Result<SecurityLattice> lat = b.Build();
  EXPECT_TRUE(lat.ok()) << lat.status();
  return std::move(lat).value();
}

class LatticePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LatticePropertyTest, DominanceIsAPartialOrder) {
  SecurityLattice lat = RandomPoset(GetParam());
  const size_t n = lat.size();
  for (size_t a = 0; a < n; ++a) {
    EXPECT_TRUE(lat.LeqIndex(a, a)) << "reflexivity";
    for (size_t b = 0; b < n; ++b) {
      if (a != b && lat.LeqIndex(a, b)) {
        EXPECT_FALSE(lat.LeqIndex(b, a)) << "antisymmetry";
      }
      for (size_t c = 0; c < n; ++c) {
        if (lat.LeqIndex(a, b) && lat.LeqIndex(b, c)) {
          EXPECT_TRUE(lat.LeqIndex(a, c)) << "transitivity";
        }
      }
    }
  }
}

TEST_P(LatticePropertyTest, LubIsALeastUpperBound) {
  SecurityLattice lat = RandomPoset(GetParam());
  for (const std::string& a : lat.names()) {
    for (const std::string& b : lat.names()) {
      Result<std::optional<std::string>> lub = lat.Lub(a, b);
      ASSERT_TRUE(lub.ok());
      if (!lub->has_value()) continue;
      const std::string& l = **lub;
      EXPECT_TRUE(lat.Leq(a, l).value_or(false));
      EXPECT_TRUE(lat.Leq(b, l).value_or(false));
      // Least: below every other common upper bound.
      for (const std::string& other : lat.names()) {
        if (lat.Leq(a, other).value_or(false) &&
            lat.Leq(b, other).value_or(false)) {
          EXPECT_TRUE(lat.Leq(l, other).value_or(false));
        }
      }
    }
  }
}

TEST_P(LatticePropertyTest, GlbDualOfLub) {
  SecurityLattice lat = RandomPoset(GetParam());
  for (const std::string& a : lat.names()) {
    for (const std::string& b : lat.names()) {
      Result<std::optional<std::string>> glb = lat.Glb(a, b);
      ASSERT_TRUE(glb.ok());
      if (!glb->has_value()) continue;
      EXPECT_TRUE(lat.Leq(**glb, a).value_or(false));
      EXPECT_TRUE(lat.Leq(**glb, b).value_or(false));
    }
  }
}

TEST_P(LatticePropertyTest, DownSetIsDownwardClosed) {
  SecurityLattice lat = RandomPoset(GetParam());
  for (const std::string& bound : lat.names()) {
    Result<std::vector<std::string>> down = lat.DownSet(bound);
    ASSERT_TRUE(down.ok());
    for (const std::string& member : *down) {
      EXPECT_TRUE(lat.Leq(member, bound).value_or(false));
      // Everything below a member is in the set too.
      for (const std::string& lower : lat.names()) {
        if (lat.Leq(lower, member).value_or(false)) {
          EXPECT_NE(std::find(down->begin(), down->end(), lower),
                    down->end());
        }
      }
    }
  }
}

TEST_P(LatticePropertyTest, MinimalAndMaximalElementsExist) {
  SecurityLattice lat = RandomPoset(GetParam());
  EXPECT_FALSE(lat.MinimalElements().empty());
  EXPECT_FALSE(lat.MaximalElements().empty());
  for (const std::string& m : lat.MinimalElements()) {
    for (const std::string& other : lat.names()) {
      EXPECT_FALSE(lat.Lt(other, m).value_or(true));
    }
  }
}

TEST_P(LatticePropertyTest, TopologicalOrderIsLinearExtension) {
  SecurityLattice lat = RandomPoset(GetParam());
  std::vector<std::string> topo = lat.TopologicalOrder();
  ASSERT_EQ(topo.size(), lat.size());
  for (size_t i = 0; i < topo.size(); ++i) {
    for (size_t j = i + 1; j < topo.size(); ++j) {
      EXPECT_FALSE(lat.Lt(topo[j], topo[i]).value_or(true));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LatticePropertyTest,
                         ::testing::Range(0u, 30u));

}  // namespace
}  // namespace multilog::lattice
