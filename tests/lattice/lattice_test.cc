#include "lattice/lattice.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace multilog::lattice {
namespace {

TEST(LatticeTest, MilitaryChain) {
  SecurityLattice lat = SecurityLattice::Military();
  EXPECT_EQ(lat.size(), 4u);
  EXPECT_TRUE(lat.Leq("u", "t").value_or(false));
  EXPECT_TRUE(lat.Leq("u", "u").value_or(false));
  EXPECT_FALSE(lat.Leq("t", "u").value_or(true));
  EXPECT_TRUE(lat.Lt("c", "s").value_or(false));
  EXPECT_FALSE(lat.Lt("c", "c").value_or(true));
  EXPECT_TRUE(lat.IsTotalOrder());
  EXPECT_EQ(lat.MinimalElements(), std::vector<std::string>{"u"});
  EXPECT_EQ(lat.MaximalElements(), std::vector<std::string>{"t"});
}

TEST(LatticeTest, UnknownLevelErrors) {
  SecurityLattice lat = SecurityLattice::Military();
  EXPECT_FALSE(lat.Leq("u", "zz").ok());
  EXPECT_FALSE(lat.Index("zz").ok());
  EXPECT_TRUE(lat.Contains("s"));
  EXPECT_FALSE(lat.Contains("zz"));
}

TEST(LatticeTest, BuilderRejectsUndeclaredEndpoints) {
  SecurityLattice::Builder b;
  b.AddLevel("a").AddOrder("a", "b");
  Result<SecurityLattice> lat = b.Build();
  EXPECT_FALSE(lat.ok());
  EXPECT_TRUE(lat.status().IsInvalidProgram());
}

TEST(LatticeTest, BuilderRejectsCycles) {
  SecurityLattice::Builder b;
  b.AddLevel("a").AddLevel("b").AddLevel("c");
  b.AddOrder("a", "b").AddOrder("b", "c").AddOrder("c", "a");
  Result<SecurityLattice> lat = b.Build();
  EXPECT_FALSE(lat.ok());
}

TEST(LatticeTest, BuilderRejectsSelfLoop) {
  SecurityLattice::Builder b;
  b.AddLevel("a").AddOrder("a", "a");
  EXPECT_FALSE(b.Build().ok());
}

TEST(LatticeTest, DuplicateLevelIsIdempotent) {
  SecurityLattice::Builder b;
  b.AddLevel("a").AddLevel("a").AddLevel("b").AddOrder("a", "b");
  Result<SecurityLattice> lat = b.Build();
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->size(), 2u);
}

TEST(LatticeTest, DiamondLubGlb) {
  // u < {left, right} < top, with left/right incomparable.
  SecurityLattice::Builder b;
  b.AddLevel("u").AddLevel("left").AddLevel("right").AddLevel("top");
  b.AddOrder("u", "left").AddOrder("u", "right");
  b.AddOrder("left", "top").AddOrder("right", "top");
  Result<SecurityLattice> lat = b.Build();
  ASSERT_TRUE(lat.ok());

  EXPECT_FALSE(lat->IsTotalOrder());
  EXPECT_FALSE(lat->Comparable("left", "right").value_or(true));
  EXPECT_EQ(lat->Lub("left", "right").value().value_or("?"), "top");
  EXPECT_EQ(lat->Glb("left", "right").value().value_or("?"), "u");
  EXPECT_EQ(lat->Lub("u", "left").value().value_or("?"), "left");
  EXPECT_EQ(lat->LubOfSet({"u", "left", "right"}).value().value_or("?"),
            "top");
}

TEST(LatticeTest, LubMayNotExist) {
  // Two incomparable tops: no upper bound for {a, b}.
  SecurityLattice::Builder b;
  b.AddLevel("bot").AddLevel("a").AddLevel("b");
  b.AddOrder("bot", "a").AddOrder("bot", "b");
  Result<SecurityLattice> lat = b.Build();
  ASSERT_TRUE(lat.ok());
  Result<std::optional<std::string>> lub = lat->Lub("a", "b");
  ASSERT_TRUE(lub.ok());
  EXPECT_FALSE(lub->has_value());
}

TEST(LatticeTest, LubAmbiguousWhenNoLeastUpperBound) {
  // a, b below both c and d (c, d incomparable): upper bounds exist but
  // no least one.
  SecurityLattice::Builder b;
  b.AddLevel("a").AddLevel("b").AddLevel("c").AddLevel("d");
  b.AddOrder("a", "c").AddOrder("a", "d");
  b.AddOrder("b", "c").AddOrder("b", "d");
  Result<SecurityLattice> lat = b.Build();
  ASSERT_TRUE(lat.ok());
  Result<std::optional<std::string>> lub = lat->Lub("a", "b");
  ASSERT_TRUE(lub.ok());
  EXPECT_FALSE(lub->has_value());
}

TEST(LatticeTest, DownSet) {
  SecurityLattice lat = SecurityLattice::Military();
  Result<std::vector<std::string>> down = lat.DownSet("c");
  ASSERT_TRUE(down.ok());
  std::vector<std::string> expected = {"u", "c"};
  EXPECT_EQ(*down, expected);
}

TEST(LatticeTest, TopologicalOrderRespectsDominance) {
  SecurityLattice lat = SecurityLattice::Military();
  std::vector<std::string> topo = lat.TopologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  for (size_t i = 0; i < topo.size(); ++i) {
    for (size_t j = i + 1; j < topo.size(); ++j) {
      EXPECT_FALSE(lat.Lt(topo[j], topo[i]).value_or(true))
          << topo[j] << " before " << topo[i];
    }
  }
}

TEST(LatticeTest, PowersetOfCategories) {
  SecurityLattice lat = SecurityLattice::Powerset({"navy", "army"});
  EXPECT_EQ(lat.size(), 4u);
  EXPECT_TRUE(lat.Leq("{}", "{army,navy}").value_or(false));
  EXPECT_TRUE(lat.Leq("{army}", "{army,navy}").value_or(false));
  EXPECT_FALSE(lat.Comparable("{army}", "{navy}").value_or(true));
  EXPECT_EQ(lat.Lub("{army}", "{navy}").value().value_or("?"),
            "{army,navy}");
}

TEST(LatticeTest, ProductBuildsFullAccessClasses) {
  SecurityLattice hierarchy = SecurityLattice::Chain({"u", "s"});
  SecurityLattice categories = SecurityLattice::Powerset({"n"});
  SecurityLattice lat = SecurityLattice::Product(hierarchy, categories);
  EXPECT_EQ(lat.size(), 4u);
  EXPECT_TRUE(lat.Leq("u.{}", "s.{n}").value_or(false));
  EXPECT_FALSE(lat.Comparable("u.{n}", "s.{}").value_or(true));
  EXPECT_EQ(lat.Lub("u.{n}", "s.{}").value().value_or("?"), "s.{n}");
}

TEST(LatticeTest, CoverEdgesPreserved) {
  SecurityLattice lat = SecurityLattice::Military();
  EXPECT_EQ(lat.CoverEdges().size(), 3u);
}

TEST(LatticeTest, EmptyLattice) {
  Result<SecurityLattice> lat = SecurityLattice::Builder().Build();
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->size(), 0u);
  EXPECT_TRUE(lat->IsTotalOrder());
  EXPECT_TRUE(lat->MinimalElements().empty());
}

TEST(LatticeTest, LubOfSetRequiresNonEmpty) {
  SecurityLattice lat = SecurityLattice::Military();
  EXPECT_FALSE(lat.LubOfSet({}).ok());
}

}  // namespace
}  // namespace multilog::lattice
