#include <gtest/gtest.h>

#include "mls/integrity.h"
#include "msql/executor.h"

namespace multilog::msql {
namespace {

class MsqlDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lattice_ = lattice::SecurityLattice::Military();
    Result<mls::Scheme> scheme = mls::Scheme::Create(
        "Fleet",
        {{"Ship", "u", "t"}, {"Mission", "u", "t"}, {"Port", "u", "t"}},
        "Ship", lattice_);
    ASSERT_TRUE(scheme.ok());
    relation_ = std::make_unique<mls::Relation>(std::move(scheme).value(),
                                                &lattice_);
    session_ = std::make_unique<Session>();
    ASSERT_TRUE(
        session_->RegisterMutableRelation("fleet", relation_.get()).ok());
  }

  Status Exec(const std::string& sql) {
    return session_->Execute(sql).status();
  }

  lattice::SecurityLattice lattice_;
  std::unique_ptr<mls::Relation> relation_;
  std::unique_ptr<Session> session_;
};

TEST_F(MsqlDmlTest, InsertAtSessionLevel) {
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("insert into fleet values (kestrel, patrol, kiel)").ok());
  ASSERT_EQ(relation_->size(), 1u);
  EXPECT_EQ(relation_->tuples()[0].tc, "u");
  EXPECT_EQ(relation_->tuples()[0].cells[0].value, mls::Value::Str("kestrel"));
}

TEST_F(MsqlDmlTest, InsertRequiresContext) {
  EXPECT_TRUE(
      Exec("insert into fleet values (a, b, c)").IsInvalidArgument());
}

TEST_F(MsqlDmlTest, InsertArityChecked) {
  ASSERT_TRUE(Exec("user context u").ok());
  EXPECT_TRUE(Exec("insert into fleet values (a, b)").IsInvalidArgument());
}

TEST_F(MsqlDmlTest, UpdateInPlaceAndPolyinstantiating) {
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("insert into fleet values (kestrel, patrol, kiel)").ok());

  // Same-level update is in place.
  ASSERT_TRUE(
      Exec("update fleet set mission = escort where ship = kestrel").ok());
  ASSERT_EQ(relation_->size(), 1u);
  EXPECT_EQ(relation_->tuples()[0].cells[1].value, mls::Value::Str("escort"));

  // Higher-level update polyinstantiates.
  ASSERT_TRUE(Exec("user context s").ok());
  ASSERT_TRUE(
      Exec("update fleet set mission = strike where ship = kestrel").ok());
  ASSERT_EQ(relation_->size(), 2u);

  // Each level reads its own truth.
  ASSERT_TRUE(Exec("user context u").ok());
  Result<ResultSet> u_view = session_->Execute(
      "select mission from fleet believed cautiously");
  ASSERT_TRUE(u_view.ok());
  EXPECT_EQ(u_view->rows,
            (std::vector<std::vector<std::string>>{{"escort"}}));

  ASSERT_TRUE(Exec("user context s").ok());
  Result<ResultSet> s_view = session_->Execute(
      "select mission from fleet believed cautiously");
  ASSERT_TRUE(s_view.ok());
  EXPECT_EQ(s_view->rows,
            (std::vector<std::vector<std::string>>{{"strike"}}));
}

TEST_F(MsqlDmlTest, DeleteOnlyOwnLevelThenSurpriseStory) {
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("insert into fleet values (kestrel, patrol, kiel)").ok());
  ASSERT_TRUE(Exec("user context s").ok());
  ASSERT_TRUE(
      Exec("update fleet set mission = strike where ship = kestrel").ok());
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("delete from fleet where ship = kestrel").ok());

  // The s version with the u key classification survives: the u view now
  // contains a surprise story.
  ASSERT_EQ(relation_->size(), 1u);
  Result<std::vector<mls::Tuple>> leaks =
      mls::FindSurpriseStories(*relation_, "u");
  ASSERT_TRUE(leaks.ok());
  EXPECT_EQ(leaks->size(), 1u);

  // Deleting again at u finds nothing (the s version is not u's).
  EXPECT_TRUE(
      Exec("delete from fleet where ship = kestrel").IsNotFound());
}

TEST_F(MsqlDmlTest, UpdateRequiresKeyPredicate) {
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("insert into fleet values (kestrel, patrol, kiel)").ok());
  EXPECT_TRUE(
      Exec("update fleet set mission = x where port = kiel")
          .IsInvalidArgument());
  EXPECT_TRUE(
      Exec("update fleet set nosuch = x where ship = kestrel").IsNotFound());
}

TEST_F(MsqlDmlTest, ReadOnlyRelationRejectsDml) {
  mls::Relation read_only(relation_->scheme(), &lattice_);
  Session session;
  ASSERT_TRUE(session.RegisterRelation("ro", &read_only).ok());
  ASSERT_TRUE(session.SetUserContext("u").ok());
  EXPECT_TRUE(session.Execute("insert into ro values (a, b, c)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session.Execute("delete from ro where ship = a")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MsqlDmlTest, InsertIntegerAndNullValues) {
  ASSERT_TRUE(Exec("user context u").ok());
  ASSERT_TRUE(Exec("insert into fleet values (kestrel, 42, null)").ok());
  EXPECT_EQ(relation_->tuples()[0].cells[1].value, mls::Value::Int(42));
  EXPECT_TRUE(relation_->tuples()[0].cells[2].value.is_null());
}

TEST_F(MsqlDmlTest, DmlParseErrors) {
  ASSERT_TRUE(Exec("user context u").ok());
  EXPECT_TRUE(Exec("insert fleet values (a)").IsParseError());
  EXPECT_TRUE(Exec("insert into fleet values ()").IsParseError());
  EXPECT_TRUE(Exec("update fleet set mission where ship = a").IsParseError());
  EXPECT_TRUE(Exec("delete from fleet").IsParseError());
}

TEST_F(MsqlDmlTest, WritesRespectStarProperty) {
  // A subject's writes land at its own level: after a c-level insert,
  // the u view cannot see the tuple.
  ASSERT_TRUE(Exec("user context c").ok());
  ASSERT_TRUE(Exec("insert into fleet values (ghost, recon, kiel)").ok());
  ASSERT_TRUE(Exec("user context u").ok());
  Result<ResultSet> rows = session_->Execute("select * from fleet");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
}

}  // namespace
}  // namespace multilog::msql
