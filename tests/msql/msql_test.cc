#include <gtest/gtest.h>

#include "mls/sample_data.h"
#include "msql/executor.h"
#include "msql/parser.h"

namespace multilog::msql {
namespace {

class MsqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
    session_ = std::make_unique<Session>();
    ASSERT_TRUE(
        session_->RegisterRelation("mission", ds_.mission.get()).ok());
  }

  std::vector<std::vector<std::string>> Rows(const std::string& sql) {
    Result<ResultSet> r = session_->Execute(sql);
    if (!r.ok()) {
      ADD_FAILURE() << sql << "\n" << r.status();
      return {};
    }
    return r->rows;
  }

  mls::MissionDataset ds_;
  std::unique_ptr<Session> session_;
};

TEST_F(MsqlTest, RequiresUserContext) {
  Result<ResultSet> r = session_->Execute("select * from mission");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(MsqlTest, UserContextStatement) {
  Result<ResultSet> r = session_->Execute("user context s");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(session_->user_context(), "s");
}

TEST_F(MsqlTest, LockUserContextPinsClearance) {
  ASSERT_TRUE(session_->SetUserContext("c").ok());
  session_->LockUserContext();

  // Neither the statement form nor the API can escalate (or even
  // re-assert) the clearance once locked - the query server relies on
  // this after binding a connection's level at HELLO.
  Result<ResultSet> stmt = session_->Execute("user context s");
  ASSERT_FALSE(stmt.ok());
  EXPECT_TRUE(stmt.status().IsSecurityViolation()) << stmt.status();
  EXPECT_TRUE(session_->SetUserContext("u").IsSecurityViolation());
  EXPECT_EQ(session_->user_context(), "c");

  // Reads at the pinned level keep working.
  EXPECT_FALSE(Rows("select * from mission").empty());
}

TEST_F(MsqlTest, SelectStarThroughSigmaView) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  // Figure 2's view has five tuples.
  EXPECT_EQ(Rows("select * from mission").size(), 5u);
}

TEST_F(MsqlTest, WhereEqualityIsCaseInsensitive) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows =
      Rows("select starship from mission where destin = 'MARS'");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST_F(MsqlTest, WhereFiltersRows) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows =
      Rows("select starship from mission where destin = 'Mars'");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
  // Bare identifier works like a string literal, case-insensitively.
  rows = Rows("select starship from mission where destin = mars");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST_F(MsqlTest, BelievedFirmly) {
  ASSERT_TRUE(session_->SetUserContext("c").ok());
  std::vector<std::vector<std::string>> rows =
      Rows("select starship from mission believed firmly");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Atlantis"}}));
}

TEST_F(MsqlTest, BelievedOptimistically) {
  ASSERT_TRUE(session_->SetUserContext("c").ok());
  std::vector<std::vector<std::string>> rows =
      Rows("select starship from mission believed optimistically");
  EXPECT_EQ(rows.size(), 4u);  // Figure 7 minus the surprise stories
}

TEST_F(MsqlTest, BelievedCautiously) {
  ASSERT_TRUE(session_->SetUserContext("s").ok());
  std::vector<std::vector<std::string>> rows = Rows(
      "select objective from mission where starship = voyager "
      "believed cautiously");
  // Spying/s overrides Training/u at level s.
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Spying"}}));
}

TEST_F(MsqlTest, Paper32QueryWithoutAnyDoubt) {
  // The Section 3.2 query, verbatim in structure: starships spying on
  // Mars in every belief mode.
  ASSERT_TRUE(session_->SetUserContext("s").ok());
  const char* sql = R"(
    select starship from mission
    where starship in (select starship from mission
                       where destin = mars and objective = spying
                       believed cautiously)
      and starship in (select starship from mission
                       where destin = mars and objective = spying
                       believed firmly)
      and starship in (select starship from mission
                       where destin = mars and objective = spying
                       believed optimistically)
  )";
  std::vector<std::vector<std::string>> rows = Rows(sql);
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST_F(MsqlTest, Paper32QueryAsIntersect) {
  ASSERT_TRUE(session_->SetUserContext("s").ok());
  const char* sql = R"(
    select starship from mission
    where destin = mars and objective = spying believed cautiously
    intersect
    select starship from mission
    where destin = mars and objective = spying believed firmly
    intersect
    select starship from mission
    where destin = mars and objective = spying believed optimistically
  )";
  std::vector<std::vector<std::string>> rows = Rows(sql);
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST_F(MsqlTest, AtLevelCTheSpyIsInvisible) {
  // The same query at level c is empty - t3 sits above c.
  ASSERT_TRUE(session_->SetUserContext("c").ok());
  std::vector<std::vector<std::string>> rows = Rows(
      "select starship from mission where objective = spying "
      "believed optimistically");
  EXPECT_TRUE(rows.empty());
}

TEST_F(MsqlTest, UnionAndExcept) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows = Rows(R"(
    select starship from mission where destin = mars
    union
    select starship from mission where destin = venus
  )");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Falcon"},
                                                         {"Voyager"}}));
  rows = Rows(R"(
    select starship from mission
    except
    select starship from mission where destin = mars
  )");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(MsqlTest, AndOrNotPrecedence) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows = Rows(
      "select starship from mission "
      "where destin = mars or destin = venus and objective = piracy");
  // AND binds tighter: mars OR (venus AND piracy).
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Falcon"},
                                                         {"Voyager"}}));
  rows = Rows(
      "select starship from mission where not (destin = mars)");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(MsqlTest, ComparisonOperators) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows = Rows(
      "select starship from mission where starship <> eagle");
  EXPECT_EQ(rows.size(), 4u);
  rows = Rows("select starship from mission where starship < eagle");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Atlantis"}}));
}

TEST_F(MsqlTest, ProjectionErrors) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  Result<ResultSet> r =
      session_->Execute("select nosuch from mission");
  EXPECT_TRUE(r.status().IsNotFound());
  r = session_->Execute("select * from nosuchrel");
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(MsqlTest, ParseErrors) {
  EXPECT_TRUE(ParseStatement("selec * from t").status().IsParseError());
  EXPECT_TRUE(ParseStatement("select from t").status().IsParseError());
  EXPECT_TRUE(
      ParseStatement("select a from t where").status().IsParseError());
  EXPECT_TRUE(ParseStatement("user context").status().IsParseError());
  EXPECT_TRUE(ParseStatement("select a from t extra").status()
                  .IsParseError());
}

TEST_F(MsqlTest, UserDefinedModeThroughRegistry) {
  mls::BeliefModeRegistry registry;
  ASSERT_TRUE(registry
                  .Register("skeptical",
                            [](const mls::Relation& r, const std::string&)
                                -> Result<std::vector<mls::Tuple>> {
                              (void)r;
                              return std::vector<mls::Tuple>{};
                            })
                  .ok());
  Session session(&registry);
  ASSERT_TRUE(session.RegisterRelation("mission", ds_.mission.get()).ok());
  ASSERT_TRUE(session.SetUserContext("s").ok());
  Result<ResultSet> r =
      session.Execute("select * from mission believed skeptical");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rows.empty());
  EXPECT_TRUE(session.Execute("select * from mission believed nosuch")
                  .status()
                  .IsNotFound());
}

TEST_F(MsqlTest, CountStar) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows =
      Rows("select count(*) from mission");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"5"}}));
  rows = Rows("select count(*) from mission where destin = venus");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"1"}}));
  ASSERT_TRUE(session_->SetUserContext("s").ok());
  rows = Rows("select count(*) from mission believed firmly");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"5"}}));
  // COUNT counts tuples pre-projection (no dedup collapse).
  EXPECT_TRUE(
      session_->Execute("select count(* from mission").status().IsParseError());
}

TEST_F(MsqlTest, SetOpArityMismatchRejected) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  Result<ResultSet> r = session_->Execute(
      "select starship from mission union select starship, destin from "
      "mission");
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_F(MsqlTest, UnknownContextLevelFailsAtQueryTime) {
  ASSERT_TRUE(session_->SetUserContext("warp9").ok());  // validated lazily
  Result<ResultSet> r = session_->Execute("select * from mission");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
}

TEST_F(MsqlTest, NestedSubqueriesWithDifferentModes) {
  ASSERT_TRUE(session_->SetUserContext("s").ok());
  std::vector<std::vector<std::string>> rows = Rows(R"(
    select starship from mission
    where starship in (select starship from mission
                       where starship in (select starship from mission
                                          where destin = mars
                                          believed firmly)
                       believed cautiously)
  )");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST_F(MsqlTest, ParenthesizedSetExpressions) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  std::vector<std::vector<std::string>> rows = Rows(R"(
    (select starship from mission where destin = mars
     union
     select starship from mission where destin = venus)
    except
    select starship from mission where starship = falcon
  )");
  EXPECT_EQ(rows, (std::vector<std::vector<std::string>>{{"Voyager"}}));
}

TEST(MsqlParserTest, IntegerLiteralBoundaries) {
  Result<Statement> max =
      ParseStatement("select a from t where a = 9223372036854775807");
  EXPECT_TRUE(max.ok()) << max.status();

  Result<Statement> over =
      ParseStatement("select a from t where a = 9223372036854775808");
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsParseError());
  EXPECT_NE(over.status().message().find("out of range"), std::string::npos)
      << over.status();

  // The same overflow inside INSERT VALUES.
  Result<Statement> ins =
      ParseStatement("insert into t values (99999999999999999999)");
  ASSERT_FALSE(ins.ok());
  EXPECT_TRUE(ins.status().IsParseError());
}

TEST_F(MsqlTest, ResultSetToString) {
  ASSERT_TRUE(session_->SetUserContext("u").ok());
  Result<ResultSet> r = session_->Execute(
      "select starship from mission where destin = mars");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->ToString().find("Voyager"), std::string::npos);
}

}  // namespace
}  // namespace multilog::msql
