#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace multilog::datalog {
namespace {

TEST(DatalogParserTest, Fact) {
  Result<ParsedProgram> p = ParseDatalog("edge(a, b).");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->program.size(), 1u);
  EXPECT_EQ(p->program.clauses()[0].ToString(), "edge(a, b).");
  EXPECT_TRUE(p->program.clauses()[0].IsFact());
}

TEST(DatalogParserTest, NullaryPredicate) {
  Result<ParsedProgram> p = ParseDatalog("go. stop :- go.");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program.size(), 2u);
  EXPECT_EQ(p->program.clauses()[1].ToString(), "stop :- go.");
}

TEST(DatalogParserTest, RuleWithNegationAndBuiltin) {
  Result<ParsedProgram> p = ParseDatalog(
      "good(X) :- node(X), not bad(X), X != root.");
  ASSERT_TRUE(p.ok()) << p.status();
  const Clause& c = p->program.clauses()[0];
  ASSERT_EQ(c.body().size(), 3u);
  EXPECT_FALSE(c.body()[0].negated());
  EXPECT_TRUE(c.body()[1].negated());
  EXPECT_TRUE(c.body()[2].is_builtin());
  EXPECT_EQ(c.body()[2].comparison(), Comparison::kNe);
}

TEST(DatalogParserTest, VariablesAndConstants) {
  Result<Term> var = ParseTerm("Xyz");
  ASSERT_TRUE(var.ok());
  EXPECT_TRUE(var->IsVariable());

  Result<Term> underscore = ParseTerm("_x");
  ASSERT_TRUE(underscore.ok());
  EXPECT_TRUE(underscore->IsVariable());

  Result<Term> sym = ParseTerm("xyz");
  ASSERT_TRUE(sym.ok());
  EXPECT_TRUE(sym->IsSymbol());

  Result<Term> num = ParseTerm("-42");
  ASSERT_TRUE(num.ok());
  EXPECT_EQ(num->int_value(), -42);

  Result<Term> quoted = ParseTerm("'Hello World'");
  ASSERT_TRUE(quoted.ok());
  EXPECT_EQ(quoted->name(), "Hello World");

  Result<Term> fn = ParseTerm("f(a, g(X), 3)");
  ASSERT_TRUE(fn.ok());
  EXPECT_TRUE(fn->IsCompound());
  EXPECT_EQ(fn->ToString(), "f(a, g(X), 3)");
}

TEST(DatalogParserTest, Comments) {
  Result<ParsedProgram> p = ParseDatalog(R"(
    % a comment
    edge(a, b).  // another
    edge(b, c).
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program.size(), 2u);
}

TEST(DatalogParserTest, Queries) {
  Result<ParsedProgram> p = ParseDatalog(R"(
    edge(a, b).
    ?- edge(X, Y), not loop(X).
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->queries.size(), 1u);
  EXPECT_EQ(p->queries[0].size(), 2u);
}

TEST(DatalogParserTest, NotPrefixedIdentifierIsNotNegation) {
  Result<ParsedProgram> p = ParseDatalog("p(X) :- nothing(X), not_x(X).");
  ASSERT_TRUE(p.ok()) << p.status();
  const Clause& c = p->program.clauses()[0];
  EXPECT_FALSE(c.body()[0].negated());
  EXPECT_FALSE(c.body()[1].negated());
  EXPECT_EQ(c.body()[1].atom().predicate(), "not_x");
}

TEST(DatalogParserTest, ComparisonOperatorsAll) {
  Result<std::vector<Literal>> goal =
      ParseGoal("X = 1, X != 2, X < 3, X <= 4, X > 0, X >= 1");
  ASSERT_TRUE(goal.ok()) << goal.status();
  ASSERT_EQ(goal->size(), 6u);
  EXPECT_EQ((*goal)[0].comparison(), Comparison::kEq);
  EXPECT_EQ((*goal)[3].comparison(), Comparison::kLe);
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseDatalog("edge(a, b)").ok());     // missing dot
  EXPECT_FALSE(ParseDatalog("edge(a,.").ok());       // bad term
  EXPECT_FALSE(ParseDatalog("Xbad(a).").ok());       // variable predicate
  EXPECT_FALSE(ParseDatalog("p('unterminated).").ok());
  EXPECT_FALSE(ParseTerm("f(a").ok());
  EXPECT_FALSE(ParseTerm("a b").ok());  // trailing input
}

TEST(DatalogParserTest, ErrorsMentionLineNumbers) {
  Result<ParsedProgram> p = ParseDatalog("edge(a, b).\nbroken(");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos)
      << p.status();
}

TEST(DatalogParserTest, IntegerLiteralBoundaries) {
  // The extremes of int64 parse exactly; one past either end is a parse
  // error, not a silently saturated value.
  Result<Term> max = ParseTerm("9223372036854775807");
  ASSERT_TRUE(max.ok()) << max.status();
  EXPECT_EQ(max->ToString(), "9223372036854775807");

  Result<Term> min = ParseTerm("-9223372036854775808");
  ASSERT_TRUE(min.ok()) << min.status();
  EXPECT_EQ(min->ToString(), "-9223372036854775808");

  Result<Term> over = ParseTerm("9223372036854775808");
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("out of range"), std::string::npos)
      << over.status();

  Result<Term> under = ParseTerm("-9223372036854775809");
  ASSERT_FALSE(under.ok());
  EXPECT_NE(under.status().message().find("out of range"), std::string::npos)
      << under.status();

  // And through a whole program, where the literal sits in a fact.
  EXPECT_TRUE(ParseDatalog("val(a, 9223372036854775807).").ok());
  EXPECT_FALSE(ParseDatalog("val(a, 9223372036854775808).").ok());
  EXPECT_FALSE(ParseDatalog("val(a, 99999999999999999999999999).").ok());
}

TEST(DatalogParserTest, RoundTripThroughToString) {
  const char* src =
      "path(X, Y) :- edge(X, Z), path(Z, Y), not blocked(Z), X != Y.";
  Result<ParsedProgram> p1 = ParseDatalog(src);
  ASSERT_TRUE(p1.ok());
  Result<ParsedProgram> p2 = ParseDatalog(p1->program.ToString());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->program.ToString(), p2->program.ToString());
}

}  // namespace
}  // namespace multilog::datalog
