#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/topdown.h"

namespace multilog::datalog {
namespace {

Result<Model> EvalSource(std::string_view source) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  return Evaluate(parsed->program);
}

TEST(ArithmeticTest, FoldGroundTerms) {
  Result<Term> r = EvalArithmetic(
      Term::Fn("plus", {Term::Int(2), Term::Fn("times", {Term::Int(3),
                                                         Term::Int(4)})}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Term::Int(14));

  EXPECT_EQ(EvalArithmetic(Term::Fn("minus", {Term::Int(1), Term::Int(5)}))
                .value(),
            Term::Int(-4));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("div", {Term::Int(9), Term::Int(2)})).value(),
      Term::Int(4));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("mod", {Term::Int(9), Term::Int(2)})).value(),
      Term::Int(1));
}

TEST(ArithmeticTest, NonArithmeticTermsUntouched) {
  Term data = Term::Fn("car", {Term::Sym("ford"), Term::Int(1990)});
  EXPECT_EQ(EvalArithmetic(data).value(), data);
  // Unbound arithmetic stays structural.
  Term open = Term::Fn("plus", {Term::Var("X"), Term::Int(1)});
  EXPECT_EQ(EvalArithmetic(open).value(), open);
}

TEST(ArithmeticTest, Errors) {
  EXPECT_FALSE(
      EvalArithmetic(Term::Fn("plus", {Term::Sym("a"), Term::Int(1)})).ok());
  EXPECT_FALSE(
      EvalArithmetic(Term::Fn("div", {Term::Int(1), Term::Int(0)})).ok());
}

TEST(ArithmeticTest, AssignmentInRules) {
  Result<Model> m = EvalSource(R"(
    val(a, 3). val(b, 7).
    doubled(X, D) :- val(X, N), D = times(N, 2).
    shifted(X, S) :- doubled(X, D), S = plus(D, 1).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("doubled", {Term::Sym("a"), Term::Int(6)})));
  EXPECT_TRUE(m->Contains(Atom("shifted", {Term::Sym("b"), Term::Int(15)})));
}

TEST(ArithmeticTest, ComparisonsFoldBothSides) {
  Result<Model> m = EvalSource(R"(
    val(a, 3). val(b, 7).
    big(X) :- val(X, N), times(N, 2) > 10.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("big/1").size(), 1u);
  EXPECT_TRUE(m->Contains(Atom("big", {Term::Sym("b")})));
}

TEST(ArithmeticTest, BoundedRecursionCounter) {
  // The classic bounded counter: arithmetic + comparison keeps the
  // Herbrand expansion finite.
  Result<Model> m = EvalSource(R"(
    n(0).
    n(M) :- n(N), N < 5, M = plus(N, 1).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("n/1").size(), 6u);  // 0..5
}

TEST(ArithmeticTest, TopDownAgrees) {
  const char* src = R"(
    val(a, 3). val(b, 7).
    doubled(X, D) :- val(X, N), D = times(N, 2).
  )";
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());
  TopDownEngine engine(parsed->program);
  ASSERT_TRUE(engine.status().ok());
  Result<std::vector<Literal>> goal = ParseGoal("doubled(b, D)");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Substitution>> answers = engine.Solve(*goal);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0].ToString(), "{D=14}");
}

TEST(ArithmeticTest, DivisionByZeroSurfacesAsError) {
  Result<Model> m = EvalSource(R"(
    val(a, 0).
    bad(X, R) :- val(X, N), R = div(1, N).
  )");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram());
}

// Regression tests for the signed-overflow UB the original EvalArithmetic
// had: x + y / x - y / x * y evaluated with plain int64 operators, and
// INT64_MIN div/mod -1 slipped past the y == 0 check. Every boundary
// case must surface as InvalidProgram("integer overflow in ..."), never
// wrap or trap.

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin = std::numeric_limits<int64_t>::min();

Status ArithStatus(const char* op, int64_t x, int64_t y) {
  return EvalArithmetic(Term::Fn(op, {Term::Int(x), Term::Int(y)})).status();
}

void ExpectOverflow(const char* op, int64_t x, int64_t y) {
  Status st = ArithStatus(op, x, y);
  EXPECT_TRUE(st.IsInvalidProgram())
      << op << "(" << x << ", " << y << "): " << st;
  EXPECT_NE(st.message().find("integer overflow"), std::string::npos)
      << op << "(" << x << ", " << y << "): " << st;
}

TEST(ArithmeticTest, PlusOverflowAtBoundaries) {
  ExpectOverflow("plus", kMax, 1);
  ExpectOverflow("plus", 1, kMax);
  ExpectOverflow("plus", kMin, -1);
  ExpectOverflow("plus", kMax, kMax);
  ExpectOverflow("plus", kMin, kMin);
  EXPECT_EQ(EvalArithmetic(Term::Fn("plus", {Term::Int(kMax), Term::Int(0)}))
                .value(),
            Term::Int(kMax));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("plus", {Term::Int(kMax), Term::Int(kMin)}))
          .value(),
      Term::Int(-1));
}

TEST(ArithmeticTest, MinusOverflowAtBoundaries) {
  ExpectOverflow("minus", kMin, 1);
  ExpectOverflow("minus", kMax, -1);
  ExpectOverflow("minus", 0, kMin);  // -kMin is unrepresentable
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("minus", {Term::Int(kMin), Term::Int(0)}))
          .value(),
      Term::Int(kMin));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("minus", {Term::Int(kMin), Term::Int(kMin)}))
          .value(),
      Term::Int(0));
}

TEST(ArithmeticTest, TimesOverflowAtBoundaries) {
  ExpectOverflow("times", kMax, 2);
  ExpectOverflow("times", 2, kMax);
  ExpectOverflow("times", kMin, -1);  // -kMin is unrepresentable
  ExpectOverflow("times", kMin, 2);
  ExpectOverflow("times", INT64_C(1) << 32, INT64_C(1) << 32);
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("times", {Term::Int(kMax), Term::Int(1)}))
          .value(),
      Term::Int(kMax));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("times", {Term::Int(kMin), Term::Int(1)}))
          .value(),
      Term::Int(kMin));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("times", {Term::Int(kMax), Term::Int(-1)}))
          .value(),
      Term::Int(-kMax));
}

TEST(ArithmeticTest, DivOverflowAtBoundaries) {
  ExpectOverflow("div", kMin, -1);  // overflows despite y != 0
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("div", {Term::Int(kMin), Term::Int(1)}))
          .value(),
      Term::Int(kMin));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("div", {Term::Int(kMax), Term::Int(-1)}))
          .value(),
      Term::Int(-kMax));
}

TEST(ArithmeticTest, ModOverflowAtBoundaries) {
  ExpectOverflow("mod", kMin, -1);  // overflows despite y != 0
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("mod", {Term::Int(kMin), Term::Int(1)}))
          .value(),
      Term::Int(0));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("mod", {Term::Int(kMax), Term::Int(-1)}))
          .value(),
      Term::Int(0));
}

TEST(ArithmeticTest, OverflowInsideNestedTermsSurfaces) {
  // The overflow happens in an inner fold of a larger expression.
  Term inner = Term::Fn("times", {Term::Int(kMax), Term::Int(2)});
  Term outer = Term::Fn("plus", {Term::Int(1), inner});
  Status st = EvalArithmetic(outer).status();
  EXPECT_TRUE(st.IsInvalidProgram()) << st;
  EXPECT_NE(st.message().find("integer overflow"), std::string::npos);
}

TEST(ArithmeticTest, OverflowDuringEvaluationSurfacesAsError) {
  // Through the whole bottom-up pipeline, not just the folding helper.
  Result<Model> m = EvalSource(R"(
    big(9223372036854775807).
    bad(R) :- big(N), R = plus(N, 1).
  )");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram()) << m.status();
  EXPECT_NE(m.status().message().find("integer overflow"),
            std::string::npos);
}

}  // namespace
}  // namespace multilog::datalog
