#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/topdown.h"

namespace multilog::datalog {
namespace {

Result<Model> EvalSource(std::string_view source) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  return Evaluate(parsed->program);
}

TEST(ArithmeticTest, FoldGroundTerms) {
  Result<Term> r = EvalArithmetic(
      Term::Fn("plus", {Term::Int(2), Term::Fn("times", {Term::Int(3),
                                                         Term::Int(4)})}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Term::Int(14));

  EXPECT_EQ(EvalArithmetic(Term::Fn("minus", {Term::Int(1), Term::Int(5)}))
                .value(),
            Term::Int(-4));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("div", {Term::Int(9), Term::Int(2)})).value(),
      Term::Int(4));
  EXPECT_EQ(
      EvalArithmetic(Term::Fn("mod", {Term::Int(9), Term::Int(2)})).value(),
      Term::Int(1));
}

TEST(ArithmeticTest, NonArithmeticTermsUntouched) {
  Term data = Term::Fn("car", {Term::Sym("ford"), Term::Int(1990)});
  EXPECT_EQ(EvalArithmetic(data).value(), data);
  // Unbound arithmetic stays structural.
  Term open = Term::Fn("plus", {Term::Var("X"), Term::Int(1)});
  EXPECT_EQ(EvalArithmetic(open).value(), open);
}

TEST(ArithmeticTest, Errors) {
  EXPECT_FALSE(
      EvalArithmetic(Term::Fn("plus", {Term::Sym("a"), Term::Int(1)})).ok());
  EXPECT_FALSE(
      EvalArithmetic(Term::Fn("div", {Term::Int(1), Term::Int(0)})).ok());
}

TEST(ArithmeticTest, AssignmentInRules) {
  Result<Model> m = EvalSource(R"(
    val(a, 3). val(b, 7).
    doubled(X, D) :- val(X, N), D = times(N, 2).
    shifted(X, S) :- doubled(X, D), S = plus(D, 1).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("doubled", {Term::Sym("a"), Term::Int(6)})));
  EXPECT_TRUE(m->Contains(Atom("shifted", {Term::Sym("b"), Term::Int(15)})));
}

TEST(ArithmeticTest, ComparisonsFoldBothSides) {
  Result<Model> m = EvalSource(R"(
    val(a, 3). val(b, 7).
    big(X) :- val(X, N), times(N, 2) > 10.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("big/1").size(), 1u);
  EXPECT_TRUE(m->Contains(Atom("big", {Term::Sym("b")})));
}

TEST(ArithmeticTest, BoundedRecursionCounter) {
  // The classic bounded counter: arithmetic + comparison keeps the
  // Herbrand expansion finite.
  Result<Model> m = EvalSource(R"(
    n(0).
    n(M) :- n(N), N < 5, M = plus(N, 1).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("n/1").size(), 6u);  // 0..5
}

TEST(ArithmeticTest, TopDownAgrees) {
  const char* src = R"(
    val(a, 3). val(b, 7).
    doubled(X, D) :- val(X, N), D = times(N, 2).
  )";
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());
  TopDownEngine engine(parsed->program);
  ASSERT_TRUE(engine.status().ok());
  Result<std::vector<Literal>> goal = ParseGoal("doubled(b, D)");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Substitution>> answers = engine.Solve(*goal);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0].ToString(), "{D=14}");
}

TEST(ArithmeticTest, DivisionByZeroSurfacesAsError) {
  Result<Model> m = EvalSource(R"(
    val(a, 0).
    bad(X, R) :- val(X, N), R = div(1, N).
  )");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram());
}

}  // namespace
}  // namespace multilog::datalog
