// ApplyDelta: incremental maintenance of a stratified fixpoint under
// EDB change. Every test's oracle is a scratch Evaluate() of the
// post-mutation program: the maintained model must match it exactly
// (Model::ToString is a sorted rendering, so string equality is set
// equality). The randomized sweep drives interleaved adds/removes over
// a program with recursion *and* negation at 1 and 4 threads.

#include "datalog/eval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

/// A mutable EDB over a fixed rule set: builds the post-mutation
/// program (rules first, then the surviving fact clauses in insertion
/// order) and drives ApplyDelta against the maintained model.
class DeltaHarness {
 public:
  explicit DeltaHarness(std::string_view rules_source,
                        const EvalOptions& options = {})
      : options_(options) {
    Result<ParsedProgram> parsed = ParseDatalog(rules_source);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    rules_ = parsed->program;
    Result<Model> m = Evaluate(Current(), options_);
    EXPECT_TRUE(m.ok()) << m.status();
    model_ = std::move(m).value();
  }

  Program Current() const {
    Program p = rules_;
    for (const Atom& f : facts_) p.AddFact(f);
    return p;
  }

  /// Applies one batch of EDB changes incrementally and checks the
  /// result against a scratch evaluation of the new program.
  void Apply(const std::vector<Atom>& adds, const std::vector<Atom>& removes,
             const char* what) {
    for (const Atom& r : removes) {
      auto it = std::find(facts_.begin(), facts_.end(), r);
      if (it != facts_.end()) facts_.erase(it);
    }
    for (const Atom& a : adds) facts_.push_back(a);

    Program post = Current();
    Result<DeltaChanges> delta =
        ApplyDelta(post, adds, removes, &model_, options_);
    ASSERT_TRUE(delta.ok()) << what << ": " << delta.status();
    Result<Model> scratch = Evaluate(post, options_);
    ASSERT_TRUE(scratch.ok()) << what << ": " << scratch.status();
    EXPECT_EQ(model_.ToString(), scratch->ToString()) << what;

    // The reported net changes must be exact: disjoint, duplicate-free,
    // and consistent with the model (added present, removed absent).
    for (const Atom& a : delta->added) {
      EXPECT_TRUE(model_.Contains(a)) << what << ": " << a.ToString();
    }
    for (const Atom& r : delta->removed) {
      EXPECT_FALSE(model_.Contains(r)) << what << ": " << r.ToString();
    }
  }

  const Model& model() const { return model_; }
  const std::vector<Atom>& facts() const { return facts_; }

 private:
  EvalOptions options_;
  Program rules_;
  std::vector<Atom> facts_;
  Model model_;
};

Atom Edge(const char* a, const char* b) {
  return Atom("edge", {Term::Sym(a), Term::Sym(b)});
}

constexpr char kClosure[] = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- edge(X, Y), path(Y, Z).
)";

TEST(ApplyDeltaTest, AddPropagatesThroughRecursion) {
  DeltaHarness h(kClosure);
  h.Apply({Edge("a", "b")}, {}, "add ab");
  h.Apply({Edge("b", "c"), Edge("c", "d")}, {}, "add bc cd");
  EXPECT_TRUE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("d")})));
}

TEST(ApplyDeltaTest, RemoveDeletesDownstreamAndRederivesAlternatives) {
  DeltaHarness h(kClosure);
  // Two routes a->c; removing one must keep path(a, c) alive, removing
  // both must kill it along with everything only it supported.
  h.Apply({Edge("a", "b"), Edge("b", "c"), Edge("a", "c"), Edge("c", "d")},
          {}, "seed");
  h.Apply({}, {Edge("a", "b")}, "remove ab");
  EXPECT_TRUE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("c")})));
  EXPECT_FALSE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("b")})));
  h.Apply({}, {Edge("a", "c")}, "remove ac");
  EXPECT_FALSE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("d")})));
}

TEST(ApplyDeltaTest, RemovalOfCycleMemberDoesNotStrandSelfSupport) {
  // The classic DRed case: a cycle supports itself; cutting the only
  // external edge must collapse the whole loop's reachability from a.
  DeltaHarness h(kClosure);
  h.Apply({Edge("a", "b"), Edge("b", "c"), Edge("c", "b")}, {}, "seed");
  h.Apply({}, {Edge("a", "b")}, "cut entry");
  EXPECT_FALSE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("c")})));
  EXPECT_TRUE(
      h.model().Contains(Atom("path", {Term::Sym("b"), Term::Sym("c")})));
}

TEST(ApplyDeltaTest, SimultaneousRemovalOfJointSupport) {
  // h :- p, q with both p and q removed in ONE batch: the deletion scan
  // must find the derivation through either literal against the old
  // state, not the half-updated one.
  DeltaHarness h("h(X) :- p(X), q(X).");
  const Atom p = Atom("p", {Term::Sym("a")});
  const Atom q = Atom("q", {Term::Sym("a")});
  h.Apply({p, q}, {}, "seed");
  EXPECT_TRUE(h.model().Contains(Atom("h", {Term::Sym("a")})));
  h.Apply({}, {p, q}, "remove both");
  EXPECT_FALSE(h.model().Contains(Atom("h", {Term::Sym("a")})));
}

TEST(ApplyDeltaTest, DuplicateEdbSupportNetsToNoChange) {
  // Two identical fact clauses back the same atom; removing one leaves
  // the atom rederivable from the other.
  DeltaHarness h(kClosure);
  h.Apply({Edge("a", "b")}, {}, "first copy");
  h.Apply({Edge("a", "b")}, {}, "second copy");
  h.Apply({}, {Edge("a", "b")}, "remove one copy");
  EXPECT_TRUE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("b")})));
  h.Apply({}, {Edge("a", "b")}, "remove last copy");
  EXPECT_FALSE(
      h.model().Contains(Atom("path", {Term::Sym("a"), Term::Sym("b")})));
}

constexpr char kNegation[] = R"(
  hidden(X) :- block(X).
  vis(X) :- item(X), not hidden(X).
)";

TEST(ApplyDeltaTest, AddedFactFalsifiesNegationDownstream) {
  DeltaHarness h(kNegation);
  const Atom item = Atom("item", {Term::Sym("a")});
  const Atom block = Atom("block", {Term::Sym("a")});
  h.Apply({item}, {}, "seed item");
  EXPECT_TRUE(h.model().Contains(Atom("vis", {Term::Sym("a")})));
  // Adding block(a) derives hidden(a), which must *delete* vis(a) in
  // the higher stratum.
  h.Apply({block}, {}, "add block");
  EXPECT_FALSE(h.model().Contains(Atom("vis", {Term::Sym("a")})));
  // And removing it must resurrect vis(a) through the negation.
  h.Apply({}, {block}, "remove block");
  EXPECT_TRUE(h.model().Contains(Atom("vis", {Term::Sym("a")})));
}

TEST(ApplyDeltaTest, MixedBatchAcrossStrata) {
  DeltaHarness h(kNegation);
  h.Apply({Atom("item", {Term::Sym("a")}), Atom("item", {Term::Sym("b")}),
           Atom("block", {Term::Sym("b")})},
          {}, "seed");
  // One batch: unblock b, block a, retire item a, introduce item c.
  h.Apply({Atom("block", {Term::Sym("a")}), Atom("item", {Term::Sym("c")})},
          {Atom("block", {Term::Sym("b")}), Atom("item", {Term::Sym("a")})},
          "mixed batch");
  EXPECT_TRUE(h.model().Contains(Atom("vis", {Term::Sym("b")})));
  EXPECT_TRUE(h.model().Contains(Atom("vis", {Term::Sym("c")})));
  EXPECT_FALSE(h.model().Contains(Atom("vis", {Term::Sym("a")})));
}

TEST(ApplyDeltaTest, AggregateClausesAreRejected) {
  Result<ParsedProgram> parsed =
      ParseDatalog("deg(X, count(Y)) :- edge(X, Y). edge(a, b).");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<Model> m = Evaluate(parsed->program);
  ASSERT_TRUE(m.ok()) << m.status();
  Model model = std::move(m).value();
  Result<DeltaChanges> delta =
      ApplyDelta(parsed->program, {Edge("b", "c")}, {}, &model);
  EXPECT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsInvalidProgram()) << delta.status();
}

TEST(ApplyDeltaTest, BudgetExhaustionSurfacesAsResourceExhausted) {
  Result<ParsedProgram> parsed = ParseDatalog(kClosure);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Program program = parsed->program;
  std::vector<Atom> adds;
  // A chain long enough that the quadratic closure blows a tiny budget.
  const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  for (size_t i = 0; i + 1 < std::size(names); ++i) {
    adds.push_back(Edge(names[i], names[i + 1]));
    program.AddFact(adds.back());
  }
  Model model;  // fixpoint of the empty pre-mutation program
  EvalOptions tight;
  tight.max_facts = 10;
  Result<DeltaChanges> delta = ApplyDelta(program, adds, {}, &model, tight);
  EXPECT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsResourceExhausted()) << delta.status();
}

/// Deterministic PRNG (split-mix style) so the sweep is reproducible.
uint64_t NextRand(uint64_t* state) {
  *state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

TEST(ApplyDeltaTest, RandomizedInterleavingMatchesScratchEvaluate) {
  // Recursion + negation + a join over two strata, toggled randomly.
  constexpr char kRules[] = R"(
    node(a). node(b). node(c). node(d). node(e).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    unreach(X, Y) :- node(X), node(Y), not path(X, Y).
  )";
  const char* names[] = {"a", "b", "c", "d", "e"};
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (uint64_t seed : {uint64_t{7}, uint64_t{101}}) {
      EvalOptions options;
      options.num_threads = threads;
      DeltaHarness h(kRules, options);
      uint64_t state = seed;
      for (int step = 0; step < 60; ++step) {
        const Atom e = Edge(names[NextRand(&state) % std::size(names)],
                            names[NextRand(&state) % std::size(names)]);
        const bool present =
            std::find(h.facts().begin(), h.facts().end(), e) !=
            h.facts().end();
        const std::string what = "threads=" + std::to_string(threads) +
                                 " seed=" + std::to_string(seed) +
                                 " step=" + std::to_string(step) + " " +
                                 (present ? "remove " : "add ") + e.ToString();
        if (present) {
          h.Apply({}, {e}, what.c_str());
        } else {
          h.Apply({e}, {}, what.c_str());
        }
        if (HasFatalFailure() || HasNonfatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace multilog::datalog
