#include <gtest/gtest.h>

#include <random>

#include "datalog/eval.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

Result<Model> EvalSource(std::string_view source, bool reorder) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  EvalOptions options;
  options.reorder_body = reorder;
  return Evaluate(parsed->program, options);
}

TEST(ReorderTest, MovesSelectiveLiteralFirst) {
  Result<ParsedProgram> parsed = ParseDatalog(
      "r(X, Y) :- big(X), small(a, Y), check(X, Y).");
  ASSERT_TRUE(parsed.ok());
  Clause reordered = ReorderBody(parsed->program.clauses()[0]);
  // small(a, Y) has one constant argument; it joins first.
  EXPECT_EQ(reordered.body()[0].ToString(), "small(a, Y)");
}

TEST(ReorderTest, NegationRunsAsSoonAsBound) {
  Result<ParsedProgram> parsed = ParseDatalog(
      "r(X, Y) :- p(X), q(Y), not bad(X).");
  ASSERT_TRUE(parsed.ok());
  Clause reordered = ReorderBody(parsed->program.clauses()[0]);
  // After p(X) binds X, `not bad(X)` filters before the q(Y) join.
  EXPECT_EQ(reordered.body()[1].ToString(), "not bad(X)");
}

TEST(ReorderTest, EqSchedulesWhenOneSideBound) {
  Result<ParsedProgram> parsed = ParseDatalog(
      "r(X, D) :- p(X, N), q(D2, D), D2 = times(N, 2).");
  ASSERT_TRUE(parsed.ok());
  Clause reordered = ReorderBody(parsed->program.clauses()[0]);
  // After p binds N, the assignment binds D2, making the q join indexed.
  EXPECT_EQ(reordered.body()[1].ToString(), "D2 = times(N, 2)");
}

TEST(ReorderTest, ShortBodiesUntouched) {
  Result<ParsedProgram> parsed = ParseDatalog("r(X) :- p(X). f(a).");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ReorderBody(parsed->program.clauses()[0]).ToString(),
            parsed->program.clauses()[0].ToString());
  EXPECT_EQ(ReorderBody(parsed->program.clauses()[1]).ToString(),
            parsed->program.clauses()[1].ToString());
}

class ReorderPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReorderPropertyTest, ModelUnchangedByReordering) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> pick(0, 4);
  std::string src;
  for (int i = 0; i < 8; ++i) {
    src += "edge(n" + std::to_string(pick(rng)) + ", n" +
           std::to_string(pick(rng)) + ").\n";
    src += "val(n" + std::to_string(pick(rng)) + ", " +
           std::to_string(pick(rng)) + ").\n";
  }
  src += "node(X) :- edge(X, Y).\n";
  src += "node(Y) :- edge(X, Y).\n";
  src += "reach(X, Y) :- edge(X, Y).\n";
  src += "reach(X, Y) :- reach(X, Z), edge(Z, Y), X != Y.\n";
  src += "hot(X, S) :- node(X), val(X, N), S = plus(N, 1), S > 2.\n";
  src += "cold(X) :- node(X), not hot(X, 3).\n";

  Result<Model> with = EvalSource(src, /*reorder=*/true);
  Result<Model> without = EvalSource(src, /*reorder=*/false);
  ASSERT_TRUE(with.ok()) << with.status() << "\n" << src;
  ASSERT_TRUE(without.ok()) << without.status();
  EXPECT_EQ(with->ToString(), without->ToString()) << src;
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ReorderPropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace multilog::datalog
