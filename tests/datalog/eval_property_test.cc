#include <gtest/gtest.h>

#include <random>
#include <string>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/topdown.h"

namespace multilog::datalog {
namespace {

/// Generates a random safe, stratified program over a small vocabulary:
/// a base edge relation plus layered derived predicates with optional
/// negation on strictly earlier layers. Deterministic in `seed`.
std::string RandomProgram(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node_count(3, 6);
  std::uniform_int_distribution<int> edge_count(3, 10);
  std::uniform_int_distribution<int> coin(0, 1);

  const int nodes = node_count(rng);
  std::uniform_int_distribution<int> node_pick(0, nodes - 1);
  auto node = [&](int i) { return "n" + std::to_string(i); };

  std::string src;
  for (int i = 0; i < nodes; ++i) src += "node(" + node(i) + ").\n";
  const int edges = edge_count(rng);
  for (int i = 0; i < edges; ++i) {
    src += "edge(" + node(node_pick(rng)) + ", " + node(node_pick(rng)) +
           ").\n";
  }
  // Layer 1: transitive closure.
  src += "reach(X, Y) :- edge(X, Y).\n";
  src += "reach(X, Y) :- edge(X, Z), reach(Z, Y).\n";
  // Layer 2: negation over layer 1.
  src += "island(X, Y) :- node(X), node(Y), not reach(X, Y).\n";
  // Layer 3: mixture, sometimes with an inequality builtin.
  if (coin(rng)) {
    src += "oddpair(X, Y) :- island(X, Y), reach(Y, X).\n";
  } else {
    src += "oddpair(X, Y) :- island(X, Y), X != Y.\n";
  }
  // Layer 4: negation over layer 3.
  src += "plain(X) :- node(X), not oddpair(X, X).\n";
  return src;
}

class EvalPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EvalPropertyTest, SeminaiveEqualsNaive) {
  const std::string src = RandomProgram(GetParam());
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << src;

  EvalOptions semi;
  semi.strategy = EvalOptions::Strategy::kSeminaive;
  EvalOptions naive;
  naive.strategy = EvalOptions::Strategy::kNaive;

  Result<Model> m1 = Evaluate(parsed->program, semi);
  Result<Model> m2 = Evaluate(parsed->program, naive);
  ASSERT_TRUE(m1.ok()) << m1.status() << "\n" << src;
  ASSERT_TRUE(m2.ok()) << m2.status() << "\n" << src;
  EXPECT_EQ(m1->ToString(), m2->ToString()) << src;
}

TEST_P(EvalPropertyTest, TopDownAgreesWithBottomUp) {
  const std::string src = RandomProgram(GetParam());
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());

  Result<Model> model = Evaluate(parsed->program);
  ASSERT_TRUE(model.ok()) << model.status();

  TopDownEngine engine(parsed->program);
  ASSERT_TRUE(engine.status().ok()) << engine.status();

  for (const char* goal_text :
       {"reach(X, Y)", "island(X, Y)", "oddpair(X, Y)", "plain(X)"}) {
    Result<std::vector<Literal>> goal = ParseGoal(goal_text);
    ASSERT_TRUE(goal.ok());
    Result<std::vector<Substitution>> td = engine.Solve(*goal);
    ASSERT_TRUE(td.ok()) << td.status() << "\ngoal " << goal_text << "\n"
                         << src;
    Result<std::vector<Substitution>> bu = QueryModel(*model, *goal);
    ASSERT_TRUE(bu.ok());

    std::vector<std::string> td_s, bu_s;
    for (const Substitution& s : *td) td_s.push_back(s.ToString());
    for (const Substitution& s : *bu) bu_s.push_back(s.ToString());
    EXPECT_EQ(td_s, bu_s) << "goal " << goal_text << "\n" << src;
  }
}

TEST_P(EvalPropertyTest, ModelIsSupported) {
  // Every derived fact must be the head of some rule instance whose body
  // holds in the model (a soundness spot check via re-derivation).
  const std::string src = RandomProgram(GetParam());
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());
  Result<Model> model = Evaluate(parsed->program);
  ASSERT_TRUE(model.ok());

  // Re-evaluating with the model's facts as the program's EDB is a
  // fixpoint: nothing new appears.
  Program extended = parsed->program;
  for (const std::string& pred : model->Predicates()) {
    for (const Atom& fact : model->FactsFor(pred)) {
      extended.AddFact(fact);
    }
  }
  Result<Model> again = Evaluate(extended);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(model->ToString(), again->ToString());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EvalPropertyTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace multilog::datalog
