#include "datalog/stratify.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

Result<Stratification> StratifySource(std::string_view src) {
  Result<ParsedProgram> parsed = ParseDatalog(src);
  if (!parsed.ok()) return parsed.status();
  return Stratify(parsed->program);
}

TEST(StratifyTest, PositiveProgramIsOneStratum) {
  Result<Stratification> s = StratifySource(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata(), 1u);
}

TEST(StratifyTest, NegationPushesUp) {
  Result<Stratification> s = StratifySource(R"(
    node(a). bad(a).
    good(X) :- node(X), not bad(X).
    worst(X) :- good(X), bad(X).
    best(X) :- good(X), not worst(X).
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata(), 3u);
  EXPECT_EQ(s->stratum_of.at("node/1"), 0u);
  EXPECT_EQ(s->stratum_of.at("good/1"), 1u);
  EXPECT_EQ(s->stratum_of.at("worst/1"), 1u);
  EXPECT_EQ(s->stratum_of.at("best/1"), 2u);
}

TEST(StratifyTest, RecursionThroughNegationDetected) {
  Result<Stratification> s =
      StratifySource("p(a) :- not q(a). q(a) :- not p(a).");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsInvalidProgram());
}

TEST(StratifyTest, SelfNegationDetected) {
  Result<Stratification> s = StratifySource("base(a). p(X) :- base(X), not p(X).");
  ASSERT_FALSE(s.ok());
}

TEST(StratifyTest, LongNegationChain) {
  // A chain p0 <- not p1 <- not p2 ... gives one stratum per predicate.
  std::string src = "p9(a).\n";
  for (int i = 8; i >= 0; --i) {
    src += "p" + std::to_string(i) + "(X) :- p9(X), not p" +
           std::to_string(i + 1) + "(X).\n";
  }
  Result<Stratification> s = StratifySource(src);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata(), 10u);
}

TEST(StratifyTest, PositiveCycleThroughManyPredicatesIsFine) {
  Result<Stratification> s = StratifySource(R"(
    a(x).
    b(X) :- a(X).
    c(X) :- b(X).
    a(X) :- c(X).
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata(), 1u);
}

TEST(StratifyTest, EmptyProgram) {
  Result<Stratification> s = StratifySource("");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_strata(), 0u);
}

TEST(StratifyTest, StrataPartitionPredicates) {
  Result<Stratification> s = StratifySource(R"(
    n(a). m(b).
    p(X) :- n(X), not m(X).
    q(X) :- p(X), m(X).
  )");
  ASSERT_TRUE(s.ok());
  size_t total = 0;
  for (const auto& stratum : s->strata) total += stratum.size();
  EXPECT_EQ(total, s->stratum_of.size());
}

}  // namespace
}  // namespace multilog::datalog
