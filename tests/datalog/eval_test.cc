#include "datalog/eval.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

Result<Model> EvalSource(std::string_view source,
                  EvalOptions::Strategy strategy =
                      EvalOptions::Strategy::kSeminaive) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  EvalOptions options;
  options.strategy = strategy;
  return Evaluate(parsed->program, options);
}

std::vector<std::string> Answers(const Model& model,
                                 std::string_view goal_text) {
  Result<std::vector<Literal>> goal = ParseGoal(goal_text);
  if (!goal.ok()) return {"parse error: " + goal.status().ToString()};
  Result<std::vector<Substitution>> answers = QueryModel(model, *goal);
  if (!answers.ok()) return {"error: " + answers.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *answers) out.push_back(s.ToString());
  return out;
}

TEST(EvalTest, FactsOnly) {
  Result<Model> m = EvalSource("edge(a, b). edge(b, c).");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->size(), 2u);
  EXPECT_TRUE(m->Contains(Atom("edge", {Term::Sym("a"), Term::Sym("b")})));
}

TEST(EvalTest, TransitiveClosure) {
  Result<Model> m = EvalSource(R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("path/2").size(), 6u);
  EXPECT_TRUE(m->Contains(Atom("path", {Term::Sym("a"), Term::Sym("d")})));
}

TEST(EvalTest, CyclicGraphTerminates) {
  Result<Model> m = EvalSource(R"(
    edge(a, b). edge(b, a).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  // All four pairs are reachable, including the self-paths.
  EXPECT_EQ(m->FactsFor("path/2").size(), 4u);
}

TEST(EvalTest, StratifiedNegation) {
  Result<Model> m = EvalSource(R"(
    node(a). node(b). node(c).
    bad(b).
    good(X) :- node(X), not bad(X).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("good/1").size(), 2u);
  EXPECT_FALSE(m->Contains(Atom("good", {Term::Sym("b")})));
}

TEST(EvalTest, NegationOverDerivedPredicate) {
  Result<Model> m = EvalSource(R"(
    edge(a, b). edge(b, c).
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
    node(a). node(b). node(c).
    unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(
      Atom("unreachable", {Term::Sym("c"), Term::Sym("a")})));
  EXPECT_FALSE(m->Contains(
      Atom("unreachable", {Term::Sym("a"), Term::Sym("c")})));
}

TEST(EvalTest, RecursionThroughNegationRejected) {
  Result<Model> m = EvalSource("p(a) :- not q(a). q(a) :- not p(a). p(b).");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram()) << m.status();
}

TEST(EvalTest, UnsafeClauseRejected) {
  Result<Model> m = EvalSource("p(X) :- q(Y).");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram());
}

TEST(EvalTest, UnsafeNegationRejected) {
  Result<Model> m = EvalSource("q(a). p(X) :- q(X), not r(X, Y).");
  EXPECT_FALSE(m.ok());
}

TEST(EvalTest, Builtins) {
  Result<Model> m = EvalSource(R"(
    val(a, 1). val(b, 5). val(c, 10).
    big(X) :- val(X, N), N >= 5.
    small(X) :- val(X, N), N < 5.
    other(X) :- val(X, N), N != 5.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("big/1").size(), 2u);
  EXPECT_EQ(m->FactsFor("small/1").size(), 1u);
  EXPECT_EQ(m->FactsFor("other/1").size(), 2u);
}

TEST(EvalTest, EqBuiltinBinds) {
  Result<Model> m = EvalSource(R"(
    val(a). copy(X, Y) :- val(X), Y = X.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("copy", {Term::Sym("a"), Term::Sym("a")})));
}

TEST(EvalTest, SymbolOrderingComparison) {
  Result<Model> m = EvalSource(R"(
    name(alice). name(bob).
    first(X) :- name(X), X < bob.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("first/1").size(), 1u);
}

TEST(EvalTest, MixedKindOrderingFails) {
  Result<Model> m = EvalSource("val(a, 1). bad(X) :- val(X, N), N < b.");
  EXPECT_FALSE(m.ok());
}

TEST(EvalTest, FunctionTermsInFacts) {
  Result<Model> m = EvalSource(R"(
    owns(alice, car(ford, 1990)).
    vintage(P) :- owns(P, car(M, Y)), Y < 2000.
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("vintage", {Term::Sym("alice")})));
}

TEST(EvalTest, NaiveMatchesSeminaiveOnTc) {
  const char* src = R"(
    edge(a, b). edge(b, c). edge(c, d). edge(d, a). edge(b, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  Result<Model> semi = EvalSource(src, EvalOptions::Strategy::kSeminaive);
  Result<Model> naive = EvalSource(src, EvalOptions::Strategy::kNaive);
  ASSERT_TRUE(semi.ok() && naive.ok());
  EXPECT_EQ(*semi, *naive);
  EXPECT_EQ(semi->ToString(), naive->ToString());
}

TEST(EvalTest, QueryModelWithNegationAndBuiltin) {
  Result<Model> m = EvalSource(R"(
    val(a, 1). val(b, 5). bad(b).
  )");
  ASSERT_TRUE(m.ok());
  std::vector<std::string> answers =
      Answers(*m, "val(X, N), not bad(X), N < 3");
  EXPECT_EQ(answers, std::vector<std::string>{"{N=1, X=a}"});
}

TEST(EvalTest, QueryAnswersAreDeduplicatedAndSorted) {
  Result<Model> m = EvalSource("p(a, b). p(a, c). q(b). q(c).");
  ASSERT_TRUE(m.ok());
  std::vector<std::string> answers = Answers(*m, "p(X, Y), q(Y)");
  EXPECT_EQ(answers,
            (std::vector<std::string>{"{X=a, Y=b}", "{X=a, Y=c}"}));
  // Projection deduplicates.
  answers = Answers(*m, "p(X, _Y)");
  EXPECT_EQ(answers.size(), 2u);
}

TEST(EvalTest, EmptyProgram) {
  Result<Model> m = EvalSource("");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->empty());
}

TEST(EvalTest, MaxFactsGuard) {
  Result<ParsedProgram> parsed = ParseDatalog(R"(
    num(a).
    num(f(X)) :- num(X).
  )");
  ASSERT_TRUE(parsed.ok());
  EvalOptions options;
  options.max_facts = 1000;
  Result<Model> m = Evaluate(parsed->program, options);
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsResourceExhausted()) << m.status();
}

// Builds a program whose single quadratic rule derives n*n facts in one
// round - the shape that used to blow arbitrarily far past max_facts,
// because the cap was only checked between rounds.
Program QuadraticBlowUp(int n) {
  Result<ParsedProgram> parsed = ParseDatalog("pair(X, Y) :- q(X), q(Y).");
  Program p = parsed->program;
  for (int i = 0; i < n; ++i) {
    p.AddFact(Atom("q", {Term::Sym("c" + std::to_string(i))}));
  }
  return p;
}

TEST(EvalTest, MaxFactsEnforcedWithinARound) {
  // 200 q facts -> 40,000 pair derivations in a single round; the cap
  // must stop the round near 1,000, not after the round completes.
  Program p = QuadraticBlowUp(200);
  EvalOptions options;
  options.max_facts = 1000;
  EvalStats stats;
  Result<Model> m = Evaluate(p, options, &stats);
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsResourceExhausted()) << m.status();
  // The emit path charges the budget before recording a derivation, so
  // total derivations can never exceed the cap (the pre-fix evaluator
  // derived all 40,200 here).
  EXPECT_LE(stats.facts_derived, options.max_facts);
}

TEST(EvalTest, MaxFactsEnforcedWithinARoundNaive) {
  Program p = QuadraticBlowUp(200);
  EvalOptions options;
  options.strategy = EvalOptions::Strategy::kNaive;
  options.max_facts = 1000;
  EvalStats stats;
  Result<Model> m = Evaluate(p, options, &stats);
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsResourceExhausted()) << m.status();
  EXPECT_LE(stats.facts_derived, options.max_facts);
}

TEST(EvalTest, MaxFactsEnforcedWithinARoundParallel) {
  // The budget is shared across workers through one atomic counter, so
  // the bound holds for any thread count.
  Program p = QuadraticBlowUp(200);
  EvalOptions options;
  options.max_facts = 1000;
  options.num_threads = 8;
  EvalStats stats;
  Result<Model> m = Evaluate(p, options, &stats);
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsResourceExhausted()) << m.status();
  EXPECT_LE(stats.facts_derived, options.max_facts);
}

TEST(EvalTest, MaxFactsAllowsProgramsUnderTheCap) {
  // The emit-path budget must not fire on programs that fit. The budget
  // counts emissions, not deduplicated facts: `pair(X, Y) :- q(X), q(Y).`
  // has two delta rotations, so the round that fires on the 40 q facts
  // emits each of the 1,600 pairs twice (~3,240 emissions with the base
  // facts) before dedup at insert. A cap comfortably above that must
  // let the program finish.
  Program p = QuadraticBlowUp(40);
  EvalOptions options;
  options.max_facts = 5000;
  Result<Model> m = Evaluate(p, options);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("pair/2").size(), 1600u);
}

TEST(EvalTest, StatsArePopulated) {
  Result<ParsedProgram> parsed = ParseDatalog(R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(parsed.ok());
  EvalStats stats;
  Result<Model> m = Evaluate(parsed->program, EvalOptions(), &stats);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.rule_applications, 0u);
  EXPECT_GT(stats.facts_derived, 0u);
}

}  // namespace
}  // namespace multilog::datalog
