#include <gtest/gtest.h>

#include "datalog/model.h"
#include "datalog/term.h"

namespace multilog::datalog {
namespace {

TEST(TermTest, KindsAndAccessors) {
  Term v = Term::Var("X");
  Term s = Term::Sym("abc");
  Term i = Term::Int(-7);
  Term f = Term::Fn("f", {s, i});

  EXPECT_TRUE(v.IsVariable());
  EXPECT_FALSE(v.IsConstant());
  EXPECT_TRUE(s.IsSymbol());
  EXPECT_TRUE(s.IsConstant());
  EXPECT_TRUE(i.IsInt());
  EXPECT_EQ(i.int_value(), -7);
  EXPECT_TRUE(f.IsCompound());
  EXPECT_EQ(f.args().size(), 2u);
  EXPECT_EQ(f.ToString(), "f(abc, -7)");
}

TEST(TermTest, Groundness) {
  EXPECT_FALSE(Term::Var("X").IsGround());
  EXPECT_TRUE(Term::Sym("a").IsGround());
  EXPECT_TRUE(Term::Fn("f", {Term::Sym("a"), Term::Int(1)}).IsGround());
  EXPECT_FALSE(Term::Fn("f", {Term::Fn("g", {Term::Var("X")})}).IsGround());
}

TEST(TermTest, CollectVariablesInOrder) {
  Term t = Term::Fn("f", {Term::Var("X"), Term::Fn("g", {Term::Var("Y")}),
                          Term::Var("X")});
  std::vector<multilog::Symbol> vars;
  t.CollectVariables(&vars);
  EXPECT_EQ(vars, (std::vector<multilog::Symbol>{multilog::Symbol::Intern("X"),
                                                 multilog::Symbol::Intern("Y"),
                                                 multilog::Symbol::Intern("X")}));
}

TEST(TermTest, EqualityAndHash) {
  Term a = Term::Fn("f", {Term::Sym("a"), Term::Int(1)});
  Term b = Term::Fn("f", {Term::Sym("a"), Term::Int(1)});
  Term c = Term::Fn("f", {Term::Sym("a"), Term::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  // Different kinds never compare equal.
  EXPECT_NE(Term::Sym("1"), Term::Int(1));
  EXPECT_NE(Term::Var("x"), Term::Sym("x"));
}

TEST(TermTest, TotalOrderIsStrictWeak) {
  std::vector<Term> terms = {
      Term::Var("B"),  Term::Var("A"),  Term::Sym("b"), Term::Sym("a"),
      Term::Int(2),    Term::Int(1),
      Term::Fn("f", {Term::Sym("a")}),
      Term::Fn("f", {Term::Sym("a"), Term::Sym("b")}),
  };
  std::sort(terms.begin(), terms.end());
  for (size_t i = 0; i + 1 < terms.size(); ++i) {
    EXPECT_FALSE(terms[i + 1] < terms[i]);
  }
}

TEST(AtomTest, PredicateIdAndToString) {
  Atom a("p", {Term::Sym("x"), Term::Var("Y")});
  EXPECT_EQ(a.PredicateId(), "p/2");
  EXPECT_EQ(a.ToString(), "p(x, Y)");
  EXPECT_FALSE(a.IsGround());
  Atom nullary("go", {});
  EXPECT_EQ(nullary.PredicateId(), "go/0");
  EXPECT_EQ(nullary.ToString(), "go");
  EXPECT_TRUE(nullary.IsGround());
}

TEST(ModelTest, InsertDeduplicates) {
  Model m;
  Atom a("p", {Term::Sym("x")});
  EXPECT_TRUE(m.Insert(a));
  EXPECT_FALSE(m.Insert(a));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Contains(a));
  EXPECT_FALSE(m.Contains(Atom("p", {Term::Sym("y")})));
}

TEST(ModelTest, ArityDistinguishesPredicates) {
  Model m;
  m.Insert(Atom("p", {Term::Sym("x")}));
  m.Insert(Atom("p", {Term::Sym("x"), Term::Sym("y")}));
  EXPECT_EQ(m.FactsFor("p/1").size(), 1u);
  EXPECT_EQ(m.FactsFor("p/2").size(), 1u);
  EXPECT_EQ(m.Predicates(), (std::vector<std::string>{"p/1", "p/2"}));
}

TEST(ModelTest, ArgumentIndex) {
  Model m;
  m.Insert(Atom("e", {Term::Sym("a"), Term::Sym("b")}));
  m.Insert(Atom("e", {Term::Sym("a"), Term::Sym("c")}));
  m.Insert(Atom("e", {Term::Sym("b"), Term::Sym("c")}));
  EXPECT_EQ(m.FactsMatching("e/2", 0, Term::Sym("a")).size(), 2u);
  EXPECT_EQ(m.FactsMatching("e/2", 1, Term::Sym("c")).size(), 2u);
  EXPECT_TRUE(m.FactsMatching("e/2", 0, Term::Sym("z")).empty());
  EXPECT_TRUE(m.FactsMatching("nosuch/2", 0, Term::Sym("a")).empty());
}

TEST(ModelTest, EqualityIsSetEquality) {
  Model a, b;
  a.Insert(Atom("p", {Term::Sym("x")}));
  a.Insert(Atom("q", {Term::Sym("y")}));
  b.Insert(Atom("q", {Term::Sym("y")}));
  EXPECT_FALSE(a == b);
  b.Insert(Atom("p", {Term::Sym("x")}));
  EXPECT_TRUE(a == b);
}

TEST(ModelTest, ToStringSortedStable) {
  Model m;
  m.Insert(Atom("b", {Term::Int(2)}));
  m.Insert(Atom("a", {Term::Int(1)}));
  EXPECT_EQ(m.ToString(), "a(1).\nb(2).\n");
}

}  // namespace
}  // namespace multilog::datalog
