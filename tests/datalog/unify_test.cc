#include "datalog/unify.h"

#include <gtest/gtest.h>

namespace multilog::datalog {
namespace {

TEST(UnifyTest, ConstantsUnifyWithThemselves) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Sym("a"), Term::Sym("a"), &s));
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(UnifyTerms(Term::Sym("a"), Term::Sym("b"), &s));
  EXPECT_TRUE(UnifyTerms(Term::Int(3), Term::Int(3), &s));
  EXPECT_FALSE(UnifyTerms(Term::Int(3), Term::Int(4), &s));
  EXPECT_FALSE(UnifyTerms(Term::Int(3), Term::Sym("3"), &s));
}

TEST(UnifyTest, VariableBinding) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Sym("a"), &s));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Sym("a"));
}

TEST(UnifyTest, VariableChains) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Var("Y"), &s));
  EXPECT_TRUE(UnifyTerms(Term::Var("Y"), Term::Sym("a"), &s));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Sym("a"));
}

TEST(UnifyTest, CompoundTerms) {
  Substitution s;
  Term lhs = Term::Fn("f", {Term::Var("X"), Term::Sym("b")});
  Term rhs = Term::Fn("f", {Term::Sym("a"), Term::Var("Y")});
  EXPECT_TRUE(UnifyTerms(lhs, rhs, &s));
  EXPECT_EQ(s.Apply(lhs).ToString(), "f(a, b)");
  EXPECT_EQ(s.Apply(rhs).ToString(), "f(a, b)");
}

TEST(UnifyTest, CompoundMismatch) {
  Substitution s;
  EXPECT_FALSE(UnifyTerms(Term::Fn("f", {Term::Sym("a")}),
                          Term::Fn("g", {Term::Sym("a")}), &s));
  Substitution s2;
  EXPECT_FALSE(UnifyTerms(Term::Fn("f", {Term::Sym("a")}),
                          Term::Fn("f", {Term::Sym("a"), Term::Sym("b")}),
                          &s2));
}

TEST(UnifyTest, OccursCheck) {
  Substitution s;
  EXPECT_FALSE(
      UnifyTerms(Term::Var("X"), Term::Fn("f", {Term::Var("X")}), &s));
}

TEST(UnifyTest, SameVariableUnifiesTrivially) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Var("X"), &s));
  EXPECT_TRUE(s.empty());
}

TEST(UnifyTest, AtomUnification) {
  Atom a("p", {Term::Var("X"), Term::Sym("b")});
  Atom b("p", {Term::Sym("a"), Term::Var("Y")});
  std::optional<Substitution> s = UnifyAtoms(a, b, Substitution());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->Apply(a).ToString(), "p(a, b)");
}

TEST(UnifyTest, AtomPredicateMismatch) {
  EXPECT_FALSE(UnifyAtoms(Atom("p", {Term::Sym("a")}),
                          Atom("q", {Term::Sym("a")}), Substitution())
                   .has_value());
  EXPECT_FALSE(UnifyAtoms(Atom("p", {Term::Sym("a")}),
                          Atom("p", {Term::Sym("a"), Term::Sym("b")}),
                          Substitution())
                   .has_value());
}

TEST(UnifyTest, BaseSubstitutionNotModifiedOnFailure) {
  Substitution base;
  base.Bind("X", Term::Sym("a"));
  std::optional<Substitution> s =
      UnifyAtoms(Atom("p", {Term::Var("X")}), Atom("p", {Term::Sym("b")}),
                 base);
  EXPECT_FALSE(s.has_value());
  EXPECT_EQ(base.Apply(Term::Var("X")), Term::Sym("a"));
}

TEST(UnifyTest, RenameApart) {
  Atom a("p", {Term::Var("X"), Term::Fn("f", {Term::Var("Y")})});
  Atom renamed = RenameAtom(a, 7);
  EXPECT_EQ(renamed.ToString(), "p(X#7, f(Y#7))");
  // Renaming leaves constants alone.
  Atom b("p", {Term::Sym("a"), Term::Int(3)});
  EXPECT_EQ(RenameAtom(b, 7).ToString(), "p(a, 3)");
}

TEST(UnifyTest, SubstitutionToStringSorted) {
  Substitution s;
  s.Bind("Z", Term::Sym("c"));
  s.Bind("A", Term::Sym("a"));
  EXPECT_EQ(s.ToString(), "{A=a, Z=c}");
  EXPECT_EQ(Substitution().ToString(), "{}");
}

TEST(UnifyTest, ApplyDescendsIntoCompounds) {
  Substitution s;
  s.Bind("X", Term::Sym("a"));
  Term t = Term::Fn("f", {Term::Fn("g", {Term::Var("X")})});
  EXPECT_EQ(s.Apply(t).ToString(), "f(g(a))");
}

}  // namespace
}  // namespace multilog::datalog
