// Cooperative cancellation of bottom-up evaluation (EvalOptions::cancel).
//
// The token is polled on the same path that enforces max_facts - the
// emit-budget charge - plus every rule application and round boundary,
// so cancellation lands mid-round, not just between rounds. Every test
// runs at num_threads 1 (the exact sequential path) and 8 (parallel
// workers sharing one token).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/cancel.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

/// Transitive closure over an n-node cycle: n^2 path facts, enough
/// rounds and emissions that a deadline reliably lands mid-evaluation.
std::string CycleClosure(size_t n) {
  std::string src;
  for (size_t i = 0; i < n; ++i) {
    src += "edge(n" + std::to_string(i) + ", n" + std::to_string((i + 1) % n) +
           ").\n";
  }
  src += "path(X, Y) :- edge(X, Y).\n";
  src += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  return src;
}

Result<Model> EvalWithCancel(const std::string& source,
                             const CancelToken* cancel, size_t num_threads) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  EvalOptions options;
  options.cancel = cancel;
  options.num_threads = num_threads;
  return Evaluate(parsed->program, options);
}

class EvalCancelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EvalCancelTest, NullTokenEvaluatesNormally) {
  Result<Model> m = EvalWithCancel(CycleClosure(10), nullptr, GetParam());
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("path/2").size(), 100u);
}

TEST_P(EvalCancelTest, UnexpiredTokenDoesNotInterfere) {
  CancelToken cancel;
  cancel.SetTimeout(std::chrono::minutes(5));
  Result<Model> m = EvalWithCancel(CycleClosure(10), &cancel, GetParam());
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("path/2").size(), 100u);
}

TEST_P(EvalCancelTest, PreCancelledTokenFailsImmediately) {
  CancelToken cancel;
  cancel.Cancel();
  Result<Model> m = EvalWithCancel(CycleClosure(10), &cancel, GetParam());
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsDeadlineExceeded()) << m.status();
}

TEST_P(EvalCancelTest, ExpiredDeadlineCancelsMidEvaluation) {
  // 300 nodes -> 90,000 path facts: far more work than 2ms, so the
  // deadline expires while rounds are still emitting.
  CancelToken cancel;
  cancel.SetTimeout(std::chrono::milliseconds(2));
  Result<Model> m = EvalWithCancel(CycleClosure(300), &cancel, GetParam());
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsDeadlineExceeded()) << m.status();
}

TEST_P(EvalCancelTest, CancelFromAnotherThreadUnwinds) {
  CancelToken cancel;
  std::thread killer([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel.Cancel();
  });
  Result<Model> m = EvalWithCancel(CycleClosure(400), &cancel, GetParam());
  killer.join();
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsDeadlineExceeded()) << m.status();
}

TEST_P(EvalCancelTest, BudgetAndDeadlineAreDistinctCodes) {
  // Same emit path, two different exits: the engine's own fact budget
  // reports ResourceExhausted, a caller deadline reports
  // kDeadlineExceeded. Servers rely on telling these apart.
  Result<ParsedProgram> parsed = ParseDatalog(CycleClosure(100));
  ASSERT_TRUE(parsed.ok());

  EvalOptions budget;
  budget.num_threads = GetParam();
  budget.max_facts = 50;
  Result<Model> exhausted = Evaluate(parsed->program, budget);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsResourceExhausted()) << exhausted.status();
  EXPECT_FALSE(exhausted.status().IsDeadlineExceeded());

  CancelToken cancel;
  cancel.Cancel();
  EvalOptions deadline;
  deadline.num_threads = GetParam();
  deadline.cancel = &cancel;
  Result<Model> cancelled = Evaluate(parsed->program, deadline);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsDeadlineExceeded()) << cancelled.status();
  EXPECT_FALSE(cancelled.status().IsResourceExhausted());
}

TEST_P(EvalCancelTest, QueryModelHonoursCancellation) {
  Result<Model> m = EvalWithCancel(CycleClosure(10), nullptr, GetParam());
  ASSERT_TRUE(m.ok()) << m.status();
  Result<std::vector<Literal>> goal = ParseGoal("path(X, Y)");
  ASSERT_TRUE(goal.ok());

  CancelToken cancel;
  cancel.Cancel();
  Result<std::vector<Substitution>> answers = QueryModel(*m, *goal, &cancel);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsDeadlineExceeded()) << answers.status();

  Result<std::vector<Substitution>> ok = QueryModel(*m, *goal, nullptr);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Threads, EvalCancelTest, ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace multilog::datalog
