// Randomized equivalence property for the goal-directed paths: over
// generated positive programs - multi-rule bodies, repeated variables,
// builtin filters - both MagicSolve and the compiled-plan path
// (ParameterizeGoal + CompileMagicPlan + ExecuteMagicPlan) must return
// byte-identical answers to full bottom-up Evaluate + QueryModel, at
// one thread and at eight.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "datalog/eval.h"
#include "datalog/magic.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

std::vector<std::string> Render(const Result<std::vector<Substitution>>& r,
                                const char* what) {
  if (!r.ok()) return {std::string(what) + ": " + r.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *r) out.push_back(s.ToString());
  return out;
}

std::vector<std::string> FullAnswers(const Program& program,
                                     const std::vector<Literal>& goal) {
  Result<Model> model = Evaluate(program);
  if (!model.ok()) return {"eval: " + model.status().ToString()};
  return Render(QueryModel(*model, goal), "query");
}

/// A random positive program over a small constant pool: a binary EDB
/// `edge`, a unary EDB `score` with integer values, linear + non-linear
/// recursion, a rule with a repeated variable (self-loops), and a rule
/// guarded by a builtin comparison.
std::string RandomProgram(std::mt19937& rng) {
  std::uniform_int_distribution<int> node_count(3, 6);
  const int nodes = node_count(rng);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  std::uniform_int_distribution<int> edge_count(4, 14);
  std::uniform_int_distribution<int> value(0, 9);

  std::string src;
  const int edges = edge_count(rng);
  for (int i = 0; i < edges; ++i) {
    src += "edge(n" + std::to_string(pick(rng)) + ", n" +
           std::to_string(pick(rng)) + ").\n";
  }
  for (int i = 0; i < nodes; ++i) {
    src += "score(n" + std::to_string(i) + ", " + std::to_string(value(rng)) +
           ").\n";
  }
  src += "path(X, Y) :- edge(X, Y).\n";
  src += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  src += "twohop(X, Y) :- path(X, Z), path(Z, Y).\n";
  src += "loop(X) :- path(X, X).\n";  // repeated variable
  src += "hot(X, N) :- score(X, N), N >= 5.\n";
  src += "hotpath(X, Y, N) :- path(X, Y), hot(Y, N).\n";
  return src;
}

class MagicEquivalenceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MagicEquivalenceProperty, BothGoalDirectedPathsMatchFullEvaluation) {
  std::mt19937 rng(GetParam() * 7919 + 17);
  const std::string src = RandomProgram(rng);
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << src;

  std::uniform_int_distribution<int> pick_node(0, 5);
  const std::string a = "n" + std::to_string(pick_node(rng));
  const std::string b = "n" + std::to_string(pick_node(rng));
  const std::vector<std::string> queries = {
      "path(" + a + ", Y)",        "path(X, " + b + ")",
      "path(" + a + ", " + b + ")", "twohop(" + a + ", Y)",
      "loop(" + a + ")",            "hotpath(" + a + ", Y, N)",
      "path(X, Y)",
  };

  for (const std::string& query : queries) {
    Result<std::vector<Literal>> goal = ParseGoal(query);
    ASSERT_TRUE(goal.ok()) << query;
    const std::vector<std::string> expect =
        FullAnswers(parsed->program, *goal);

    for (const size_t threads : {size_t{1}, size_t{8}}) {
      EvalOptions options;
      options.num_threads = threads;

      EXPECT_EQ(Render(MagicSolve(parsed->program, (*goal)[0].atom(), options),
                       "solve"),
                expect)
          << "MagicSolve, query " << query << ", " << threads
          << " thread(s)\n"
          << src;

      const MagicGoalPattern pattern = ParameterizeGoal(*goal);
      if (!pattern.any_bound) continue;  // engine falls back on all-free
      Result<MagicPlan> plan =
          CompileMagicPlan(parsed->program, pattern, options);
      ASSERT_TRUE(plan.ok()) << plan.status() << "\nquery " << query;
      EXPECT_EQ(Render(ExecuteMagicPlan(*plan, pattern.params, options),
                       "execute"),
                expect)
          << "plan, query " << query << ", " << threads << " thread(s)\n"
          << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MagicEquivalenceProperty,
                         ::testing::Range(0u, 24u));

}  // namespace
}  // namespace multilog::datalog
