#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/magic.h"
#include "datalog/parser.h"
#include "datalog/stratify.h"
#include "datalog/topdown.h"

namespace multilog::datalog {
namespace {

Result<Model> EvalSource(std::string_view source,
                         EvalOptions::Strategy strategy =
                             EvalOptions::Strategy::kSeminaive) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return parsed.status();
  EvalOptions options;
  options.strategy = strategy;
  return Evaluate(parsed->program, options);
}

constexpr const char* kGraph = R"(
  edge(a, b). edge(a, c). edge(b, c). edge(c, a).
  outdeg(X, count(Y)) :- edge(X, Y).
)";

TEST(AggregateTest, Count) {
  Result<Model> m = EvalSource(kGraph);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("outdeg", {Term::Sym("a"), Term::Int(2)})));
  EXPECT_TRUE(m->Contains(Atom("outdeg", {Term::Sym("b"), Term::Int(1)})));
  EXPECT_TRUE(m->Contains(Atom("outdeg", {Term::Sym("c"), Term::Int(1)})));
  EXPECT_EQ(m->FactsFor("outdeg/2").size(), 3u);
}

TEST(AggregateTest, SumMinMax) {
  Result<Model> m = EvalSource(R"(
    sale(shop1, 10). sale(shop1, 25). sale(shop2, 7).
    total(S, sum(N)) :- sale(S, N).
    best(S, max(N)) :- sale(S, N).
    worst(S, min(N)) :- sale(S, N).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("total", {Term::Sym("shop1"), Term::Int(35)})));
  EXPECT_TRUE(m->Contains(Atom("total", {Term::Sym("shop2"), Term::Int(7)})));
  EXPECT_TRUE(m->Contains(Atom("best", {Term::Sym("shop1"), Term::Int(25)})));
  EXPECT_TRUE(m->Contains(Atom("worst", {Term::Sym("shop1"), Term::Int(10)})));
}

TEST(AggregateTest, MinMaxOverSymbols) {
  Result<Model> m = EvalSource(R"(
    name(alice). name(bob). name(carol).
    first(min(X)) :- name(X).
    last(max(X)) :- name(X).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("first", {Term::Sym("alice")})));
  EXPECT_TRUE(m->Contains(Atom("last", {Term::Sym("carol")})));
}

TEST(AggregateTest, AggregateOverDerivedPredicate) {
  Result<Model> m = EvalSource(R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    reachcount(X, count(Y)) :- path(X, Y).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(
      m->Contains(Atom("reachcount", {Term::Sym("a"), Term::Int(3)})));
}

TEST(AggregateTest, SetSemanticsCountsDistinctValues) {
  // Two derivations of the same (X, Y) pair count once.
  Result<Model> m = EvalSource(R"(
    e1(a, b). e2(a, b). e2(a, c).
    any(X, Y) :- e1(X, Y).
    any(X, Y) :- e2(X, Y).
    deg(X, count(Y)) :- any(X, Y).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("deg", {Term::Sym("a"), Term::Int(2)})));
}

TEST(AggregateTest, AggregationOverAggregation) {
  Result<Model> m = EvalSource(R"(
    edge(a, b). edge(a, c). edge(b, c).
    outdeg(X, count(Y)) :- edge(X, Y).
    maxdeg(max(N)) :- outdeg(X, N).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom("maxdeg", {Term::Int(2)})));
}

TEST(AggregateTest, StratificationTreatsAggregationAsNegation) {
  Result<ParsedProgram> parsed = ParseDatalog(kGraph);
  ASSERT_TRUE(parsed.ok());
  Result<Stratification> strat = Stratify(parsed->program);
  ASSERT_TRUE(strat.ok());
  EXPECT_LT(strat->stratum_of.at("edge/2"),
            strat->stratum_of.at("outdeg/2"));
}

TEST(AggregateTest, RecursionThroughAggregationRejected) {
  Result<Model> m = EvalSource(R"(
    seed(a, 1).
    val(X, N) :- seed(X, N).
    val(X, sum(N)) :- val(X, N).
  )");
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram());
}

TEST(AggregateTest, SumOverSymbolsRejected) {
  Result<Model> m = EvalSource(R"(
    name(x, alice).
    bad(X, sum(N)) :- name(X, N).
  )");
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram()) << m.status();
}

TEST(AggregateTest, TwoAggregatesRejected) {
  Result<ParsedProgram> parsed =
      ParseDatalog("bad(count(X), count(Y)) :- e(X, Y).");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST(AggregateTest, SafetyRequiresBoundAggregateTerm) {
  Result<Model> m = EvalSource("agg(count(Y)) :- node(X).");
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsInvalidProgram());
}

TEST(AggregateTest, NaiveStrategyAgrees) {
  Result<Model> semi = EvalSource(kGraph, EvalOptions::Strategy::kSeminaive);
  Result<Model> naive = EvalSource(kGraph, EvalOptions::Strategy::kNaive);
  ASSERT_TRUE(semi.ok() && naive.ok());
  EXPECT_EQ(semi->ToString(), naive->ToString());
}

TEST(AggregateTest, ToStringRoundTrips) {
  Result<ParsedProgram> p1 = ParseDatalog(kGraph);
  ASSERT_TRUE(p1.ok());
  Result<ParsedProgram> p2 = ParseDatalog(p1->program.ToString());
  ASSERT_TRUE(p2.ok()) << p2.status() << "\n" << p1->program.ToString();
  EXPECT_EQ(p1->program.ToString(), p2->program.ToString());
}

TEST(AggregateTest, TopDownAndMagicReject) {
  Result<ParsedProgram> parsed = ParseDatalog(kGraph);
  ASSERT_TRUE(parsed.ok());
  TopDownEngine engine(parsed->program);
  EXPECT_FALSE(engine.status().ok());
  Result<std::vector<Literal>> goal = ParseGoal("outdeg(a, N)");
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE(MagicSolve(parsed->program, (*goal)[0].atom()).ok());
}

TEST(AggregateTest, GroupByMultipleColumns) {
  Result<Model> m = EvalSource(R"(
    shipment(north, widget, 5). shipment(north, widget, 8).
    shipment(north, gadget, 3). shipment(south, widget, 2).
    regional(R, P, sum(N)) :- shipment(R, P, N).
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->Contains(Atom(
      "regional", {Term::Sym("north"), Term::Sym("widget"), Term::Int(13)})));
  EXPECT_TRUE(m->Contains(Atom(
      "regional", {Term::Sym("south"), Term::Sym("widget"), Term::Int(2)})));
  EXPECT_EQ(m->FactsFor("regional/3").size(), 3u);
}

}  // namespace
}  // namespace multilog::datalog
