#include "datalog/topdown.h"

#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

std::vector<std::string> Solve(std::string_view source,
                               std::string_view goal_text) {
  Result<ParsedProgram> parsed = ParseDatalog(source);
  if (!parsed.ok()) return {"parse error"};
  TopDownEngine engine(parsed->program);
  if (!engine.status().ok()) return {"engine: " + engine.status().ToString()};
  Result<std::vector<Literal>> goal = ParseGoal(goal_text);
  if (!goal.ok()) return {"goal parse error"};
  Result<std::vector<Substitution>> answers = engine.Solve(*goal);
  if (!answers.ok()) return {"solve: " + answers.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *answers) out.push_back(s.ToString());
  return out;
}

TEST(TopDownTest, GroundFact) {
  EXPECT_EQ(Solve("p(a).", "p(a)"), std::vector<std::string>{"{}"});
  EXPECT_TRUE(Solve("p(a).", "p(b)").empty());
}

TEST(TopDownTest, SimpleRule) {
  EXPECT_EQ(Solve("q(a). p(X) :- q(X).", "p(X)"),
            std::vector<std::string>{"{X=a}"});
}

TEST(TopDownTest, LeftRecursionTerminates) {
  std::vector<std::string> answers = Solve(R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    path(X, Y) :- edge(X, Y).
  )",
                                           "path(a, Y)");
  EXPECT_EQ(answers, (std::vector<std::string>{"{Y=b}", "{Y=c}"}));
}

TEST(TopDownTest, CyclicDataComplete) {
  // The case plain loop-checking SLD misses: path(b, b) through the
  // cycle a -> b -> a.
  std::vector<std::string> answers = Solve(R"(
    edge(a, b). edge(b, a).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                                           "path(b, Y)");
  EXPECT_EQ(answers, (std::vector<std::string>{"{Y=a}", "{Y=b}"}));
}

TEST(TopDownTest, NegationOnLowerStratum) {
  std::vector<std::string> answers = Solve(R"(
    node(a). node(b). bad(b).
    good(X) :- node(X), not bad(X).
  )",
                                           "good(X)");
  EXPECT_EQ(answers, std::vector<std::string>{"{X=a}"});
}

TEST(TopDownTest, UnstratifiableRejectedAtConstruction) {
  Result<ParsedProgram> parsed =
      ParseDatalog("p(a) :- not q(a). q(a) :- not p(a).");
  ASSERT_TRUE(parsed.ok());
  TopDownEngine engine(parsed->program);
  EXPECT_FALSE(engine.status().ok());
}

TEST(TopDownTest, AgreesWithBottomUpOnTransitiveClosure) {
  const char* src = R"(
    edge(a, b). edge(b, c). edge(c, a). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());
  Result<Model> model = Evaluate(parsed->program);
  ASSERT_TRUE(model.ok());

  TopDownEngine engine(parsed->program);
  ASSERT_TRUE(engine.status().ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(X, Y)");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Substitution>> td = engine.Solve(*goal);
  ASSERT_TRUE(td.ok()) << td.status();
  Result<std::vector<Substitution>> bu = QueryModel(*model, *goal);
  ASSERT_TRUE(bu.ok());

  std::vector<std::string> td_strings, bu_strings;
  for (const Substitution& s : *td) td_strings.push_back(s.ToString());
  for (const Substitution& s : *bu) bu_strings.push_back(s.ToString());
  EXPECT_EQ(td_strings, bu_strings);
}

TEST(TopDownTest, ConjunctionGoal) {
  std::vector<std::string> answers = Solve(R"(
    p(a). p(b). q(b). q(c).
  )",
                                           "p(X), q(X)");
  EXPECT_EQ(answers, std::vector<std::string>{"{X=b}"});
}

TEST(TopDownTest, BuiltinInGoal) {
  std::vector<std::string> answers = Solve(R"(
    val(a, 1). val(b, 9).
  )",
                                           "val(X, N), N > 5");
  EXPECT_EQ(answers, std::vector<std::string>{"{N=9, X=b}"});
}

TEST(TopDownTest, TablesPersistAcrossSolves) {
  Result<ParsedProgram> parsed = ParseDatalog(R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(parsed.ok());
  TopDownEngine engine(parsed->program);
  ASSERT_TRUE(engine.status().ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(a, Y)");
  ASSERT_TRUE(goal.ok());
  ASSERT_TRUE(engine.Solve(*goal).ok());
  size_t calls_after_first = engine.stats().calls;
  ASSERT_TRUE(engine.Solve(*goal).ok());
  // The second solve reuses tables; only the outer pass re-runs.
  EXPECT_LE(engine.stats().calls, calls_after_first * 2);
}

}  // namespace
}  // namespace multilog::datalog
