#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "datalog/eval.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

// Determinism of the parallel evaluator: for every program below, the
// fixpoint model, its rendered text, and the number of rounds must be
// identical for num_threads in {1, 2, 8}. The programs mirror the
// scaling benches (transitive closure on chain and random graphs) plus
// the features with order-sensitive implementations (negation,
// aggregates, arithmetic).

constexpr size_t kThreadCounts[] = {1, 2, 8};

// Evaluates `p` at each thread count and checks all results agree with
// the sequential run.
void ExpectDeterministicAcrossThreadCounts(
    const Program& p, EvalOptions base_options = EvalOptions()) {
  base_options.num_threads = 1;
  EvalStats seq_stats;
  Result<Model> sequential = Evaluate(p, base_options, &seq_stats);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  const std::string expected = sequential->ToString();

  for (size_t threads : kThreadCounts) {
    EvalOptions options = base_options;
    options.num_threads = threads;
    EvalStats stats;
    Result<Model> m = Evaluate(p, options, &stats);
    ASSERT_TRUE(m.ok()) << "threads=" << threads << ": " << m.status();
    EXPECT_TRUE(*m == *sequential) << "threads=" << threads;
    EXPECT_EQ(m->ToString(), expected) << "threads=" << threads;
    // Rounds are determined by the per-round delta sets, which the
    // snapshot-then-merge evaluation keeps identical at any parallelism.
    EXPECT_EQ(stats.iterations, seq_stats.iterations)
        << "threads=" << threads;
  }
}

Program ChainTc(int n) {
  Result<ParsedProgram> parsed = ParseDatalog(
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
  Program p = parsed->program;
  for (int i = 0; i + 1 < n; ++i) {
    p.AddFact(Atom("edge", {Term::Sym("n" + std::to_string(i)),
                            Term::Sym("n" + std::to_string(i + 1))}));
  }
  return p;
}

Program RandomTc(int nodes, int edges, unsigned seed) {
  Result<ParsedProgram> parsed = ParseDatalog(
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).");
  Program p = parsed->program;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  for (int i = 0; i < edges; ++i) {
    p.AddFact(Atom("edge", {Term::Sym("n" + std::to_string(pick(rng))),
                            Term::Sym("n" + std::to_string(pick(rng)))}));
  }
  return p;
}

TEST(EvalParallelTest, ChainTransitiveClosureDeterministic) {
  ExpectDeterministicAcrossThreadCounts(ChainTc(64));
}

TEST(EvalParallelTest, RandomGraphTransitiveClosureDeterministic) {
  ExpectDeterministicAcrossThreadCounts(RandomTc(64, 128, 7));
}

TEST(EvalParallelTest, NaiveStrategyDeterministic) {
  EvalOptions options;
  options.strategy = EvalOptions::Strategy::kNaive;
  ExpectDeterministicAcrossThreadCounts(RandomTc(32, 64, 11), options);
}

TEST(EvalParallelTest, StratifiedNegationDeterministic) {
  Program p = RandomTc(24, 48, 13);
  for (int i = 0; i < 24; ++i) {
    p.AddFact(Atom("node", {Term::Sym("n" + std::to_string(i))}));
  }
  Result<ParsedProgram> extra =
      ParseDatalog("island(X, Y) :- node(X), node(Y), not path(X, Y).");
  p.Append(extra->program);
  ExpectDeterministicAcrossThreadCounts(p);
}

TEST(EvalParallelTest, AggregatesDeterministic) {
  Program p = RandomTc(24, 48, 17);
  Result<ParsedProgram> extra =
      ParseDatalog("reach(X, count(Y)) :- path(X, Y).");
  p.Append(extra->program);
  ExpectDeterministicAcrossThreadCounts(p);
}

TEST(EvalParallelTest, ArithmeticRecursionDeterministic) {
  Result<ParsedProgram> parsed = ParseDatalog(R"(
    n(0).
    n(M) :- n(N), N < 40, M = plus(N, 1).
    sq(N, S) :- n(N), S = times(N, N).
  )");
  ExpectDeterministicAcrossThreadCounts(parsed->program);
}

TEST(EvalParallelTest, QueryModelAgreesOnParallelModel) {
  Program p = ChainTc(48);
  EvalOptions options;
  options.num_threads = 8;
  Result<Model> parallel = Evaluate(p, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  Result<Model> sequential = Evaluate(p);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  Result<std::vector<Literal>> goal = ParseGoal("path(n0, Y)");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Substitution>> a = QueryModel(*parallel, *goal);
  Result<std::vector<Substitution>> b = QueryModel(*sequential, *goal);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
  }
}

TEST(EvalParallelTest, ErrorsAreDeterministicUnderParallelism) {
  // A rule that derives a division by zero: every thread count must
  // report the same InvalidProgram error, not a schedule-dependent one.
  Result<ParsedProgram> parsed = ParseDatalog(R"(
    val(a, 0). val(b, 2). val(c, 4).
    bad(X, R) :- val(X, N), R = div(10, N).
  )");
  for (size_t threads : kThreadCounts) {
    EvalOptions options;
    options.num_threads = threads;
    Result<Model> m = Evaluate(parsed->program, options);
    EXPECT_FALSE(m.ok()) << "threads=" << threads;
    EXPECT_TRUE(m.status().IsInvalidProgram())
        << "threads=" << threads << ": " << m.status();
  }
}

TEST(EvalParallelTest, ManyThreadsOnTinyProgram) {
  // More workers than work items: the pool must not deadlock or derive
  // anything extra.
  Result<ParsedProgram> parsed = ParseDatalog("p(a). q(X) :- p(X).");
  EvalOptions options;
  options.num_threads = 8;
  Result<Model> m = Evaluate(parsed->program, options);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->size(), 2u);
}

}  // namespace
}  // namespace multilog::datalog
