#include "datalog/magic.h"

#include <gtest/gtest.h>

#include <random>

#include "datalog/eval.h"
#include "datalog/parser.h"

namespace multilog::datalog {
namespace {

std::vector<std::string> Solve(std::string_view src,
                               std::string_view query_text) {
  Result<ParsedProgram> parsed = ParseDatalog(src);
  if (!parsed.ok()) return {"parse error"};
  Result<std::vector<Literal>> goal = ParseGoal(query_text);
  if (!goal.ok() || goal->size() != 1) return {"goal error"};
  Result<std::vector<Substitution>> answers =
      MagicSolve(parsed->program, (*goal)[0].atom());
  if (!answers.ok()) return {"solve: " + answers.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *answers) out.push_back(s.ToString());
  return out;
}

std::vector<std::string> SolveFull(std::string_view src,
                                   std::string_view query_text) {
  Result<ParsedProgram> parsed = ParseDatalog(src);
  if (!parsed.ok()) return {"parse error"};
  Result<std::vector<Literal>> goal = ParseGoal(query_text);
  if (!goal.ok()) return {"goal error"};
  Result<Model> model = Evaluate(parsed->program);
  if (!model.ok()) return {"eval: " + model.status().ToString()};
  Result<std::vector<Substitution>> answers = QueryModel(*model, *goal);
  if (!answers.ok()) return {"query: " + answers.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *answers) out.push_back(s.ToString());
  return out;
}

/// Runs `query_text` through the parameterized-plan path: abstract the
/// goal over its constants, compile, execute with the goal's own
/// parameters. Returns a marker string on any failure.
std::vector<std::string> SolvePlanned(std::string_view src,
                                      std::string_view query_text,
                                      const EvalOptions& options = {}) {
  Result<ParsedProgram> parsed = ParseDatalog(src);
  if (!parsed.ok()) return {"parse error"};
  Result<std::vector<Literal>> goal = ParseGoal(query_text);
  if (!goal.ok()) return {"goal error"};
  const MagicGoalPattern pattern = ParameterizeGoal(*goal);
  Result<MagicPlan> plan = CompileMagicPlan(parsed->program, pattern, options);
  if (!plan.ok()) return {"compile: " + plan.status().ToString()};
  Result<std::vector<Substitution>> answers =
      ExecuteMagicPlan(*plan, pattern.params, options);
  if (!answers.ok()) return {"execute: " + answers.status().ToString()};
  std::vector<std::string> out;
  for (const Substitution& s : *answers) out.push_back(s.ToString());
  return out;
}

constexpr const char* kChain = R"(
  edge(a, b). edge(b, c). edge(c, d). edge(d, e).
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";

TEST(MagicTest, BoundFirstArgument) {
  EXPECT_EQ(Solve(kChain, "path(b, Y)"),
            (std::vector<std::string>{"{Y=c}", "{Y=d}", "{Y=e}"}));
}

TEST(MagicTest, FullyBoundQuery) {
  EXPECT_EQ(Solve(kChain, "path(a, e)"), std::vector<std::string>{"{}"});
  EXPECT_TRUE(Solve(kChain, "path(e, a)").empty());
}

TEST(MagicTest, FullyFreeQueryStillComplete) {
  EXPECT_EQ(Solve(kChain, "path(X, Y)"), SolveFull(kChain, "path(X, Y)"));
}

TEST(MagicTest, OnlyRelevantFactsAreDerived) {
  // With the query bound to d, the rewritten program must not derive
  // any path fact starting from a, b, or c.
  Result<ParsedProgram> parsed = ParseDatalog(kChain);
  ASSERT_TRUE(parsed.ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(d, Y)");
  ASSERT_TRUE(goal.ok());
  Result<MagicProgram> magic =
      MagicTransform(parsed->program, (*goal)[0].atom());
  ASSERT_TRUE(magic.ok()) << magic.status();
  Result<Model> model = Evaluate(magic->program);
  ASSERT_TRUE(model.ok()) << model.status();

  size_t path_facts = 0;
  for (const std::string& pred : model->Predicates()) {
    if (pred.rfind("path__", 0) == 0) {
      path_facts += model->FactsFor(pred).size();
    }
  }
  EXPECT_EQ(path_facts, 1u);  // only path(d, e)
}

TEST(MagicTest, CyclicGraph) {
  const char* src = R"(
    edge(a, b). edge(b, a). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  EXPECT_EQ(Solve(src, "path(a, Y)"), SolveFull(src, "path(a, Y)"));
}

TEST(MagicTest, NonLinearRecursion) {
  const char* src = R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), path(Z, Y).
  )";
  EXPECT_EQ(Solve(src, "path(a, Y)"), SolveFull(src, "path(a, Y)"));
}

TEST(MagicTest, MutualRecursion) {
  const char* src = R"(
    e(a, b). o(b, c). e(c, d).
    even(X, Y) :- e(X, Y).
    even(X, Y) :- e(X, Z), odd(Z, Y).
    odd(X, Y) :- o(X, Y).
    odd(X, Y) :- o(X, Z), even(Z, Y).
  )";
  EXPECT_EQ(Solve(src, "even(a, Y)"), SolveFull(src, "even(a, Y)"));
}

TEST(MagicTest, BuiltinsAsFilters) {
  const char* src = R"(
    val(a, 1). val(b, 5). val(c, 9).
    link(a, b). link(b, c).
    big(X, N) :- val(X, N), N >= 5.
    bignext(X, Y, N) :- link(X, Y), big(Y, N).
  )";
  EXPECT_EQ(Solve(src, "bignext(a, Y, N)"),
            SolveFull(src, "bignext(a, Y, N)"));
}

TEST(MagicTest, SecondArgumentBound) {
  EXPECT_EQ(Solve(kChain, "path(X, d)"), SolveFull(kChain, "path(X, d)"));
}

TEST(MagicTest, QueryOnUnknownPredicate) {
  EXPECT_TRUE(Solve(kChain, "nosuch(X)").empty());
}

TEST(MagicTest, NegationRejected) {
  const char* src = "p(a). q(X) :- p(X), not r(X).";
  Result<ParsedProgram> parsed = ParseDatalog(src);
  ASSERT_TRUE(parsed.ok());
  Result<std::vector<Literal>> goal = ParseGoal("q(a)");
  ASSERT_TRUE(goal.ok());
  Result<MagicProgram> magic =
      MagicTransform(parsed->program, (*goal)[0].atom());
  EXPECT_FALSE(magic.ok());
  EXPECT_TRUE(magic.status().IsInvalidProgram());
}

TEST(MagicTest, UnreachableNegationIsFine) {
  // The negation lives in a predicate the query never reaches, so the
  // goal-directed rewrite must not reject the program for it.
  const char* src = R"(
    p(a). r(a).
    q(X) :- p(X), not r(X).
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  EXPECT_EQ(Solve(src, "path(a, Y)"),
            (std::vector<std::string>{"{Y=b}", "{Y=c}"}));
}

TEST(MagicTest, ParameterizeGoalShape) {
  Result<std::vector<Literal>> goal = ParseGoal("path(b, Y)");
  ASSERT_TRUE(goal.ok());
  const MagicGoalPattern pattern = ParameterizeGoal(*goal);
  EXPECT_TRUE(pattern.any_bound);
  ASSERT_EQ(pattern.params.size(), 1u);
  EXPECT_EQ(pattern.params[0].ToString(), "b");
  ASSERT_EQ(pattern.param_vars.size(), 1u);

  // Same shape, different constant: identical signature (plan reuse).
  Result<std::vector<Literal>> other = ParseGoal("path(c, Y)");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(pattern.signature, ParameterizeGoal(*other).signature);

  // Different binding pattern: different signature.
  Result<std::vector<Literal>> flipped = ParseGoal("path(X, c)");
  ASSERT_TRUE(flipped.ok());
  EXPECT_NE(pattern.signature, ParameterizeGoal(*flipped).signature);
}

TEST(MagicTest, ParameterizeGoalAllFree) {
  Result<std::vector<Literal>> goal = ParseGoal("path(X, Y)");
  ASSERT_TRUE(goal.ok());
  const MagicGoalPattern pattern = ParameterizeGoal(*goal);
  EXPECT_FALSE(pattern.any_bound);
  EXPECT_TRUE(pattern.params.empty());
}

TEST(MagicTest, ParameterizeGoalPlaceholderCollision) {
  // A user goal that already uses the placeholder namespace cannot be
  // abstracted (fresh placeholders could capture it); the pattern must
  // report not-bound so callers fall back to full evaluation.
  Result<std::vector<Literal>> goal = ParseGoal("path(__mp0, b)");
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE(ParameterizeGoal(*goal).any_bound);
}

TEST(MagicTest, PlannedMatchesFull) {
  EXPECT_EQ(SolvePlanned(kChain, "path(b, Y)"), SolveFull(kChain, "path(b, Y)"));
  EXPECT_EQ(SolvePlanned(kChain, "path(X, d)"), SolveFull(kChain, "path(X, d)"));
  EXPECT_EQ(SolvePlanned(kChain, "path(a, e)"), SolveFull(kChain, "path(a, e)"));
}

TEST(MagicTest, PlanReusedAcrossParameters) {
  // Compile once for the shape path(<param>, Y), then serve every
  // binding of the first argument from the same plan.
  Result<ParsedProgram> parsed = ParseDatalog(kChain);
  ASSERT_TRUE(parsed.ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(a, Y)");
  ASSERT_TRUE(goal.ok());
  const MagicGoalPattern pattern = ParameterizeGoal(*goal);
  Result<MagicPlan> plan = CompileMagicPlan(parsed->program, pattern);
  ASSERT_TRUE(plan.ok()) << plan.status();

  for (const std::string start : {"a", "b", "c", "d", "e"}) {
    Result<std::vector<Substitution>> answers =
        ExecuteMagicPlan(*plan, {Term::Sym(start)});
    ASSERT_TRUE(answers.ok()) << answers.status();
    std::vector<std::string> got;
    for (const Substitution& s : *answers) got.push_back(s.ToString());
    EXPECT_EQ(got, SolveFull(kChain, "path(" + start + ", Y)")) << start;
  }
}

TEST(MagicTest, ExecuteValidatesParams) {
  Result<ParsedProgram> parsed = ParseDatalog(kChain);
  ASSERT_TRUE(parsed.ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(b, Y)");
  ASSERT_TRUE(goal.ok());
  Result<MagicPlan> plan =
      CompileMagicPlan(parsed->program, ParameterizeGoal(*goal));
  ASSERT_TRUE(plan.ok()) << plan.status();

  EXPECT_TRUE(ExecuteMagicPlan(*plan, {}).status().IsInvalidArgument());
  EXPECT_TRUE(ExecuteMagicPlan(*plan, {Term::Var("X")})
                  .status()
                  .IsInvalidArgument());
}

TEST(MagicTest, PlanWithBuiltinGoal) {
  const char* src = R"(
    val(a, 1). val(b, 5). val(c, 9).
    link(a, b). link(b, c).
    big(X, N) :- val(X, N), N >= 5.
    bignext(X, Y, N) :- link(X, Y), big(Y, N).
  )";
  EXPECT_EQ(SolvePlanned(src, "bignext(a, Y, N)"),
            SolveFull(src, "bignext(a, Y, N)"));
}

TEST(MagicTest, OptionsThreadThrough) {
  // An emit budget small enough to trip must surface ResourceExhausted
  // through MagicSolve rather than being ignored.
  Result<ParsedProgram> parsed = ParseDatalog(kChain);
  ASSERT_TRUE(parsed.ok());
  Result<std::vector<Literal>> goal = ParseGoal("path(a, Y)");
  ASSERT_TRUE(goal.ok());
  EvalOptions tight;
  tight.max_facts = 1;
  Result<std::vector<Substitution>> answers =
      MagicSolve(parsed->program, (*goal)[0].atom(), tight);
  EXPECT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsResourceExhausted());

  // And a parallel execution must give byte-identical answers.
  EvalOptions parallel;
  parallel.num_threads = 8;
  EXPECT_EQ(SolvePlanned(kChain, "path(b, Y)", parallel),
            SolveFull(kChain, "path(b, Y)"));
}

class MagicPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MagicPropertyTest, AgreesWithFullEvaluationOnRandomGraphs) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> node_count(3, 7);
  const int nodes = node_count(rng);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  std::uniform_int_distribution<int> edge_count(3, 12);

  std::string src;
  const int edges = edge_count(rng);
  for (int i = 0; i < edges; ++i) {
    src += "edge(n" + std::to_string(pick(rng)) + ", n" +
           std::to_string(pick(rng)) + ").\n";
  }
  src += "path(X, Y) :- edge(X, Y).\n";
  src += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  src += "twohop(X, Y) :- path(X, Z), path(Z, Y).\n";

  const std::string start = "n" + std::to_string(pick(rng));
  const std::vector<std::string> queries = {
      "path(" + start + ", Y)", "twohop(" + start + ", Y)",
      "path(X, " + start + ")", "path(X, Y)"};
  for (const std::string& query : queries) {
    EXPECT_EQ(Solve(src, query), SolveFull(src, query))
        << "query " << query << "\n"
        << src;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MagicPropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace multilog::datalog
