// LatencyHistogram percentile edge cases (the ones the truncating rank
// got wrong) and the Prometheus text exposition's invariants.

#include "server/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace multilog::server {
namespace {

uint64_t Pct(const LatencyHistogram& h, double p) {
  return h.Snap().PercentileMicros(p);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(Pct(h, 0), 0u);
  EXPECT_EQ(Pct(h, 50), 0u);
  EXPECT_EQ(Pct(h, 100), 0u);
}

TEST(LatencyHistogramTest, SingleRecordingAtEveryPercentile) {
  LatencyHistogram h;
  h.Record(5);  // bucket [4, 8)
  // One recording is the min, the median, and the max; its bucket upper
  // bound is capped at the observed maximum.
  EXPECT_EQ(Pct(h, 0), 5u);
  EXPECT_EQ(Pct(h, 50), 5u);
  EXPECT_EQ(Pct(h, 100), 5u);
}

TEST(LatencyHistogramTest, PercentileZeroAddressesTheMinimum) {
  LatencyHistogram h;
  h.Record(1);     // bucket [0, 2)
  h.Record(1000);  // bucket [512, 1024)
  // p0 must land in the *first* recording's bucket, not report 0 or the
  // maximum.
  EXPECT_EQ(Pct(h, 0), 2u);
  EXPECT_EQ(Pct(h, 100), 1000u);
}

TEST(LatencyHistogramTest, PercentileHundredAddressesTheMaximum) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(4000);  // bucket [2048, 4096)
  // The old truncating rank floored p100 into the 99-recording bucket.
  EXPECT_EQ(Pct(h, 100), 4000u);
  EXPECT_EQ(Pct(h, 50), 2u);
}

TEST(LatencyHistogramTest, OverflowBucketReportsObservedMax) {
  LatencyHistogram h;
  const uint64_t huge = uint64_t{1} << 40;  // past the last bucket bound
  h.Record(huge);
  // The last bucket is open-ended: 2^(i+1) would be a lie (and at
  // i = 39 the shift is the bucket bound itself, below the recording).
  EXPECT_EQ(Pct(h, 50), huge);
  EXPECT_EQ(Pct(h, 100), huge);
  EXPECT_EQ(h.Snap().max_micros, huge);
}

TEST(LatencyHistogramTest, RecordingsBeyondTwoToTheFortyClampSanely) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(uint64_t{1} << 41);
  h.Record(uint64_t{1} << 45);
  EXPECT_EQ(Pct(h, 0), 16u);  // 10's bucket upper bound
  EXPECT_EQ(Pct(h, 100), uint64_t{1} << 45);
  EXPECT_EQ(h.Snap().count, 3u);
}

TEST(LatencyHistogramTest, OutOfRangePercentilesClamp) {
  LatencyHistogram h;
  h.Record(3);
  h.Record(300);
  EXPECT_EQ(Pct(h, -5), Pct(h, 0));
  EXPECT_EQ(Pct(h, 250), Pct(h, 100));
}

// --- Prometheus exposition -------------------------------------------

/// The value of the first sample line beginning `name` followed by a
/// space or '{'; -1 when absent.
double SampleValue(const std::string& text, const std::string& prefix) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const size_t space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    return std::stod(line.substr(space + 1));
  }
  return -1;
}

TEST(PrometheusTextTest, EmitsFamiliesWithHelpAndType) {
  ServerMetrics m({"u", "c", "s"});
  const std::string text = m.PrometheusText();
  EXPECT_NE(text.find("# HELP multilog_requests_total "), std::string::npos);
  EXPECT_NE(text.find("# TYPE multilog_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE multilog_connections_open gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE multilog_query_latency_seconds histogram"),
            std::string::npos);
}

TEST(PrometheusTextTest, CountersReflectRecordedValues) {
  ServerMetrics m({"u", "c", "s"});
  m.connections_accepted.store(2);
  m.requests_total.store(7);
  m.queries_ok.store(3);
  m.RecordQuery("c", /*mode_index=*/1, 500);
  m.RecordQuery("c", /*mode_index=*/1, 500);
  m.RecordQuery("s", /*mode_index=*/0, 2'000'000);
  const std::string text = m.PrometheusText();
  EXPECT_EQ(SampleValue(text, "multilog_connections_accepted_total "), 2);
  EXPECT_EQ(SampleValue(text, "multilog_requests_total "), 7);
  EXPECT_EQ(SampleValue(text, "multilog_queries_ok_total "), 3);
  EXPECT_NE(
      text.find(
          "multilog_queries_by_level_total{level=\"c\",mode=\"reduced\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("multilog_queries_by_level_total{level=\"s\","
                      "mode=\"operational\"} 1"),
            std::string::npos);
  EXPECT_EQ(SampleValue(text, "multilog_query_latency_seconds_sum "), 2.001);
  EXPECT_EQ(SampleValue(text, "multilog_query_latency_seconds_count "), 3);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeAndConsistent) {
  ServerMetrics m({"u"});
  m.RecordQuery("u", 1, 1);
  m.RecordQuery("u", 1, 100);
  m.RecordQuery("u", 1, 10'000);
  m.RecordQuery("u", 1, 1'000'000);
  const std::string text = m.PrometheusText();

  std::vector<double> bucket_counts;
  double inf_count = -1;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("multilog_query_latency_seconds_bucket{le=", 0) != 0) {
      continue;
    }
    const size_t space = line.find_last_of(' ');
    const double value = std::stod(line.substr(space + 1));
    if (line.find("+Inf") != std::string::npos) {
      inf_count = value;
    } else {
      bucket_counts.push_back(value);
    }
  }
  ASSERT_EQ(bucket_counts.size(), LatencyHistogram::kBuckets);
  for (size_t i = 1; i < bucket_counts.size(); ++i) {
    EXPECT_GE(bucket_counts[i], bucket_counts[i - 1]) << "bucket " << i;
  }
  // +Inf is the largest bucket and equals _count (Prometheus rejects
  // histograms where they disagree).
  EXPECT_GE(inf_count, bucket_counts.back());
  EXPECT_EQ(inf_count, 4);
  EXPECT_EQ(SampleValue(text, "multilog_query_latency_seconds_count "), 4);
}

TEST(PrometheusTextTest, LabelValuesAreEscaped) {
  ServerMetrics m({"a\"b\\c"});
  const std::string text = m.PrometheusText();
  EXPECT_NE(text.find("level=\"a\\\"b\\\\c\""), std::string::npos);
}

}  // namespace
}  // namespace multilog::server
