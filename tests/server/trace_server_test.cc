// End-to-end tracing over the wire: the opt-in span tree, its
// wall-time accounting, byte-identity of traced vs untraced answers,
// the slow-query log, and the Prometheus metrics command.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

/// The Figure 11 query (r10 of the D1 database).
constexpr char kFig11Goal[] = "?- c[p(k : a -R-> v)] << opt.";

const Json* FindChild(const Json& node, const std::string& stage) {
  const Json* children = node.Find("children");
  if (children == nullptr || !children->is_array()) return nullptr;
  for (const Json& child : children->array_items()) {
    const Json* name = child.Find("stage");
    if (name != nullptr && name->string_value() == stage) return &child;
  }
  return nullptr;
}

/// True when `stage` appears anywhere in the span tree.
bool HasStage(const Json& node, const std::string& stage) {
  const Json* name = node.Find("stage");
  if (name != nullptr && name->string_value() == stage) return true;
  const Json* children = node.Find("children");
  if (children == nullptr || !children->is_array()) return false;
  for (const Json& child : children->array_items()) {
    if (HasStage(child, stage)) return true;
  }
  return false;
}

class TraceServerTest : public ServerTestBase {};

TEST_F(TraceServerTest, NoTraceUnlessRequested) {
  StartServer();
  Client c = MustConnect();
  ASSERT_TRUE(c.Hello("s").ok());
  Result<Json> plain = c.Query(kFig11Goal);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->Find("trace"), nullptr);
}

TEST_F(TraceServerTest, TraceSpanTreeCoversTheRequestLifecycle) {
  StartServer();
  Client c = MustConnect();
  ASSERT_TRUE(c.Hello("s").ok());
  Result<Json> resp = c.Query(kFig11Goal, /*deadline_ms=*/-1, /*mode=*/"",
                              /*proofs=*/false, /*trace=*/true);
  ASSERT_TRUE(resp.ok()) << resp.status();

  const Json* tr = resp->Find("trace");
  ASSERT_NE(tr, nullptr);
  ASSERT_TRUE(tr->is_object());
  EXPECT_EQ(tr->Find("stage")->string_value(), "request");

  // The server lifecycle stages are direct children of the root...
  EXPECT_NE(FindChild(*tr, "parse"), nullptr);
  EXPECT_NE(FindChild(*tr, "queue_wait"), nullptr);
  const Json* execute = FindChild(*tr, "execute");
  ASSERT_NE(execute, nullptr);
  EXPECT_NE(FindChild(*tr, "serialize"), nullptr);

  // ...and the engine stages nest inside execute (a cold reduced-mode
  // query reduces, evaluates, decodes, and matches the goal).
  EXPECT_TRUE(HasStage(*execute, "query_model"));
  EXPECT_TRUE(HasStage(*execute, "reduce") ||
              HasStage(*execute, "eval_model"))
      << "expected a cold query to touch the reduction pipeline";

  // Answers ride along unchanged next to the trace.
  const Json* answers = resp->Find("answers");
  ASSERT_NE(answers, nullptr);
  EXPECT_FALSE(answers->array_items().empty());
}

TEST_F(TraceServerTest, StageSumIsWithinTenPercentOfWallTime) {
  StartServer();
  // One cold query per clearance of the D1 lattice (u, c, s), in
  // check_both mode so the measured engine work dwarfs the fixed
  // scheduling gaps between spans.
  for (const std::string level : {"u", "c", "s"}) {
    Client c = MustConnect();
    ASSERT_TRUE(c.Hello(level, "check").ok());
    Result<Json> resp = c.Query(kFig11Goal, -1, "", false, /*trace=*/true);
    ASSERT_TRUE(resp.ok()) << level << ": " << resp.status();
    const Json* tr = resp->Find("trace");
    ASSERT_NE(tr, nullptr) << level;

    const int64_t wall_us = tr->Find("dur_us")->int_value();
    int64_t stage_sum_us = 0;
    const Json* children = tr->Find("children");
    ASSERT_NE(children, nullptr) << level;
    for (const Json& child : children->array_items()) {
      stage_sum_us += child.Find("dur_us")->int_value();
    }
    // The direct children tile the request: nothing counted twice, so
    // the sum is bounded by the wall time (plus 1µs truncation per
    // span) and covers at least 90% of it.
    const int64_t slack =
        static_cast<int64_t>(children->array_items().size());
    EXPECT_LE(stage_sum_us, wall_us + slack) << level;
    EXPECT_GE(static_cast<double>(stage_sum_us),
              0.9 * static_cast<double>(wall_us))
        << level << ": stages cover only " << stage_sum_us << " of "
        << wall_us << " us";
  }
}

TEST_F(TraceServerTest, SlowQueryLogRecordsLevelModeAndDominantStage) {
  std::ostringstream log;
  ServerOptions options;
  options.slow_query_ms = 0;  // log every query
  options.slow_query_log = &log;
  StartServer(options);
  {
    Client c = MustConnect();
    ASSERT_TRUE(c.Hello("c").ok());
    ASSERT_TRUE(c.Query(kFig11Goal).ok());
    (void)c.Bye();
  }
  server_->Stop();  // joins every writer before we inspect the stream

  const std::string line = log.str();
  EXPECT_NE(line.find("slow query:"), std::string::npos) << line;
  EXPECT_NE(line.find("level=c"), std::string::npos) << line;
  EXPECT_NE(line.find("mode=reduced"), std::string::npos) << line;
  EXPECT_NE(line.find("dominant="), std::string::npos) << line;
  EXPECT_NE(line.find("goal=?- c[p(k : a -R-> v)] << opt."),
            std::string::npos)
      << line;
}

TEST_F(TraceServerTest, SlowQueryThresholdFiltersFastQueries) {
  std::ostringstream log;
  ServerOptions options;
  options.slow_query_ms = 60'000;  // nothing here takes a minute
  options.slow_query_log = &log;
  StartServer(options);
  {
    Client c = MustConnect();
    ASSERT_TRUE(c.Hello("c").ok());
    ASSERT_TRUE(c.Query(kFig11Goal).ok());
    (void)c.Bye();
  }
  server_->Stop();
  EXPECT_EQ(log.str(), "");
}

TEST_F(TraceServerTest, MetricsCommandEmitsPrometheusText) {
  trace::ResetAggregates();  // the stage aggregates are process-global
  StartServer();
  {
    Client c = MustConnect();
    ASSERT_TRUE(c.Hello("s").ok());
    ASSERT_TRUE(c.Query(kFig11Goal, -1, "", false, /*trace=*/true).ok());
    (void)c.Bye();
  }
  // `metrics` needs no HELLO - scrapers don't have a clearance.
  Client scraper = MustConnect();
  Result<std::string> body = scraper.Metrics();
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_NE(body->find("# TYPE multilog_query_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(body->find("multilog_queries_ok_total 1"), std::string::npos);
  EXPECT_NE(body->find("multilog_requests_in_flight"), std::string::npos);
  EXPECT_NE(body->find("multilog_engine_cache_misses_total"),
            std::string::npos);
  // The traced query fed the per-stage aggregates.
  EXPECT_NE(body->find("multilog_stage_spans_total{stage=\"request\"} 1"),
            std::string::npos);
  EXPECT_NE(
      body->find("multilog_stage_duration_seconds_total{stage=\"reduce\"}"),
      std::string::npos);
}

/// Byte-identity across tracing states and thread counts: the span
/// instrumentation must never perturb answers. Fresh engine + server
/// per (threads, traced) cell; the serialized answers must be
/// byte-identical across all four.
TEST(TraceByteIdentityTest, AnswersIdenticalTracedVsUntracedAt1And8Threads) {
  std::vector<std::string> serialized;
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    for (const bool traced : {false, true}) {
      ml::EngineOptions eng_options;
      eng_options.eval.num_threads = threads;
      Result<ml::Engine> engine =
          ml::Engine::FromSource(mls::D1Source(), eng_options);
      ASSERT_TRUE(engine.ok()) << engine.status();
      ServerOptions options;
      options.port = 0;
      options.num_workers = 2;
      Server server(&*engine, options);
      ASSERT_TRUE(server.Start().ok());

      Result<Client> c = Client::Connect(server.port());
      ASSERT_TRUE(c.ok());
      ASSERT_TRUE(c->Hello("s").ok());
      Result<Json> resp = c->Query(kFig11Goal, -1, "", false, traced);
      ASSERT_TRUE(resp.ok()) << resp.status();
      EXPECT_EQ(resp->Find("trace") != nullptr, traced);
      const Json* answers = resp->Find("answers");
      ASSERT_NE(answers, nullptr);
      serialized.push_back(answers->Serialize());
      (void)c->Bye();
      server.Stop();
    }
  }
  ASSERT_EQ(serialized.size(), 4u);
  EXPECT_EQ(serialized[0], serialized[1]) << "1 thread: traced != untraced";
  EXPECT_EQ(serialized[0], serialized[2]) << "untraced: 1 thread != 8";
  EXPECT_EQ(serialized[0], serialized[3]) << "8 threads traced diverged";
}

}  // namespace
}  // namespace multilog::server
