// Wire-level mutation tests: assert/retract/checkpoint commands against
// a durable multilogd, session-clearance pinning of writes, the Figure
// 11 goldens surviving rejected writes, stats exposure of the engine
// and storage counters, and state reproduction across a server restart
// from the same data dir.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <utility>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage.h"

namespace multilog::server {
namespace {

/// The Figure 11 golden query: at s (and c) it answers {R=u}; at u it
/// answers nothing.
constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

/// Like ServerTestBase but the engine sits on durable storage, and the
/// whole stack (server, engine, storage) can be torn down and restarted
/// against the same data dir.
class DurableServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/server_mutation_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }

  void StartServer() {
    Result<storage::Storage> st = storage::Storage::Open(dir_, mls::D1Source());
    ASSERT_TRUE(st.ok()) << st.status();
    storage_ = std::make_unique<storage::Storage>(std::move(st).value());
    Result<ml::Engine> engine = ml::Engine::FromStorage(storage_.get());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::make_unique<ml::Engine>(std::move(engine).value());
    ServerOptions options;
    options.port = 0;
    server_ = std::make_unique<Server>(engine_.get(), options,
                                       std::vector<SqlCatalogEntry>{});
    ASSERT_TRUE(server_->Start().ok());
  }

  void StopServer() {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    engine_.reset();
    storage_.reset();
  }

  void TearDown() override { StopServer(); }

  Client MustConnect() {
    Result<Client> c = Client::Connect(server_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  std::string dir_;
  std::unique_ptr<storage::Storage> storage_;
  std::unique_ptr<ml::Engine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(DurableServerTest, WritesRequireHello) {
  StartServer();
  Client client = MustConnect();
  Result<Json> r = client.Assert("s[p(k2 : a -s-> k2)].");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSecurityViolation()) << r.status();
}

TEST_F(DurableServerTest, AssertRetractCheckpointRoundTrip) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());

  Result<Json> w = client.Assert("s[p(k2 : a -s-> k2)].");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->GetInt("seqno"), 1);
  EXPECT_TRUE(w->GetBool("durable"));
  const Json* invalidated = w->Find("invalidated_levels");
  ASSERT_NE(invalidated, nullptr);

  // The new s-fact rides alongside the paper's database: the Figure 11
  // golden is untouched, and the asserted fact answers at s only.
  Result<Json> golden = client.Query(kGoal);
  ASSERT_TRUE(golden.ok()) << golden.status();
  ASSERT_EQ(golden->GetInt("count"), 1);
  EXPECT_EQ(golden->Find("answers")->array_items()[0].string_value(), "{R=u}");
  Result<Json> mine = client.Query("s[p(k2 : a -R-> k2)] << opt");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_EQ(mine->GetInt("count"), 1);

  Result<Json> gone = client.Retract("s[p(k2 : a -s-> k2)].");
  ASSERT_TRUE(gone.ok()) << gone.status();
  EXPECT_EQ(gone->GetInt("seqno"), 2);
  Result<Json> after = client.Query("s[p(k2 : a -R-> k2)] << opt");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->GetInt("count"), 0);

  Result<Json> ckpt = client.Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_NE(ckpt->GetString("snapshot"), "");

  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* engine = stats->Find("stats")->Find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->GetInt("asserts_ok"), 1);
  EXPECT_EQ(engine->GetInt("retracts_ok"), 1);
  EXPECT_EQ(engine->GetInt("checkpoints"), 1);
  EXPECT_EQ(engine->GetInt("writes_rejected"), 0);
  const Json* storage = stats->Find("stats")->Find("storage");
  ASSERT_NE(storage, nullptr);
  EXPECT_EQ(storage->GetString("dir"), dir_);
  EXPECT_EQ(storage->GetInt("next_seqno"), 3);
  EXPECT_EQ(storage->GetInt("wal_records"), 0);  // checkpoint compacted
  EXPECT_EQ(storage->GetInt("checkpoints"), 1);
  const Json* writes = stats->Find("stats")->Find("writes");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(writes->GetInt("ok"), 3);
  EXPECT_EQ(writes->GetInt("errors"), 0);
}

TEST_F(DurableServerTest, WriteResponsesAndStatsSurfaceDeltaMaintenance) {
  if (!ml::IncrementalMaintenanceDefault()) {
    GTEST_SKIP() << "MULTILOG_NO_INCREMENTAL is set: the engine "
                    "invalidates instead of maintaining, so there is no "
                    "delta surfacing to assert on";
  }
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());

  // Warm the s-level cache so the write has a live model to maintain.
  ASSERT_TRUE(client.Query(kGoal).ok());

  Result<Json> w = client.Assert("s[p(k9 : a -s-> k9)].");
  ASSERT_TRUE(w.ok()) << w.status();
  const Json* maintained = w->Find("maintained_levels");
  ASSERT_NE(maintained, nullptr);
  ASSERT_TRUE(maintained->is_array());
  bool kept_s = false;
  for (const Json& level : maintained->array_items()) {
    if (level.string_value() == "s") kept_s = true;
  }
  EXPECT_TRUE(kept_s) << w->Serialize();
  EXPECT_TRUE(w->Find("invalidated_levels")->array_items().empty())
      << w->Serialize();

  // The maintained model serves the new fact without a rebuild.
  Result<Json> mine = client.Query("s[p(k9 : a -R-> k9)] << opt");
  ASSERT_TRUE(mine.ok()) << mine.status();
  EXPECT_EQ(mine->GetInt("count"), 1);

  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* engine = stats->Find("stats")->Find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->GetInt("deltas_applied"), 1);
  EXPECT_EQ(engine->GetInt("fallback_recomputes"), 0);
  EXPECT_GE(engine->GetInt("live_models"), 1);

  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("multilog_engine_deltas_applied_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("multilog_engine_fallback_recomputes_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("multilog_engine_live_models"), std::string::npos);
}

TEST_F(DurableServerTest, RejectedWritesKeepTheConnectionAndTheGolden) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("c").ok());

  // Write pinned to the session clearance: a c-cleared session can
  // neither write an s-fact nor smuggle an s-classified cell into a
  // c-fact.
  Result<Json> up = client.Assert("s[p(k2 : a -s-> k2)].");
  ASSERT_FALSE(up.ok());
  EXPECT_TRUE(up.status().IsSecurityViolation()) << up.status();
  Result<Json> cell = client.Assert("c[p(k2 : a -s-> w)].");
  ASSERT_FALSE(cell.ok());
  EXPECT_TRUE(cell.status().IsSecurityViolation()) << cell.status();
  Result<Json> absent = client.Retract("c[p(zzz : a -c-> zzz)].");
  ASSERT_FALSE(absent.ok());
  EXPECT_TRUE(absent.status().IsNotFound()) << absent.status();

  // Payload-tier rejections keep the connection open, and the Figure 11
  // golden still answers on it.
  Result<Json> golden = client.Query(kGoal);
  ASSERT_TRUE(golden.ok()) << golden.status();
  ASSERT_EQ(golden->GetInt("count"), 1);
  EXPECT_EQ(golden->Find("answers")->array_items()[0].string_value(), "{R=u}");

  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->Find("stats")->Find("engine")->GetInt("writes_rejected"),
            3);
  EXPECT_EQ(stats->Find("stats")->Find("writes")->GetInt("errors"), 3);
  EXPECT_EQ(stats->Find("stats")->Find("writes")->GetInt("ok"), 0);
  EXPECT_EQ(stats->Find("stats")->Find("storage")->GetInt("next_seqno"), 1);
}

TEST_F(DurableServerTest, RestartFromTheSameDataDirReproducesState) {
  StartServer();
  {
    Client client = MustConnect();
    ASSERT_TRUE(client.Hello("s").ok());
    ASSERT_TRUE(client.Assert("s[r(n1 : id -s-> n1)].").ok());
    Result<Json> r = client.Query("s[r(n1 : id -R-> n1)] << opt");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->GetInt("count"), 1);
  }
  StopServer();
  StartServer();  // same dir_: recovery must reproduce the state
  {
    Client client = MustConnect();
    ASSERT_TRUE(client.Hello("s").ok());
    Result<Json> r = client.Query("s[r(n1 : id -R-> n1)] << opt");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->GetInt("count"), 1);
    // The Figure 11 goldens hold at every clearance over the wire after
    // the restart.
    Result<Json> golden = client.Query(kGoal);
    ASSERT_TRUE(golden.ok()) << golden.status();
    ASSERT_EQ(golden->GetInt("count"), 1);
    EXPECT_EQ(golden->Find("answers")->array_items()[0].string_value(),
              "{R=u}");
  }
  {
    Client low = MustConnect();
    ASSERT_TRUE(low.Hello("u").ok());
    Result<Json> golden = low.Query(kGoal);
    ASSERT_TRUE(golden.ok()) << golden.status();
    EXPECT_EQ(golden->GetInt("count"), 0);
    Result<Json> hidden = low.Query("s[r(n1 : id -R-> n1)] << opt");
    ASSERT_TRUE(hidden.ok()) << hidden.status();
    EXPECT_EQ(hidden->GetInt("count"), 0);
  }
}

}  // namespace
}  // namespace multilog::server
