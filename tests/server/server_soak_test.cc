// Connection-scale soak: thousands of idle sessions held open while a
// hot set of pipelined clients hammers queries through the same loop.
// The epoll server's cost for an idle session is one fd plus one
// Session struct - no thread - so a four-digit connection count is
// routine; the seed thread-per-connection server would need that many
// stacks. The hot set checks that answer bytes do not degrade under
// fanout and that every tagged response finds its way home.
//
// Scale: MULTILOG_SOAK_SESSIONS overrides the idle-session target
// (default 10000). The test raises RLIMIT_NOFILE to its hard cap and
// clamps the target to fit - client and server ends live in this one
// process, so each idle session costs two fds.

#include "server/server.h"

#include <sys/resource.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class ServerSoakTest : public ServerTestBase {};

size_t IdleSessionTarget() {
  size_t target = 10000;
  if (const char* env = std::getenv("MULTILOG_SOAK_SESSIONS")) {
    target = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0) {
    if (lim.rlim_cur < lim.rlim_max) {
      lim.rlim_cur = lim.rlim_max;
      ::setrlimit(RLIMIT_NOFILE, &lim);
      ::getrlimit(RLIMIT_NOFILE, &lim);
    }
    // Two fds per idle session (both ends in-process), plus room for
    // the hot clients, the server's own fds, stdio, and the allocator.
    const size_t overhead = 512;
    if (lim.rlim_cur != RLIM_INFINITY &&
        static_cast<size_t>(lim.rlim_cur) > overhead) {
      target = std::min(target,
                        (static_cast<size_t>(lim.rlim_cur) - overhead) / 2);
    }
  }
  return target;
}

TEST_F(ServerSoakTest, TenThousandIdlePlusHundredHotPipelined) {
  const size_t kIdle = IdleSessionTarget();
  constexpr size_t kHot = 100;
  constexpr int kBurst = 16;  // pipelined queries per hot client

  ServerOptions options;
  options.max_connections = kIdle + kHot + 8;
  options.max_in_flight = 64;
  StartServer(options);

  // The blocking reference answer every hot response must match.
  Client reference_client = MustConnect();
  ASSERT_TRUE(reference_client.Hello("s").ok());
  Result<Json> reference = reference_client.Query(kGoal);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string ref_answers = reference->Find("answers")->Serialize();

  // Open the idle herd. They never speak after connecting; their only
  // job is to sit in the epoll set and cost nothing.
  std::vector<Client> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    Result<Client> c = Client::Connect(server_->port());
    ASSERT_TRUE(c.ok()) << "idle connect " << i << ": " << c.status();
    idle.push_back(std::move(c).value());
  }

  // The hot set: each client hellos, fires a pipelined burst, then
  // matches every tagged response and byte-checks the answers.
  size_t responses_checked = 0;
  for (size_t h = 0; h < kHot; ++h) {
    Client hot = MustConnect();
    ASSERT_TRUE(hot.Hello("s").ok()) << "hot client " << h;
    for (int i = 0; i < kBurst; ++i) {
      ASSERT_TRUE(hot.SendQuery(static_cast<int64_t>(h * 1000 + i), kGoal)
                      .ok());
    }
    std::set<int64_t> seen;
    for (int i = 0; i < kBurst; ++i) {
      Result<Json> resp = hot.ReadResponse();
      ASSERT_TRUE(resp.ok()) << "hot " << h << ": " << resp.status();
      ASSERT_TRUE(resp->GetBool("ok", false)) << resp->Serialize();
      const Json* id = resp->Find("id");
      ASSERT_NE(id, nullptr);
      seen.insert(id->int_value());
      ASSERT_EQ(resp->Find("answers")->Serialize(), ref_answers)
          << "answer bytes degraded under soak (hot client " << h << ")";
      ++responses_checked;
    }
    ASSERT_EQ(seen.size(), static_cast<size_t>(kBurst));
  }
  EXPECT_EQ(responses_checked, kHot * static_cast<size_t>(kBurst));

  // The idle herd is all still accounted as open.
  Result<Json> stats = reference_client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* conns = stats->Find("stats")->Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(static_cast<size_t>(conns->GetInt("accepted")), kIdle + kHot);
  EXPECT_GE(static_cast<size_t>(conns->GetInt("open")), kIdle);

  // Drop the herd and watch the server reap every one of them.
  idle.clear();
  bool reaped = false;
  for (int attempt = 0; attempt < 500 && !reaped; ++attempt) {
    Result<Json> now = reference_client.Stats();
    ASSERT_TRUE(now.ok()) << now.status();
    const Json* c = now->Find("stats")->Find("connections");
    ASSERT_NE(c, nullptr);
    reaped = c->GetInt("open") <= 4;
    if (!reaped) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(reaped) << "idle sessions were not reaped after disconnect";

  // And the loop still serves: one more query round-trips cleanly.
  Result<Json> after = reference_client.Query(kGoal);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->Find("answers")->Serialize(), ref_answers);
}

}  // namespace
}  // namespace multilog::server
