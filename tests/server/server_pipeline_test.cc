// Pipelining: a session may have multiple tagged requests in flight and
// the server may complete them out of order; each response echoes its
// request's "id" so the client can match them back up. Untagged
// requests stay supported (no "id" member is invented), error responses
// carry the offending request's id, and pipelined answers are the same
// bytes the blocking one-at-a-time client receives.

#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class ServerPipelineTest : public ServerTestBase {};

TEST_F(ServerPipelineTest, BurstOfTaggedQueriesAllAnswerWithTheirId) {
  ServerOptions options;
  options.max_in_flight = 128;  // admit the whole burst at once
  StartServer(options);
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());

  // The blocking reference answer for byte-comparison.
  Result<Json> reference = client.Query(kGoal);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string ref_answers = reference->Find("answers")->Serialize();

  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.SendQuery(/*id=*/1000 + i, kGoal).ok());
  }
  std::set<int64_t> seen;
  for (int i = 0; i < kBurst; ++i) {
    Result<Json> resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->GetBool("ok", false)) << resp->Serialize();
    const Json* id = resp->Find("id");
    ASSERT_NE(id, nullptr) << "response lost its id tag";
    seen.insert(id->int_value());
    EXPECT_EQ(resp->GetInt("count"), 1);
    EXPECT_EQ(resp->Find("answers")->Serialize(), ref_answers)
        << "pipelined answer differs from the blocking client's";
  }
  // Every id came back exactly once (set collapse would shrink it).
  ASSERT_EQ(seen.size(), static_cast<size_t>(kBurst));
  EXPECT_EQ(*seen.begin(), 1000);
  EXPECT_EQ(*seen.rbegin(), 1000 + kBurst - 1);
}

TEST_F(ServerPipelineTest, ResponsesMayArriveOutOfOrder) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());

  // First request parks on a bounded-staleness floor one write in the
  // future; the second runs immediately. The fast one must come back
  // first even though it was sent second - that is the whole point of
  // tagging - and the parked one completes once a write lands.
  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const int64_t applied = stats->Find("stats")->GetInt("applied_seqno");

  Json waiting = Json::Object();
  waiting.Set("cmd", Json::Str("query"));
  waiting.Set("goal", Json::Str(kGoal));
  waiting.Set("id", Json::Int(1));
  waiting.Set("min_seqno", Json::Int(applied + 1));
  waiting.Set("wait_ms", Json::Int(10000));
  ASSERT_TRUE(client.SendRaw(waiting.Serialize()).ok());
  ASSERT_TRUE(client.SendQuery(/*id=*/2, kGoal).ok());

  Result<Json> first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->Find("id")->int_value(), 2)
      << "the un-parked query should finish first: " << first->Serialize();

  // Release the parked query with a write from a second session.
  Client writer = MustConnect();
  ASSERT_TRUE(writer.Hello("s").ok());
  ASSERT_TRUE(writer.Assert("s[p(k2 : a -s-> k2)].").ok());

  Result<Json> second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->Find("id")->int_value(), 1) << second->Serialize();
  EXPECT_TRUE(second->GetBool("ok", false)) << second->Serialize();
  EXPECT_EQ(second->GetInt("count"), 1);
}

TEST_F(ServerPipelineTest, UntaggedRequestsGetNoInventedId) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> resp = client.Query(kGoal);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->Find("id"), nullptr);
}

TEST_F(ServerPipelineTest, ErrorResponsesCarryTheRequestId) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  // A goal that fails to parse: the error must still be routed back to
  // the tag so a pipelining client can tell *which* request died.
  ASSERT_TRUE(client.SendQuery(/*id=*/77, "this is not a goal").ok());
  Result<Json> resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->GetBool("ok", true));
  const Json* id = resp->Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->int_value(), 77);
}

TEST_F(ServerPipelineTest, ClearanceErrorBeforeHelloCarriesTheId) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.SendQuery(/*id=*/5, kGoal).ok());
  Result<Json> resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->GetBool("ok", true));
  EXPECT_EQ(resp->GetString("code"), "SecurityViolation");
  const Json* id = resp->Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->int_value(), 5);
}

TEST_F(ServerPipelineTest, PipelinedWritesAllCommitWithDistinctSeqnos) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  // Tagged writes may execute in any relative order (only hello/bye/
  // replicate are ordered), so assert two *independent* facts and
  // check both committed, with distinct seqnos, and both are visible.
  ASSERT_TRUE(client.SendAssert(1, "s[p(k2 : a -s-> k2)].").ok());
  ASSERT_TRUE(client.SendAssert(2, "s[p(k9 : a -s-> k9)].").ok());

  std::vector<int64_t> seqnos;
  for (int i = 0; i < 2; ++i) {
    Result<Json> resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(resp->GetBool("ok", false)) << resp->Serialize();
    ASSERT_NE(resp->Find("id"), nullptr);
    seqnos.push_back(resp->GetInt("seqno"));
  }
  EXPECT_NE(seqnos[0], seqnos[1]);

  for (const char* goal : {"s[p(k2 : a -R-> k2)] << opt",
                           "s[p(k9 : a -R-> k9)] << opt"}) {
    Result<Json> r = client.Query(goal);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->GetInt("count"), 1) << goal;
  }
}

TEST_F(ServerPipelineTest, ByeDrainsInFlightResponsesFirst) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  // Queries then bye, all in one burst: every query must still answer
  // (bye is ordered behind the in-flight work), then bye acks, then
  // the server closes.
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.SendQuery(i, kGoal).ok());
  }
  Json bye = Json::Object();
  bye.Set("cmd", Json::Str("bye"));
  ASSERT_TRUE(client.SendRaw(bye.Serialize()).ok());

  std::set<int64_t> seen;
  for (int i = 0; i < kBurst; ++i) {
    Result<Json> resp = client.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_TRUE(resp->GetBool("ok", false)) << resp->Serialize();
    const Json* id = resp->Find("id");
    ASSERT_NE(id, nullptr) << resp->Serialize();
    seen.insert(id->int_value());
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kBurst));
  Result<Json> ack = client.ReadResponse();
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_TRUE(ack->GetBool("ok", false));
  // After the ack the server closes its end.
  Result<std::string> eof = client.ReadRaw();
  EXPECT_FALSE(eof.ok());
}

}  // namespace
}  // namespace multilog::server
