// Counter accounting under abuse: connections_open and in_flight must
// return to zero on every failure path - malformed handshakes, framing
// damage, oversized frames, rejected queries - not just the happy one.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

/// Polls `pred` until it holds or ~2s elapse (connection teardown is
/// asynchronous: the reader thread must notice EOF first).
bool Eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class ServerCountersTest : public ServerTestBase {
 protected:
  uint64_t OpenConnections() {
    return server_->metrics().connections_open.load();
  }

  /// `in_flight` as reported by the STATS surface (the wire-visible
  /// view of the dispatch gauge).
  int64_t StatsInFlight() {
    Client probe = MustConnect();
    Result<Json> stats = probe.Stats();
    EXPECT_TRUE(stats.ok()) << stats.status();
    const Json* s = stats->Find("stats");
    EXPECT_NE(s, nullptr);
    const Json* in_flight = s->Find("in_flight");
    EXPECT_NE(in_flight, nullptr);
    return in_flight->int_value();
  }
};

TEST_F(ServerCountersTest, MalformedHandshakesDoNotLeakOpenConnections) {
  StartServer();
  // Hammer the handshake path: bad JSON payloads (connection survives,
  // then we close), then broken framing (server closes).
  for (int round = 0; round < 8; ++round) {
    Client c = MustConnect();
    ASSERT_TRUE(c.SendRaw("this is not json").ok());
    Result<std::string> resp = c.ReadRaw();
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_NE(resp->find("\"ok\":false"), std::string::npos);
    // The connection is still usable after a payload-level error...
    ASSERT_TRUE(c.SendRaw("{\"cmd\":\"nonsense\"}").ok());
    ASSERT_TRUE(c.ReadRaw().ok());
    // ...and the client abandoning it mid-session must still decrement.
  }
  for (int round = 0; round < 8; ++round) {
    Result<Client> c = Client::Connect(server_->port());
    ASSERT_TRUE(c.ok());
    // Framing damage: a non-decimal length header. The server answers
    // with a best-effort error frame and closes.
    const std::string garbage = "xyzzy\n";
    (void)::write(c->fd(), garbage.data(), garbage.size());
  }
  EXPECT_TRUE(Eventually([&] { return OpenConnections() == 0; }))
      << "connections_open stuck at " << OpenConnections();
  EXPECT_GT(server_->metrics().rejected_malformed.load(), 0u);
}

TEST_F(ServerCountersTest, OversizedFramesDoNotLeakOpenConnections) {
  ServerOptions options;
  options.max_request_bytes = 128;
  StartServer(options);
  for (int round = 0; round < 8; ++round) {
    Client c = MustConnect();
    // An oversized declared length is refused before allocation and the
    // connection closes (framing can't be trusted afterwards).
    const std::string huge(512, 'x');
    ASSERT_TRUE(c.SendRaw(huge).ok());
    Result<std::string> resp = c.ReadRaw();
    if (resp.ok()) {
      EXPECT_NE(resp->find("ResourceExhausted"), std::string::npos);
    }
  }
  EXPECT_TRUE(Eventually([&] { return OpenConnections() == 0; }))
      << "connections_open stuck at " << OpenConnections();
  EXPECT_GE(server_->metrics().rejected_oversized.load(), 8u);
}

TEST_F(ServerCountersTest, InFlightReturnsToZeroAfterQueryErrors) {
  StartServer();
  Client c = MustConnect();
  ASSERT_TRUE(c.Hello("s").ok());
  // Successful, failing, and unparsable queries all release the
  // in-flight slot (the guard unwinds on every exit path).
  EXPECT_TRUE(c.Query("?- s[p(k : a -R-> V)] << firm.").ok());
  EXPECT_FALSE(c.Query("?- this is not a goal").ok());
  EXPECT_FALSE(c.Sql("select * from nosuch").ok());
  EXPECT_TRUE(Eventually([&] { return StatsInFlight() == 0; }))
      << "in_flight stuck at " << StatsInFlight();
}

TEST_F(ServerCountersTest, InFlightReturnsToZeroUnderConcurrentAbuse) {
  ServerOptions options;
  options.num_workers = 4;
  StartServer(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([this, t] {
      Result<Client> c = Client::Connect(server_->port());
      if (!c.ok()) return;
      if (!c->Hello("c").ok()) return;
      for (int i = 0; i < 20; ++i) {
        if (i % 3 == t % 3) {
          (void)c->Query("?- not ( a goal");  // parse error
        } else {
          (void)c->Query("?- c[p(k : a -R-> V)] << opt.");
        }
      }
      // Half the clients vanish without BYE.
      if (t % 2 == 0) (void)c->Bye();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(Eventually([&] { return StatsInFlight() == 0; }));
  EXPECT_TRUE(Eventually([&] { return OpenConnections() == 0; }))
      << "connections_open stuck at " << OpenConnections();
}

}  // namespace
}  // namespace multilog::server
