// Concurrency: many client threads at mixed clearances against one
// multilogd, answers byte-compared with direct single-threaded engine
// queries. The server adds dispatch, pooling, and admission control on
// top of the engine; none of that may change a single byte of an
// answer.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";
constexpr char kLevels[][2] = {"u", "c", "s"};
constexpr const char* kModes[] = {"operational", "reduced", "check_both"};

/// The "answers" member serialized - the byte string we compare.
std::string AnswerBytes(const Json& response) {
  const Json* answers = response.Find("answers");
  return answers == nullptr ? "<no answers member>" : answers->Serialize();
}

TEST_F(ServerTestBase, ConcurrentClientsMatchDirectEngineByteForByte) {
  ServerOptions options;
  options.num_workers = 4;
  StartServer(options);

  // Reference: every (level, mode) pair answered by a private engine,
  // single-threaded, no server anywhere near it.
  Result<ml::Engine> reference = ml::Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::map<std::string, std::string> expected;
  for (const auto& level : kLevels) {
    for (size_t m = 0; m < 3; ++m) {
      Result<ml::QueryResult> r = reference->QuerySource(
          kGoal, level, static_cast<ml::ExecMode>(m));
      ASSERT_TRUE(r.ok()) << r.status();
      Json answers = Json::Array();
      for (const auto& answer : r->answers) {
        answers.Push(Json::Str(answer.ToString()));
      }
      expected[std::string(level) + "/" + kModes[m]] = answers.Serialize();
    }
  }

  // 8 concurrent clients (>= 4 per the acceptance criteria), each
  // cycling through all clearances x modes several times.
  constexpr size_t kClients = 8;
  constexpr size_t kRoundsPerClient = 6;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      const std::string level = kLevels[t % 3];
      Result<Client> client = Client::Connect(server_->port());
      if (!client.ok() || !client->Hello(level).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t round = 0; round < kRoundsPerClient; ++round) {
        const char* mode = kModes[(t + round) % 3];
        Result<Json> r = client->Query(kGoal, -1, mode);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (AnswerBytes(*r) != expected[level + "/" + mode]) {
          mismatches.fetch_add(1);
        }
      }
      client->Bye();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // STATS adds up: every query recorded exactly once.
  Client probe = MustConnect();
  Result<Json> stats = probe.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* queries = stats->Find("stats")->Find("queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->GetInt("ok"),
            static_cast<int64_t>(kClients * kRoundsPerClient));
  EXPECT_EQ(queries->GetInt("errors"), 0);
  int64_t by_level_total = 0;
  for (const auto& [level, per_mode] :
       queries->Find("by_level")->object_items()) {
    for (const auto& [mode, count] : per_mode.object_items()) {
      by_level_total += count.int_value();
    }
  }
  EXPECT_EQ(by_level_total, static_cast<int64_t>(kClients * kRoundsPerClient));
}

TEST_F(ServerTestBase, ConcurrentDeadlineProbesDoNotPoisonOtherSessions) {
  ServerOptions options;
  options.num_workers = 4;
  StartServer(options);

  // Half the clients fire already-expired deadlines, half expect full
  // answers; the failures must stay strictly on the probing sessions.
  constexpr size_t kPairs = 4;
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 2 * kPairs; ++t) {
    threads.emplace_back([&, t] {
      Result<Client> client = Client::Connect(server_->port());
      if (!client.ok() || !client->Hello("s").ok()) {
        wrong.fetch_add(1);
        return;
      }
      for (int round = 0; round < 5; ++round) {
        if (t % 2 == 0) {
          Result<Json> r = client->Query(kGoal, /*deadline_ms=*/0);
          if (r.ok() || !r.status().IsDeadlineExceeded()) wrong.fetch_add(1);
        } else {
          Result<Json> r = client->Query(kGoal, /*deadline_ms=*/60000);
          if (!r.ok() || r->GetInt("count") != 1) wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);

  Client probe = MustConnect();
  Result<Json> stats = probe.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* queries = stats->Find("stats")->Find("queries");
  EXPECT_EQ(queries->GetInt("deadline_exceeded"),
            static_cast<int64_t>(kPairs * 5));
  EXPECT_EQ(queries->GetInt("ok"), static_cast<int64_t>(kPairs * 5));
}

}  // namespace
}  // namespace multilog::server
