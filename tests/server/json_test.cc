// The wire-protocol JSON library: strict parsing, UTF-8 validation,
// depth caps, and deterministic round-trip serialization.

#include "server/json.h"

#include <gtest/gtest.h>

#include <string>

namespace multilog::server {
namespace {

Json MustParse(const std::string& text) {
  Result<Json> r = Json::Parse(text);
  EXPECT_TRUE(r.ok()) << text << "\n" << r.status();
  return r.ok() ? *std::move(r) : Json();
}

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_EQ(MustParse("null").Serialize(), "null");
  EXPECT_EQ(MustParse("true").Serialize(), "true");
  EXPECT_EQ(MustParse("false").Serialize(), "false");
  EXPECT_EQ(MustParse("42").Serialize(), "42");
  EXPECT_EQ(MustParse("-7").Serialize(), "-7");
  EXPECT_EQ(MustParse("\"hi\"").Serialize(), "\"hi\"");
}

TEST(JsonTest, NumbersClassifyIntVsDouble) {
  EXPECT_TRUE(MustParse("42").is_int());
  EXPECT_TRUE(MustParse("4.5").is_number());
  EXPECT_FALSE(MustParse("4.5").is_int());
  EXPECT_DOUBLE_EQ(MustParse("4.5").number_value(), 4.5);
  EXPECT_TRUE(MustParse("1e3").is_number());
  // Beyond int64 range falls back to double instead of overflowing.
  EXPECT_FALSE(MustParse("99999999999999999999").is_int());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("zebra", Json::Int(1));
  obj.Set("alpha", Json::Int(2));
  obj.Set("zebra", Json::Int(3));  // replaces in place, keeps position
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonTest, NestedRoundTripIsByteStable) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\ny\",\"d\":true}";
  EXPECT_EQ(MustParse(text).Serialize(), text);
}

TEST(JsonTest, StringEscapes) {
  const Json j = MustParse("\"a\\u0041\\n\\t\\\\\\\"\\u00e9\"");
  EXPECT_EQ(j.string_value(), "aA\n\t\\\"\xc3\xa9");
  // Control characters re-escape on output.
  EXPECT_EQ(MustParse("\"\\u0001\"").Serialize(), "\"\\u0001\"");
}

TEST(JsonTest, SurrogatePairs) {
  const Json j = MustParse("\"\\ud83d\\ude00\"");  // U+1F600
  EXPECT_EQ(j.string_value(), "\xf0\x9f\x98\x80");
  // A lone surrogate escape is rejected.
  EXPECT_FALSE(Json::Parse("\"\\ud83d\"").ok());
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "  ", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01",
        "1.", "+1", "'a'", "{a:1}", "[1 2]", "{\"a\":1,}", "[1,]",
        "\"unterminated", "1 2", "{} {}", "[1]x"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, RejectsInvalidUtf8) {
  // Bare continuation byte, overlong slash, stray surrogate, > U+10FFFF.
  EXPECT_FALSE(Json::Parse("\"\x80\"").ok());
  EXPECT_FALSE(Json::Parse("\"\xc0\xaf\"").ok());
  EXPECT_FALSE(Json::Parse("\"\xed\xa0\x80\"").ok());
  EXPECT_FALSE(Json::Parse("\"\xf4\x90\x80\x80\"").ok());
  EXPECT_FALSE(IsValidUtf8("\xff"));
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80"));
}

TEST(JsonTest, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(Json::Parse(deep).ok());
  // 32 levels is comfortably inside the cap.
  std::string fine;
  for (int i = 0; i < 32; ++i) fine += "[";
  for (int i = 0; i < 32; ++i) fine += "]";
  EXPECT_TRUE(Json::Parse(fine).ok());
}

TEST(JsonTest, LookupHelpers) {
  const Json j = MustParse("{\"s\":\"v\",\"n\":3,\"b\":true}");
  EXPECT_EQ(j.GetString("s"), "v");
  EXPECT_EQ(j.GetString("missing", "fb"), "fb");
  EXPECT_EQ(j.GetInt("n"), 3);
  EXPECT_EQ(j.GetInt("s", -1), -1);  // wrong kind -> fallback
  EXPECT_TRUE(j.GetBool("b"));
  ASSERT_NE(j.Find("n"), nullptr);
  EXPECT_EQ(j.Find("nope"), nullptr);
}

}  // namespace
}  // namespace multilog::server
