// Event-loop behaviors that only matter once serving is nonblocking:
//
//  - the connection-limit rejection is best-effort and never lets a
//    stalled (never-reading) rejected peer delay the next accept,
//  - a query parked on a min_seqno floor burns no worker thread and no
//    in-flight slot while it waits (other queries run to completion
//    around it), and expires with the staleness-deadline error,
//  - a response that cannot be written (peer reset the connection)
//    counts response_write_errors and closes the session instead of
//    wedging the loop.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "server/client.h"
#include "server/protocol.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class ServerEventLoopTest : public ServerTestBase {};

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

TEST_F(ServerEventLoopTest, StalledRejectedPeerDoesNotDelayNextAccept) {
  ServerOptions options;
  options.max_connections = 2;
  StartServer(options);

  // Fill the limit.
  Client a = MustConnect();
  ASSERT_TRUE(a.Hello("s").ok());
  Client b = MustConnect();
  ASSERT_TRUE(b.Hello("s").ok());

  // A peer that connects over the limit and then never reads a byte:
  // the rejection frame is sent best-effort with MSG_DONTWAIT, so the
  // loop must not block on this socket no matter what the peer does.
  Result<Client> staller = Client::Connect(server_->port());
  ASSERT_TRUE(staller.ok()) << staller.status();
  // (deliberately no ReadRaw: the staller just sits there)

  // The admitted sessions keep working immediately.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a.Query(kGoal).ok());
  EXPECT_LT(ElapsedMs(t0), 2000)
      << "a stalled rejected peer delayed an admitted session";

  // Free a slot and connect again: the accept path must admit the new
  // session promptly even though the staller never drained its
  // rejection frame.
  ASSERT_TRUE(b.Bye().ok());
  const auto t1 = std::chrono::steady_clock::now();
  Result<Client> fresh = Status::Internal("unattempted");
  for (int attempt = 0; attempt < 50; ++attempt) {
    fresh = Client::Connect(server_->port());
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    Result<Json> hello = fresh->Hello("s");
    if (hello.ok()) break;  // rejected = bye not yet reaped; retry
    fresh = Status::Internal("rejected, retrying");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_LT(ElapsedMs(t1), 2000)
      << "accept was delayed behind a stalled rejected peer";
  EXPECT_TRUE(fresh->Query(kGoal).ok());

  Result<Json> stats = a.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* conns = stats->Find("stats")->Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->GetInt("rejected"), 1);
}

TEST_F(ServerEventLoopTest, ParkedQueryHoldsNoWorkerAndNoInFlightSlot) {
  // One worker, one in-flight slot: if parking held either, the second
  // session's query could not run until the first one's wait resolved.
  ServerOptions options;
  options.num_workers = 1;
  options.max_in_flight = 1;
  StartServer(options);

  Client parked = MustConnect();
  ASSERT_TRUE(parked.Hello("s").ok());
  Result<Json> stats = parked.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const int64_t applied = stats->Find("stats")->GetInt("applied_seqno");

  Json waiting = Json::Object();
  waiting.Set("cmd", Json::Str("query"));
  waiting.Set("goal", Json::Str(kGoal));
  waiting.Set("id", Json::Int(1));
  waiting.Set("min_seqno", Json::Int(applied + 1));
  waiting.Set("wait_ms", Json::Int(10000));
  ASSERT_TRUE(parked.SendRaw(waiting.Serialize()).ok());

  // With the park in place, a lower-floor query on another session
  // completes while the first still waits.
  Client runner = MustConnect();
  ASSERT_TRUE(runner.Hello("s").ok());
  const auto t0 = std::chrono::steady_clock::now();
  Result<Json> fast = runner.Query(kGoal);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast->GetInt("count"), 1);
  EXPECT_LT(ElapsedMs(t0), 2000)
      << "a parked query is holding the only worker or in-flight slot";

  // A write satisfies the floor and the parked query completes.
  ASSERT_TRUE(runner.Assert("s[p(k2 : a -s-> k2)].").ok());
  Result<Json> released = parked.ReadResponse();
  ASSERT_TRUE(released.ok()) << released.status();
  EXPECT_TRUE(released->GetBool("ok", false)) << released->Serialize();
  EXPECT_EQ(released->Find("id")->int_value(), 1);
  EXPECT_EQ(released->GetInt("count"), 1);
}

TEST_F(ServerEventLoopTest, ParkedQueryExpiresWithTheStalenessDeadline) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const int64_t applied = stats->Find("stats")->GetInt("applied_seqno");

  const auto t0 = std::chrono::steady_clock::now();
  Result<Json> r = client.Query(kGoal, /*deadline_ms=*/-1, /*mode=*/"",
                                /*proofs=*/false, /*trace=*/false,
                                /*min_seqno=*/applied + 1000,
                                /*wait_ms=*/100);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  EXPECT_NE(r.status().message().find("has not reached min_seqno"),
            std::string::npos)
      << r.status();
  EXPECT_GE(ElapsedMs(t0), 100);
  EXPECT_LT(ElapsedMs(t0), 5000);

  Result<Json> after = client.Stats();
  ASSERT_TRUE(after.ok()) << after.status();
  const Json* queries = after->Find("stats")->Find("queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_GE(queries->GetInt("deadline_exceeded"), 1);
}

TEST_F(ServerEventLoopTest, FailedResponseWriteCountsAndClosesTheSession) {
  StartServer();

  // Raw socket so we can arm SO_LINGER(0): closing then sends RST, and
  // any later server write to this connection fails outright.
  int doomed = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(doomed, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(doomed, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  Json hello = Json::Object();
  hello.Set("cmd", Json::Str("hello"));
  hello.Set("level", Json::Str("s"));
  ASSERT_TRUE(WriteFrame(doomed, hello.Serialize()).ok());
  Result<std::optional<std::string>> hello_resp =
      ReadFrame(doomed, kAbsoluteMaxFrameBytes);
  ASSERT_TRUE(hello_resp.ok() && hello_resp->has_value());

  // Park a query so the server's (error) response is written at a
  // deterministic later moment - after the RST below has landed.
  Json waiting = Json::Object();
  waiting.Set("cmd", Json::Str("query"));
  waiting.Set("goal", Json::Str(kGoal));
  waiting.Set("min_seqno", Json::Int(1000000));
  waiting.Set("wait_ms", Json::Int(300));
  ASSERT_TRUE(WriteFrame(doomed, waiting.Serialize()).ok());

  // Reset the connection under the parked query.
  struct linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(::setsockopt(doomed, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)),
            0);
  ::close(doomed);  // -> RST

  // When the park expires the server tries to write the deadline
  // error, the write fails, and the failure is counted; the session
  // must be reaped, not wedged.
  Client observer = MustConnect();
  ASSERT_TRUE(observer.Hello("s").ok());
  bool counted = false;
  for (int attempt = 0; attempt < 100 && !counted; ++attempt) {
    Result<Json> now = observer.Stats();
    ASSERT_TRUE(now.ok()) << now.status();
    const Json* reqs = now->Find("stats")->Find("requests");
    ASSERT_NE(reqs, nullptr);
    counted = reqs->GetInt("response_write_errors") >= 1;
    if (!counted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(counted) << "failed response write was never counted";

  // And the doomed session is gone: open connections is just the
  // observer (reaped keeps pace with accepted).
  Result<Json> fin = observer.Stats();
  ASSERT_TRUE(fin.ok()) << fin.status();
  const Json* conns = fin->Find("stats")->Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->GetInt("reaped"),
            conns->GetInt("accepted") - conns->GetInt("open"));
  EXPECT_LE(conns->GetInt("open"), 2);
}

}  // namespace
}  // namespace multilog::server
