// The client library's batch runner: failing lines are reported by
// number, the batch stops there (or continues under keep_going), and a
// Definition 5.4 violation mid-batch behaves exactly like any other
// rejected line.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "multilog/engine.h"
#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

class ClientBatchTest : public ServerTestBase {
 protected:
  Client HellodClient(const std::string& level) {
    Client c = MustConnect();
    EXPECT_TRUE(c.Hello(level).ok());
    return c;
  }
};

// Line 3 violates Definition 5.4: same (predicate, key, attribute,
// classification) as line 2 with a different value for `b` breaks the
// polyinstantiation FD. It passes the security checks (the fact is at
// the session level), so only integrity validation can catch it.
constexpr char kViolatingBatch[] =
    "% staged writes\n"
    "assert s[p(k9 : a -s-> k9, b -s-> v1)].\n"
    "assert s[p(k9 : a -s-> k9, b -s-> v2)].\n"
    "assert s[p(k8 : a -s-> k8)].\n";

TEST_F(ClientBatchTest, StopsAtTheFailingLineAndReportsItsNumber) {
  StartServer();
  Client c = HellodClient("s");
  std::istringstream in(kViolatingBatch);
  const BatchResult result = RunBatch(c, in);
  EXPECT_EQ(result.applied, 1u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].lineno, 3u);
  EXPECT_TRUE(result.failures[0].status.IsIntegrityViolation())
      << result.failures[0].status;
  // The batch stopped: line 4 never ran, so its fact is absent.
  Result<Json> probe = c.Query("?- s[p(k8 : a -R-> V)] << opt.");
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_TRUE(probe->Find("answers")->array_items().empty());
}

TEST_F(ClientBatchTest, KeepGoingRunsPastFailuresAndReportsEachOne) {
  StartServer();
  Client c = HellodClient("s");
  std::istringstream in(kViolatingBatch);
  std::ostringstream echo;
  const BatchResult result =
      RunBatch(c, in, /*keep_going=*/true, &echo);
  EXPECT_EQ(result.applied, 2u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].lineno, 3u);
  // Line 4 ran despite the failure on line 3.
  Result<Json> probe = c.Query("?- s[p(k8 : a -R-> V)] << opt.");
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(probe->Find("answers")->array_items().size(), 1u);
  // The echo stream names the successful lines by number.
  EXPECT_NE(echo.str().find("2: "), std::string::npos);
  EXPECT_NE(echo.str().find("4: "), std::string::npos);
}

TEST_F(ClientBatchTest, MalformedLinesAreInvalidArgumentAtTheirNumber) {
  StartServer();
  Client c = HellodClient("s");
  std::istringstream in(
      "assert s[p(k7 : a -s-> k7)].\n"
      "\n"
      "frobnicate the database\n");
  const BatchResult result = RunBatch(c, in, /*keep_going=*/true);
  EXPECT_EQ(result.applied, 1u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].lineno, 3u);
  EXPECT_TRUE(result.failures[0].status.IsInvalidArgument());
}

TEST_F(ClientBatchTest, CommentsAndBlanksDoNotShiftLineNumbers) {
  StartServer();
  Client c = HellodClient("s");
  std::istringstream in(
      "# header comment\n"
      "\n"
      "% another comment\n"
      "retract s[p(nosuch : a -s-> x)].\n");
  const BatchResult result = RunBatch(c, in);
  EXPECT_EQ(result.applied, 0u);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].lineno, 4u);
  EXPECT_TRUE(result.failures[0].status.IsNotFound())
      << result.failures[0].status;
}

TEST_F(ClientBatchTest, QueriesAndCheckpointsCountAsBatchWork) {
  StartServer();
  Client c = HellodClient("c");
  std::istringstream in(
      "assert c[p(k5 : a -c-> k5)].\n"
      "query ?- c[p(k5 : a -R-> V)] << opt.\n"
      "retract c[p(k5 : a -c-> k5)].\n");
  const BatchResult result = RunBatch(c, in);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.applied, 3u);
  // The summary splits out the writes and times the whole batch; the
  // query warms the c-level cache, so the retract maintains it in
  // place and the maintained-level tally is non-zero.
  EXPECT_EQ(result.writes, 2u);
  if (ml::IncrementalMaintenanceDefault()) {
    EXPECT_GE(result.levels_maintained, 1u);
  } else {
    // Under MULTILOG_NO_INCREMENTAL the same writes invalidate the
    // warmed cache instead of maintaining it.
    EXPECT_GE(result.levels_invalidated, 1u);
  }
  EXPECT_GT(result.wall_ms, 0.0);
}

}  // namespace
}  // namespace multilog::server
