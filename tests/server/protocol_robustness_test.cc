// The malformed-input corpus: every hostile byte sequence here must
// produce a structured error (or a clean close) - never a crash, hang,
// or desynchronized response. CI runs this binary under ASan/UBSan and
// TSan, so memory errors surface as failures, not luck.

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class RobustnessTest : public ServerTestBase {
 protected:
  /// Writes raw bytes (no framing) straight onto the socket.
  void SendBytes(Client& client, const std::string& bytes) {
    ASSERT_EQ(::write(client.fd(), bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads the server's error frame and returns its "code" member.
  std::string ReadErrorCode(Client& client) {
    Result<std::string> frame = client.ReadRaw();
    if (!frame.ok()) return "<closed: " + frame.status().ToString() + ">";
    Result<Json> json = Json::Parse(*frame);
    if (!json.ok()) return "<unparseable>";
    EXPECT_FALSE(json->GetBool("ok", true));
    return json->GetString("code", "<missing>");
  }

  /// The server must still serve correct answers after the abuse.
  void ExpectServerStillHealthy() {
    Client probe = MustConnect();
    ASSERT_TRUE(probe.Hello("s").ok());
    Result<Json> r = probe.Query(kGoal);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->GetInt("count"), 1);
  }
};

TEST_F(RobustnessTest, PayloadTierErrorsKeepTheConnectionOpen) {
  StartServer();
  Client client = MustConnect();
  // Each entry is {payload, expected code}; all are well-framed, so the
  // same connection must absorb every one and then still work.
  const struct {
    const char* payload;
    const char* code;
  } corpus[] = {
      {"junk", "ParseError"},                      // not JSON at all
      {"{\"cmd\":", "ParseError"},                 // truncated JSON
      {"[1,2,3]", "InvalidArgument"},              // not an object
      {"{}", "InvalidArgument"},                   // no cmd
      {"{\"cmd\":42}", "InvalidArgument"},         // cmd wrong type
      {"{\"cmd\":\"warp\"}", "InvalidArgument"},   // unknown command
      {"{\"cmd\":\"hello\"}", "InvalidArgument"},  // missing level
      {"{\"cmd\":\"hello\",\"level\":7}", "InvalidArgument"},
      {"{\"cmd\":\"hello\",\"level\":\"tswift\"}",
       "SecurityViolation"},  // level not in the lattice
      {"{\"cmd\":\"hello\",\"level\":\"s\",\"mode\":\"warp9\"}",
       "InvalidArgument"},  // bad mode
      {"{\"cmd\":\"query\",\"goal\":42}", "InvalidArgument"},
      {"{\"cmd\":\"query\",\"goal\":\"\"}", "InvalidArgument"},
      {"{\"cmd\":\"query\",\"goal\":\"x\",\"deadline_ms\":-5}",
       "InvalidArgument"},
      {"{\"cmd\":\"query\",\"goal\":\"x\",\"proofs\":\"yes\"}",
       "InvalidArgument"},
      {"{\"cmd\":\"sql\",\"sql\":true}", "InvalidArgument"},
      {"{\"cmd\":\"query\",\"goal\":\"not valid multilog ((\"}",
       "SecurityViolation"},  // parse fails later, but hello comes first
  };
  for (const auto& item : corpus) {
    ASSERT_TRUE(client.SendRaw(item.payload).ok()) << item.payload;
    EXPECT_EQ(ReadErrorCode(client), item.code) << item.payload;
  }
  // After the whole corpus the very same connection still binds and
  // answers.
  ASSERT_TRUE(client.Hello("s").ok());
  EXPECT_TRUE(client.Query(kGoal).ok());
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, NonUtf8PayloadIsAParseError) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.SendRaw("{\"cmd\":\"\xc0\xaf\"}").ok());
  EXPECT_EQ(ReadErrorCode(client), "ParseError");
  ASSERT_TRUE(client.SendRaw(std::string("\xff\xfe\x80", 3)).ok());
  EXPECT_EQ(ReadErrorCode(client), "ParseError");
  ASSERT_TRUE(client.Hello("s").ok());  // connection survived
}

TEST_F(RobustnessTest, GoalThatFailsToParseIsAStructuredError) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> r = client.Query("?- ((((");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError() || r.status().IsInvalidArgument())
      << r.status();
  EXPECT_TRUE(client.Query(kGoal).ok());
}

TEST_F(RobustnessTest, NonNumericFrameHeaderClosesWithParseError) {
  StartServer();
  Client client = MustConnect();
  SendBytes(client, "GET / HTTP/1.1\r\n\r\n");  // someone's browser
  EXPECT_EQ(ReadErrorCode(client), "ParseError");
  Result<std::string> next = client.ReadRaw();
  EXPECT_FALSE(next.ok());  // connection closed
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, OversizedDeclaredLengthIsRejectedWithoutReading) {
  ServerOptions options;
  options.max_request_bytes = 1024;
  StartServer(options);
  Client client = MustConnect();
  SendBytes(client, "999999999\n");  // declares ~1 GB, sends nothing
  EXPECT_EQ(ReadErrorCode(client), "ResourceExhausted");
  Result<std::string> next = client.ReadRaw();
  EXPECT_FALSE(next.ok());  // framing is gone; server closed
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, AbsurdlyLongHeaderIsRejected) {
  StartServer();
  Client client = MustConnect();
  SendBytes(client, std::string(64, '9'));  // never even sends the '\n'
  EXPECT_EQ(ReadErrorCode(client), "ParseError");
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, TruncatedPayloadClosesCleanly) {
  StartServer();
  {
    Client client = MustConnect();
    // Declare 100 bytes, deliver 10, hang up mid-frame.
    SendBytes(client, "100\n0123456789");
  }  // destructor closes the socket
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, EmptyFrameIsAPayloadError) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.SendRaw("").ok());  // "0\n" on the wire
  EXPECT_EQ(ReadErrorCode(client), "ParseError");
  ASSERT_TRUE(client.Hello("s").ok());  // still open
}

TEST_F(RobustnessTest, ImmediateDisconnectIsHarmless) {
  StartServer();
  for (int i = 0; i < 8; ++i) {
    Client client = MustConnect();  // connect, say nothing, vanish
  }
  ExpectServerStillHealthy();
}

TEST(ParsePortTest, AcceptsTheFullValidRange) {
  for (const auto& [text, want] :
       {std::pair<const char*, uint16_t>{"1", 1},
        {"80", 80},
        {"7690", 7690},
        {"65535", 65535}}) {
    Result<uint16_t> port = ParsePort(text);
    ASSERT_TRUE(port.ok()) << text << ": " << port.status();
    EXPECT_EQ(*port, want) << text;
  }
}

TEST(ParsePortTest, RejectsWhatAtoiWouldMangle) {
  // "70000" used to truncate to 4464 via the uint16_t cast; every one
  // of these must now be an InvalidArgument, not a wrong port.
  for (const char* text : {"", "0", "65536", "70000", "131073", "999999",
                           "-1", "80x", "x80", " 80", "8 0", "0x50"}) {
    Result<uint16_t> port = ParsePort(text);
    EXPECT_FALSE(port.ok()) << text << " -> " << static_cast<int>(*port);
    if (!port.ok()) {
      EXPECT_TRUE(port.status().IsInvalidArgument()) << text;
    }
  }
}

TEST(ParsePortTest, EphemeralZeroIsDaemonOnly) {
  // The daemon keeps "--port 0" = bind an OS-assigned port; everything
  // else that was junk without the flag stays junk with it.
  Result<uint16_t> port = ParsePort("0", /*allow_ephemeral=*/true);
  ASSERT_TRUE(port.ok()) << port.status();
  EXPECT_EQ(*port, 0);
  for (const char* text : {"", "-0", "65536", "0x0"}) {
    EXPECT_FALSE(ParsePort(text, /*allow_ephemeral=*/true).ok()) << text;
  }
}

}  // namespace
}  // namespace multilog::server
