// The churn-leak regression test (the headline bugfix of the event-loop
// refactor): a daemon must be able to serve an unbounded sequence of
// short-lived sessions in bounded memory. The pre-refactor server
// leaked one heap-allocated Connection plus one 8 MiB-stack std::thread
// per accepted session into append-only vectors that were only freed at
// Stop(); a few thousand connect/disconnect cycles was enough to pin
// gigabytes of address space and thousands of dead-but-joinable
// threads. This test churns ~5k sequential sessions and asserts
//
//  1. the server *reports* reclamation: the stats surface carries a
//     connections.reaped counter that keeps pace with accepted (the
//     seed server has no such field, so this fails against it),
//  2. the process thread count returns to its baseline (no joinable
//     thread accumulation), and
//  3. virtual memory growth over the whole churn stays far below one
//     leaked thread stack per session.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

/// Reads an integer-valued field ("VmSize", "Threads", ...) from
/// /proc/self/status; -1 if absent. Values reported in kB keep the kB.
long ProcStatusValue(const std::string& key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key + ":", 0) != 0) continue;
    std::istringstream fields(line.substr(key.size() + 1));
    long value = -1;
    fields >> value;
    return value;
  }
  return -1;
}

class ServerChurnTest : public ServerTestBase {};

TEST_F(ServerChurnTest, FiveThousandSessionChurnStaysBounded) {
  StartServer();
  constexpr int kCycles = 5000;

  // Warm up: let the thread pool, allocator arenas, and lazily built
  // engine structures reach steady state before taking baselines.
  for (int i = 0; i < 100; ++i) {
    Client client = MustConnect();
    ASSERT_TRUE(client.Hello("s").ok());
    ASSERT_TRUE(client.Query(kGoal).ok());
  }
  const long baseline_threads = ProcStatusValue("Threads");
  const long baseline_vm_kb = ProcStatusValue("VmSize");
  ASSERT_GT(baseline_threads, 0);
  ASSERT_GT(baseline_vm_kb, 0);

  for (int i = 0; i < kCycles; ++i) {
    Client client = MustConnect();
    ASSERT_TRUE(client.Hello("s").ok()) << "cycle " << i;
    if (i % 8 == 0) {
      Result<Json> r = client.Query(kGoal);
      ASSERT_TRUE(r.ok()) << "cycle " << i << ": " << r.status();
      ASSERT_EQ(r->GetInt("count"), 1) << "cycle " << i;
    }
    // Half the sessions say goodbye, half just vanish (destructor
    // closes the socket); the server must reclaim both kinds.
    if (i % 2 == 0) client.Bye();
  }

  // (1) The server accounts for every reclaimed session. The seed
  // server's stats have no connections.reaped at all - Find() returns
  // null there - and its open count equals accepted because nothing
  // was ever freed.
  Client observer = MustConnect();
  ASSERT_TRUE(observer.Hello("s").ok());
  Result<Json> stats = observer.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* conns = stats->Find("stats")->Find("connections");
  ASSERT_NE(conns, nullptr);
  const Json* reaped = conns->Find("reaped");
  ASSERT_NE(reaped, nullptr)
      << "stats report no connections.reaped counter: the server does "
         "not reclaim (or account for) closed sessions";
  const int64_t accepted = conns->GetInt("accepted");
  const int64_t open = conns->GetInt("open");
  EXPECT_GE(accepted, kCycles);
  // Sequential churn: everything but the observer (and at most a few
  // FINs the loop hasn't drained yet) must already be reaped.
  EXPECT_LE(open, 16) << "closed sessions are accumulating as open";
  EXPECT_GE(reaped->int_value(), accepted - open);

  // (2) No thread growth: the leaked-thread-per-session server would
  // sit on ~5000 extra joinable threads here.
  const long threads_now = ProcStatusValue("Threads");
  EXPECT_LE(threads_now, baseline_threads + 4)
      << "thread count grew from " << baseline_threads << " to "
      << threads_now << " over " << kCycles << " sessions";

  // (3) Bounded memory: one leaked 8 MiB thread stack per session
  // would grow VmSize by ~40 GiB; allow generous allocator noise.
  const long vm_now_kb = ProcStatusValue("VmSize");
  EXPECT_LE(vm_now_kb - baseline_vm_kb, 512L * 1024)
      << "VmSize grew by " << (vm_now_kb - baseline_vm_kb) << " kB over "
      << kCycles << " sessions";
}

}  // namespace
}  // namespace multilog::server
