// FrameDecoder: the nonblocking reassembly half of the wire protocol.
// The contract under test is byte-split invariance - a frame stream
// must decode identically no matter where the kernel happens to cut the
// reads - plus error parity with the blocking ReadFrame on the same
// hostile inputs the protocol robustness corpus replays.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace multilog::server {
namespace {

std::string Frame(const std::string& payload) {
  return std::to_string(payload.size()) + "\n" + payload;
}

/// Feeds `bytes` in two pieces split at `cut` and collects everything
/// the decoder yields.
struct Decoded {
  std::vector<std::string> payloads;
  Status error = Status::OK();  // first framing error, if any
};

Decoded DecodeSplit(const std::string& bytes, size_t cut,
                    size_t max_bytes = 1u << 20) {
  FrameDecoder decoder(max_bytes);
  Decoded out;
  const auto drain = [&] {
    while (true) {
      Result<std::optional<std::string>> next = decoder.Next();
      if (!next.ok()) {
        if (out.error.ok()) out.error = next.status();
        return;
      }
      if (!next->has_value()) return;
      out.payloads.push_back(**next);
    }
  };
  decoder.Feed(bytes.data(), cut);
  drain();
  if (out.error.ok()) {
    decoder.Feed(bytes.data() + cut, bytes.size() - cut);
    drain();
  }
  return out;
}

TEST(FrameDecoderTest, ReassemblesAtEveryByteBoundary) {
  const std::string stream =
      Frame(R"({"cmd":"ping"})") + Frame(R"({"cmd":"stats"})") +
      Frame("") + Frame(std::string(300, 'x'));
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    Decoded out = DecodeSplit(stream, cut);
    ASSERT_TRUE(out.error.ok()) << "cut=" << cut << ": " << out.error;
    ASSERT_EQ(out.payloads.size(), 4u) << "cut=" << cut;
    EXPECT_EQ(out.payloads[0], R"({"cmd":"ping"})") << "cut=" << cut;
    EXPECT_EQ(out.payloads[1], R"({"cmd":"stats"})") << "cut=" << cut;
    EXPECT_EQ(out.payloads[2], "");
    EXPECT_EQ(out.payloads[3], std::string(300, 'x'));
  }
}

TEST(FrameDecoderTest, OneByteAtATime) {
  const std::string stream = Frame("hello") + Frame("world");
  FrameDecoder decoder(1024);
  std::vector<std::string> payloads;
  for (char c : stream) {
    decoder.Feed(&c, 1);
    while (true) {
      Result<std::optional<std::string>> next = decoder.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      payloads.push_back(**next);
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "hello");
  EXPECT_EQ(payloads[1], "world");
}

// The malformed corpus: the same inputs protocol_robustness_test sends
// over a socket, decoded directly. Every split position must produce
// the same terminal error.

TEST(FrameDecoderTest, EmptyHeaderIsParseError) {
  for (size_t cut = 0; cut <= 1; ++cut) {
    Decoded out = DecodeSplit("\nrest", cut);
    ASSERT_FALSE(out.error.ok());
    EXPECT_TRUE(out.error.IsParseError()) << out.error;
    EXPECT_NE(out.error.message().find("empty length"), std::string::npos);
  }
}

TEST(FrameDecoderTest, NonDecimalHeaderIsParseError) {
  const std::string bytes = "12a\n{}";
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    Decoded out = DecodeSplit(bytes, cut);
    ASSERT_FALSE(out.error.ok()) << "cut=" << cut;
    EXPECT_TRUE(out.error.IsParseError()) << out.error;
    EXPECT_NE(out.error.message().find("expected a decimal length"),
              std::string::npos);
  }
}

TEST(FrameDecoderTest, NegativeLengthIsParseError) {
  Decoded out = DecodeSplit("-5\nhello", 3);
  ASSERT_FALSE(out.error.ok());
  EXPECT_TRUE(out.error.IsParseError()) << out.error;
}

TEST(FrameDecoderTest, OverlongHeaderIsParseError) {
  // 21 digits: past any plausible length, rejected before overflow.
  const std::string bytes = std::string(21, '9') + "\n";
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    Decoded out = DecodeSplit(bytes, cut);
    ASSERT_FALSE(out.error.ok()) << "cut=" << cut;
    EXPECT_TRUE(out.error.IsParseError()) << out.error;
    EXPECT_NE(out.error.message().find("length too long"),
              std::string::npos);
  }
}

TEST(FrameDecoderTest, OversizedFrameIsResourceExhaustedBeforePayload) {
  // The declared length alone must trip the limit - no payload bytes
  // follow, so buffering-then-checking would hang instead of failing.
  const std::string bytes = "2048\n";
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    Decoded out = DecodeSplit(bytes, cut, /*max_bytes=*/1024);
    ASSERT_FALSE(out.error.ok()) << "cut=" << cut;
    EXPECT_TRUE(out.error.IsResourceExhausted()) << out.error;
  }
}

TEST(FrameDecoderTest, ErrorIsTerminal) {
  FrameDecoder decoder(1024);
  decoder.Feed("x\n", 2);
  ASSERT_FALSE(decoder.Next().ok());
  // Even well-formed bytes after the damage keep failing: the stream
  // cannot be resynchronized.
  const std::string good = Frame("{}");
  decoder.Feed(good.data(), good.size());
  ASSERT_FALSE(decoder.Next().ok());
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_FALSE(decoder.OnEof().ok());
}

TEST(FrameDecoderTest, EofStatusTracksFramePosition) {
  FrameDecoder decoder(1024);
  // At a boundary: clean.
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_TRUE(decoder.OnEof().ok());
  // Inside a header.
  decoder.Feed("12", 2);
  ASSERT_TRUE(decoder.Next().ok());
  EXPECT_TRUE(decoder.mid_frame());
  Status in_header = decoder.OnEof();
  ASSERT_FALSE(in_header.ok());
  EXPECT_NE(in_header.message().find("header"), std::string::npos);
  // Header complete, payload truncated.
  decoder.Feed("\nabcdef", 7);
  ASSERT_TRUE(decoder.Next().ok());  // still needs 6 more bytes
  EXPECT_TRUE(decoder.mid_frame());
  Status in_payload = decoder.OnEof();
  ASSERT_FALSE(in_payload.ok());
  EXPECT_NE(in_payload.message().find("6 of 12"), std::string::npos);
  // The rest arrives: the frame completes and EOF is clean again.
  decoder.Feed("ghijkl", 6);
  Result<std::optional<std::string>> frame = decoder.Next();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ(**frame, "abcdefghijkl");
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_TRUE(decoder.OnEof().ok());
}

TEST(FrameDecoderTest, PipelinedBurstDecodesInOrder) {
  FrameDecoder decoder(1u << 20);
  std::string burst;
  for (int i = 0; i < 100; ++i) {
    burst += Frame("payload-" + std::to_string(i));
  }
  decoder.Feed(burst.data(), burst.size());
  for (int i = 0; i < 100; ++i) {
    Result<std::optional<std::string>> next = decoder.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    EXPECT_EQ(**next, "payload-" + std::to_string(i));
  }
  Result<std::optional<std::string>> done = decoder.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

}  // namespace
}  // namespace multilog::server
