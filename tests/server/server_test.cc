// Functional tests for multilogd: session binding, query semantics over
// the wire, per-query deadlines, admission control, and STATS.

#include "server/server.h"

#include <gtest/gtest.h>

#include <string>

#include "server/client.h"
#include "server_test_util.h"

namespace multilog::server {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class ServerTest : public ServerTestBase {};

TEST_F(ServerTest, HelloBindsLevelAndMode) {
  StartServer();
  Client client = MustConnect();
  Result<Json> hello = client.Hello("s", "operational");
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_EQ(hello->GetString("level"), "s");
  EXPECT_EQ(hello->GetString("mode"), "operational");
  EXPECT_EQ(hello->GetString("server"), "multilogd");
  EXPECT_TRUE(hello->GetBool("sql"));
}

TEST_F(ServerTest, QueryAnswersDependOnSessionLevel) {
  StartServer();
  // Figure 11's query: provable at s (the answer {R=u}), not at u.
  Client at_s = MustConnect();
  ASSERT_TRUE(at_s.Hello("s").ok());
  Result<Json> r = at_s.Query(kGoal);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->GetInt("count"), 1);
  EXPECT_EQ(r->Find("answers")->array_items()[0].string_value(), "{R=u}");

  Client at_u = MustConnect();
  ASSERT_TRUE(at_u.Hello("u").ok());
  Result<Json> none = at_u.Query(kGoal);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_EQ(none->GetInt("count"), 0);
}

TEST_F(ServerTest, AllModesAgreeOverTheWire) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  // Theorem 6.1 exercised through per-query mode overrides.
  for (const char* mode : {"operational", "reduced", "check_both"}) {
    Result<Json> r = client.Query(kGoal, -1, mode);
    ASSERT_TRUE(r.ok()) << mode << ": " << r.status();
    EXPECT_EQ(r->GetString("mode"), mode);
    ASSERT_EQ(r->GetInt("count"), 1) << mode;
    EXPECT_EQ(r->Find("answers")->array_items()[0].string_value(), "{R=u}");
  }
}

TEST_F(ServerTest, OperationalModeReturnsProofs) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s", "operational").ok());
  Result<Json> r = client.Query(kGoal, -1, "", /*proofs=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  const Json* proofs = r->Find("proofs");
  ASSERT_NE(proofs, nullptr);
  ASSERT_EQ(proofs->array_items().size(), 1u);
  EXPECT_NE(proofs->array_items()[0].string_value().find("descend-o"),
            std::string::npos);
}

TEST_F(ServerTest, QueryBeforeHelloIsRejectedButConnectionSurvives) {
  StartServer();
  Client client = MustConnect();
  Result<Json> r = client.Query(kGoal);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSecurityViolation()) << r.status();
  // Recoverable: bind and retry on the same connection.
  ASSERT_TRUE(client.Hello("s").ok());
  EXPECT_TRUE(client.Query(kGoal).ok());
}

TEST_F(ServerTest, SecondHelloIsRejected) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("c").ok());
  Result<Json> again = client.Hello("s");
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsInvalidArgument()) << again.status();
  // The original binding is untouched.
  EXPECT_TRUE(client.Query(kGoal).ok());
}

TEST_F(ServerTest, SqlRunsAtTheSessionLevelAndIsPinned) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("u").ok());
  Result<Json> rows = client.Sql("select * from mission");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->GetInt("count"), 5);  // Figure 2's u-level view

  // The session clearance cannot be escalated over the wire.
  Result<Json> escalate = client.Sql("user context s");
  ASSERT_FALSE(escalate.ok());
  EXPECT_TRUE(escalate.status().IsSecurityViolation()) << escalate.status();
  // Reads still work afterwards.
  EXPECT_TRUE(client.Sql("select * from mission").ok());
}

TEST_F(ServerTest, ExpiredDeadlineReturnsDeadlineExceededAndConnectionLives) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> dead = client.Query(kGoal, /*deadline_ms=*/0);
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();

  // Same connection, same query, generous deadline: full answer.
  Result<Json> alive = client.Query(kGoal, /*deadline_ms=*/60000);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_EQ(alive->GetInt("count"), 1);

  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* queries = stats->Find("stats")->Find("queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->GetInt("deadline_exceeded"), 1);
  EXPECT_EQ(queries->GetInt("ok"), 1);
}

TEST_F(ServerTest, ServerDefaultDeadlineApplies) {
  ServerOptions options;
  options.default_deadline_ms = 60000;
  StartServer(options);
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  // The generous default doesn't interfere with a normal query.
  EXPECT_TRUE(client.Query(kGoal).ok());
}

TEST_F(ServerTest, StatsAreConsistentWithTraffic) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s", "reduced").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Query(kGoal).ok());
  }
  ASSERT_TRUE(client.Query(kGoal, -1, "operational").ok());
  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();

  const Json* queries = stats->Find("stats")->Find("queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->GetInt("ok"), 6);
  EXPECT_EQ(queries->GetInt("errors"), 0);
  EXPECT_EQ(queries->GetInt("rows_returned"), 6);
  const Json* at_s = queries->Find("by_level")->Find("s");
  ASSERT_NE(at_s, nullptr);
  EXPECT_EQ(at_s->GetInt("reduced"), 5);
  EXPECT_EQ(at_s->GetInt("operational"), 1);
  const Json* latency = queries->Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->GetInt("count"), 6);
  EXPECT_GT(latency->Find("p50_ms")->number_value(), 0.0);
  EXPECT_LE(latency->Find("p50_ms")->number_value(),
            latency->Find("p99_ms")->number_value());

  const Json* conns = stats->Find("stats")->Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_EQ(conns->GetInt("accepted"), 1);
  EXPECT_EQ(conns->GetInt("open"), 1);
}

TEST_F(ServerTest, ConnectionLimitRejectsTheOverflowConnection) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  Client first = MustConnect();
  ASSERT_TRUE(first.Hello("s").ok());  // ensures the first conn is admitted

  Result<Client> second = Client::Connect(server_->port());
  ASSERT_TRUE(second.ok());
  // The server sends a ResourceExhausted frame and closes.
  Result<std::string> frame = second->ReadRaw();
  ASSERT_TRUE(frame.ok()) << frame.status();
  Result<Json> parsed = Json::Parse(*frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(parsed->GetString("code"), "ResourceExhausted");

  // The admitted connection is unaffected.
  EXPECT_TRUE(first.Query(kGoal).ok());
}

TEST_F(ServerTest, InFlightLimitRejectsQueriesNotConnections) {
  ServerOptions options;
  options.max_in_flight = 0;  // every query is "one too many"
  StartServer(options);
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> r = client.Query(kGoal);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  // Non-query commands still work on the same connection.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Stats().ok());
}

TEST_F(ServerTest, PingAndByeRoundTrip) {
  StartServer();
  Client client = MustConnect();
  Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->GetBool("pong"));
  EXPECT_TRUE(client.Bye().ok());
  // The server closed its end; the next round-trip fails cleanly.
  EXPECT_FALSE(client.Ping().ok());
}

TEST_F(ServerTest, GracefulStopWithOpenConnections) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Hello("s").ok());
  ASSERT_TRUE(client.Query(kGoal).ok());
  server_->Stop();  // must drain and join without hanging
  EXPECT_FALSE(client.Ping().ok());
}

}  // namespace
}  // namespace multilog::server
