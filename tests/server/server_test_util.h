#ifndef MULTILOG_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define MULTILOG_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "mls/sample_data.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"

namespace multilog::server {

/// Starts a multilogd over the paper's D1 database (Figure 10) with the
/// Figure 1 Mission relation in the SQL catalog, on an ephemeral port.
class ServerTestBase : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    dataset_ = std::move(ds).value();
    Result<ml::Engine> engine = ml::Engine::FromSource(mls::D1Source());
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::make_unique<ml::Engine>(std::move(engine).value());
    options.port = 0;
    server_ = std::make_unique<Server>(
        engine_.get(), options,
        std::vector<SqlCatalogEntry>{{"mission", dataset_.mission.get()}});
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Client MustConnect() {
    Result<Client> c = Client::Connect(server_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  mls::MissionDataset dataset_;
  std::unique_ptr<ml::Engine> engine_;
  std::unique_ptr<Server> server_;
};

}  // namespace multilog::server

#endif  // MULTILOG_TESTS_SERVER_SERVER_TEST_UTIL_H_
