// Crash-injection corpus for a replica's LOCAL durability: a replica
// that is killed mid-apply (simulated by truncating its WAL copy at
// every byte boundary) must restart on some clean prefix of the
// primary's history, report that prefix's seqno as its resume cursor,
// and - after re-applying the remaining records through the same
// ApplyReplicated path the live stream uses - end byte-identical to
// the primary at every clearance. Records are fed through
// Engine::ApplyReplicated directly (no sockets): that IS the apply
// path, and driving it directly makes the corpus deterministic.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "storage/storage.h"
#include "storage/wal.h"

namespace multilog::replication {
namespace {

using storage::Storage;
using storage::WalRecord;
using storage::WalRecordType;

constexpr char kBaseSource[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

int g_dir_counter = 0;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/replcrash_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(g_dir_counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Copies a replica data dir, truncating the WAL copy to `wal_bytes` -
/// the kill-9-mid-apply simulation.
std::string CloneDirTruncated(const std::string& src_dir, size_t wal_bytes,
                              const std::string& tag) {
  const std::string dst = FreshDir(tag);
  WriteFile(dst + "/snapshot.mls", ReadFile(src_dir + "/snapshot.mls"));
  WriteFile(dst + "/wal.log",
            ReadFile(src_dir + "/wal.log").substr(0, wal_bytes));
  return dst;
}

/// The primary's history the corpus replays: mixed levels (including
/// both incomparable ones), a retract, and mixed classifications.
std::vector<WalRecord> PrimaryHistory() {
  std::vector<WalRecord> records;
  auto add = [&](WalRecordType type, const char* level, const char* fact) {
    WalRecord r;
    r.type = type;
    r.seqno = records.size() + 1;
    r.level = level;
    r.fact = fact;
    records.push_back(std::move(r));
  };
  add(WalRecordType::kAssert, "u", "u[item(k1 : id -u-> k1, val -u-> red)].");
  add(WalRecordType::kAssert, "a",
      "a[item(k2 : id -a-> k2, val -a-> green)].");
  add(WalRecordType::kAssert, "b", "b[item(k3 : id -b-> k3, val -b-> blue)].");
  add(WalRecordType::kAssert, "ts",
      "ts[item(k4 : id -ts-> k4, val -ts-> black)].");
  add(WalRecordType::kRetract, "a",
      "a[item(k2 : id -a-> k2, val -a-> green)].");
  add(WalRecordType::kAssert, "a",
      "a[item(k5 : id -u-> k5, val -a-> white)].");
  return records;
}

/// Per-clearance query dump: one string covering what each level can
/// see, so "byte-identical at all clearances" is a single compare.
std::string ClearanceDumps(ml::Engine* engine) {
  std::string out;
  for (const char* level : {"u", "a", "b", "ts"}) {
    const std::string goal = "?- " + std::string(level) + "[item(K : id -" +
                             level + "-> K)].";
    Result<ml::QueryResult> r =
        engine->QuerySource(goal, level, ml::ExecMode::kReduced, nullptr);
    EXPECT_TRUE(r.ok()) << level << ": " << r.status();
    out += std::string(level) + ":";
    if (r.ok()) {
      for (const auto& answer : r->answers) out += " " + answer.ToString();
    }
    out += "\n";
  }
  return out;
}

/// The kill-mid-apply sweep. For EVERY byte length the replica's WAL
/// could have been cut at:
///  1. recovery succeeds on a clean prefix (never a half-applied or
///     corrupt state),
///  2. AppliedSeqno() equals the length of that prefix - the exact
///     cursor the replicator resumes the stream from, so nothing is
///     skipped and nothing is double-applied,
///  3. re-applying the missing records through ApplyReplicated lands
///     the replica byte-identical to the primary (full dump AND
///     per-clearance query results).
TEST(ReplicaCrashTest, TruncationSweepResumesFromPersistedSeqno) {
  const std::vector<WalRecord> history = PrimaryHistory();

  // The primary's reference states: dumps[k] after the first k records.
  std::vector<std::string> dumps;
  std::string final_clearances;
  {
    Result<ml::Engine> primary = ml::Engine::FromSource(kBaseSource);
    ASSERT_TRUE(primary.ok()) << primary.status();
    dumps.push_back(primary->DumpSource());
    for (const WalRecord& r : history) {
      ASSERT_TRUE(primary->ApplyReplicated(r).ok()) << r.fact;
      dumps.push_back(primary->DumpSource());
    }
    final_clearances = ClearanceDumps(&*primary);
  }

  // A replica applies the full stream, persisting each record to its
  // own WAL (the apply path's write-ahead discipline).
  const std::string replica_dir = FreshDir("sweep_src");
  {
    Result<Storage> st = Storage::Open(replica_dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(replica.ok()) << replica.status();
    for (const WalRecord& r : history) {
      Result<ml::WriteResult> w = replica->ApplyReplicated(r);
      ASSERT_TRUE(w.ok()) << r.fact << ": " << w.status();
      ASSERT_EQ(w->seqno, r.seqno) << "the primary's seqno must be kept";
    }
    ASSERT_EQ(replica->AppliedSeqno(), history.size());
  }

  const size_t wal_size = ReadFile(replica_dir + "/wal.log").size();
  ASSERT_GT(wal_size, 0u);
  size_t torn_recoveries = 0;
  for (size_t cut = 0; cut <= wal_size; ++cut) {
    const std::string crashed = CloneDirTruncated(replica_dir, cut, "sweep");
    Result<Storage> st = Storage::Open(crashed, kBaseSource);
    ASSERT_TRUE(st.ok()) << "cut=" << cut << ": " << st.status();
    if (!st->recovered().data_loss.ok()) ++torn_recoveries;
    const size_t k = st->recovered().records.size();
    ASSERT_LE(k, history.size()) << "cut=" << cut;

    Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(replica.ok()) << "cut=" << cut << ": " << replica.status();
    // (1)+(2): a clean prefix, and the resume cursor names it exactly.
    EXPECT_EQ(replica->DumpSource(), dumps[k]) << "cut=" << cut;
    EXPECT_EQ(replica->AppliedSeqno(), k) << "cut=" << cut;

    // (3): catch-up = the primary re-ships seqnos > AppliedSeqno().
    for (size_t i = k; i < history.size(); ++i) {
      Result<ml::WriteResult> w = replica->ApplyReplicated(history[i]);
      ASSERT_TRUE(w.ok()) << "cut=" << cut << " record " << i << ": "
                          << w.status();
    }
    EXPECT_EQ(replica->DumpSource(), dumps.back()) << "cut=" << cut;
    EXPECT_EQ(replica->AppliedSeqno(), history.size()) << "cut=" << cut;
    EXPECT_EQ(ClearanceDumps(&*replica), final_clearances) << "cut=" << cut;
  }
  // Most cuts land mid-record; the sweep must have exercised torn
  // frames, not just clean boundaries.
  EXPECT_GT(torn_recoveries, wal_size / 2);
}

/// The snapshot-then-tail handoff can replay the boundary record, and a
/// primary re-shipping from a stale cursor can replay many. Every
/// duplicate must be a no-op - same final bytes, same seqno.
TEST(ReplicaCrashTest, DuplicateRecordsAreIdempotentNoOps) {
  const std::vector<WalRecord> history = PrimaryHistory();
  const std::string dir = FreshDir("dup");
  std::string want;
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(replica.ok()) << replica.status();

    for (const WalRecord& r : history) {
      ASSERT_TRUE(replica->ApplyReplicated(r).ok());
    }
    want = replica->DumpSource();
    const uint64_t wal_records_before = st->wal_records();

    // Re-ship the whole stream, then the last record once more.
    for (const WalRecord& r : history) {
      Result<ml::WriteResult> w = replica->ApplyReplicated(r);
      ASSERT_TRUE(w.ok()) << r.fact << ": " << w.status();
    }
    ASSERT_TRUE(replica->ApplyReplicated(history.back()).ok());

    EXPECT_EQ(replica->DumpSource(), want);
    EXPECT_EQ(replica->AppliedSeqno(), history.size());
    EXPECT_EQ(st->wal_records(), wal_records_before)
        << "duplicate records must not be re-logged to the local WAL";
  }

  // The no-op duplicates did not poison durability: a reopen recovers
  // the same bytes and the same cursor.
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
  ASSERT_TRUE(replica.ok()) << replica.status();
  EXPECT_EQ(replica->DumpSource(), want);
  EXPECT_EQ(replica->AppliedSeqno(), history.size());
}

/// A record whose seqno skips ahead (the stream lost a frame) must be
/// refused, not applied - gaps are divergence, and the replicator's
/// answer to divergence is a snapshot resync, never a silent skip.
TEST(ReplicaCrashTest, SeqnoGapIsRefused) {
  const std::vector<WalRecord> history = PrimaryHistory();
  const std::string dir = FreshDir("gap");
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
  ASSERT_TRUE(replica.ok()) << replica.status();

  ASSERT_TRUE(replica->ApplyReplicated(history[0]).ok());
  WalRecord gap = history[2];  // seqno 3 arriving after seqno 1
  Result<ml::WriteResult> w = replica->ApplyReplicated(gap);
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsInternal()) << w.status();
  EXPECT_EQ(replica->AppliedSeqno(), 1u) << "the gap record must not apply";

  // The in-order record still lands afterwards: refusal is clean.
  ASSERT_TRUE(replica->ApplyReplicated(history[1]).ok());
  EXPECT_EQ(replica->AppliedSeqno(), 2u);
}

/// InstallSnapshot is the resync path: it must replace the database,
/// move the cursor, and persist - a reopen recovers the snapshot state
/// without the pre-snapshot records.
TEST(ReplicaCrashTest, InstallSnapshotPersistsAcrossRestart) {
  const std::vector<WalRecord> history = PrimaryHistory();

  // The primary's state at seqno 4 is what the snapshot ships.
  Result<ml::Engine> primary = ml::Engine::FromSource(kBaseSource);
  ASSERT_TRUE(primary.ok()) << primary.status();
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary->ApplyReplicated(history[i]).ok());
  }
  const std::string snapshot_source = primary->DumpSource();

  const std::string dir = FreshDir("snap");
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(replica.ok()) << replica.status();
    // The replica had fallen behind with only 1 record applied.
    ASSERT_TRUE(replica->ApplyReplicated(history[0]).ok());
    ASSERT_TRUE(replica->InstallSnapshot(4, snapshot_source).ok());
    EXPECT_EQ(replica->AppliedSeqno(), 4u);
    EXPECT_EQ(replica->DumpSource(), snapshot_source);
    // The tail after the snapshot applies on top.
    for (size_t i = 4; i < history.size(); ++i) {
      ASSERT_TRUE(replica->ApplyReplicated(history[i]).ok());
    }
  }

  // Restart: local recovery alone (no stream) lands on the full state.
  for (size_t i = 4; i < history.size(); ++i) {
    ASSERT_TRUE(primary->ApplyReplicated(history[i]).ok());
  }
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<ml::Engine> replica = ml::Engine::FromStorage(&*st);
  ASSERT_TRUE(replica.ok()) << replica.status();
  EXPECT_EQ(replica->AppliedSeqno(), history.size());
  EXPECT_EQ(replica->DumpSource(), primary->DumpSource());
}

}  // namespace
}  // namespace multilog::replication
