// End-to-end replication tests: a real primary multilogd, a real
// Replicator (and where needed a real replica server), loopback TCP in
// between. The tentpole invariant: at the replica's applied seqno, its
// database is byte-identical to the primary's - at every clearance,
// because DumpSource equality covers the whole multilevel store - and
// seqnos are applied exactly once, in order, across live tail, snapshot
// catch-up, checkpoint resets, and reconnects.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "multilog/engine.h"
#include "replication/replicator.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage.h"

namespace multilog::replication {
namespace {

constexpr char kBaseSource[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

int g_dir_counter = 0;

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/repl_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(g_dir_counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string Fact(int i, const std::string& level) {
  return level + "[item(k" + std::to_string(i) + " : id -" + level + "-> k" +
         std::to_string(i) + ", val -" + level + "-> v" + std::to_string(i) +
         ")].";
}

/// Polls `pred` until it holds or the deadline passes.
template <typename Pred>
bool WaitFor(Pred pred, int64_t timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// A durable primary: storage + engine + server on an ephemeral port.
/// Heap-allocated only (the engine and server hold pointers into their
/// siblings, so the aggregate must never move).
struct Primary {
  std::optional<storage::Storage> storage;
  std::optional<ml::Engine> engine;
  std::unique_ptr<server::Server> server;

  static std::unique_ptr<Primary> Start(const std::string& dir,
                                        uint16_t port = 0) {
    auto p = std::make_unique<Primary>();
    Result<storage::Storage> st = storage::Storage::Open(dir, kBaseSource);
    EXPECT_TRUE(st.ok()) << st.status();
    p->storage.emplace(std::move(st).value());
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*p->storage);
    EXPECT_TRUE(engine.ok()) << engine.status();
    p->engine.emplace(std::move(engine).value());
    server::ServerOptions options;
    options.port = port;
    p->server = std::make_unique<server::Server>(&*p->engine, options);
    if (!p->server->Start().ok()) return nullptr;
    return p;
  }

  uint16_t port() const { return server->port(); }

  /// Asserts `fact` at `level` over the wire (the WAL path replication
  /// ships) and returns its seqno.
  uint64_t Write(const std::string& level, const std::string& fact) {
    Result<server::Client> c = server::Client::Connect(port());
    EXPECT_TRUE(c.ok()) << c.status();
    EXPECT_TRUE(c->Hello(level).ok());
    Result<server::Json> resp = c->Assert(fact);
    EXPECT_TRUE(resp.ok()) << resp.status();
    c->Bye();
    return static_cast<uint64_t>(resp.ok() ? resp->GetInt("seqno") : 0);
  }
};

/// A durable replica: its own storage + engine + replicator (no server
/// unless the test adds one). Heap-allocated only, as with Primary.
struct Replica {
  std::optional<storage::Storage> storage;
  std::optional<ml::Engine> engine;
  std::unique_ptr<Replicator> replicator;

  static std::unique_ptr<Replica> Start(const std::string& dir,
                                        uint16_t primary_port) {
    std::unique_ptr<Replica> r = Open(dir);
    r->Connect(primary_port);
    return r;
  }

  /// Recover local state only; no connection yet.
  static std::unique_ptr<Replica> Open(const std::string& dir) {
    auto r = std::make_unique<Replica>();
    Result<storage::Storage> st = storage::Storage::Open(dir, kBaseSource);
    EXPECT_TRUE(st.ok()) << st.status();
    r->storage.emplace(std::move(st).value());
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*r->storage);
    EXPECT_TRUE(engine.ok()) << engine.status();
    r->engine.emplace(std::move(engine).value());
    return r;
  }

  void Connect(uint16_t primary_port) {
    Replicator::Options options;
    options.port = primary_port;
    options.backoff_initial_ms = 10;  // tests reconnect aggressively
    options.backoff_max_ms = 100;
    replicator = std::make_unique<Replicator>(&*engine, options);
    replicator->Start();
  }

  bool CaughtUpTo(uint64_t seqno, int64_t timeout_ms = 5000) {
    return WaitFor([&] { return engine->AppliedSeqno() >= seqno; },
                   timeout_ms);
  }

  void Stop() {
    if (replicator != nullptr) replicator->Stop();
  }
};

TEST(ReplicationTest, LiveTailShipsWritesAndStateIsByteIdentical) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("tail_p"));
  ASSERT_NE(primary, nullptr);
  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("tail_r"), primary->port());

  uint64_t last = 0;
  const char* levels[] = {"u", "a", "b", "ts"};
  for (int i = 0; i < 8; ++i) {
    last = primary->Write(levels[i % 4], Fact(i, levels[i % 4]));
  }
  ASSERT_TRUE(replica->CaughtUpTo(last));

  // Byte-identical at the applied seqno - one DumpSource covers every
  // clearance of the multilevel store.
  uint64_t primary_seqno = 0;
  uint64_t replica_seqno = 0;
  const std::string primary_dump = primary->engine->DumpSource(&primary_seqno);
  const std::string replica_dump = replica->engine->DumpSource(&replica_seqno);
  EXPECT_EQ(replica_seqno, primary_seqno);
  EXPECT_EQ(replica_dump, primary_dump);

  // And per-clearance query results agree (the serving surface, not
  // just the store).
  for (const char* level : levels) {
    const std::string goal = "?- " + std::string(level) + "[item(K : id -" +
                             level + "-> K)].";
    Result<ml::QueryResult> p = primary->engine->QuerySource(
        goal, level, ml::ExecMode::kReduced, nullptr);
    Result<ml::QueryResult> r = replica->engine->QuerySource(
        goal, level, ml::ExecMode::kReduced, nullptr);
    ASSERT_TRUE(p.ok()) << p.status();
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(p->answers.size(), r->answers.size()) << "level " << level;
    for (size_t i = 0; i < p->answers.size(); ++i) {
      EXPECT_EQ(p->answers[i].ToString(), r->answers[i].ToString());
    }
  }

  const Replicator::Stats stats = replica->replicator->GetStats();
  EXPECT_TRUE(stats.connected);
  EXPECT_EQ(stats.applied_seqno, last);
  EXPECT_EQ(stats.records_applied, 8u);
  EXPECT_EQ(stats.snapshots_installed, 0u)
      << "a replica born alongside the primary needs no catch-up snapshot";

  replica->Stop();
}

TEST(ReplicationTest, SnapshotCatchUpAfterPrimaryCheckpoint) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("snap_p"));
  ASSERT_NE(primary, nullptr);
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) last = primary->Write("a", Fact(i, "a"));
  // Checkpoint folds the WAL away: a replica starting from seqno 0 can
  // only catch up via a shipped snapshot.
  ASSERT_TRUE(primary->engine->Checkpoint().ok());

  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("snap_r"), primary->port());
  ASSERT_TRUE(replica->CaughtUpTo(last));
  EXPECT_GE(replica->replicator->GetStats().snapshots_installed, 1u);

  // Post-catch-up writes arrive as tail records on top of the
  // installed snapshot - never as another snapshot round-trip.
  last = primary->Write("b", Fact(100, "b"));
  ASSERT_TRUE(replica->CaughtUpTo(last));

  EXPECT_EQ(replica->engine->DumpSource(), primary->engine->DumpSource());
  const Replicator::Stats stats = replica->replicator->GetStats();
  EXPECT_GE(stats.snapshots_installed, 1u);
  // The snapshot covered everything up to the connect; exactly the one
  // later write ships as a record. No duplicates, no re-applies.
  EXPECT_EQ(stats.records_applied, 1u);

  replica->Stop();
}

TEST(ReplicationTest, CheckpointMidStreamResetsTheTailWithoutDivergence) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("reset_p"));
  ASSERT_NE(primary, nullptr);
  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("reset_r"), primary->port());

  uint64_t last = 0;
  for (int i = 0; i < 3; ++i) last = primary->Write("u", Fact(i, "u"));
  ASSERT_TRUE(replica->CaughtUpTo(last));

  // The WAL resets under the shipper's reader mid-stream; the records
  // after the reset must still arrive exactly once.
  ASSERT_TRUE(primary->engine->Checkpoint().ok());
  for (int i = 10; i < 14; ++i) last = primary->Write("ts", Fact(i, "ts"));
  ASSERT_TRUE(replica->CaughtUpTo(last));

  EXPECT_EQ(replica->engine->DumpSource(), primary->engine->DumpSource());
  EXPECT_EQ(replica->engine->AppliedSeqno(), last);

  replica->Stop();
}

TEST(ReplicationTest, ReplicaRestartResumesFromPersistedSeqno) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("resume_p"));
  ASSERT_NE(primary, nullptr);
  const std::string replica_dir = FreshDir("resume_r");

  uint64_t last = 0;
  {
    std::unique_ptr<Replica> replica =
        Replica::Start(replica_dir, primary->port());
    for (int i = 0; i < 4; ++i) last = primary->Write("a", Fact(i, "a"));
    ASSERT_TRUE(replica->CaughtUpTo(last));
    replica->Stop();
    // Destructors close the replica's storage cleanly - but everything
    // applied was already fsynced by the apply path, so this models a
    // prompt restart after a kill.
  }

  // Writes land while the replica is down.
  for (int i = 10; i < 13; ++i) last = primary->Write("b", Fact(i, "b"));

  std::unique_ptr<Replica> replica = Replica::Open(replica_dir);
  // Local recovery alone restores the pre-restart position...
  EXPECT_EQ(replica->engine->AppliedSeqno(), 4u);
  replica->Connect(primary->port());
  // ...and the stream resumes from there, shipping only the gap.
  ASSERT_TRUE(replica->CaughtUpTo(last));
  EXPECT_EQ(replica->engine->DumpSource(), primary->engine->DumpSource());
  EXPECT_EQ(replica->replicator->GetStats().records_applied, 3u)
      << "the records applied before the restart must not be re-shipped";

  replica->Stop();
}

TEST(ReplicationTest, ReplicaReconnectsAfterPrimaryRestart) {
  const std::string primary_dir = FreshDir("bounce_p");
  std::unique_ptr<Primary> primary = Primary::Start(primary_dir);
  ASSERT_NE(primary, nullptr);
  const uint16_t port = primary->port();
  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("bounce_r"), port);

  uint64_t last = primary->Write("u", Fact(1, "u"));
  ASSERT_TRUE(replica->CaughtUpTo(last));

  // Primary goes away mid-stream and comes back on the same port with
  // its durable state; the replicator's backoff loop must find it and
  // resume. (Ephemeral ports rarely collide, but a bind race is
  // possible; skip rather than flake if the OS gave the port away.)
  primary.reset();
  primary = Primary::Start(primary_dir, port);
  if (primary == nullptr) {
    replica->Stop();
    GTEST_SKIP() << "port " << port << " was reassigned by the OS";
  }

  last = primary->Write("a", Fact(2, "a"));
  ASSERT_TRUE(replica->CaughtUpTo(last, /*timeout_ms=*/10000));
  EXPECT_EQ(replica->engine->DumpSource(), primary->engine->DumpSource());
  EXPECT_GE(replica->replicator->GetStats().reconnects, 1u);

  replica->Stop();
}

TEST(ReplicationTest, ReadOnlyReplicaServerRejectsWritesServesReads) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("ro_p"));
  ASSERT_NE(primary, nullptr);
  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("ro_r"), primary->port());

  server::ServerOptions replica_options;
  replica_options.port = 0;
  replica_options.read_only = true;
  server::Server replica_server(&*replica->engine, replica_options);
  replica_server.SetReplicator(replica->replicator.get());
  ASSERT_TRUE(replica_server.Start().ok());

  const uint64_t seqno = primary->Write("a", Fact(1, "a"));
  ASSERT_TRUE(replica->CaughtUpTo(seqno));

  Result<server::Client> c = server::Client::Connect(replica_server.port());
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_TRUE(c->Hello("a").ok());

  // Writes bounce with the dedicated code (clients can redirect)...
  Result<server::Json> wr = c->Assert(Fact(2, "a"));
  ASSERT_FALSE(wr.ok());
  EXPECT_TRUE(wr.status().IsReadOnly()) << wr.status();
  Result<server::Json> ck = c->Checkpoint();
  ASSERT_FALSE(ck.ok());
  EXPECT_TRUE(ck.status().IsReadOnly()) << ck.status();

  // ...reads serve normally and see the replicated write.
  Result<server::Json> q = c->Query("?- a[item(K : id -a-> K)].");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->GetInt("count"), 1);

  // The stats surface reports the replication link.
  Result<server::Json> stats = c->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const server::Json* body = stats->Find("stats");
  ASSERT_NE(body, nullptr);
  const server::Json* repl = body->Find("replication");
  ASSERT_NE(repl, nullptr);
  EXPECT_TRUE(repl->GetBool("connected"));
  EXPECT_EQ(repl->GetInt("applied_seqno"), static_cast<int64_t>(seqno));
  EXPECT_TRUE(body->GetBool("read_only"));

  c->Bye();
  replica_server.Stop();
  replica->Stop();
}

TEST(ReplicationTest, MinSeqnoQueryWaitsForCatchUpOrFailsFast) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("minseq_p"));
  ASSERT_NE(primary, nullptr);
  std::unique_ptr<Replica> replica =
      Replica::Start(FreshDir("minseq_r"), primary->port());

  server::ServerOptions replica_options;
  replica_options.port = 0;
  replica_options.read_only = true;
  server::Server replica_server(&*replica->engine, replica_options);
  ASSERT_TRUE(replica_server.Start().ok());

  const uint64_t seqno = primary->Write("u", Fact(1, "u"));

  Result<server::Client> c = server::Client::Connect(replica_server.port());
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_TRUE(c->Hello("u").ok());

  // Read-your-writes: the query waits until the replica has applied the
  // write's seqno, then answers from the caught-up state.
  Result<server::Json> q = c->Query("?- u[item(K : id -u-> K)].",
                                    /*deadline_ms=*/-1, /*mode=*/"",
                                    /*proofs=*/false, /*trace=*/false,
                                    /*min_seqno=*/seqno, /*wait_ms=*/5000);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->GetInt("count"), 2);  // the seed fact plus the write

  // A floor the replica cannot reach fails fast with DeadlineExceeded,
  // naming both positions.
  Result<server::Json> stale = c->Query("?- u[item(K : id -u-> K)].",
                                        -1, "", false, false,
                                        /*min_seqno=*/seqno + 1000,
                                        /*wait_ms=*/20);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsDeadlineExceeded()) << stale.status();

  c->Bye();
  replica_server.Stop();
  replica->Stop();
}

TEST(ReplicationTest, InMemoryPrimaryRefusesReplicationStreams) {
  Result<ml::Engine> engine = ml::Engine::FromSource(kBaseSource);
  ASSERT_TRUE(engine.ok()) << engine.status();
  server::ServerOptions options;
  options.port = 0;
  server::Server srv(&*engine, options);
  ASSERT_TRUE(srv.Start().ok());

  Result<server::Client> c = server::Client::Connect(srv.port());
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_TRUE(c->SendRaw(R"({"cmd":"replicate","from_seqno":0})").ok());
  Result<std::string> raw = c->ReadRaw();
  ASSERT_TRUE(raw.ok()) << raw.status();
  Result<server::Json> frame = server::Json::Parse(*raw);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->GetBool("ok"));
  EXPECT_NE(frame->GetString("error").find("--data-dir"), std::string::npos);

  srv.Stop();
}

TEST(ReplicationTest, TwoReplicasConvergeIndependently) {
  std::unique_ptr<Primary> primary = Primary::Start(FreshDir("two_p"));
  ASSERT_NE(primary, nullptr);
  std::unique_ptr<Replica> r1 =
      Replica::Start(FreshDir("two_r1"), primary->port());
  std::unique_ptr<Replica> r2 =
      Replica::Start(FreshDir("two_r2"), primary->port());

  uint64_t last = 0;
  for (int i = 0; i < 6; ++i) {
    last = primary->Write(i % 2 == 0 ? "a" : "b",
                          Fact(i, i % 2 == 0 ? "a" : "b"));
  }
  ASSERT_TRUE(r1->CaughtUpTo(last));
  ASSERT_TRUE(r2->CaughtUpTo(last));

  const std::string want = primary->engine->DumpSource();
  EXPECT_EQ(r1->engine->DumpSource(), want);
  EXPECT_EQ(r2->engine->DumpSource(), want);

  r1->Stop();
  r2->Stop();
}

}  // namespace
}  // namespace multilog::replication
