// Engine-level cancellation: the CancelToken threads from Query through
// both semantics, a cancelled query reports kDeadlineExceeded, and the
// engine remains fully usable afterwards (a cancelled first query at a
// level publishes nothing partial).

#include <gtest/gtest.h>

#include <chrono>

#include "common/cancel.h"
#include "mls/sample_data.h"
#include "multilog/engine.h"

namespace multilog::ml {
namespace {

constexpr char kGoal[] = "?- c[p(k : a -R-> v)] << opt.";

class EngineCancelTest : public ::testing::TestWithParam<ExecMode> {};

TEST_P(EngineCancelTest, PreCancelledQueryFails) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  CancelToken cancel;
  cancel.Cancel();
  Result<QueryResult> r = engine->QuerySource(kGoal, "s", GetParam(), &cancel);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
}

TEST_P(EngineCancelTest, EngineStaysUsableAfterCancellation) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();

  CancelToken cancel;
  cancel.SetTimeout(std::chrono::nanoseconds(0));  // expired on arrival
  Result<QueryResult> dead =
      engine->QuerySource(kGoal, "s", GetParam(), &cancel);
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsDeadlineExceeded()) << dead.status();

  // The same level answers correctly afterwards: nothing partial was
  // cached by the cancelled attempt.
  Result<QueryResult> alive =
      engine->QuerySource(kGoal, "s", GetParam(), nullptr);
  ASSERT_TRUE(alive.ok()) << alive.status();
  ASSERT_EQ(alive->answers.size(), 1u);
  EXPECT_EQ(alive->answers[0].ToString(), "{R=u}");
}

TEST_P(EngineCancelTest, GenerousDeadlineDoesNotInterfere) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  CancelToken cancel;
  cancel.SetTimeout(std::chrono::minutes(5));
  Result<QueryResult> r = engine->QuerySource(kGoal, "s", GetParam(), &cancel);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{R=u}");
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineCancelTest,
    ::testing::Values(ExecMode::kOperational, ExecMode::kReduced,
                      ExecMode::kCheckBoth),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
      switch (info.param) {
        case ExecMode::kOperational:
          return "operational";
        case ExecMode::kReduced:
          return "reduced";
        case ExecMode::kCheckBoth:
          return "check_both";
      }
      return "unknown";
    });

}  // namespace
}  // namespace multilog::ml
