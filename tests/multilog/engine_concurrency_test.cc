#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mls/sample_data.h"
#include "multilog/engine.h"

namespace multilog::ml {
namespace {

// Concurrency tests for the Engine: N threads issue mixed-level,
// mixed-mode queries against one shared Engine and every answer must
// match the single-threaded run. Run these under TSan (the CI job
// does) - they are written to exercise the cache-miss races (first
// query at a level) as well as the shared-lock fast path.

std::vector<std::string> AnswerStrings(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.answers.size());
  for (const datalog::Substitution& s : r.answers) {
    out.push_back(s.ToString());
  }
  return out;
}

const char* kGoal = "c[p(k : a -R-> v)] << opt";
const std::vector<std::string>& Levels() {
  static const std::vector<std::string>& levels =
      *new std::vector<std::string>{"u", "c", "s"};
  return levels;
}
const std::vector<ExecMode>& Modes() {
  static const std::vector<ExecMode>& modes = *new std::vector<ExecMode>{
      ExecMode::kOperational, ExecMode::kReduced, ExecMode::kCheckBoth};
  return modes;
}

/// The single-threaded reference: one fresh engine, every (level, mode)
/// combination, answers rendered to strings.
std::vector<std::vector<std::string>> ReferenceAnswers(
    const EngineOptions& options) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::vector<std::vector<std::string>> expected;
  for (const std::string& level : Levels()) {
    for (ExecMode mode : Modes()) {
      Result<QueryResult> r = engine->QuerySource(kGoal, level, mode);
      EXPECT_TRUE(r.ok()) << r.status();
      expected.push_back(r.ok() ? AnswerStrings(*r)
                                : std::vector<std::string>{"<error>"});
    }
  }
  return expected;
}

/// Hammers one shared engine from `num_threads` threads, each cycling
/// through every (level, mode) combination starting at a different
/// offset (so first-touch compilation of each level races between
/// threads), and counts mismatches against the reference.
void HammerSharedEngine(const EngineOptions& options, size_t num_threads,
                        size_t iterations) {
  const std::vector<std::vector<std::string>> expected =
      ReferenceAnswers(options);

  Result<Engine> shared = Engine::FromSource(mls::D1Source(), options);
  ASSERT_TRUE(shared.ok()) << shared.status();
  Engine& engine = *shared;

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t combos = Levels().size() * Modes().size();
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < iterations; ++i) {
        const size_t combo = (t + i) % combos;
        const std::string& level = Levels()[combo / Modes().size()];
        const ExecMode mode = Modes()[combo % Modes().size()];
        Result<QueryResult> r = engine.QuerySource(kGoal, level, mode);
        if (!r.ok()) {
          ++errors;
          continue;
        }
        if (AnswerStrings(*r) != expected[combo]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EngineConcurrencyTest, MixedLevelMixedModeQueriesAgree) {
  HammerSharedEngine(EngineOptions{}, 8, 24);
}

TEST(EngineConcurrencyTest, ColdCachesRaceSafely) {
  // Few iterations, many threads: most queries hit the first-build
  // (exclusive) path at some level.
  for (int round = 0; round < 4; ++round) {
    HammerSharedEngine(EngineOptions{}, 8, 3);
  }
}

TEST(EngineConcurrencyTest, ParallelEvaluatorUnderConcurrentSessions) {
  // Intra-query parallelism (num_threads = 2) stacked under inter-query
  // concurrency: answers must still match the single-threaded run.
  EngineOptions options;
  options.eval.num_threads = 2;
  HammerSharedEngine(options, 4, 12);
}

TEST(EngineConcurrencyTest, StoredQueriesConcurrentlyAtAllLevels) {
  Result<Engine> shared = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(shared.ok()) << shared.status();
  Engine& engine = *shared;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      const std::string& level = Levels()[t % Levels().size()];
      for (int i = 0; i < 8; ++i) {
        Result<std::vector<QueryResult>> r =
            engine.RunStoredQueries(level, ExecMode::kCheckBoth);
        if (!r.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // kCheckBoth internally asserts Theorem 6.1 (operational == reduced),
  // so zero failures means both semantics stayed consistent under
  // concurrency.
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineConcurrencyTest, CachedPointersStableAcrossConcurrentInserts) {
  // Pointers returned for one level must remain valid while other
  // levels are being compiled concurrently (std::map nodes are stable).
  Result<Engine> shared = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(shared.ok()) << shared.status();
  Engine& engine = *shared;

  Result<const datalog::Model*> first = engine.ReducedModel("u");
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string before = (*first)->ToString();

  std::vector<std::thread> threads;
  for (const std::string& level : Levels()) {
    threads.emplace_back([&engine, level] {
      (void)engine.ReducedModel(level);
      (void)engine.Reduced(level);
      (void)engine.OperationalInterpreter(level);
    });
  }
  for (std::thread& t : threads) t.join();

  Result<const datalog::Model*> again = engine.ReducedModel("u");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);  // same cached object
  EXPECT_EQ((*again)->ToString(), before);
}

}  // namespace
}  // namespace multilog::ml
