#include "multilog/engine.h"

#include <gtest/gtest.h>

#include "mls/belief.h"
#include "mls/sample_data.h"
#include "multilog/parser.h"
#include "multilog/translate.h"

namespace multilog::ml {
namespace {

/// Renders answers as sorted binding strings for compact assertions.
std::vector<std::string> AnswerStrings(const QueryResult& r) {
  std::vector<std::string> out;
  for (const datalog::Substitution& s : r.answers) out.push_back(s.ToString());
  return out;
}

TEST(EngineD1Test, StoredQueryOptimisticAtC) {
  // Figure 10/11: at database level c, the query
  //   ?- c[p(k : a -R-> v)] << opt
  // succeeds with R = u (the u-level fact r6 is believed optimistically
  // at c).
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();

  Result<QueryResult> reduced = engine->RunStoredQueries("c").status().ok()
                                    ? engine->RunStoredQueries("c")->at(0)
                                    : Result<QueryResult>(Status::Internal(
                                          "stored query run failed"));
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  EXPECT_EQ(AnswerStrings(*reduced), std::vector<std::string>{"{R=u}"});
}

TEST(EngineD1Test, OperationalAgreesWithReducedAtEveryLevel) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (const std::string level : {"u", "c", "s"}) {
    Result<std::vector<QueryResult>> results =
        engine->RunStoredQueries(level, ExecMode::kCheckBoth);
    ASSERT_TRUE(results.ok()) << "level " << level << ": "
                              << results.status();
  }
}

TEST(EngineD1Test, ProofTreeForFigure11) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r = engine->QuerySource("c[p(k : a -R-> v)] << opt",
                                              "c", ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  ASSERT_EQ(r->proofs.size(), 1u);

  // The proof uses the rules of Figure 11: belief dispatch, optimistic
  // descent, deduction-g' on the u-level fact, and dominance side
  // conditions; leaves are EMPTY.
  std::vector<std::string> rules = ProofRules(*r->proofs[0]);
  auto has = [&rules](const std::string& rule) {
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  EXPECT_TRUE(has("belief"));
  EXPECT_TRUE(has("descend-o"));
  EXPECT_TRUE(has("deduction-g'"));
  EXPECT_TRUE(has("empty"));
  EXPECT_GE(ProofHeight(*r->proofs[0]), 3u);
}

TEST(EngineD1Test, NoReadUpAtLevelU) {
  // At database level u the c- and s-level data must be invisible: the
  // stored query has no answers (r6 is at u... but the query asks at
  // level c, which u cannot read).
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<std::vector<QueryResult>> results =
      engine->RunStoredQueries("u", ExecMode::kCheckBoth);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_TRUE(results->at(0).answers.empty());
}

TEST(EngineD1Test, FirmBeliefOnlySeesOwnLevel) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();

  // At level c: firm belief at c sees only the c-level derived fact
  // (r7 via q(j)), not the u-level fact.
  Result<QueryResult> r = engine->QuerySource(
      "c[p(k : a -C-> V)] << fir", "c", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(AnswerStrings(*r), std::vector<std::string>{"{C=c, V=t}"});
}

TEST(EngineD1Test, CautiousBeliefOverrides) {
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();

  // At level c, cautious belief at c: cells (a, u, v) from r6 and
  // (a, c, t) from r7 compete for predicate p's attribute a; the c
  // classification strictly dominates u, so only (a, c, t) survives.
  Result<QueryResult> r = engine->QuerySource(
      "c[p(k : a -C-> V)] << cau", "c", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(AnswerStrings(*r), std::vector<std::string>{"{C=c, V=t}"});
}

TEST(EngineD1Test, RecursiveBeliefClauseR8) {
  // r8 derives an s-level fact from cautious belief at c; the reduced
  // program needs level specialization for this (recursion through
  // negation at the predicate level).
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();

  Result<QueryResult> r = engine->QuerySource("s[p(k : a -u-> v)]", "s",
                                              ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers.size(), 1u);
}

TEST(EngineMissionTest, EncodedMissionLoadsAndIsConsistent) {
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok()) << ds.status();
  Result<Database> db = EncodeRelation(*ds->mission, "mission");
  ASSERT_TRUE(db.ok()) << db.status();

  EngineOptions options;
  options.require_consistency = true;
  Result<Engine> engine = Engine::FromDatabase(std::move(*db), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->lattice().size(), 4u);
}

TEST(EngineMissionTest, SpyingOnMarsParagraph32) {
  // The Section 3.2 query: starships spying on Mars "without any doubt"
  // = believed in every mode. At level s: Voyager is spying on Mars per
  // t3 (firm at s), and cautiously (spying/s overrides training/u), and
  // optimistically. So the intersection is non-empty exactly for
  // beliefs at s.
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok()) << ds.status();
  Result<Database> db = EncodeRelation(*ds->mission, "mission");
  ASSERT_TRUE(db.ok()) << db.status();
  Result<Engine> engine = Engine::FromDatabase(std::move(*db));
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const char* mode : {"fir", "opt", "cau"}) {
    Result<QueryResult> r = engine->QuerySource(
        std::string("s[mission(K : objective -C1-> spying)] << ") + mode +
            ", s[mission(K : destin -C2-> mars)] << " + mode,
        "s", ExecMode::kCheckBoth);
    ASSERT_TRUE(r.ok()) << "mode " << mode << ": " << r.status();
    bool found_voyager = false;
    for (const datalog::Substitution& s : r->answers) {
      if (s.ToString().find("K=voyager") != std::string::npos) {
        found_voyager = true;
      }
    }
    EXPECT_TRUE(found_voyager) << "mode " << mode;
  }
}

TEST(EngineMissionTest, BelievedCellsMatchBetaCautious) {
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok()) << ds.status();
  Result<Database> db = EncodeRelation(*ds->mission, "mission");
  ASSERT_TRUE(db.ok()) << db.status();
  Result<Engine> engine = Engine::FromDatabase(std::move(*db));
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const std::string level : {"u", "c", "s"}) {
    mls::BeliefOptions bopt;
    bopt.merge_key_versions = true;  // cell-level bel merges key versions
    Result<mls::BeliefOutcome> beta =
        mls::Believe(*ds->mission, level, mls::BeliefMode::kCautious, bopt);
    ASSERT_TRUE(beta.ok()) << beta.status();
    std::vector<CellFact> beta_cells = RelationCells(beta->relation);

    Result<std::vector<CellFact>> bel_cells =
        BelievedCells(&*engine, "mission", level, "cau");
    ASSERT_TRUE(bel_cells.ok()) << bel_cells.status();
    EXPECT_EQ(beta_cells, *bel_cells) << "level " << level;
  }
}

}  // namespace
}  // namespace multilog::ml
