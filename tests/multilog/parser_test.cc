#include "multilog/parser.h"

#include <gtest/gtest.h>

namespace multilog::ml {
namespace {

TEST(MlParserTest, LevelAndOrderFacts) {
  Result<Database> db = ParseMultiLog("level(u). order(u, c). level(c).");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->lambda.size(), 3u);
  EXPECT_TRUE(db->sigma.empty());
  EXPECT_TRUE(db->pi.empty());
}

TEST(MlParserTest, AtomicMFact) {
  Result<Database> db = ParseMultiLog("u[p(k : a -u-> v)].");
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->sigma.size(), 1u);
  const auto& m = std::get<MAtom>(db->sigma[0].head);
  EXPECT_EQ(m.level, Term::Sym("u"));
  EXPECT_EQ(m.predicate, "p");
  EXPECT_EQ(m.key, Term::Sym("k"));
  ASSERT_EQ(m.cells.size(), 1u);
  EXPECT_EQ(m.cells[0].attribute, "a");
  EXPECT_EQ(m.cells[0].classification, Term::Sym("u"));
  EXPECT_EQ(m.cells[0].value, Term::Sym("v"));
}

TEST(MlParserTest, MoleculeWithBothSeparators) {
  // Example 5.1 uses ';' between cells; we also accept ','.
  Result<Database> db = ParseMultiLog(
      "s[mission(avenger : starship -s-> avenger; objective -s-> shipping, "
      "destination -s-> pluto)].");
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& m = std::get<MAtom>(db->sigma[0].head);
  EXPECT_EQ(m.cells.size(), 3u);
  EXPECT_EQ(m.Atomize().size(), 3u);
}

TEST(MlParserTest, VariableLevelAndClassification) {
  Result<Database> db = ParseMultiLog("?- L[p(K : a -C-> V)] << cau.");
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->queries.size(), 1u);
  const auto& b = std::get<BAtom>(db->queries[0][0].atom);
  EXPECT_TRUE(b.matom.level.IsVariable());
  EXPECT_TRUE(b.matom.cells[0].classification.IsVariable());
  EXPECT_EQ(b.mode, Term::Sym("cau"));
}

TEST(MlParserTest, DontCareClassification) {
  Result<Database> db = ParseMultiLog("?- u[p(k : a -> V)].");
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& m = std::get<MAtom>(db->queries[0][0].atom);
  EXPECT_TRUE(m.cells[0].classification.IsVariable());
}

TEST(MlParserTest, RuleWithMixedBody) {
  Result<Database> db = ParseMultiLog(
      "s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau, q(j), level(s), "
      "order(u, c).");
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->sigma.size(), 1u);
  const MlClause& clause = db->sigma[0];
  ASSERT_EQ(clause.body.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<BAtom>(clause.body[0].atom));
  EXPECT_TRUE(std::holds_alternative<PAtom>(clause.body[1].atom));
  EXPECT_TRUE(std::holds_alternative<LAtom>(clause.body[2].atom));
  EXPECT_TRUE(std::holds_alternative<HAtom>(clause.body[3].atom));
}

TEST(MlParserTest, ArrowAcceptsLeftArrowToo) {
  Result<Database> db = ParseMultiLog("p(a) <- q(a).");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->pi.size(), 1u);
}

TEST(MlParserTest, BAtomHeadRejected) {
  Result<Database> db = ParseMultiLog("u[p(k : a -u-> v)] << cau :- q(j).");
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsParseError());
}

TEST(MlParserTest, PClausesRouted) {
  Result<Database> db = ParseMultiLog("q(j). r(X) :- q(X).");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->pi.size(), 2u);
}

TEST(MlParserTest, CommentsAndWhitespace) {
  Result<Database> db = ParseMultiLog(R"(
    % Lambda
    level(u).   // trailing comment
    u[p(k : a -u-> v)].  % fact
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->clause_count(), 2u);
}

TEST(MlParserTest, QuotedAndIntegerValues) {
  Result<Database> db =
      ParseMultiLog("u[p(k : a -u-> 'Hello World', b -u-> 42)].");
  ASSERT_TRUE(db.ok()) << db.status();
  const auto& m = std::get<MAtom>(db->sigma[0].head);
  EXPECT_EQ(m.cells[0].value, Term::Sym("Hello World"));
  EXPECT_EQ(m.cells[1].value, Term::Int(42));
}

TEST(MlParserTest, Errors) {
  EXPECT_FALSE(ParseMultiLog("u[p(k : a -u-> v)]").ok());   // missing dot
  EXPECT_FALSE(ParseMultiLog("u[p(k a -u-> v)].").ok());    // missing colon
  EXPECT_FALSE(ParseMultiLog("u[p(k : a u-> v)].").ok());   // bad arrow
  EXPECT_FALSE(ParseMultiLog("u[p(k : a -u-> )].").ok());   // missing value
  EXPECT_FALSE(ParseMultiLog("3[p(k : a -u-> v)].").ok());  // numeric level
  EXPECT_FALSE(ParseMultiLog("?- .").ok());                 // empty goal
}

TEST(MlParserTest, GoalParser) {
  Result<std::vector<MlLiteral>> goal =
      ParseMlGoal("?- c[p(k : a -R-> v)] << opt, q(X).");
  ASSERT_TRUE(goal.ok()) << goal.status();
  EXPECT_EQ(goal->size(), 2u);

  // Also without the ?- prefix and the trailing dot.
  goal = ParseMlGoal("q(X)");
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ(goal->size(), 1u);
}

TEST(MlParserTest, RoundTripThroughToString) {
  const char* src =
      "s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau, q(j).";
  Result<Database> db1 = ParseMultiLog(src);
  ASSERT_TRUE(db1.ok());
  Result<Database> db2 = ParseMultiLog(db1->ToString());
  ASSERT_TRUE(db2.ok()) << db2.status() << "\n" << db1->ToString();
  EXPECT_EQ(db1->ToString(), db2->ToString());
}

TEST(MlParserTest, ComparisonBuiltins) {
  Result<Database> db = ParseMultiLog(
      "rich(K) :- bal(K, N), N >= 100, N != 0, K < zzz, D = plus(N, 1).");
  ASSERT_TRUE(db.ok()) << db.status();
  const MlClause& clause = db->pi[0];
  ASSERT_EQ(clause.body.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<CAtom>(clause.body[1].atom));
  EXPECT_TRUE(std::holds_alternative<CAtom>(clause.body[2].atom));
  EXPECT_TRUE(std::holds_alternative<CAtom>(clause.body[3].atom));
  EXPECT_TRUE(std::holds_alternative<CAtom>(clause.body[4].atom));
  EXPECT_EQ(std::get<CAtom>(clause.body[1].atom).op,
            datalog::Comparison::kGe);

  // '<-' stays a rule arrow and '<<' stays the belief operator.
  EXPECT_TRUE(ParseMultiLog("p(a) <- q(a).").ok());
  EXPECT_TRUE(
      ParseMultiLog("level(u). ?- u[p(k : a -u-> v)] << cau.").ok());

  // Comparisons cannot head clauses and cannot be negated.
  EXPECT_FALSE(ParseMultiLog("X = 1 :- q(X).").ok());
  EXPECT_FALSE(ParseMultiLog("p(X) :- q(X), not X = 1.").ok());
}

TEST(MlParserTest, ComparisonRoundTrip) {
  const char* src = "rich(K) :- bal(K, N), N >= 100.";
  Result<Database> db1 = ParseMultiLog(src);
  ASSERT_TRUE(db1.ok());
  Result<Database> db2 = ParseMultiLog(db1->ToString());
  ASSERT_TRUE(db2.ok()) << db2.status() << "\n" << db1->ToString();
  EXPECT_EQ(db1->ToString(), db2->ToString());
}

TEST(MlParserTest, ComponentRouting) {
  Result<Database> db = ParseMultiLog(R"(
    level(u). order(u, c). level(c).
    u[p(k : a -u-> v)].
    q(j).
    ?- q(X).
  )");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->lambda.size(), 3u);
  EXPECT_EQ(db->sigma.size(), 1u);
  EXPECT_EQ(db->pi.size(), 1u);
  EXPECT_EQ(db->queries.size(), 1u);
}

TEST(MlParserTest, IntegerLiteralBoundaries) {
  // INT64_MAX is the largest literal (the grammar has no unary minus);
  // one past it must be a parse error, not LLONG_MAX.
  Result<Database> max =
      ParseMultiLog("u[p(k : a -u-> 9223372036854775807)].");
  ASSERT_TRUE(max.ok()) << max.status();
  const auto& m = std::get<MAtom>(max->sigma[0].head);
  EXPECT_EQ(m.cells[0].value.ToString(), "9223372036854775807");

  Result<Database> over =
      ParseMultiLog("u[p(k : a -u-> 9223372036854775808)].");
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsParseError());
  EXPECT_NE(over.status().message().find("out of range"), std::string::npos)
      << over.status();
}

}  // namespace
}  // namespace multilog::ml
