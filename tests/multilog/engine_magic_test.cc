// Goal-directed plan-cache tests: the engine's magic-sets path must be
// an invisible optimization - byte-identical answers to the full
// bottom-up reduced path - while the plan_hits / plan_misses /
// magic_fallbacks counters prove which path actually served each
// query, writes invalidate affected plans, and the MULTILOG_NO_MAGIC
// kill switch (EngineOptions::magic) disables the whole machinery.

#include "multilog/engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace multilog::ml {
namespace {

/// Chain lattice u < c < s with a keyed item relation and a derived
/// closure so point queries have real work to skip.
constexpr char kSource[] = R"(
level(u).
level(c).
level(s).
order(u, c).
order(c, s).
u[item(k1 : id -u-> k1, val -u-> red)].
u[item(k2 : id -u-> k2, val -u-> green)].
c[item(k3 : id -c-> k3, val -c-> blue)].
u[next(k1 : to -u-> k2)].
u[next(k2 : to -u-> k3)].
u[reach(X : to -u-> Y)] <- u[next(X : to -u-> Y)].
u[reach(X : to -u-> Z)] <- u[next(X : to -u-> Y)], u[reach(Y : to -u-> Z)].
)";

std::vector<std::string> AnswerStrings(const QueryResult& r) {
  std::vector<std::string> out;
  for (const datalog::Substitution& s : r.answers) out.push_back(s.ToString());
  return out;
}

std::vector<std::string> Ask(Engine& engine, const std::string& goal,
                             const std::string& level) {
  Result<QueryResult> r = engine.QuerySource(goal, level, ExecMode::kReduced);
  EXPECT_TRUE(r.ok()) << goal << " @ " << level << ": " << r.status();
  return r.ok() ? AnswerStrings(*r) : std::vector<std::string>{"<error>"};
}

Engine MakeEngine(bool magic) {
  EngineOptions options;
  options.magic = magic;
  Result<Engine> engine = Engine::FromSource(kSource, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(*engine);
}

TEST(EngineMagicTest, PointQueryIsPlanServedAndIdenticalToFull) {
  Engine magic = MakeEngine(true);
  Engine full = MakeEngine(false);

  const std::string goal = "u[item(k1 : id -C-> V)]";
  const std::vector<std::string> got = Ask(magic, goal, "s");
  EXPECT_EQ(got, Ask(full, goal, "s"));
  EXPECT_FALSE(got.empty());

  EngineCounters c = magic.Counters();
  EXPECT_EQ(c.plan_misses, 1u);
  EXPECT_EQ(c.plan_hits, 0u);

  // Same binding pattern, different constant: served from the cache.
  EXPECT_EQ(Ask(magic, "u[item(k2 : id -C-> V)]", "s"),
            Ask(full, "u[item(k2 : id -C-> V)]", "s"));
  c = magic.Counters();
  EXPECT_EQ(c.plan_misses, 1u);
  EXPECT_EQ(c.plan_hits, 1u);

  // The kill-switch engine never touched the plan machinery.
  c = full.Counters();
  EXPECT_EQ(c.plan_misses, 0u);
  EXPECT_EQ(c.plan_hits, 0u);
  EXPECT_EQ(c.magic_fallbacks, 0u);
}

TEST(EngineMagicTest, RecursivePointQueryMatchesFull) {
  Engine magic = MakeEngine(true);
  Engine full = MakeEngine(false);
  const std::string goal = "u[reach(k1 : to -C-> Y)]";
  const std::vector<std::string> got = Ask(magic, goal, "s");
  EXPECT_EQ(got, Ask(full, goal, "s"));
  EXPECT_EQ(got.size(), 2u);  // k2 and k3
  EXPECT_GE(magic.Counters().plan_misses, 1u);
}

TEST(EngineMagicTest, CachedModelWinsOverPlans) {
  // Once a full query has built the level's model, later point queries
  // are hash lookups against it - the plan machinery must stand down.
  Engine magic = MakeEngine(true);
  Engine full = MakeEngine(false);
  const std::string wide = "u[item(K : id -C-> V)] << opt";  // builds model
  EXPECT_EQ(Ask(magic, wide, "s"), Ask(full, wide, "s"));
  const uint64_t misses = magic.Counters().plan_misses;
  const std::string point = "u[item(k1 : id -C-> V)] << opt";
  EXPECT_EQ(Ask(magic, point, "s"), Ask(full, point, "s"));
  EXPECT_EQ(magic.Counters().plan_misses, misses);
}

TEST(EngineMagicTest, BeliefGoalFallsBack) {
  // Belief goals share the bel predicate with the cautious mode's
  // negation, so the reachable fragment is never magic-safe; the plan
  // path must decline (and remember the rejection) - answers still
  // come from the full path, identically.
  Engine magic = MakeEngine(true);
  Engine full = MakeEngine(false);
  const std::string goal = "u[item(k1 : id -C-> V)] << cau";
  EXPECT_EQ(Ask(magic, goal, "s"), Ask(full, goal, "s"));
  EXPECT_GE(magic.Counters().magic_fallbacks, 1u);

  // Asking again must not recompile: the rejection is cached.
  const uint64_t misses = magic.Counters().plan_misses;
  EXPECT_EQ(Ask(magic, goal, "s"), Ask(full, goal, "s"));
  EXPECT_EQ(magic.Counters().plan_misses, misses);
}

TEST(EngineMagicTest, WritesInvalidatePlansAndAnswersStayIdentical) {
  Engine magic = MakeEngine(true);
  Engine full = MakeEngine(false);
  const std::string point = "u[item(k1 : id -C-> V)]";
  const std::string reach = "u[reach(k1 : to -C-> Y)]";

  EXPECT_EQ(Ask(magic, point, "s"), Ask(full, point, "s"));
  EXPECT_EQ(Ask(magic, reach, "s"), Ask(full, reach, "s"));

  // Interleave asserts and retracts; after every write the plan for the
  // written-to cone is gone, so the next query recompiles against the
  // new Sigma and must agree with the scratch engine byte for byte.
  struct Write {
    bool is_assert;
    std::string level;
    std::string fact;
  };
  const std::vector<Write> writes = {
      {true, "u", "u[item(k9 : id -u-> k9, val -u-> cyan)]."},
      {true, "u", "u[next(k3 : id -u-> k3, to -u-> k9)]."},
      {false, "u", "u[item(k9 : id -u-> k9, val -u-> cyan)]."},
      {true, "c", "c[item(k7 : id -c-> k7, val -c-> mauve)]."},
  };
  for (const auto& [is_assert, at, fact] : writes) {
    for (Engine* e : {&magic, &full}) {
      Result<WriteResult> w =
          is_assert ? e->Assert(fact, at) : e->Retract(fact, at);
      ASSERT_TRUE(w.ok()) << fact << ": " << w.status();
    }
    EXPECT_EQ(Ask(magic, point, "s"), Ask(full, point, "s")) << fact;
    EXPECT_EQ(Ask(magic, reach, "s"), Ask(full, reach, "s")) << fact;
    EXPECT_EQ(Ask(magic, reach, "u"), Ask(full, reach, "u")) << fact;
  }

  // Writes pruned the cached plans, so the point shape was recompiled
  // at least once beyond the two initial compiles.
  EXPECT_GT(magic.Counters().plan_misses, 2u);
}

TEST(EngineMagicTest, MagicDefaultRespectsEnvironment) {
  // The in-process default follows MULTILOG_NO_MAGIC at engine-options
  // construction time (mirrors MULTILOG_NO_INCREMENTAL).
  EXPECT_EQ(MagicPlansDefault(), std::getenv("MULTILOG_NO_MAGIC") == nullptr);
}

}  // namespace
}  // namespace multilog::ml
