// Write/query hammer: concurrent readers at every level, a stats
// poller, and a mutating writer, all against one durable engine. Run
// under TSan in CI, this is the proof that db_mu's readers-writer
// discipline actually covers every shared access (caches, counters,
// storage, Sigma). The functional assertion at the end is that the
// surviving state equals a clean serial replay of the writer's history.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "multilog/engine.h"
#include "storage/storage.h"

namespace multilog::ml {
namespace {

constexpr char kDiamond[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

constexpr int kWrites = 60;
constexpr int kReaders = 4;

std::string KeyFact(const std::string& level, int i) {
  const std::string key = "k" + level + std::to_string(i);
  return level + "[item(" + key + " : id -" + level + "-> " + key + ")].";
}

TEST(EngineWriteConcurrencyTest, HammerQueriesStatsAndWrites) {
  const std::string dir = ::testing::TempDir() + "/write_hammer_" +
                          std::to_string(::getpid());
  Result<storage::Storage> st = storage::Storage::Open(dir, kDiamond);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<Engine> engine = Engine::FromStorage(&*st);
  ASSERT_TRUE(engine.ok()) << engine.status();

  const char* const levels[] = {"u", "a", "b", "ts"};
  std::atomic<bool> done{false};
  std::atomic<int> query_failures{0};

  // Readers sleep between queries: glibc's rwlock prefers readers, so
  // back-to-back shared acquisitions would starve the writer outright.
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::string level = levels[(t + i) % 4];
        Result<QueryResult> r = engine->QuerySource(
            level + "[item(K : id -C-> K)] << opt", level, ExecMode::kReduced);
        if (!r.ok()) query_failures.fetch_add(1);
        ++i;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      EngineCounters c = engine->Counters();
      StorageCounters sc = engine->StorageStats();
      if (!sc.attached || c.writes_rejected != 0) query_failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // The writer's serial history: assert a key per level round-robin,
  // retracting every third one again, with a checkpoint in the middle.
  std::vector<std::pair<std::string, std::string>> history;  // (op, fact)
  for (int i = 0; i < kWrites; ++i) {
    const std::string level = levels[i % 4];
    const std::string fact = KeyFact(level, i);
    Result<WriteResult> w = engine->Assert(fact, level);
    ASSERT_TRUE(w.ok()) << fact << ": " << w.status();
    history.emplace_back("assert", fact);
    if (i % 3 == 2) {
      Result<WriteResult> r = engine->Retract(fact, level);
      ASSERT_TRUE(r.ok()) << fact << ": " << r.status();
      history.emplace_back("retract", fact);
    }
    if (i == kWrites / 2) ASSERT_TRUE(engine->Checkpoint().ok());
  }

  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  poller.join();
  EXPECT_EQ(query_failures.load(), 0);

  // The concurrent run must have converged to the same database a
  // serial replay produces...
  Result<Engine> serial = Engine::FromSource(kDiamond);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (const auto& [op, fact] : history) {
    const std::string level = fact.substr(0, fact.find('['));
    Result<WriteResult> w = op == "assert" ? serial->Assert(fact, level)
                                           : serial->Retract(fact, level);
    ASSERT_TRUE(w.ok()) << op << " " << fact << ": " << w.status();
  }
  EXPECT_EQ(engine->DumpSource(), serial->DumpSource());

  // ...and so must a post-crash recovery from the same data dir.
  const std::string dump = engine->DumpSource();
  engine = Status::Internal("released");
  st = storage::Storage::Open(dir, kDiamond);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<Engine> reopened = Engine::FromStorage(&*st);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->DumpSource(), dump);
}

}  // namespace
}  // namespace multilog::ml
