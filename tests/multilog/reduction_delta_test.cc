// Incremental tau maintenance: TranslateSigmaFact + AppendSigmaFact /
// EraseSigmaFact must keep a maintained ReducedProgram *byte-identical*
// (program and display listings) to a scratch Reduce of the mutated
// database, in both the generic and the level-specialized regimes. The
// engine's live-cache layer relies on this exactness, so every step
// here compares full ToString renderings, spans, and per-entry counts.

#include "multilog/reduction.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "multilog/database.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

/// Parses a single-fact source ("s[p(k : a -s-> v)].") into the
/// MlClause shape the engine's mutation path stores.
MlClause Fact(const std::string& source) {
  Result<Database> db = ParseMultiLog(source);
  EXPECT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->sigma.size(), 1u) << source;
  return db->sigma[0];
}

/// Mirrors the engine's retract position: the first stored Sigma fact
/// whose m-atom matches structurally.
size_t FindSigmaIndex(const std::vector<MlClause>& sigma,
                      const MlClause& fact) {
  const auto* target = std::get_if<MAtom>(&fact.head);
  EXPECT_NE(target, nullptr);
  for (size_t i = 0; i < sigma.size(); ++i) {
    const auto* m = std::get_if<MAtom>(&sigma[i].head);
    if (sigma[i].IsFact() && m != nullptr && *m == *target) return i;
  }
  ADD_FAILURE() << "fact not stored: " << fact.ToString();
  return sigma.size();
}

/// Drives interleaved assert/retract against a maintained
/// ReducedProgram and checks it against a scratch Reduce every step.
class TauHarness {
 public:
  TauHarness(const std::string& source, const std::string& user,
             ReductionOptions options)
      : user_(user), options_(options) {
    Result<Database> db = ParseMultiLog(source);
    EXPECT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    Result<ReducedProgram> rp = Scratch();
    EXPECT_TRUE(rp.ok()) << rp.status();
    maintained_ = std::move(rp).value();
  }

  Result<ReducedProgram> Scratch() const {
    Result<CheckedDatabase> cdb = CheckDatabase(db_);
    if (!cdb.ok()) return cdb.status();
    return Reduce(*cdb, user_, options_);
  }

  void Assert(const std::string& fact_source) {
    MlClause fact = Fact(fact_source);
    Result<SigmaFactDelta> delta = TranslateSigmaFact(fact, maintained_);
    ASSERT_TRUE(delta.ok()) << delta.status();
    db_.sigma.push_back(std::move(fact));
    AppendSigmaFact(&maintained_, *delta);
    Compare("assert " + fact_source);
  }

  void Retract(const std::string& fact_source) {
    MlClause fact = Fact(fact_source);
    size_t index = FindSigmaIndex(db_.sigma, fact);
    ASSERT_LT(index, db_.sigma.size());
    db_.sigma.erase(db_.sigma.begin() + static_cast<ptrdiff_t>(index));
    EraseSigmaFact(&maintained_, index);
    Compare("retract " + fact_source);
  }

  const ReducedProgram& maintained() const { return maintained_; }

 private:
  void Compare(const std::string& what) {
    Result<ReducedProgram> scratch = Scratch();
    ASSERT_TRUE(scratch.ok()) << what << ": " << scratch.status();
    EXPECT_EQ(maintained_.program.ToString(), scratch->program.ToString())
        << what;
    EXPECT_EQ(maintained_.display.ToString(), scratch->display.ToString())
        << what;
    EXPECT_EQ(maintained_.display_sigma_begin, scratch->display_sigma_begin)
        << what;
    EXPECT_EQ(maintained_.display_sigma_end, scratch->display_sigma_end)
        << what;
    EXPECT_EQ(maintained_.program_sigma_begin, scratch->program_sigma_begin)
        << what;
    EXPECT_EQ(maintained_.program_sigma_end, scratch->program_sigma_end)
        << what;
    EXPECT_EQ(maintained_.sigma_display_counts, scratch->sigma_display_counts)
        << what;
    EXPECT_EQ(maintained_.sigma_program_counts, scratch->sigma_program_counts)
        << what;
  }

  std::string user_;
  ReductionOptions options_;
  Database db_;
  ReducedProgram maintained_;
};

constexpr char kDatabase[] = R"(
  level(low). level(mid). level(high).
  order(low, mid). order(mid, high).
  low[emp(e1 : name -low-> alice)].
  mid[emp(e1 : name -mid-> alicia)].
  low[emp(e2 : name -low-> bob)].
  summary(K) :- low[emp(K : name -low-> V)].
)";

TEST(ReductionDeltaTest, GenericMaintenanceMatchesScratch) {
  TauHarness h(kDatabase, "high", {});
  ASSERT_FALSE(h.maintained().specialized);
  h.Assert("mid[emp(e2 : name -mid-> robert)].");
  h.Retract("low[emp(e1 : name -low-> alice)].");
  h.Assert("high[emp(e3 : name -high-> carol)].");
  h.Retract("mid[emp(e2 : name -mid-> robert)].");
  h.Retract("low[emp(e2 : name -low-> bob)].");
}

TEST(ReductionDeltaTest, SpecializedMaintenanceMatchesScratch) {
  ReductionOptions options;
  options.specialization = ReductionOptions::Specialization::kAlways;
  TauHarness h(kDatabase, "high", options);
  ASSERT_TRUE(h.maintained().specialized);
  h.Assert("mid[emp(e2 : name -mid-> robert)].");
  h.Retract("low[emp(e1 : name -low-> alice)].");
  h.Assert("high[emp(e3 : name -high-> carol)].");
  h.Retract("high[emp(e3 : name -high-> carol)].");
}

TEST(ReductionDeltaTest, MolecularFactSplicesAllCells) {
  // One molecular fact atomizes into two clauses; the per-entry counts
  // must cover both so a retract removes the whole molecule.
  TauHarness h(kDatabase, "high", {});
  h.Assert("mid[emp(e4 : name -mid-> dana, dept -mid-> sales)].");
  h.Retract("mid[emp(e4 : name -mid-> dana, dept -mid-> sales)].");
}

TEST(ReductionDeltaTest, DuplicateFactsEraseExactSpan) {
  // The engine retracts the *first* structural match; the maintained
  // program must erase that entry's exact span, not just any equal
  // clause, to stay sequence-identical with the scratch rebuild.
  TauHarness h(kDatabase, "high", {});
  h.Assert("low[emp(e9 : name -low-> eve)].");
  h.Assert("mid[emp(e9 : name -mid-> eva)].");
  h.Assert("low[emp(e9 : name -low-> eve)].");
  h.Retract("low[emp(e9 : name -low-> eve)].");
  h.Retract("low[emp(e9 : name -low-> eve)].");
}

TEST(ReductionDeltaTest, TranslatedEdbAtomsAreGroundHeads) {
  Result<Database> db = ParseMultiLog(kDatabase);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  ASSERT_TRUE(cdb.ok()) << cdb.status();

  Result<ReducedProgram> generic = Reduce(*cdb, "high", {});
  ASSERT_TRUE(generic.ok()) << generic.status();
  MlClause fact = Fact("mid[emp(e7 : name -mid-> grace)].");
  Result<SigmaFactDelta> delta = TranslateSigmaFact(fact, *generic);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_EQ(delta->edb.size(), 1u);
  EXPECT_EQ(delta->edb[0].ToString(),
            "rel(emp, e7, name, grace, mid, mid)");

  ReductionOptions options;
  options.specialization = ReductionOptions::Specialization::kAlways;
  Result<ReducedProgram> specialized = Reduce(*cdb, "high", options);
  ASSERT_TRUE(specialized.ok()) << specialized.status();
  Result<SigmaFactDelta> spec_delta =
      TranslateSigmaFact(fact, *specialized);
  ASSERT_TRUE(spec_delta.ok()) << spec_delta.status();
  ASSERT_EQ(spec_delta->edb.size(), 1u);
  EXPECT_EQ(spec_delta->edb[0].ToString(),
            "rel__mid(emp, e7, name, grace, mid)");
}

}  // namespace
}  // namespace multilog::ml
