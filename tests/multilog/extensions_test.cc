#include <gtest/gtest.h>

#include "multilog/engine.h"
#include "multilog/interpreter.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

constexpr const char* kFilterDb = R"(
  level(u). level(s). order(u, s).
  s[p(k : a -u-> v)].   % an s-level tuple whose cell is u-classified
  s[p(k : b -s-> w)].   % and a cell classified s
  u[p(k2 : a -u-> x)].  % a plain u-level fact
)";

Result<Interpreter> MakeInterpreter(const std::string& level,
                                    Interpreter::Options options,
                                    CheckedDatabase* storage) {
  Result<Database> db = ParseMultiLog(kFilterDb);
  if (!db.ok()) return db.status();
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  if (!cdb.ok()) return cdb.status();
  *storage = std::move(*cdb);
  return Interpreter::Create(storage, level, options);
}

std::vector<std::string> Answers(
    const Result<std::vector<Interpreter::Answer>>& answers) {
  std::vector<std::string> out;
  if (!answers.ok()) return {"error: " + answers.status().ToString()};
  for (const Interpreter::Answer& a : *answers) {
    out.push_back(a.subst.ToString());
  }
  return out;
}

TEST(FilterTest, WithoutFilterHigherTuplesStayInvisible) {
  CheckedDatabase storage;
  Result<Interpreter> interp =
      MakeInterpreter("s", Interpreter::Options(), &storage);
  ASSERT_TRUE(interp.ok()) << interp.status();
  Result<std::vector<MlLiteral>> goal = ParseMlGoal("u[p(k : a -C-> V)]");
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE(Answers(interp->Solve(*goal)).empty());
}

TEST(FilterTest, FilterInheritsVisibleCellsDownward) {
  // Figure 13's FILTER: the u level inherits the part of the s-level
  // tuple whose cell classification u dominates.
  CheckedDatabase storage;
  Interpreter::Options options;
  options.enable_filter = true;
  Result<Interpreter> interp = MakeInterpreter("s", options, &storage);
  ASSERT_TRUE(interp.ok()) << interp.status();

  Result<std::vector<MlLiteral>> goal = ParseMlGoal("u[p(k : a -C-> V)]");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Interpreter::Answer>> answers = interp->Solve(*goal);
  EXPECT_EQ(Answers(answers), std::vector<std::string>{"{C=u, V=v}"});

  // The proof records the inheritance.
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  std::vector<std::string> rules = ProofRules(*(*answers)[0].proof);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "filter"), rules.end());
}

TEST(FilterTest, FilterDoesNotLeakHighCells) {
  CheckedDatabase storage;
  Interpreter::Options options;
  options.enable_filter = true;
  Result<Interpreter> interp = MakeInterpreter("s", options, &storage);
  ASSERT_TRUE(interp.ok());
  // Cell b is s-classified: not inheritable at u under FILTER alone.
  Result<std::vector<MlLiteral>> goal = ParseMlGoal("u[p(k : b -C-> V)]");
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE(Answers(interp->Solve(*goal)).empty());
}

TEST(FilterTest, FilterNullSurfacesMaskedCells) {
  // FILTER-NULL: the hidden s-classified cell surfaces as a null at u -
  // re-creating, deliberately, the surprise-story behaviour the sigma
  // filter of Jajodia-Sandhu exhibits.
  CheckedDatabase storage;
  Interpreter::Options options;
  options.enable_filter_null = true;
  Result<Interpreter> interp = MakeInterpreter("s", options, &storage);
  ASSERT_TRUE(interp.ok());
  Result<std::vector<MlLiteral>> goal = ParseMlGoal("u[p(k : b -C-> V)]");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<Interpreter::Answer>> answers = interp->Solve(*goal);
  EXPECT_EQ(Answers(answers), std::vector<std::string>{"{C=u, V=null}"});
}

TEST(FilterTest, FiltersRespectSessionLevel) {
  // At session level u, the s-level source tuple is unreadable, so even
  // with FILTER enabled nothing is inherited (no read up).
  CheckedDatabase storage;
  Interpreter::Options options;
  options.enable_filter = true;
  options.enable_filter_null = true;
  Result<Interpreter> interp = MakeInterpreter("u", options, &storage);
  ASSERT_TRUE(interp.ok());
  Result<std::vector<MlLiteral>> goal = ParseMlGoal("u[p(k : a -C-> V)]");
  ASSERT_TRUE(goal.ok());
  // The inherited cell (a, u, v) comes from an s-level tuple; its rel
  // fact at level u is derivable, and the goal's own guards (u <= u,
  // C <= u) hold, so inheritance is visible even to u - the cell itself
  // is u-classified data. The masked b cell stays masked as null.
  Result<std::vector<Interpreter::Answer>> answers = interp->Solve(*goal);
  EXPECT_EQ(Answers(answers), std::vector<std::string>{"{C=u, V=v}"});
}

TEST(UserBeliefTest, UserModeThroughBelClauses) {
  // Section 7: a user-defined belief mode as Pi clauses over bel/7.
  // "peer": believe any cell asserted at exactly one's own level or the
  // level immediately below.
  const char* src = R"(
    level(u). level(c). level(s). order(u, c). order(c, s).
    u[p(k : a -u-> v)].
    c[p(k : a -c-> w)].
    s[p(k : a -s-> z)].
    bel(P, K, A, V, C, H, peer) :- rel(P, K, A, V, C, H).
    bel(P, K, A, V, C, H, peer) :- order(L, H), rel(P, K, A, V, C, L).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  Result<QueryResult> r = engine->QuerySource(
      "s[p(k : a -C-> V)] << peer", "s", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<std::string> answers;
  for (const datalog::Substitution& s : r->answers) {
    answers.push_back(s.ToString());
  }
  // s and its immediate predecessor c, but not u.
  EXPECT_EQ(answers,
            (std::vector<std::string>{"{C=c, V=w}", "{C=s, V=z}"}));
}

TEST(UserBeliefTest, UserModeProofUsesUserBeliefRule) {
  const char* src = R"(
    level(u).
    u[p(k : a -u-> v)].
    bel(P, K, A, V, C, H, mine) :- rel(P, K, A, V, C, H).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r = engine->QuerySource(
      "u[p(k : a -C-> V)] << mine", "u", ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->proofs.size(), 1u);
  std::vector<std::string> rules = ProofRules(*r->proofs[0]);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "user-belief"),
            rules.end());
}

TEST(UserBeliefTest, UserModeCannotChangeMAtomProvability) {
  // The paper's robustness claim: user bel clauses do not alter the
  // provability of m-atoms themselves - even a wildly permissive mode
  // that believes everything everywhere leaves rel answers unchanged.
  const char* src = R"(
    level(u). level(c). order(u, c).
    u[p(k : a -u-> v)].
    bel(P, K, A, V, C, H, wild) :- rel(P, K, A, V, C, L), level(H),
                                   dominate(L, H).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> with_mode = engine->QuerySource(
      "c[p(k : a -C-> V)]", "c", ExecMode::kCheckBoth);
  ASSERT_TRUE(with_mode.ok()) << with_mode.status();
  EXPECT_TRUE(with_mode->answers.empty());  // no c-level m-atom exists

  // The wild belief itself answers, but only through b-atoms, which stay
  // behind the no-read-up guards.
  Result<QueryResult> believed = engine->QuerySource(
      "c[p(k : a -C-> V)] << wild", "c", ExecMode::kCheckBoth);
  ASSERT_TRUE(believed.ok()) << believed.status();
  EXPECT_EQ(believed->answers.size(), 1u);
}

TEST(UserBeliefTest, RawRelAccessOutsideBelClausesRejected) {
  const char* src = R"(
    level(u).
    u[p(k : a -u-> v)].
    leak(V) :- rel(p, k, a, V, C, L).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // The reduction rejects the clause when compiling.
  Result<QueryResult> r = engine->QuerySource("leak(V)", "u");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace multilog::ml
