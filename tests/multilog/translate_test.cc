#include "multilog/translate.h"

#include <gtest/gtest.h>

#include "mls/sample_data.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

TEST(TranslateTest, EncodeMissionProducesLambdaAndSigma) {
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<Database> db = EncodeRelation(*ds->mission, "mission");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->lambda.size(), 4u + 3u);  // 4 levels + 3 cover edges
  EXPECT_EQ(db->sigma.size(), 10u);       // one molecule per tuple
  // Example 5.1's shape: the key attribute maps to the key itself.
  std::string text = db->ToString();
  EXPECT_NE(text.find("starship -s-> avenger"), std::string::npos) << text;
}

TEST(TranslateTest, EncodeDecodeRoundTrip) {
  Result<mls::MissionDataset> ds = mls::BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<Database> db = EncodeRelation(*ds->mission, "mission");
  ASSERT_TRUE(db.ok());
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  ASSERT_TRUE(cdb.ok()) << cdb.status();

  Result<mls::Relation> decoded = DecodeRelation(*cdb, "mission");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->size(), 10u);
  EXPECT_EQ(decoded->scheme().key_attribute(), "starship");

  // Cell-level identity (the encoding lower-cases values, so compare
  // through RelationCells on both sides of a second round trip).
  Result<Database> again = EncodeRelation(*decoded, "mission");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cdb->db.ToString(), again->ToString());
}

TEST(TranslateTest, DecodeFromHandwrittenSource) {
  const char* src = R"(
    level(u). level(s). order(u, s).
    u[stock(widget : item -u-> widget, qty -u-> 40)].
    s[stock(widget : item -u-> widget, qty -s-> 15)].
  )";
  Result<Database> db = ParseMultiLog(src);
  ASSERT_TRUE(db.ok());
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  ASSERT_TRUE(cdb.ok());
  Result<mls::Relation> rel = DecodeRelation(*cdb, "stock");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_EQ(rel->scheme().key_attribute(), "item");
  EXPECT_EQ(rel->tuples()[0].cells[1].value, mls::Value::Int(40));
}

TEST(TranslateTest, DecodeUnknownPredicateFails) {
  Result<Database> db = ParseMultiLog("level(u).");
  ASSERT_TRUE(db.ok());
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  ASSERT_TRUE(cdb.ok());
  EXPECT_TRUE(DecodeRelation(*cdb, "ghost").status().IsNotFound());
}

TEST(TranslateTest, DecodeRejectsKeylessFacts) {
  const char* src = R"(
    level(u).
    u[blob(k1 : payload -u-> x)].
  )";
  Result<Database> db = ParseMultiLog(src);
  ASSERT_TRUE(db.ok());
  Result<CheckedDatabase> cdb = CheckDatabase(std::move(*db));
  ASSERT_TRUE(cdb.ok());
  EXPECT_TRUE(DecodeRelation(*cdb, "blob").status().IsInvalidProgram());
}

TEST(TranslateTest, CellFactOrderingAndToString) {
  CellFact a{"k1", "a", "v", "u"};
  CellFact b{"k1", "b", "v", "u"};
  EXPECT_TRUE(a < b);
  EXPECT_EQ(a.ToString(), "k1.a = v / u");
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace multilog::ml
