#include "multilog/database.h"

#include <gtest/gtest.h>

#include "multilog/parser.h"

namespace multilog::ml {
namespace {

Result<CheckedDatabase> Check(std::string_view src,
                              bool require_consistency = false) {
  Result<Database> db = ParseMultiLog(src);
  if (!db.ok()) return db.status();
  return CheckDatabase(std::move(*db), require_consistency);
}

TEST(DatabaseTest, ExtractsLatticeFromFacts) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(c). level(s).
    order(u, c). order(c, s).
  )");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  EXPECT_EQ(cdb->lattice.size(), 3u);
  EXPECT_TRUE(cdb->lattice.Leq("u", "s").value_or(false));
}

TEST(DatabaseTest, LambdaMayUseRules) {
  // Derived levels: Lambda clauses may have (Lambda-only) bodies.
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(c).
    order(u, c).
    level(s) :- level(c).
    order(c, s) :- level(s).
  )");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  EXPECT_EQ(cdb->lattice.size(), 3u);
  EXPECT_TRUE(cdb->lattice.Leq("u", "s").value_or(false));
}

TEST(DatabaseTest, LambdaDependingOnPiRejected) {
  Result<CheckedDatabase> cdb = Check(R"(
    q(x).
    level(u) :- q(x).
  )");
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsInvalidProgram());
}

TEST(DatabaseTest, CyclicOrderRejected) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(a). level(b).
    order(a, b). order(b, a).
  )");
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsInvalidProgram());
}

TEST(DatabaseTest, UndeclaredLabelInSigmaRejected) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    s[p(k : a -u-> v)].
  )");
  ASSERT_FALSE(cdb.ok());
  EXPECT_NE(cdb.status().message().find("'s'"), std::string::npos)
      << cdb.status();
}

TEST(DatabaseTest, UndeclaredClassificationRejected) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[p(k : a -s-> v)].
  )");
  ASSERT_FALSE(cdb.ok());
}

TEST(DatabaseTest, OrderEndpointMustBeDeclared) {
  Result<CheckedDatabase> cdb = Check("level(u). order(u, c).");
  ASSERT_FALSE(cdb.ok());
}

TEST(DatabaseTest, ConsistentMolecularFactsPass) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(s). order(u, s).
    s[m(k1 : key -u-> k1, val -s-> a)].
    u[m(k2 : key -u-> k2, val -u-> b)].
  )",
                                      /*require_consistency=*/true);
  EXPECT_TRUE(cdb.ok()) << cdb.status();
}

TEST(DatabaseTest, MissingKeyCellRejected) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[m(k1 : val -u-> a)].
  )",
                                      /*require_consistency=*/true);
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsIntegrityViolation());
}

TEST(DatabaseTest, EntityIntegrityOnFacts) {
  // The value classification u sits below the key classification s.
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(s). order(u, s).
    s[m(k1 : key -s-> k1, val -u-> a)].
  )",
                                      /*require_consistency=*/true);
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsIntegrityViolation());
}

TEST(DatabaseTest, NullIntegrityOnFacts) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(s). order(u, s).
    s[m(k1 : key -u-> k1, val -s-> null)].
  )",
                                      /*require_consistency=*/true);
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsIntegrityViolation());
}

TEST(DatabaseTest, NullAtKeyClassOk) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(s). order(u, s).
    s[m(k1 : key -u-> k1, val -u-> null)].
  )",
                                      /*require_consistency=*/true);
  EXPECT_TRUE(cdb.ok()) << cdb.status();
}

TEST(DatabaseTest, PolyinstantiationIntegrityOnFacts) {
  // Same key, key class, and value class but different values.
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(s). order(u, s).
    s[m(k1 : key -u-> k1, val -s-> a)].
    s[m(k1 : key -u-> k1, val -s-> b)].
  )",
                                      /*require_consistency=*/true);
  ASSERT_FALSE(cdb.ok());
  EXPECT_TRUE(cdb.status().IsIntegrityViolation());
}

TEST(DatabaseTest, PolyinstantiationAcrossKeyClassesOk) {
  // Distinct key classifications keep the FD intact (Figure 1's t4/t5).
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(c). level(s). order(u, c). order(c, s).
    s[m(k1 : key -u-> k1, val -s-> a)].
    s[m(k1 : key -c-> k1, val -s-> b)].
  )",
                                      /*require_consistency=*/true);
  EXPECT_TRUE(cdb.ok()) << cdb.status();
}

TEST(DatabaseTest, ConsistencyIsOptional) {
  // D1-style abstract databases without key cells pass when consistency
  // is not required (the paper's own Figure 10 example).
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[m(k1 : val -u-> a)].
  )");
  EXPECT_TRUE(cdb.ok()) << cdb.status();
}

TEST(DatabaseTest, EmptyDatabase) {
  Result<CheckedDatabase> cdb = Check("");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  EXPECT_EQ(cdb->lattice.size(), 0u);
}

}  // namespace
}  // namespace multilog::ml
