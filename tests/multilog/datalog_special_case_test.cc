#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "multilog/engine.h"

namespace multilog::ml {
namespace {

/// A random *positive* Datalog program (MultiLog's definite fragment has
/// no negation), deterministic in `seed`.
std::string RandomDatalog(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node_count(3, 6);
  std::uniform_int_distribution<int> edge_count(3, 9);
  const int nodes = node_count(rng);
  std::uniform_int_distribution<int> node_pick(0, nodes - 1);
  auto node = [&](int i) { return "n" + std::to_string(i); };

  std::string src;
  for (int i = 0; i < nodes; ++i) src += "node(" + node(i) + ").\n";
  const int edges = edge_count(rng);
  for (int i = 0; i < edges; ++i) {
    src += "edge(" + node(node_pick(rng)) + ", " + node(node_pick(rng)) +
           ").\n";
  }
  src += "reach(X, Y) :- edge(X, Y).\n";
  src += "reach(X, Y) :- edge(X, Z), reach(Z, Y).\n";
  src += "looped(X) :- reach(X, X).\n";
  src += "pal(X, Y) :- reach(X, Y), reach(Y, X).\n";
  return src;
}

class DatalogSpecialCaseTest : public ::testing::TestWithParam<unsigned> {};

// Proposition 6.1: a MultiLog database with empty Lambda and Sigma and a
// pure Datalog Pi behaves exactly like Datalog - both through the
// operational proof system and through the reduction - at any session
// level (here a nominal `system` level, since a session needs a level to
// exist).
TEST_P(DatalogSpecialCaseTest, MultiLogDegeneratesToDatalog) {
  const std::string datalog_src = RandomDatalog(GetParam());
  const std::string ml_src = "level(system).\n" + datalog_src;

  // Plain Datalog semantics.
  Result<datalog::ParsedProgram> parsed = datalog::ParseDatalog(datalog_src);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<datalog::Model> model = datalog::Evaluate(parsed->program);
  ASSERT_TRUE(model.ok()) << model.status();

  // MultiLog engine.
  Result<Engine> engine = Engine::FromSource(ml_src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const char* goal_text :
       {"reach(X, Y)", "looped(X)", "pal(X, Y)", "edge(X, Y)", "node(X)"}) {
    Result<std::vector<datalog::Literal>> goal =
        datalog::ParseGoal(goal_text);
    ASSERT_TRUE(goal.ok());
    Result<std::vector<datalog::Substitution>> expected =
        datalog::QueryModel(*model, *goal);
    ASSERT_TRUE(expected.ok());

    Result<QueryResult> got =
        engine->QuerySource(goal_text, "system", ExecMode::kCheckBoth);
    ASSERT_TRUE(got.ok()) << got.status() << "\ngoal " << goal_text << "\n"
                          << datalog_src;

    std::set<std::string> e, g;
    for (const datalog::Substitution& s : *expected) e.insert(s.ToString());
    for (const datalog::Substitution& s : got->answers) {
      g.insert(s.ToString());
    }
    EXPECT_EQ(e, g) << "goal " << goal_text << "\n" << datalog_src;
  }
}

// Datalog proofs through MultiLog use only the classical rules
// (DEDUCTION-G, AND, EMPTY) - Proposition 6.1's proof-tree claim.
TEST_P(DatalogSpecialCaseTest, ProofsUseOnlyClassicalRules) {
  const std::string ml_src = "level(system).\n" + RandomDatalog(GetParam());
  Result<Engine> engine = Engine::FromSource(ml_src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  Result<QueryResult> r =
      engine->QuerySource("reach(X, Y)", "system", ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const ProofPtr& proof : r->proofs) {
    for (const std::string& rule : ProofRules(*proof)) {
      EXPECT_TRUE(rule == "deduction-g" || rule == "and" || rule == "empty")
          << "non-classical rule in Datalog proof: " << rule;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DatalogSpecialCaseTest,
                         ::testing::Range(0u, 15u));

}  // namespace
}  // namespace multilog::ml
