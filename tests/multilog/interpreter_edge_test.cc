#include <gtest/gtest.h>

#include "multilog/engine.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

std::vector<std::string> Answers(Result<QueryResult> r) {
  std::vector<std::string> out;
  if (!r.ok()) return {"error: " + r.status().ToString()};
  for (const datalog::Substitution& s : r->answers) {
    out.push_back(s.ToString());
  }
  return out;
}

constexpr const char* kBase = R"(
  level(u). level(c). level(s). order(u, c). order(c, s).
  u[ship(k1 : name -u-> falcon, dest -u-> venus)].
  c[ship(k1 : name -u-> falcon, dest -c-> mars)].
  s[ship(k2 : name -s-> ghost, dest -s-> pluto)].
)";

TEST(InterpreterEdgeTest, MoleculeQueriesAreConjunctions) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // The molecular goal requires both cells provable at the same (level,
  // key); k1 at c qualifies via the two facts.
  Result<QueryResult> r = engine->QuerySource(
      "c[ship(K : name -C1-> N, dest -C2-> D)]", "c",
      ExecMode::kCheckBoth);
  EXPECT_EQ(Answers(std::move(r)),
            std::vector<std::string>{"{C1=u, C2=c, D=mars, K=k1, N=falcon}"});
}

TEST(InterpreterEdgeTest, DontCareClassificationInQueries) {
  // Section 7: don't-care levels present the illusion of a classical
  // relation.
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource(
      "c[ship(k1 : dest -> D)]", "c", ExecMode::kCheckBoth);
  EXPECT_EQ(Answers(std::move(r)), std::vector<std::string>{"{D=mars}"});
}

TEST(InterpreterEdgeTest, VariableLevelEnumerates) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource(
      "L[ship(k1 : dest -C-> D)]", "s", ExecMode::kCheckBoth);
  EXPECT_EQ(Answers(std::move(r)),
            (std::vector<std::string>{"{C=c, D=mars, L=c}",
                                      "{C=u, D=venus, L=u}"}));
}

TEST(InterpreterEdgeTest, VariableModeEnumeratesBuiltins) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  // M ranges over the built-in modes in the operational semantics; the
  // reduction derives bel facts for all three as well.
  Result<QueryResult> r = engine->QuerySource(
      "u[ship(k1 : dest -C-> D)] << M", "u", ExecMode::kCheckBoth);
  std::vector<std::string> answers = Answers(std::move(r));
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_NE(answers[0].find("M=cau"), std::string::npos);
  EXPECT_NE(answers[1].find("M=fir"), std::string::npos);
  EXPECT_NE(answers[2].find("M=opt"), std::string::npos);
}

TEST(InterpreterEdgeTest, CrossEntityConjunction) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource(
      "s[ship(K1 : dest -C1-> D)] << opt, s[ship(K2 : dest -C2-> D)] << opt",
      "s", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  // Every entity pairs with itself on its own destination; no two
  // entities share one.
  for (const datalog::Substitution& s : r->answers) {
    std::string text = s.ToString();
    // K1 and K2 must coincide in every answer.
    auto k1 = text.find("K1=k");
    auto k2 = text.find("K2=k");
    ASSERT_NE(k1, std::string::npos);
    ASSERT_NE(k2, std::string::npos);
    EXPECT_EQ(text[k1 + 4], text[k2 + 4]) << text;
  }
}

TEST(InterpreterEdgeTest, SessionLevelCapsBeliefLevel) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  // Asking about s-level belief from a c session violates no-read-up.
  Result<QueryResult> r = engine->QuerySource(
      "s[ship(K : dest -C-> D)] << opt", "c", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->answers.empty());
}

TEST(InterpreterEdgeTest, EmptyDatabaseQueries) {
  Result<Engine> engine = Engine::FromSource("level(u).");
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource(
      "u[ghost(K : a -C-> V)] << cau", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->answers.empty());
}

TEST(InterpreterEdgeTest, UnknownSessionLevelFails) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->QuerySource("q(X)", "zz").ok());
}

TEST(InterpreterEdgeTest, EnginesCacheModelsPerLevel) {
  Result<Engine> engine = Engine::FromSource(kBase);
  ASSERT_TRUE(engine.ok());
  Result<const datalog::Model*> m1 = engine->ReducedModel("c");
  Result<const datalog::Model*> m2 = engine->ReducedModel("c");
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(*m1, *m2);  // same cached pointer
  Result<Interpreter*> i1 = engine->OperationalInterpreter("c");
  Result<Interpreter*> i2 = engine->OperationalInterpreter("c");
  ASSERT_TRUE(i1.ok() && i2.ok());
  EXPECT_EQ(*i1, *i2);
}

TEST(InterpreterEdgeTest, Example51EncodingParses) {
  // The paper's Example 5.1, verbatim modulo concrete arrow syntax.
  const char* src = R"(
    level(u). level(c). level(s). order(u, c). order(c, s).
    s[mission(avenger : starship -s-> avenger; objective -s-> shipping;
              destination -s-> pluto)].
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r = engine->QuerySource(
      "s[mission(avenger : objective -C-> O)] << fir", "s",
      ExecMode::kCheckBoth);
  EXPECT_EQ(Answers(std::move(r)),
            std::vector<std::string>{"{C=s, O=shipping}"});
}

TEST(InterpreterEdgeTest, RecursivePClausesThroughMAtoms) {
  // Pi recursion interleaved with Sigma: supply chains over m-atoms.
  const char* src = R"(
    level(u).
    u[link(a : next -u-> b)].
    u[link(b : next -u-> c)].
    u[link(c : next -u-> d)].
    reach(X, Y) :- u[link(X : next -C-> Y)].
    reach(X, Y) :- u[link(X : next -C-> Z)], reach(Z, Y).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r =
      engine->QuerySource("reach(a, Y)", "u", ExecMode::kCheckBoth);
  EXPECT_EQ(Answers(std::move(r)),
            (std::vector<std::string>{"{Y=b}", "{Y=c}", "{Y=d}"}));
}

}  // namespace
}  // namespace multilog::ml
