// Property test for the mutation path: after every step of a mutation
// script, the live engine (with its surviving per-level caches) must
// answer every belief query - fir, opt, and cau, at every level of the
// diamond including the incomparable arms - exactly as a fresh engine
// rebuilt from scratch out of the dumped source. Any unsound cache
// survival (a level whose model should have been invalidated but was
// not) shows up here as an answer mismatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "multilog/engine.h"

namespace multilog::ml {
namespace {

constexpr char kDiamond[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

const char* const kLevels[] = {"u", "a", "b", "ts"};
const char* const kModes[] = {"fir", "opt", "cau"};

/// The script exercises polyinstantiation (key kc stored at u and at a
/// with different values - the case where fir/opt/cau genuinely
/// diverge), writes on both incomparable arms, and a retract.
struct Step {
  const char* level;
  const char* fact;
  bool retract;
};
constexpr Step kScript[] = {
    {"u", "u[item(k1 : id -u-> k1, val -u-> v1)].", false},
    {"a", "a[item(k2 : id -a-> k2, val -a-> v2)].", false},
    {"b", "b[item(k2 : id -b-> k2, val -b-> w2)].", false},
    {"u", "u[item(kc : id -u-> kc, val -u-> low)].", false},
    {"a", "a[item(kc : id -a-> kc, val -a-> high)].", false},
    {"ts", "ts[item(k3 : id -ts-> k3)].", false},
    {"a", "a[item(k2 : id -a-> k2, val -a-> v2)].", true},
    {"u", "u[item(k4 : id -u-> k4, val -u-> v4)].", false},
};

std::vector<std::string> SortedAnswers(Engine& engine, const std::string& goal,
                                       const std::string& level) {
  // kCheckBoth doubles as a Theorem 6.1 oracle on every probe: the
  // operational and reduced semantics must agree on the mutated state.
  Result<QueryResult> r =
      engine.QuerySource(goal, level, ExecMode::kCheckBoth);
  EXPECT_TRUE(r.ok()) << goal << " @ " << level << ": " << r.status();
  std::vector<std::string> out;
  if (!r.ok()) return out;
  for (const datalog::Substitution& s : r->answers) out.push_back(s.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MutationEquivalenceProperty, LiveEngineMatchesScratchRebuildEverywhere) {
  Result<Engine> live = Engine::FromSource(kDiamond);
  ASSERT_TRUE(live.ok()) << live.status();

  // Warm every level up front so the sweep genuinely tests cache
  // survival, not just cold rebuilds.
  for (const char* level : kLevels) {
    ASSERT_TRUE(live->ReducedModel(level).ok()) << level;
  }

  for (size_t step = 0; step < std::size(kScript); ++step) {
    const Step& s = kScript[step];
    Result<WriteResult> w = s.retract ? live->Retract(s.fact, s.level)
                                      : live->Assert(s.fact, s.level);
    ASSERT_TRUE(w.ok()) << "step " << step << ": " << w.status();

    // A fresh engine from the dumped source is the ground truth: no
    // caches, no history, just the current Sigma.
    Result<Engine> scratch = Engine::FromSource(live->DumpSource());
    ASSERT_TRUE(scratch.ok()) << "step " << step << ": " << scratch.status();

    for (const char* level : kLevels) {
      for (const char* mode : kModes) {
        // Two goal shapes per probe: enumerate all keys, and chase the
        // polyinstantiated key's value bindings.
        for (const std::string goal :
             {std::string(level) + "[item(K : id -C-> K)] << " + mode,
              std::string(level) + "[item(kc : val -C-> V)] << " + mode}) {
          EXPECT_EQ(SortedAnswers(*live, goal, level),
                    SortedAnswers(*scratch, goal, level))
              << "step " << step << " level " << level << " mode " << mode
              << " goal " << goal;
        }
      }
    }
  }
}

/// Raw (unsorted) answer rendering: the byte-identity oracle. The
/// reduced pipeline serves answers in a deterministic sorted order, so
/// a live engine whose maintained state matches a scratch rebuild must
/// reproduce the exact byte sequence, not merely the same set.
std::string RenderedAnswers(Engine& engine, const std::string& goal,
                            const std::string& level) {
  Result<QueryResult> r = engine.QuerySource(goal, level, ExecMode::kCheckBoth);
  EXPECT_TRUE(r.ok()) << goal << " @ " << level << ": " << r.status();
  std::string out;
  if (!r.ok()) return out;
  for (const datalog::Substitution& s : r->answers) {
    out += s.ToString();
    out += '\n';
  }
  return out;
}

/// Randomized interleaved asserts/retracts on the diamond,
/// polyinstantiation-dense (few keys, all four levels, molecular
/// facts), probed for byte-identical answers against a scratch rebuild
/// after every step - single-threaded and with 8 concurrent readers.
/// Runs with incremental maintenance both on and off, so the delta path
/// and the invalidation path are held to the same oracle.
void RunRandomizedInterleaving(bool incremental, size_t probe_threads) {
  EngineOptions options;
  options.incremental = incremental;
  Result<Engine> live = Engine::FromSource(kDiamond, options);
  ASSERT_TRUE(live.ok()) << live.status();
  for (const char* level : kLevels) {
    ASSERT_TRUE(live->ReducedModel(level).ok()) << level;
  }

  std::mt19937 rng(20260809u + (incremental ? 1u : 0u) + probe_threads);
  // (key, level) -> the exact stored fact, so every generated op is
  // valid: asserts never collide with a stored version, retracts always
  // name a stored fact.
  std::map<std::pair<std::string, std::string>, std::string> stored;

  for (size_t step = 0; step < 40; ++step) {
    const bool retract = !stored.empty() && rng() % 10 < 4;
    std::string level;
    std::string fact;
    if (retract) {
      auto it = stored.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng() % stored.size()));
      level = it->first.second;
      fact = it->second;
      stored.erase(it);
    } else {
      const std::string key = "k" + std::to_string(rng() % 5);
      level = kLevels[rng() % 4];
      if (stored.count({key, level}) != 0) continue;  // already stored
      fact = level + "[item(" + key + " : id -" + level + "-> " + key +
             ", val -" + level + "-> v" + std::to_string(rng() % 3) + ")].";
      stored.emplace(std::make_pair(key, level), fact);
    }
    Result<WriteResult> w = retract ? live->Retract(fact, level)
                                    : live->Assert(fact, level);
    ASSERT_TRUE(w.ok()) << "step " << step << " " << fact << ": "
                        << w.status();
    if (incremental) {
      // The delta path never falls back on this workload: ground
      // molecular facts splice exactly.
      EXPECT_TRUE(w->invalidated_levels.empty())
          << "step " << step << " " << fact;
    } else {
      EXPECT_TRUE(w->maintained_levels.empty());
    }

    Result<Engine> scratch = Engine::FromSource(live->DumpSource());
    ASSERT_TRUE(scratch.ok()) << "step " << step << ": " << scratch.status();

    // Every probe's expected bytes come from the scratch engine first;
    // the live engine is then probed from `probe_threads` concurrent
    // readers (shared-lock path), each comparing byte-for-byte.
    struct Probe {
      std::string goal;
      std::string level;
      std::string expected;
    };
    std::vector<Probe> probes;
    for (const char* probe_level : kLevels) {
      for (const char* mode : kModes) {
        for (const std::string goal :
             {std::string(probe_level) + "[item(K : id -C-> K)] << " + mode,
              std::string(probe_level) + "[item(K : val -C-> V)] << " +
                  mode}) {
          probes.push_back(
              {goal, probe_level,
               RenderedAnswers(*scratch, goal, probe_level)});
        }
      }
    }
    std::vector<std::thread> readers;
    for (size_t tid = 0; tid < probe_threads; ++tid) {
      readers.emplace_back([&, tid] {
        for (size_t p = tid; p < probes.size(); p += probe_threads) {
          EXPECT_EQ(RenderedAnswers(*live, probes[p].goal, probes[p].level),
                    probes[p].expected)
              << "step " << step << " goal " << probes[p].goal
              << " incremental " << incremental;
        }
      });
    }
    for (std::thread& t : readers) t.join();
  }
}

TEST(MutationEquivalenceProperty, RandomizedInterleavingIncremental) {
  RunRandomizedInterleaving(/*incremental=*/true, /*probe_threads=*/1);
}

TEST(MutationEquivalenceProperty, RandomizedInterleavingInvalidating) {
  RunRandomizedInterleaving(/*incremental=*/false, /*probe_threads=*/1);
}

TEST(MutationEquivalenceProperty, RandomizedInterleavingEightReaders) {
  RunRandomizedInterleaving(/*incremental=*/true, /*probe_threads=*/8);
}

}  // namespace
}  // namespace multilog::ml
