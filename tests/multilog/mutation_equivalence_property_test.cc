// Property test for the mutation path: after every step of a mutation
// script, the live engine (with its surviving per-level caches) must
// answer every belief query - fir, opt, and cau, at every level of the
// diamond including the incomparable arms - exactly as a fresh engine
// rebuilt from scratch out of the dumped source. Any unsound cache
// survival (a level whose model should have been invalidated but was
// not) shows up here as an answer mismatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "multilog/engine.h"

namespace multilog::ml {
namespace {

constexpr char kDiamond[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

const char* const kLevels[] = {"u", "a", "b", "ts"};
const char* const kModes[] = {"fir", "opt", "cau"};

/// The script exercises polyinstantiation (key kc stored at u and at a
/// with different values - the case where fir/opt/cau genuinely
/// diverge), writes on both incomparable arms, and a retract.
struct Step {
  const char* level;
  const char* fact;
  bool retract;
};
constexpr Step kScript[] = {
    {"u", "u[item(k1 : id -u-> k1, val -u-> v1)].", false},
    {"a", "a[item(k2 : id -a-> k2, val -a-> v2)].", false},
    {"b", "b[item(k2 : id -b-> k2, val -b-> w2)].", false},
    {"u", "u[item(kc : id -u-> kc, val -u-> low)].", false},
    {"a", "a[item(kc : id -a-> kc, val -a-> high)].", false},
    {"ts", "ts[item(k3 : id -ts-> k3)].", false},
    {"a", "a[item(k2 : id -a-> k2, val -a-> v2)].", true},
    {"u", "u[item(k4 : id -u-> k4, val -u-> v4)].", false},
};

std::vector<std::string> SortedAnswers(Engine& engine, const std::string& goal,
                                       const std::string& level) {
  // kCheckBoth doubles as a Theorem 6.1 oracle on every probe: the
  // operational and reduced semantics must agree on the mutated state.
  Result<QueryResult> r =
      engine.QuerySource(goal, level, ExecMode::kCheckBoth);
  EXPECT_TRUE(r.ok()) << goal << " @ " << level << ": " << r.status();
  std::vector<std::string> out;
  if (!r.ok()) return out;
  for (const datalog::Substitution& s : r->answers) out.push_back(s.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MutationEquivalenceProperty, LiveEngineMatchesScratchRebuildEverywhere) {
  Result<Engine> live = Engine::FromSource(kDiamond);
  ASSERT_TRUE(live.ok()) << live.status();

  // Warm every level up front so the sweep genuinely tests cache
  // survival, not just cold rebuilds.
  for (const char* level : kLevels) {
    ASSERT_TRUE(live->ReducedModel(level).ok()) << level;
  }

  for (size_t step = 0; step < std::size(kScript); ++step) {
    const Step& s = kScript[step];
    Result<WriteResult> w = s.retract ? live->Retract(s.fact, s.level)
                                      : live->Assert(s.fact, s.level);
    ASSERT_TRUE(w.ok()) << "step " << step << ": " << w.status();

    // A fresh engine from the dumped source is the ground truth: no
    // caches, no history, just the current Sigma.
    Result<Engine> scratch = Engine::FromSource(live->DumpSource());
    ASSERT_TRUE(scratch.ok()) << "step " << step << ": " << scratch.status();

    for (const char* level : kLevels) {
      for (const char* mode : kModes) {
        // Two goal shapes per probe: enumerate all keys, and chase the
        // polyinstantiated key's value bindings.
        for (const std::string goal :
             {std::string(level) + "[item(K : id -C-> K)] << " + mode,
              std::string(level) + "[item(kc : val -C-> V)] << " + mode}) {
          EXPECT_EQ(SortedAnswers(*live, goal, level),
                    SortedAnswers(*scratch, goal, level))
              << "step " << step << " level " << level << " mode " << mode
              << " goal " << goal;
        }
      }
    }
  }
}

}  // namespace
}  // namespace multilog::ml
