// Engine mutation tests: the Assert/Retract/Checkpoint API, Definition
// 5.4 validation, write atomicity on rejection, and - the heart of the
// matter - dominance-aware cache invalidation over a diamond lattice
// (a write at one arm must not disturb the incomparable arm's caches).

#include "multilog/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "storage/storage.h"

namespace multilog::ml {
namespace {

/// Diamond: u < a < ts, u < b < ts, with a and b incomparable. The base
/// fact gives item/1 a key cell so Definition 5.4's functional
/// dependency is seeded and asserted facts must carry one too.
constexpr char kDiamond[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

std::vector<std::string> AnswerStrings(const QueryResult& r) {
  std::vector<std::string> out;
  for (const datalog::Substitution& s : r.answers) out.push_back(s.ToString());
  return out;
}

size_t AnswerCount(Engine& engine, const std::string& goal,
                   const std::string& level) {
  Result<QueryResult> r = engine.QuerySource(goal, level, ExecMode::kCheckBoth);
  EXPECT_TRUE(r.ok()) << goal << " @ " << level << ": " << r.status();
  return r.ok() ? r->answers.size() : 0;
}

TEST(EngineMutationTest, AssertBecomesVisibleAndSeqnosIncrement) {
  Result<Engine> engine = Engine::FromSource(kDiamond);
  ASSERT_TRUE(engine.ok()) << engine.status();

  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "a"), 0u);

  Result<WriteResult> w1 =
      engine->Assert("a[item(ka : id -a-> ka, val -a-> green)].", "a");
  ASSERT_TRUE(w1.ok()) << w1.status();
  EXPECT_EQ(w1->seqno, 1u);
  Result<WriteResult> w2 =
      engine->Assert("u[item(ku : id -u-> ku, val -u-> red)].", "u");
  ASSERT_TRUE(w2.ok()) << w2.status();
  EXPECT_EQ(w2->seqno, 2u);

  // The a-fact is believed at a and at ts, but not at the incomparable
  // b (it cannot even see it) nor below at u.
  Result<QueryResult> at_a = engine->QuerySource(
      "a[item(ka : id -R-> ka)] << opt", "a", ExecMode::kCheckBoth);
  ASSERT_TRUE(at_a.ok()) << at_a.status();
  EXPECT_EQ(AnswerStrings(*at_a), std::vector<std::string>{"{R=a}"});
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "ts"), 1u);
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "b"), 0u);
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "u"), 0u);

  EngineCounters c = engine->Counters();
  EXPECT_EQ(c.asserts_ok, 2u);
  EXPECT_EQ(c.retracts_ok, 0u);
  EXPECT_EQ(c.writes_rejected, 0u);
  EXPECT_EQ(c.invalidation_events, 2u);
  EXPECT_FALSE(engine->StorageStats().attached);
}

TEST(EngineMutationTest, InvalidationFollowsDominanceOnTheDiamond) {
  // This test pins the invalidate-and-recompute path (the
  // --no-incremental regime); the incremental path is pinned below.
  EngineOptions options;
  options.incremental = false;
  Result<Engine> engine = Engine::FromSource(kDiamond, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Warm every level's reduced-model cache.
  for (const char* level : {"u", "a", "b", "ts"}) {
    ASSERT_TRUE(engine->ReducedModel(level).ok()) << level;
  }
  const EngineCounters warm = engine->Counters();

  // A write at `a` invalidates exactly the cached levels that dominate
  // a: a itself and ts. The incomparable b and the strictly lower u
  // cannot observe an a-fact, so their caches survive.
  Result<WriteResult> w =
      engine->Assert("a[item(ka : id -a-> ka, val -a-> green)].", "a");
  ASSERT_TRUE(w.ok()) << w.status();
  std::vector<std::string> dropped = w->invalidated_levels;
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<std::string>{"a", "ts"}));

  EngineCounters after = engine->Counters();
  EXPECT_EQ(after.invalidation_events, warm.invalidation_events + 1);
  // Each of a and ts had a reduced program, a model, and an interpreter
  // is not necessarily built - at least the two models and two reduced
  // programs went.
  EXPECT_GE(after.cache_entries_invalidated,
            warm.cache_entries_invalidated + 4);

  // Surviving levels answer from cache (hits), invalidated levels
  // rebuild (misses).
  ASSERT_TRUE(engine->ReducedModel("u").ok());
  ASSERT_TRUE(engine->ReducedModel("b").ok());
  EngineCounters hits = engine->Counters();
  EXPECT_EQ(hits.cache_hits, after.cache_hits + 2);
  EXPECT_EQ(hits.cache_misses, after.cache_misses);

  ASSERT_TRUE(engine->ReducedModel("a").ok());
  ASSERT_TRUE(engine->ReducedModel("ts").ok());
  EngineCounters misses = engine->Counters();
  EXPECT_GT(misses.cache_misses, hits.cache_misses);

  // A write at the top invalidates only the top; a write at the bottom
  // takes everything cached.
  Result<WriteResult> top =
      engine->Assert("ts[item(kt : id -ts-> kt)].", "ts");
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_EQ(top->invalidated_levels, std::vector<std::string>{"ts"});

  ASSERT_TRUE(engine->ReducedModel("ts").ok());
  Result<WriteResult> bottom =
      engine->Assert("u[item(ku : id -u-> ku)].", "u");
  ASSERT_TRUE(bottom.ok()) << bottom.status();
  std::vector<std::string> all = bottom->invalidated_levels;
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::string>{"a", "b", "ts", "u"}));
}

TEST(EngineMutationTest, IncrementalMaintenanceKeepsDominatingCachesLive) {
  EngineOptions options;
  options.incremental = true;
  Result<Engine> engine = Engine::FromSource(kDiamond, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const char* level : {"u", "a", "b", "ts"}) {
    ASSERT_TRUE(engine->ReducedModel(level).ok()) << level;
  }
  const EngineCounters warm = engine->Counters();
  EXPECT_EQ(warm.live_models, 4u);

  // A write at `a` maintains the dominating a and ts in place; nothing
  // is dropped, and every level keeps answering from cache.
  Result<WriteResult> w =
      engine->Assert("a[item(ka : id -a-> ka, val -a-> green)].", "a");
  ASSERT_TRUE(w.ok()) << w.status();
  std::vector<std::string> kept = w->maintained_levels;
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(kept, (std::vector<std::string>{"a", "ts"}));
  EXPECT_TRUE(w->invalidated_levels.empty());

  EngineCounters after = engine->Counters();
  EXPECT_EQ(after.deltas_applied, warm.deltas_applied + 2);
  EXPECT_EQ(after.fallback_recomputes, 0u);
  EXPECT_EQ(after.cache_entries_invalidated, warm.cache_entries_invalidated);
  EXPECT_EQ(after.live_models, 4u);

  for (const char* level : {"u", "a", "b", "ts"}) {
    ASSERT_TRUE(engine->ReducedModel(level).ok()) << level;
  }
  EngineCounters hits = engine->Counters();
  EXPECT_EQ(hits.cache_hits, after.cache_hits + 4);
  EXPECT_EQ(hits.cache_misses, after.cache_misses);

  // The maintained models serve the new fact where it is visible...
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "a"), 1u);
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "ts"), 1u);
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "b"), 0u);

  // ...and a retract pulls it back out, again in place.
  Result<WriteResult> r =
      engine->Retract("a[item(ka : id -a-> ka, val -a-> green)].", "a");
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<std::string> kept_r = r->maintained_levels;
  std::sort(kept_r.begin(), kept_r.end());
  EXPECT_EQ(kept_r, (std::vector<std::string>{"a", "ts"}));
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "a"), 0u);
  EXPECT_EQ(AnswerCount(*engine, "a[item(ka : id -R-> ka)] << opt", "ts"), 0u);
}

TEST(EngineMutationTest, RejectedWritesLeaveEverythingUntouched) {
  const std::string dir = ::testing::TempDir() + "/mutation_atomic_" +
                          std::to_string(::getpid());
  Result<storage::Storage> st = storage::Storage::Open(dir, kDiamond);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<Engine> engine = Engine::FromStorage(&*st);
  ASSERT_TRUE(engine.ok()) << engine.status();

  ASSERT_TRUE(
      engine->Assert("a[item(ka : id -a-> ka, val -a-> green)].", "a").ok());
  for (const char* level : {"u", "a", "b", "ts"}) {
    ASSERT_TRUE(engine->ReducedModel(level).ok()) << level;
  }
  const std::string dump = engine->DumpSource();
  const EngineCounters before = engine->Counters();
  const StorageCounters disk = engine->StorageStats();
  ASSERT_TRUE(disk.attached);

  struct Rejection {
    const char* what;
    const char* fact;
    const char* level;
    bool retract;
    bool (Status::*is)() const;
  };
  const Rejection kRejections[] = {
      {"undeclared writing level", "a[item(x : id -a-> x)].", "zzz", false,
       &Status::IsInvalidArgument},
      {"fact level != writing level (no write-down)",
       "u[item(x : id -u-> x)].", "a", false, &Status::IsSecurityViolation},
      {"fact level != writing level (no write-up)",
       "ts[item(x : id -ts-> x)].", "a", false, &Status::IsSecurityViolation},
      {"cell classified above the writing level",
       "a[item(x : id -ts-> x)].", "a", false, &Status::IsSecurityViolation},
      {"null key", "a[item(null : id -a-> x)].", "a", false,
       &Status::IsIntegrityViolation},
      {"missing key cell", "a[item(x : val -a-> y)].", "a", false,
       &Status::IsIntegrityViolation},
      {"entity integrity: value below key classification",
       "a[item(x : id -a-> x, val -u-> y)].", "a", false,
       &Status::IsIntegrityViolation},
      {"polyinstantiation: same key+classification, second value",
       "u[item(base : id -u-> base, val -u-> other)].", "u", false,
       &Status::IsIntegrityViolation},
      {"duplicate assert", "a[item(ka : id -a-> ka, val -a-> green)].", "a",
       false, &Status::IsInvalidArgument},
      {"retract of an absent fact", "a[item(nope : id -a-> nope)].", "a",
       true, &Status::IsNotFound},
      {"unparsable fact", "this is not multilog", "a", false, nullptr},
      {"non-fact input (has a body)", "a[item(x : id -a-> x)] :- q(x).", "a",
       false, nullptr},
  };

  uint64_t rejections = 0;
  for (const Rejection& r : kRejections) {
    Result<WriteResult> w = r.retract ? engine->Retract(r.fact, r.level)
                                      : engine->Assert(r.fact, r.level);
    ASSERT_FALSE(w.ok()) << r.what;
    if (r.is != nullptr) {
      EXPECT_TRUE((w.status().*r.is)()) << r.what << ": " << w.status();
    }
    ++rejections;
  }

  // Atomicity: no WAL growth, no Sigma change, no cache invalidation,
  // and the only counter that moved is writes_rejected.
  EXPECT_EQ(engine->DumpSource(), dump);
  const StorageCounters disk_after = engine->StorageStats();
  EXPECT_EQ(disk_after.wal_records, disk.wal_records);
  EXPECT_EQ(disk_after.wal_bytes, disk.wal_bytes);
  EXPECT_EQ(disk_after.next_seqno, disk.next_seqno);
  EngineCounters after = engine->Counters();
  EXPECT_EQ(after.writes_rejected, before.writes_rejected + rejections);
  EXPECT_EQ(after.asserts_ok, before.asserts_ok);
  EXPECT_EQ(after.retracts_ok, before.retracts_ok);
  EXPECT_EQ(after.invalidation_events, before.invalidation_events);
  EXPECT_EQ(after.cache_entries_invalidated, before.cache_entries_invalidated);

  // Every level still answers from its warm cache.
  for (const char* level : {"u", "a", "b", "ts"}) {
    ASSERT_TRUE(engine->ReducedModel(level).ok()) << level;
  }
  EngineCounters hits = engine->Counters();
  EXPECT_EQ(hits.cache_hits, after.cache_hits + 4);
  EXPECT_EQ(hits.cache_misses, after.cache_misses);
}

TEST(EngineMutationTest, RetractRestoresThePriorModel) {
  Result<Engine> engine = Engine::FromSource(kDiamond);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const std::string pristine = engine->DumpSource();

  ASSERT_TRUE(
      engine->Assert("b[item(kb : id -b-> kb, val -b-> blue)].", "b").ok());
  EXPECT_EQ(AnswerCount(*engine, "b[item(kb : id -R-> kb)] << opt", "b"), 1u);
  EXPECT_NE(engine->DumpSource(), pristine);

  Result<WriteResult> w =
      engine->Retract("b[item(kb : id -b-> kb, val -b-> blue)].", "b");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(AnswerCount(*engine, "b[item(kb : id -R-> kb)] << opt", "b"), 0u);
  EXPECT_EQ(engine->DumpSource(), pristine);
  EXPECT_EQ(engine->Counters().retracts_ok, 1u);
}

TEST(EngineMutationTest, CheckpointRequiresStorage) {
  Result<Engine> engine = Engine::FromSource(kDiamond);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Status s = engine->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
  EXPECT_EQ(engine->Counters().checkpoints, 0u);
}

TEST(EngineMutationTest, DurableCheckpointCountsAndCompacts) {
  const std::string dir = ::testing::TempDir() + "/mutation_ckpt_" +
                          std::to_string(::getpid());
  Result<storage::Storage> st = storage::Storage::Open(dir, kDiamond);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<Engine> engine = Engine::FromStorage(&*st);
  ASSERT_TRUE(engine.ok()) << engine.status();

  ASSERT_TRUE(engine->Assert("u[item(k1 : id -u-> k1)].", "u").ok());
  ASSERT_TRUE(engine->Assert("u[item(k2 : id -u-> k2)].", "u").ok());
  EXPECT_EQ(engine->StorageStats().wal_records, 2u);
  ASSERT_TRUE(engine->Checkpoint().ok());
  StorageCounters disk = engine->StorageStats();
  EXPECT_EQ(disk.wal_records, 0u);
  EXPECT_EQ(disk.checkpoints, 1u);
  EXPECT_EQ(engine->Counters().checkpoints, 1u);

  // Seqnos keep increasing across the checkpoint.
  Result<WriteResult> w = engine->Assert("u[item(k3 : id -u-> k3)].", "u");
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->seqno, 3u);
}

}  // namespace
}  // namespace multilog::ml
