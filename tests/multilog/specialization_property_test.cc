#include <gtest/gtest.h>

#include <random>

#include "datalog/eval.h"
#include "multilog/engine.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

/// Random belief-free databases (so both the generic and the
/// level-specialized compilation are runnable) over u < c < s.
std::string RandomDatabase(unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](const std::vector<std::string>& xs) {
    std::uniform_int_distribution<size_t> d(0, xs.size() - 1);
    return xs[d(rng)];
  };
  const std::vector<std::string> levels = {"u", "c", "s"};
  const std::vector<std::string> keys = {"k0", "k1"};
  const std::vector<std::string> attrs = {"a", "b"};
  const std::vector<std::string> values = {"v0", "v1", "v2"};

  std::string src = "level(u). level(c). level(s). order(u, c). order(c, s).\n";
  std::uniform_int_distribution<int> count(4, 10);
  const int facts = count(rng);
  for (int i = 0; i < facts; ++i) {
    std::string level = pick(levels);
    std::string cls = pick(levels);
    if (cls > level) std::swap(cls, level);
    src += level + "[p(" + pick(keys) + " : " + pick(attrs) + " -" + cls +
           "-> " + pick(values) + ")].\n";
  }
  // A rule with a variable level (exercises level-variable expansion in
  // the specialized compilation).
  src += "c[p(k0 : b -c-> derived)] :- L[p(k0 : a -C-> V)].\n";
  return src;
}

/// Decoded-model text of the bel/rel facts under a given specialization
/// policy.
std::string ModelText(const std::string& src,
                      ReductionOptions::Specialization policy,
                      const std::string& level) {
  EngineOptions options;
  options.reduction.specialization = policy;
  Result<Engine> engine = Engine::FromSource(src, options);
  if (!engine.ok()) return "engine: " + engine.status().ToString();
  Result<const datalog::Model*> model = engine->ReducedModel(level);
  if (!model.ok()) return "model: " + model.status().ToString();
  // Compare only rel/bel (vis/overridden differ structurally: the
  // specialized program prunes statically false dominance combinations).
  std::string out;
  for (const char* pred : {"rel/6", "bel/7"}) {
    std::vector<std::string> lines;
    for (const datalog::Atom& fact : (*model)->FactsFor(pred)) {
      lines.push_back(fact.ToString());
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& l : lines) out += l + "\n";
  }
  return out;
}

class SpecializationPropertyTest : public ::testing::TestWithParam<unsigned> {
};

// Level specialization is a pure compilation strategy: the decoded
// rel/bel model is identical with and without it, at every session
// level.
TEST_P(SpecializationPropertyTest, GenericEqualsSpecialized) {
  const std::string src = RandomDatabase(GetParam());
  for (const std::string level : {"u", "c", "s"}) {
    std::string generic =
        ModelText(src, ReductionOptions::Specialization::kNever, level);
    std::string specialized =
        ModelText(src, ReductionOptions::Specialization::kAlways, level);
    EXPECT_EQ(generic, specialized) << "level " << level << "\n" << src;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SpecializationPropertyTest,
                         ::testing::Range(0u, 15u));

}  // namespace
}  // namespace multilog::ml
