#include <gtest/gtest.h>

#include <random>
#include <string>

#include "multilog/engine.h"

namespace multilog::ml {
namespace {

/// Generates a random admissible, level-stratified MultiLog database over
/// the u < c < s chain: random extensional m-facts, m-clauses with p-atom
/// bodies, m-clauses deriving from belief at strictly lower levels, and a
/// few p-clauses. Deterministic in `seed`.
std::string RandomDatabase(unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](const std::vector<std::string>& xs) {
    std::uniform_int_distribution<size_t> d(0, xs.size() - 1);
    return xs[d(rng)];
  };
  std::uniform_int_distribution<int> count(2, 7);
  std::uniform_int_distribution<int> coin(0, 1);

  const std::vector<std::string> levels = {"u", "c", "s"};
  const std::vector<std::string> preds = {"p", "q"};
  const std::vector<std::string> keys = {"k0", "k1", "k2"};
  const std::vector<std::string> attrs = {"a", "b"};
  const std::vector<std::string> values = {"v0", "v1", "v2", "v3"};

  std::string src = "level(u). level(c). level(s). order(u, c). order(c, s).\n";

  // Extensional m-facts. The cell classification must be dominated by the
  // fact's level for the fact to be readable at its own level; random
  // choice below the level keeps things interesting.
  const int facts = count(rng) + 3;
  for (int i = 0; i < facts; ++i) {
    std::string level = pick(levels);
    std::string cls = pick(levels);
    // Keep cls <= level so entity-style sanity holds (u<c<s chain).
    if (cls > level) std::swap(cls, level);
    src += level + "[" + pick(preds) + "(" + pick(keys) + " : " +
           pick(attrs) + " -" + cls + "-> " + pick(values) + ")].\n";
  }

  // Some p-facts, a p-rule, and stratified negation over p-atoms.
  src += "t(x0). t(x1).\n";
  src += "tt(X) :- t(X).\n";
  if (coin(rng)) {
    src += "blocked(x0).\n";
    src += "open(X) :- t(X), not blocked(X).\n";
  }

  // Sometimes a user-defined belief mode (Section 7).
  if (coin(rng)) {
    src += "bel(P, K, A, V, C, H, own) :- rel(P, K, A, V, C, H).\n";
  }

  // An m-clause with a p-atom body at a random level.
  {
    std::string level = pick(levels);
    src += level + "[" + pick(preds) + "(" + pick(keys) + " : " +
           pick(attrs) + " -" + level + "-> derived)] :- t(x0).\n";
  }

  // Level-stratified belief clauses: head strictly above the b-atom body.
  const int belief_clauses = count(rng) / 2;
  for (int i = 0; i < belief_clauses; ++i) {
    std::string low = coin(rng) ? "u" : "c";
    std::string high = low == "u" ? (coin(rng) ? "c" : "s") : "s";
    std::string mode = coin(rng) ? "cau" : (coin(rng) ? "opt" : "fir");
    std::string pred = pick(preds);
    std::string attr = pick(attrs);
    src += high + "[" + pred + "(K : " + attr + " -" + high +
           "-> believed)] :- " + low + "[" + pred + "(K : " + attr +
           " -C-> V)] << " + mode + ".\n";
  }
  return src;
}

class EquivalencePropertyTest : public ::testing::TestWithParam<unsigned> {};

// Theorem 6.1 as a property: on random databases, the operational proof
// system and the CORAL-style reduction agree on every query, at every
// session level, in every belief mode.
TEST_P(EquivalencePropertyTest, OperationalEqualsReduced) {
  const std::string src = RandomDatabase(GetParam());
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status() << "\n" << src;

  const std::vector<std::string> goals = {
      "L[p(K : a -C-> V)]",
      "L[q(K : b -C-> V)]",
      "c[p(K : a -C-> V)] << cau",
      "s[p(K : A1 -C-> V)] << opt",
      "s[q(K : b -C-> V)] << fir",
      "L[p(k0 : a -C-> V)] << cau",
      "tt(X)",
      "t(X), not tt(X)",
      "L[p(K : a -C-> V)] << M",
  };
  for (const std::string level : {"u", "c", "s"}) {
    for (const std::string& goal : goals) {
      Result<QueryResult> r =
          engine->QuerySource(goal, level, ExecMode::kCheckBoth);
      ASSERT_TRUE(r.ok()) << "level " << level << ", goal " << goal << ":\n"
                          << r.status() << "\n"
                          << src;
    }
  }
}

// Bell-LaPadula: no answer at session level l may mention a fact level or
// classification that l does not dominate.
TEST_P(EquivalencePropertyTest, NoReadUp) {
  const std::string src = RandomDatabase(GetParam());
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (const std::string level : {"u", "c"}) {
    Result<QueryResult> r = engine->QuerySource(
        "L[p(K : a -C-> V)]", level, ExecMode::kOperational);
    ASSERT_TRUE(r.ok()) << r.status();
    for (const datalog::Substitution& s : r->answers) {
      datalog::Term l = s.Apply(datalog::Term::Var("L"));
      datalog::Term c = s.Apply(datalog::Term::Var("C"));
      ASSERT_TRUE(l.IsSymbol() && c.IsSymbol());
      EXPECT_TRUE(engine->lattice().Leq(l.name(), level).value_or(false))
          << "leaked level " << l.name() << " to " << level << "\n"
          << src;
      EXPECT_TRUE(engine->lattice().Leq(c.name(), level).value_or(false))
          << "leaked classification " << c.name() << " to " << level;
    }
  }
}

// Belief-mode containment: firm implies optimistic, and cautious answers
// are always among the optimistic ones (same cells, higher filter).
TEST_P(EquivalencePropertyTest, ModeContainment) {
  const std::string src = RandomDatabase(GetParam());
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto answers = [&](const std::string& mode,
                     const std::string& level) -> std::set<std::string> {
    Result<QueryResult> r = engine->QuerySource(
        level + "[p(K : a -C-> V)] << " + mode, level, ExecMode::kReduced);
    EXPECT_TRUE(r.ok()) << r.status();
    std::set<std::string> out;
    if (r.ok()) {
      for (const datalog::Substitution& s : r->answers) {
        out.insert(s.ToString());
      }
    }
    return out;
  };

  for (const std::string level : {"u", "c", "s"}) {
    std::set<std::string> fir = answers("fir", level);
    std::set<std::string> opt = answers("opt", level);
    std::set<std::string> cau = answers("cau", level);
    for (const std::string& a : fir) {
      EXPECT_TRUE(opt.count(a)) << "firm answer not optimistic: " << a
                                << " at " << level << "\n" << src;
    }
    for (const std::string& a : cau) {
      EXPECT_TRUE(opt.count(a)) << "cautious answer not optimistic: " << a
                                << " at " << level << "\n" << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EquivalencePropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace multilog::ml
