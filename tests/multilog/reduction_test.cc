#include "multilog/reduction.h"

#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/stratify.h"
#include "mls/sample_data.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

Result<CheckedDatabase> Check(std::string_view src) {
  Result<Database> db = ParseMultiLog(src);
  if (!db.ok()) return db.status();
  return CheckDatabase(std::move(*db));
}

TEST(ReductionTest, EngineAxiomsAreSafeAndStratified) {
  datalog::Program axioms = EngineAxioms();
  EXPECT_TRUE(axioms.CheckSafety().ok());
  Result<datalog::Stratification> strat = datalog::Stratify(axioms);
  ASSERT_TRUE(strat.ok()) << strat.status();
  // dominate/order/level below vis, overridden below bel(cau).
  EXPECT_GE(strat->num_strata(), 2u);
}

TEST(ReductionTest, EngineAxiomsContainFigure12Rules) {
  std::string text = EngineAxioms().ToString();
  EXPECT_NE(text.find("dominate(X, X) :- level(X)."), std::string::npos);
  EXPECT_NE(text.find("dominate(X, Y) :- order(X, Y)."), std::string::npos);
  EXPECT_NE(text.find("fir"), std::string::npos);
  EXPECT_NE(text.find("opt"), std::string::npos);
  EXPECT_NE(text.find("cau"), std::string::npos);
  EXPECT_NE(text.find("not overridden"), std::string::npos);
}

TEST(ReductionTest, MAtomTranslation) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[p(k : a -u-> v)].
  )");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  Result<ReducedProgram> rp = Reduce(*cdb, "u");
  ASSERT_TRUE(rp.ok()) << rp.status();
  EXPECT_FALSE(rp->specialized);
  EXPECT_NE(rp->display.ToString().find("rel(p, k, a, v, u, u)."),
            std::string::npos)
      << rp->display.ToString();
}

TEST(ReductionTest, BodyAtomsGetSessionGuards) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(c). order(u, c).
    u[p(k : a -u-> v)].
    q(X) :- u[p(k : a -u-> X)].
  )");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  Result<ReducedProgram> rp = Reduce(*cdb, "c");
  ASSERT_TRUE(rp.ok());
  std::string text = rp->display.ToString();
  EXPECT_NE(text.find("q(X) :- rel(p, k, a, X, u, u), dominate(u, c), "
                      "dominate(u, c)."),
            std::string::npos)
      << text;
}

TEST(ReductionTest, MoleculeExpandsToAtomicConjunction) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[p(k : a -u-> v, b -u-> w)].
  )");
  ASSERT_TRUE(cdb.ok());
  Result<ReducedProgram> rp = Reduce(*cdb, "u");
  ASSERT_TRUE(rp.ok());
  // Two head atoms, one clause each.
  std::string text = rp->display.ToString();
  EXPECT_NE(text.find("rel(p, k, a, v, u, u)."), std::string::npos);
  EXPECT_NE(text.find("rel(p, k, b, w, u, u)."), std::string::npos);
}

TEST(ReductionTest, SpecializationTriggersOnBAtomBodies) {
  Result<CheckedDatabase> cdb = Check(mls::D1Source());
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  Result<ReducedProgram> rp = Reduce(*cdb, "s");
  ASSERT_TRUE(rp.ok()) << rp.status();
  EXPECT_TRUE(rp->specialized);
  // The generic display program does NOT stratify (recursion through
  // negation via r8)...
  EXPECT_FALSE(datalog::Stratify(rp->display).ok());
  // ...but the specialized executable program does, and evaluates.
  Result<datalog::Stratification> strat = datalog::Stratify(rp->program);
  EXPECT_TRUE(strat.ok()) << strat.status();
  Result<datalog::Model> model = datalog::Evaluate(rp->program);
  EXPECT_TRUE(model.ok()) << model.status();
}

TEST(ReductionTest, SpecializationCanBeForced) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[p(k : a -u-> v)].
  )");
  ASSERT_TRUE(cdb.ok());
  ReductionOptions options;
  options.specialization = ReductionOptions::Specialization::kAlways;
  Result<ReducedProgram> rp = Reduce(*cdb, "u", options);
  ASSERT_TRUE(rp.ok());
  EXPECT_TRUE(rp->specialized);
  EXPECT_NE(rp->program.ToString().find("rel__u"), std::string::npos);

  // Both forms evaluate to models with the same u-level fact.
  Result<datalog::Model> m = datalog::Evaluate(rp->program);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->FactsFor("rel__u/5").size(), 1u);
}

TEST(ReductionTest, ReservedPredicatesRejected) {
  for (const char* bad :
       {"rel(a, b, c, d, e, f).", "dominate(u, c).", "vis(a, b, c, d, e, f).",
        "overridden(a, b, c, d, e).", "sdom(a, b)."}) {
    Result<CheckedDatabase> cdb = Check(std::string("level(u).\n") + bad);
    ASSERT_TRUE(cdb.ok()) << bad;
    Result<ReducedProgram> rp = Reduce(*cdb, "u");
    EXPECT_FALSE(rp.ok()) << "should reject: " << bad;
  }
}

TEST(ReductionTest, UserBelClausesAllowed) {
  // bel/7 is the documented exception: user-defined belief modes.
  Result<CheckedDatabase> cdb = Check(R"(
    level(u).
    u[p(k : a -u-> v)].
    bel(P, K, A, V, C, L, mymode) :- rel(P, K, A, V, C, L).
  )");
  ASSERT_TRUE(cdb.ok()) << cdb.status();
  Result<ReducedProgram> rp = Reduce(*cdb, "u");
  EXPECT_TRUE(rp.ok()) << rp.status();
}

TEST(ReductionTest, UnknownUserLevelRejected) {
  Result<CheckedDatabase> cdb = Check("level(u).");
  ASSERT_TRUE(cdb.ok());
  EXPECT_FALSE(Reduce(*cdb, "zz").ok());
}

TEST(ReductionTest, ReducedModelComputesBeliefFacts) {
  Result<CheckedDatabase> cdb = Check(R"(
    level(u). level(c). order(u, c).
    u[p(k : a -u-> v)].
    c[p(k : a -c-> w)].
  )");
  ASSERT_TRUE(cdb.ok());
  Result<ReducedProgram> rp = Reduce(*cdb, "c");
  ASSERT_TRUE(rp.ok());
  Result<datalog::Model> m = datalog::Evaluate(rp->program);
  ASSERT_TRUE(m.ok()) << m.status();

  using datalog::Atom;
  using datalog::Term;
  auto bel = [](const char* value, const char* cls, const char* level,
                const char* mode) {
    return Atom("bel", {Term::Sym("p"), Term::Sym("k"), Term::Sym("a"),
                        Term::Sym(value), Term::Sym(cls), Term::Sym(level),
                        Term::Sym(mode)});
  };
  // Firm at c sees only the c fact; optimistic at c sees both; cautious
  // at c keeps only the c-classified cell (it overrides u).
  EXPECT_TRUE(m->Contains(bel("w", "c", "c", "fir")));
  EXPECT_FALSE(m->Contains(bel("v", "u", "c", "fir")));
  EXPECT_TRUE(m->Contains(bel("v", "u", "c", "opt")));
  EXPECT_TRUE(m->Contains(bel("w", "c", "c", "opt")));
  EXPECT_TRUE(m->Contains(bel("w", "c", "c", "cau")));
  EXPECT_FALSE(m->Contains(bel("v", "u", "c", "cau")));
  // At level u, cautious keeps the u cell (nothing above is visible).
  EXPECT_TRUE(m->Contains(bel("v", "u", "u", "cau")));
}

TEST(ReductionTest, TranslateGoalGenericAddsGuards) {
  Result<std::vector<MlLiteral>> goal = ParseMlGoal("c[p(k : a -R-> v)] << opt");
  ASSERT_TRUE(goal.ok());
  Result<std::vector<datalog::Literal>> lits =
      TranslateGoalGeneric(*goal, "c");
  ASSERT_TRUE(lits.ok());
  ASSERT_EQ(lits->size(), 3u);
  EXPECT_EQ((*lits)[0].atom().predicate(), "bel");
  EXPECT_EQ((*lits)[1].atom().predicate(), "dominate");
  EXPECT_EQ((*lits)[2].atom().predicate(), "dominate");
}

}  // namespace
}  // namespace multilog::ml
