#include "multilog/proof.h"

#include <gtest/gtest.h>

#include "mls/sample_data.h"
#include "multilog/engine.h"

namespace multilog::ml {
namespace {

TEST(ProofTest, LeafMetrics) {
  ProofPtr leaf = MakeProof("empty", "[]");
  EXPECT_EQ(ProofHeight(*leaf), 1u);
  EXPECT_EQ(ProofSize(*leaf), 1u);
  EXPECT_EQ(ProofRules(*leaf), std::vector<std::string>{"empty"});
}

TEST(ProofTest, NestedMetrics) {
  ProofPtr leaf1 = MakeProof("empty", "[]");
  ProofPtr leaf2 = MakeProof("reflexivity", "u <= u");
  ProofPtr mid = MakeProof("deduction-g", "|- q(j)", {leaf1});
  ProofPtr root = MakeProof("deduction-g'", "|- u[p(...)]", {mid, leaf2});
  EXPECT_EQ(ProofHeight(*root), 3u);
  EXPECT_EQ(ProofSize(*root), 4u);
  EXPECT_EQ(ProofRules(*root),
            (std::vector<std::string>{"deduction-g", "deduction-g'", "empty",
                                      "reflexivity"}));
}

TEST(ProofTest, SharedSubtreesCountTwice) {
  ProofPtr leaf = MakeProof("empty", "[]");
  ProofPtr root = MakeProof("and", "goal", {leaf, leaf});
  EXPECT_EQ(ProofSize(*root), 3u);  // tree reading duplicates the leaf
}

TEST(ProofTest, RenderIndentsPremises) {
  ProofPtr leaf = MakeProof("empty", "[]");
  ProofPtr root = MakeProof("belief", "|- b", {leaf});
  std::string text = RenderProof(*root);
  EXPECT_EQ(text, "(belief) |- b\n  (empty) []\n");
}

TEST(ProofTest, DotExport) {
  ProofPtr leaf = MakeProof("empty", "[]");
  ProofPtr root = MakeProof("belief", "|- b \"quoted\"", {leaf});
  std::string dot = ProofToDot(*root);
  EXPECT_NE(dot.find("digraph proof"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos) << dot;
}

TEST(ProofTest, Figure11ProofRendersAllStages) {
  // The full D1/r10 proof of Figure 11, rendered.
  Result<Engine> engine = Engine::FromSource(mls::D1Source());
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r = engine->QuerySource("c[p(k : a -R-> v)] << opt",
                                              "c", ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->proofs.size(), 1u);
  std::string text = RenderProof(*r->proofs[0]);
  // The rendered proof shows the belief dispatch, the optimistic descent
  // to level u, the m-atom deduction, and the dominance side conditions.
  EXPECT_NE(text.find("(belief)"), std::string::npos) << text;
  EXPECT_NE(text.find("(descend-o)"), std::string::npos) << text;
  EXPECT_NE(text.find("(deduction-g')"), std::string::npos) << text;
  EXPECT_NE(text.find("u <= c"), std::string::npos) << text;
  // Height and size are the paper's proof metrics.
  EXPECT_GE(ProofHeight(*r->proofs[0]), 3u);
  EXPECT_GE(ProofSize(*r->proofs[0]), 4u);
}

}  // namespace
}  // namespace multilog::ml
