#include <gtest/gtest.h>

#include "multilog/engine.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

std::vector<std::string> Answers(Result<QueryResult> r) {
  std::vector<std::string> out;
  if (!r.ok()) return {"error: " + r.status().ToString()};
  for (const datalog::Substitution& s : r->answers) {
    out.push_back(s.ToString());
  }
  return out;
}

// Stratified negation over p-atoms in Pi - our documented extension to
// the paper's definite fragment, following the author's Datalog^neg
// line of work.
TEST(MlNegationTest, NegatedPAtomInPiClause) {
  const char* src = R"(
    level(u).
    staff(alice). staff(bob). staff(carol).
    flagged(bob).
    cleared(X) :- staff(X), not flagged(X).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(Answers(engine->QuerySource("cleared(X)", "u",
                                        ExecMode::kCheckBoth)),
            (std::vector<std::string>{"{X=alice}", "{X=carol}"}));
}

TEST(MlNegationTest, NegationOverMAtomDerivedPredicate) {
  // Negation may range over predicates that are themselves derived from
  // secured data - the m-atom is wrapped positively in its own p-clause.
  const char* src = R"(
    level(u). level(s). order(u, s).
    u[asset(a1 : status -u-> active)].
    s[asset(a2 : status -s-> active)].
    known(K) :- L[asset(K : status -C-> V)].
    candidate(a1). candidate(a2). candidate(a3).
    unknown(K) :- candidate(K), not known(K).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // At u, a2's s-level record is invisible: both a2 and a3 are unknown.
  EXPECT_EQ(Answers(engine->QuerySource("unknown(K)", "u",
                                        ExecMode::kCheckBoth)),
            (std::vector<std::string>{"{K=a2}", "{K=a3}"}));
  // At s everything but a3 is known.
  EXPECT_EQ(Answers(engine->QuerySource("unknown(K)", "s",
                                        ExecMode::kCheckBoth)),
            (std::vector<std::string>{"{K=a3}"}));
}

TEST(MlNegationTest, NegatedLiteralInQuery) {
  const char* src = R"(
    level(u).
    p(a). p(b). q(b).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(Answers(engine->QuerySource("p(X), not q(X)", "u",
                                        ExecMode::kCheckBoth)),
            (std::vector<std::string>{"{X=a}"}));
}

TEST(MlNegationTest, NegationOfSecuredAtomsRejected) {
  Result<Database> db =
      ParseMultiLog("q(X) :- p(X), not u[r(k : a -u-> X)].");
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsParseError());

  db = ParseMultiLog("q(X) :- p(X), not u[r(k : a -u-> X)] << cau.");
  EXPECT_FALSE(db.ok());
}

TEST(MlNegationTest, RecursionThroughNegationRejectedByReduction) {
  const char* src = R"(
    level(u).
    p(a) :- not q(a).
    q(a) :- not p(a).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok());  // parsing/admissibility are fine...
  // ...but evaluation rejects the unstratifiable program.
  Result<QueryResult> r = engine->QuerySource("p(X)", "u");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidProgram()) << r.status();
}

TEST(MlNegationTest, NegationInLambdaIsSelfRecursiveAndRejected) {
  // Lambda vocabulary is just level/1 and order/2, so any negation in a
  // Lambda body necessarily negates the predicate being defined -
  // recursion through negation, rejected at lattice extraction.
  const char* src = R"(
    level(u). level(c). order(u, c).
    level(emergency) :- level(u), not level(peacetime).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidProgram()) << engine.status();
}

TEST(MlNegationTest, NegationProofCarriesNafLeaf) {
  const char* src = R"(
    level(u).
    p(a). q(b). p(b).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource("p(X), not q(X)", "u",
                                              ExecMode::kOperational);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->proofs.size(), 1u);
  std::vector<std::string> rules = ProofRules(*r->proofs[0]);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "negation-as-failure"),
            rules.end());
}

TEST(MlNegationTest, UnsafeNegationRejected) {
  const char* src = R"(
    level(u).
    p(a).
    bad(X) :- not p(X).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource("bad(X)", "u");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace multilog::ml
