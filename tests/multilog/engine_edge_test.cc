#include <gtest/gtest.h>

#include "multilog/engine.h"
#include "multilog/parser.h"

namespace multilog::ml {
namespace {

TEST(EngineEdgeTest, MoleculeHeadedRulesDeriveAllCells) {
  // A rule whose head is a molecule derives one rel fact per cell.
  const char* src = R"(
    level(u).
    trigger(go).
    u[combo(k1 : a -u-> x, b -u-> y)] :- trigger(go).
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r = engine->QuerySource(
      "u[combo(k1 : a -C1-> V1, b -C2-> V2)]", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{C1=u, C2=u, V1=x, V2=y}");
}

TEST(EngineEdgeTest, StoredQueriesRunInOrder) {
  const char* src = R"(
    level(u).
    u[p(k : a -u-> v)].
    ?- u[p(k : a -C-> V)].
    ?- u[p(nosuch : a -C-> V)].
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok());
  Result<std::vector<QueryResult>> all =
      engine->RunStoredQueries("u", ExecMode::kCheckBoth);
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].answers.size(), 1u);
  EXPECT_TRUE((*all)[1].answers.empty());
}

TEST(EngineEdgeTest, ProofsAreDeterministic) {
  Result<Engine> e1 = Engine::FromSource("level(u). u[p(k : a -u-> v)].");
  Result<Engine> e2 = Engine::FromSource("level(u). u[p(k : a -u-> v)].");
  ASSERT_TRUE(e1.ok() && e2.ok());
  Result<QueryResult> r1 = e1->QuerySource("u[p(k : a -C-> V)] << cau", "u",
                                           ExecMode::kOperational);
  Result<QueryResult> r2 = e2->QuerySource("u[p(k : a -C-> V)] << cau", "u",
                                           ExecMode::kOperational);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->proofs.size(), 1u);
  ASSERT_EQ(r2->proofs.size(), 1u);
  EXPECT_EQ(RenderProof(*r1->proofs[0]), RenderProof(*r2->proofs[0]));
  EXPECT_EQ(ProofSize(*r1->proofs[0]), ProofSize(*r2->proofs[0]));
}

TEST(EngineEdgeTest, GoalOnUnknownModeIsEmptyNotError) {
  // A b-atom with an unregistered mode has no native rule and no user
  // clause: both semantics agree on "no".
  Result<Engine> engine =
      Engine::FromSource("level(u). u[p(k : a -u-> v)].");
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource(
      "u[p(k : a -C-> V)] << nosuchmode", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->answers.empty());
}

TEST(EngineEdgeTest, CrossPredicateJoinThroughPi) {
  const char* src = R"(
    level(u). level(s). order(u, s).
    u[crew(c1 : ship -u-> falcon)].
    s[cargo(g1 : ship -s-> falcon, load -s-> spice)].
    exposed(C) :- u[crew(C : ship -A-> S)], s[cargo(G : ship -B-> S)].
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // At s the join succeeds; at u the s-level cargo is unreadable.
  Result<QueryResult> at_s =
      engine->QuerySource("exposed(C)", "s", ExecMode::kCheckBoth);
  ASSERT_TRUE(at_s.ok()) << at_s.status();
  EXPECT_EQ(at_s->answers.size(), 1u);
  Result<QueryResult> at_u =
      engine->QuerySource("exposed(C)", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(at_u.ok());
  EXPECT_TRUE(at_u->answers.empty());
}

TEST(EngineEdgeTest, IntegerValuesThroughTheWholeStack) {
  const char* src = R"(
    level(u).
    u[sensor(s1 : reading -u-> 41)].
    hot(K) :- u[sensor(K : reading -C-> N)], N > 40.
    cold(K) :- u[sensor(K : reading -C-> N)], N <= 40.
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> hot =
      engine->QuerySource("hot(K)", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(hot.ok()) << hot.status();
  EXPECT_EQ(hot->answers.size(), 1u);
  Result<QueryResult> cold =
      engine->QuerySource("cold(K)", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->answers.empty());
}

TEST(EngineEdgeTest, ResourceLimitsSurface) {
  EngineOptions options;
  options.interpreter.max_answers = 2;
  const char* src = R"(
    level(u).
    u[p(k1 : a -u-> v1)]. u[p(k2 : a -u-> v2)]. u[p(k3 : a -u-> v3)].
  )";
  Result<Engine> engine = Engine::FromSource(src, options);
  ASSERT_TRUE(engine.ok());
  Result<QueryResult> r = engine->QuerySource("u[p(K : a -C-> V)]", "u",
                                              ExecMode::kOperational);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
}

TEST(EngineEdgeTest, BuiltinsInsideMlQueries) {
  // Goal lists parsed from MSQL-free text cannot carry builtins (the
  // MultiLog surface has no comparison syntax), but Pi rules can route
  // them; this pins that composition.
  const char* src = R"(
    level(u).
    u[account(a1 : balance -u-> 100)].
    u[account(a2 : balance -u-> 5)].
    rich(K) :- u[account(K : balance -C-> N)], N >= 100.
  )";
  Result<Engine> engine = Engine::FromSource(src);
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<QueryResult> r =
      engine->QuerySource("rich(K)", "u", ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{K=a1}");
}

}  // namespace
}  // namespace multilog::ml
