#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace multilog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, FactoriesAndPredicates) {
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::InvalidProgram("x").IsInvalidProgram());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::SecurityViolation("x").IsSecurityViolation());
  EXPECT_TRUE(Status::IntegrityViolation("x").IsIntegrityViolation());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::ParseError("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("no such level");
  EXPECT_EQ(s.ToString(), "NotFound: no such level");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("bad token").WithContext("line 3");
  EXPECT_EQ(s.message(), "line 3: bad token");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = [](bool fail) -> Result<int> {
    auto inner = [fail]() -> Result<int> {
      if (fail) return Status::Internal("boom");
      return 7;
    };
    MULTILOG_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  EXPECT_EQ(f(false).value(), 8);
  EXPECT_TRUE(f(true).status().IsInternal());
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("rel__u", "rel__"));
  EXPECT_FALSE(StartsWith("re", "rel"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("c", ".cc"));
}

TEST(StrUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc_1"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter p({"Name", "Level"});
  p.AddRow({"Avenger", "s"});
  p.AddRow({"Eagle", "u"});
  std::string out = p.ToString();
  EXPECT_NE(out.find("| Name    | Level |"), std::string::npos) << out;
  EXPECT_NE(out.find("| Avenger | s     |"), std::string::npos) << out;
  EXPECT_EQ(p.row_count(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter p({"A", "B", "C"});
  p.AddRow({"x"});
  std::string out = p.ToString();
  EXPECT_NE(out.find("| x | "), std::string::npos) << out;
}

TEST(TablePrinterTest, EmptyTableRendersHeaderOnly) {
  TablePrinter p({"A"});
  std::string out = p.ToString();
  EXPECT_NE(out.find("| A |"), std::string::npos);
}

}  // namespace
}  // namespace multilog
