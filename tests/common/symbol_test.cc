#include "common/symbol.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace multilog {
namespace {

TEST(SymbolTest, InternResolveRoundTrip) {
  Symbol a = Symbol::Intern("alpha");
  Symbol b = Symbol::Intern("beta");
  EXPECT_EQ(a.str(), "alpha");
  EXPECT_EQ(b.str(), "beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Symbol::Intern("alpha"));
}

TEST(SymbolTest, DefaultIsEmptySymbol) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.str(), "");
  EXPECT_EQ(s, Symbol::Intern(""));
}

TEST(SymbolTest, IdsAreStableAcrossRepeatedInterning) {
  std::vector<std::string> names;
  for (int i = 0; i < 500; ++i) {
    names.push_back("stable_" + std::to_string(i));
  }
  std::vector<uint32_t> first_ids;
  for (const std::string& n : names) {
    first_ids.push_back(Symbol::Intern(n).id());
  }
  // Interning more symbols must not move existing ids or their storage.
  const std::string* addr_before = &Symbol::Intern(names[0]).str();
  for (int i = 0; i < 500; ++i) {
    Symbol::Intern("churn_" + std::to_string(i));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(Symbol::Intern(names[i]).id(), first_ids[i]);
  }
  EXPECT_EQ(&Symbol::Intern(names[0]).str(), addr_before);
}

TEST(SymbolTest, OrderingIsLexicographic) {
  // Intern in an order unrelated to the lexicographic one, so id order
  // and name order disagree.
  std::vector<std::string> names = {"zeta", "mu", "aleph", "pi", "bb", "ba"};
  std::set<Symbol> sorted;
  for (const std::string& n : names) sorted.insert(Symbol::Intern(n));
  std::vector<std::string> got;
  for (Symbol s : sorted) got.push_back(s.str());
  std::vector<std::string> want = names;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(SymbolTest, HashAgreesWithEquality) {
  std::unordered_set<Symbol, SymbolHash> set;
  set.insert(Symbol::Intern("h1"));
  set.insert(Symbol::Intern("h1"));
  set.insert(Symbol::Intern("h2"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(std::hash<Symbol>()(Symbol::Intern("h1")),
            Symbol::Intern("h1").Hash());
}

// Property test: interning any set of strings and resolving them back is
// the identity, and equal ids mean equal strings.
TEST(SymbolTest, PropertyRoundTripRandomStrings) {
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<int> len(0, 24);
  std::uniform_int_distribution<int> ch('a', 'z');
  std::map<std::string, uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string s;
    int n = len(rng);
    for (int j = 0; j < n; ++j) s.push_back(static_cast<char>(ch(rng)));
    Symbol sym = Symbol::Intern(s);
    ASSERT_EQ(sym.str(), s);
    auto [it, inserted] = seen.emplace(s, sym.id());
    if (!inserted) {
      ASSERT_EQ(it->second, sym.id()) << "duplicate string got a new id";
    }
  }
}

// Eight threads intern overlapping name sets concurrently; every thread
// must observe the same id for the same name, and resolution must never
// tear. Run under TSan to check the acquire/release publication.
TEST(SymbolTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kNames = 1000;
  std::vector<std::vector<uint32_t>> ids(kThreads,
                                         std::vector<uint32_t>(kNames));
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids, &start] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kNames; ++i) {
        // Even names are shared across threads; odd names are
        // thread-private, forcing both contended and fresh inserts.
        std::string name = (i % 2 == 0)
                               ? "shared_" + std::to_string(i)
                               : "t" + std::to_string(t) + "_" +
                                     std::to_string(i);
        Symbol sym = Symbol::Intern(name);
        EXPECT_EQ(sym.str(), name);
        ids[t][i] = sym.id();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int i = 0; i < kNames; i += 2) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][i], ids[0][i]) << "shared name diverged at " << i;
    }
  }
}

}  // namespace
}  // namespace multilog
