// The tracing facility's contracts: span trees (shape, offsets, the
// node budget), the global aggregates, collector install/restore, and
// the disabled-is-inert guarantee the overhead bench relies on.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <thread>

namespace multilog::trace {
namespace {

/// Tracing state is process-global; every test starts from a clean
/// slate and leaves one behind.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    ResetAggregates();
  }
  void TearDown() override {
    SetEnabled(false);
    ResetAggregates();
  }
};

TEST_F(TraceTest, StageNamesAreStableSnakeCase) {
  EXPECT_STREQ(StageName(Stage::kRequest), "request");
  EXPECT_STREQ(StageName(Stage::kEvalRound), "eval_round");
  EXPECT_STREQ(StageName(Stage::kWalAppend), "wal_append");
  EXPECT_STREQ(StageName(Stage::kDeltaReduce), "delta_reduce");
  EXPECT_STREQ(StageName(Stage::kDeltaEval), "delta_eval");
  EXPECT_STREQ(StageName(Stage::kRegroup), "regroup");
  EXPECT_STREQ(StageName(Stage::kReplicaApply), "replica_apply");
  EXPECT_STREQ(StageName(Stage::kSqlExecute), "sql_execute");
  // Every stage has a distinct, non-empty name (the Prometheus label).
  for (size_t i = 0; i < kNumStages; ++i) {
    const char* name = StageName(static_cast<Stage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (size_t j = i + 1; j < kNumStages; ++j) {
      EXPECT_STRNE(name, StageName(static_cast<Stage>(j)));
    }
  }
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { Span span(Stage::kReduce); }
  const auto agg = AggregatedStages();
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kReduce)].count, 0u);
}

TEST_F(TraceTest, EnabledSpansFeedAggregates) {
  SetEnabled(true);
  { Span span(Stage::kReduce); }
  { Span span(Stage::kReduce); }
  { Span span(Stage::kEvalJoin); }
  const auto agg = AggregatedStages();
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kReduce)].count, 2u);
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kEvalJoin)].count, 1u);
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kEvalMerge)].count, 0u);
}

TEST_F(TraceTest, ResetClearsAggregates) {
  SetEnabled(true);
  { Span span(Stage::kFsync); }
  ResetAggregates();
  const auto agg = AggregatedStages();
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kFsync)].count, 0u);
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kFsync)].total_micros, 0u);
}

TEST_F(TraceTest, CollectorBuildsNestedTree) {
  Collector collector;
  {
    ScopedCollector install(&collector);
    Span outer(Stage::kExecute);
    {
      Span inner(Stage::kReduce);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    { Span sibling(Stage::kQueryModel); }
  }
  const SpanNode root = collector.Finish();
  EXPECT_EQ(root.stage, Stage::kRequest);
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& execute = root.children[0];
  EXPECT_EQ(execute.stage, Stage::kExecute);
  ASSERT_EQ(execute.children.size(), 2u);
  EXPECT_EQ(execute.children[0].stage, Stage::kReduce);
  EXPECT_EQ(execute.children[1].stage, Stage::kQueryModel);
  // The slept inner span has measurable duration, contained in its
  // parent, which is contained in the root.
  EXPECT_GE(execute.children[0].duration_micros, 1000u);
  EXPECT_GE(execute.duration_micros, execute.children[0].duration_micros);
  EXPECT_GE(root.duration_micros, execute.duration_micros);
  // Offsets are relative to the collector's epoch and ordered.
  EXPECT_GE(execute.start_micros, root.start_micros);
  EXPECT_LE(execute.children[0].start_micros, execute.children[1].start_micros);
  EXPECT_EQ(collector.dropped_spans(), 0u);
}

TEST_F(TraceTest, CollectorSpansFeedAggregatesToo) {
  Collector collector;
  {
    ScopedCollector install(&collector);
    Span span(Stage::kDecodeModel);
  }
  collector.Finish();
  const auto agg = AggregatedStages();
  EXPECT_EQ(agg[static_cast<size_t>(Stage::kDecodeModel)].count, 1u);
}

TEST_F(TraceTest, AddLeafAttachesPreMeasuredSpans) {
  const auto epoch = Collector::Clock::now();
  Collector collector(epoch);
  collector.AddLeaf(Stage::kParse, epoch,
                    epoch + std::chrono::microseconds(250));
  collector.AddLeaf(Stage::kQueueWait, epoch + std::chrono::microseconds(250),
                    epoch + std::chrono::microseconds(400));
  const SpanNode root = collector.Finish();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].stage, Stage::kParse);
  EXPECT_EQ(root.children[0].start_micros, 0u);
  EXPECT_EQ(root.children[0].duration_micros, 250u);
  EXPECT_EQ(root.children[1].stage, Stage::kQueueWait);
  EXPECT_EQ(root.children[1].start_micros, 250u);
  EXPECT_EQ(root.children[1].duration_micros, 150u);
}

TEST_F(TraceTest, NodeBudgetCountsDroppedSpans) {
  Collector collector;
  {
    ScopedCollector install(&collector);
    for (size_t i = 0; i < Collector::kMaxNodes + 100; ++i) {
      Span span(Stage::kEvalRound);
    }
  }
  const SpanNode root = collector.Finish();
  // The stored tree respects the budget; the overflow is counted, so a
  // truncated trace is distinguishable from a complete one.
  EXPECT_LE(root.children.size(), Collector::kMaxNodes);
  EXPECT_GT(collector.dropped_spans(), 0u);
  EXPECT_EQ(root.children.size() + collector.dropped_spans(),
            Collector::kMaxNodes + 100);
}

TEST_F(TraceTest, DroppedSpansKeepNestingBalanced) {
  Collector collector;
  {
    ScopedCollector install(&collector);
    // Exhaust the budget, then open *nested* spans: they must balance
    // without corrupting the open stack.
    for (size_t i = 0; i < Collector::kMaxNodes; ++i) {
      Span span(Stage::kEvalRound);
    }
    Span outer(Stage::kExecute);
    Span inner(Stage::kReduce);
  }
  const SpanNode root = collector.Finish();
  EXPECT_EQ(root.stage, Stage::kRequest);
  EXPECT_GE(collector.dropped_spans(), 2u);
}

TEST_F(TraceTest, ScopedCollectorRestoresPrevious) {
  EXPECT_EQ(CurrentCollector(), nullptr);
  Collector outer_collector;
  {
    ScopedCollector outer(&outer_collector);
    EXPECT_EQ(CurrentCollector(), &outer_collector);
    Collector inner_collector;
    {
      ScopedCollector inner(&inner_collector);
      EXPECT_EQ(CurrentCollector(), &inner_collector);
    }
    EXPECT_EQ(CurrentCollector(), &outer_collector);
  }
  EXPECT_EQ(CurrentCollector(), nullptr);
}

TEST_F(TraceTest, CollectorIsThreadLocal) {
  Collector collector;
  ScopedCollector install(&collector);
  Collector* seen_on_other_thread = &collector;  // sentinel, must change
  std::thread other(
      [&seen_on_other_thread] { seen_on_other_thread = CurrentCollector(); });
  other.join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
}

}  // namespace
}  // namespace multilog::trace
