#include <gtest/gtest.h>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/relation.h"
#include "multilog/engine.h"
#include "multilog/translate.h"

namespace multilog::mls {
namespace {

// Section 7 of the paper: "we have also assumed single attribute keys...
// This restriction can also be relaxed in an actual implementation
// without much difficulty." These tests exercise that relaxation.
class CompositeKeyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lattice_ = lattice::SecurityLattice::Military();
    // Flights keyed by (Airline, Number).
    Result<Scheme> scheme = Scheme::CreateComposite(
        "Flights",
        {{"Number", "u", "t"},
         {"Dest", "u", "t"},
         {"Airline", "u", "t"},
         {"Cargo", "u", "t"}},
        {"Airline", "Number"}, lattice_);
    ASSERT_TRUE(scheme.ok()) << scheme.status();
    relation_ =
        std::make_unique<Relation>(std::move(scheme).value(), &lattice_);
  }

  lattice::SecurityLattice lattice_;
  std::unique_ptr<Relation> relation_;
};

TEST_F(CompositeKeyTest, KeyAttributesMoveToFront) {
  EXPECT_EQ(relation_->scheme().key_arity(), 2u);
  EXPECT_EQ(relation_->scheme().attributes()[0].name, "Airline");
  EXPECT_EQ(relation_->scheme().attributes()[1].name, "Number");
  EXPECT_EQ(relation_->scheme().attributes()[2].name, "Dest");
}

TEST_F(CompositeKeyTest, CreateCompositeValidation) {
  EXPECT_FALSE(Scheme::CreateComposite("R", {{"A", "u", "t"}}, {}, lattice_)
                   .ok());
  EXPECT_FALSE(Scheme::CreateComposite("R", {{"A", "u", "t"}}, {"A", "A"},
                                       lattice_)
                   .ok());
  EXPECT_FALSE(Scheme::CreateComposite("R", {{"A", "u", "t"}}, {"B"},
                                       lattice_)
                   .ok());
}

TEST_F(CompositeKeyTest, InsertAndKeyMatching) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(101),
                                   Value::Str("oslo"), Value::Str("mail")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(102),
                                   Value::Str("rome"), Value::Str("mail")})
                  .ok());
  EXPECT_EQ(relation_
                ->TuplesWithKey({Value::Str("klm"), Value::Int(101)})
                .size(),
            1u);
  EXPECT_EQ(relation_->KeyOf(relation_->tuples()[0]).size(), 2u);
}

TEST_F(CompositeKeyTest, EntityIntegrityRequiresUniformKeyClass) {
  Tuple t;
  t.cells = {Cell{Value::Str("klm"), "u"}, Cell{Value::Int(101), "s"},
             Cell{Value::Str("oslo"), "s"}, Cell{Value::Str("mail"), "s"}};
  t.tc = "s";
  Status st = relation_->InsertTuple(std::move(t));
  EXPECT_TRUE(st.IsIntegrityViolation()) << st;
}

TEST_F(CompositeKeyTest, NullKeyComponentRejected) {
  Tuple t;
  t.cells = {Cell{Value::Str("klm"), "u"}, Cell{Value::NullValue(), "u"},
             Cell{Value::Str("oslo"), "u"}, Cell{Value::Str("mail"), "u"}};
  t.tc = "u";
  EXPECT_TRUE(relation_->InsertTuple(std::move(t)).IsIntegrityViolation());
}

TEST_F(CompositeKeyTest, UpdateAndDeleteByCompositeKey) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(101),
                                   Value::Str("oslo"), Value::Str("mail")})
                  .ok());
  // Arity mismatch rejected.
  EXPECT_TRUE(relation_
                  ->UpdateAt("u", std::vector<Value>{Value::Str("klm")},
                             "Dest", Value::Str("bonn"))
                  .IsInvalidArgument());
  // Polyinstantiating s-level update.
  ASSERT_TRUE(relation_
                  ->UpdateAt("s",
                             {Value::Str("klm"), Value::Int(101)}, "Cargo",
                             Value::Str("arms"))
                  .ok());
  ASSERT_EQ(relation_->size(), 2u);
  EXPECT_TRUE(CheckConsistent(*relation_).ok());

  // Key attributes cannot be updated.
  EXPECT_TRUE(relation_
                  ->UpdateAt("u", {Value::Str("klm"), Value::Int(101)},
                             "Number", Value::Int(9))
                  .IsInvalidArgument());

  // Delete at u removes only the u version.
  ASSERT_TRUE(
      relation_->DeleteAt("u", {Value::Str("klm"), Value::Int(101)}).ok());
  ASSERT_EQ(relation_->size(), 1u);
  EXPECT_EQ(relation_->tuples()[0].tc, "s");
}

TEST_F(CompositeKeyTest, CautiousBeliefGroupsByFullKey) {
  // Two entities sharing the airline but differing in number must not
  // merge; polyinstantiated versions of one entity must.
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(101),
                                   Value::Str("oslo"), Value::Str("mail")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(102),
                                   Value::Str("rome"), Value::Str("mail")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("s", {Value::Str("klm"), Value::Int(101)},
                             "Cargo", Value::Str("arms"))
                  .ok());

  Result<BeliefOutcome> cau = Believe(*relation_, "s", BeliefMode::kCautious);
  ASSERT_TRUE(cau.ok()) << cau.status();
  ASSERT_EQ(cau->relation.size(), 2u);
  for (const Tuple& t : cau->relation.tuples()) {
    if (t.cells[1].value == Value::Int(101)) {
      EXPECT_EQ(t.cells[3].value, Value::Str("arms"));  // s overrides
    } else {
      EXPECT_EQ(t.cells[3].value, Value::Str("mail"));
    }
  }
}

TEST_F(CompositeKeyTest, ViewsAndSurpriseStories) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(101),
                                   Value::Str("oslo"), Value::Str("mail")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("s", {Value::Str("klm"), Value::Int(101)},
                             "Cargo", Value::Str("arms"))
                  .ok());
  ASSERT_TRUE(
      relation_->DeleteAt("u", {Value::Str("klm"), Value::Int(101)}).ok());

  Result<std::vector<Tuple>> leaks = FindSurpriseStories(*relation_, "u");
  ASSERT_TRUE(leaks.ok());
  EXPECT_EQ(leaks->size(), 1u);
}

TEST_F(CompositeKeyTest, DeductiveEncodingUsesKeyTerm) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("klm"), Value::Int(101),
                                   Value::Str("oslo"), Value::Str("mail")})
                  .ok());
  Result<ml::Database> db = ml::EncodeRelation(*relation_, "flights");
  ASSERT_TRUE(db.ok()) << db.status();
  std::string text = db->ToString();
  EXPECT_NE(text.find("key(klm, 101)"), std::string::npos) << text;

  Result<ml::Engine> engine = ml::Engine::FromDatabase(std::move(*db));
  ASSERT_TRUE(engine.ok()) << engine.status();
  Result<ml::QueryResult> r = engine->QuerySource(
      "u[flights(key(klm, N) : dest -C-> V)]", "u",
      ml::ExecMode::kCheckBoth);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0].ToString(), "{C=u, N=101, V=oslo}");
}

}  // namespace
}  // namespace multilog::mls
