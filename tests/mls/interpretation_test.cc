#include "mls/interpretation.h"

#include <gtest/gtest.h>

#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

class ComputedInterpretationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MissionDataset> ds = BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
  }

  /// Raw Figure-1 tuples, by position (t1 = index 0, ...).
  std::string At(size_t index, const std::string& level) {
    Result<JvInterpretation> i = ComputeInterpretation(
        *ds_.mission, ds_.mission->tuples()[index], level);
    if (!i.ok()) return i.status().ToString();
    return JvInterpretationToString(*i);
  }

  MissionDataset ds_;
};

TEST_F(ComputedInterpretationTest, MatchesFigure5WhereDerivable) {
  // The raw Figure 1 relation stores 10 versions; the computed
  // interpretation matches the asserted Figure 5 entries that are
  // structurally derivable (the J-V t4/t4' split and the t9 mirage are
  // label-only distinctions).

  // t1 (Avenger, s): invisible below s, true at s.
  EXPECT_EQ(At(0, "u"), "invisible");
  EXPECT_EQ(At(0, "c"), "invisible");
  EXPECT_EQ(At(0, "s"), "true");

  // t2/t6/t7 (Atlantis at s/c/u, identical values): each level that
  // asserted the data sees it as true.
  EXPECT_EQ(At(6, "u"), "true");   // t7 at u
  EXPECT_EQ(At(5, "c"), "true");   // t6 at c
  EXPECT_EQ(At(1, "s"), "true");   // t2 at s
  // And re-assertion makes lower copies true at higher levels too.
  EXPECT_EQ(At(6, "s"), "true");

  // t3 (Voyager spying, s): invisible until s, then true.
  EXPECT_EQ(At(2, "u"), "invisible");
  EXPECT_EQ(At(2, "s"), "true");

  // t8 (Voyager training, u): true at u, irrelevant at c, cover story at
  // s (t3 supersedes it) - exactly Figure 5's row.
  EXPECT_EQ(At(7, "u"), "true");
  EXPECT_EQ(At(7, "c"), "irrelevant");
  EXPECT_EQ(At(7, "s"), "cover story");

  // t9 (Falcon, u): true at u, irrelevant at c. Figure 5 says *mirage*
  // at s, but mirage is an asserted label, not derivable structure; the
  // computed interpretation degrades to irrelevant.
  EXPECT_EQ(At(8, "u"), "true");
  EXPECT_EQ(At(8, "c"), "irrelevant");
  EXPECT_EQ(At(8, "s"), "irrelevant");

  // t10 (Eagle, u): Figure 5's row verbatim.
  EXPECT_EQ(At(9, "u"), "true");
  EXPECT_EQ(At(9, "c"), "irrelevant");
  EXPECT_EQ(At(9, "s"), "irrelevant");
}

TEST_F(ComputedInterpretationTest, CoverStoryNeedsValueDisagreement) {
  // Phantom's two s-level versions (t4, t5) have different key
  // classifications, hence are distinct entities' versions only by key
  // class; same key value though - but neither strictly dominates the
  // other in TC (both s), so neither is a cover story.
  EXPECT_EQ(At(3, "s"), "true");
  EXPECT_EQ(At(4, "s"), "true");
}

TEST_F(ComputedInterpretationTest, RendersMatrix) {
  Result<std::string> table =
      RenderComputedInterpretations(*ds_.mission, {"u", "c", "s"});
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_NE(table->find("cover story"), std::string::npos);
  EXPECT_NE(table->find("invisible"), std::string::npos);
}

TEST_F(ComputedInterpretationTest, FreshHistoryEndToEnd) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  Result<Scheme> scheme = Scheme::Create(
      "R", {{"K", "u", "t"}, {"V", "u", "t"}}, "K", lat);
  ASSERT_TRUE(scheme.ok());
  Relation rel(std::move(scheme).value(), &lat);
  ASSERT_TRUE(rel.InsertAt("u", {Value::Str("x"), Value::Str("low")}).ok());
  ASSERT_TRUE(
      rel.UpdateAt("s", Value::Str("x"), "V", Value::Str("high")).ok());

  // The u version: true at u, cover story at s.
  EXPECT_EQ(JvInterpretationToString(
                *ComputeInterpretation(rel, rel.tuples()[0], "u")),
            std::string("true"));
  EXPECT_EQ(JvInterpretationToString(
                *ComputeInterpretation(rel, rel.tuples()[0], "s")),
            std::string("cover story"));
  // The s version: invisible at u, true at s.
  EXPECT_EQ(JvInterpretationToString(
                *ComputeInterpretation(rel, rel.tuples()[1], "u")),
            std::string("invisible"));
  EXPECT_EQ(JvInterpretationToString(
                *ComputeInterpretation(rel, rel.tuples()[1], "s")),
            std::string("true"));
}

}  // namespace
}  // namespace multilog::mls
