#include "mls/jukic_vrbsky.h"

#include <gtest/gtest.h>

#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

class JvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MissionDataset> ds = BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
  }

  const JvTuple& Find(const std::string& id) {
    for (const JvTuple& t : ds_.jv_mission->tuples()) {
      if (t.id == id) return t;
    }
    ADD_FAILURE() << "no J-V tuple " << id;
    static JvTuple dummy;
    return dummy;
  }

  std::string InterpretationOf(const std::string& id,
                               const std::string& level) {
    Result<JvInterpretation> i = ds_.jv_mission->Interpret(Find(id), level);
    if (!i.ok()) return i.status().ToString();
    return JvInterpretationToString(*i);
  }

  MissionDataset ds_;
};

TEST_F(JvTest, Figure5InterpretationMatrix) {
  // The exact matrix of Figure 5, row by row.
  struct Row {
    const char* id;
    const char* at_u;
    const char* at_c;
    const char* at_s;
  };
  const Row kFigure5[] = {
      {"t1", "invisible", "invisible", "true"},
      {"t2", "true", "true", "true"},
      {"t3", "invisible", "invisible", "true"},
      {"t4", "true", "irrelevant", "cover story"},
      {"t4'", "invisible", "invisible", "true"},
      {"t5", "invisible", "invisible", "true"},
      {"t5'", "invisible", "true", "cover story"},
      {"t8", "true", "irrelevant", "cover story"},
      {"t9", "true", "irrelevant", "mirage"},
      {"t10", "true", "irrelevant", "irrelevant"},
  };
  for (const Row& row : kFigure5) {
    EXPECT_EQ(InterpretationOf(row.id, "u"), row.at_u) << row.id << " at u";
    EXPECT_EQ(InterpretationOf(row.id, "c"), row.at_c) << row.id << " at c";
    EXPECT_EQ(InterpretationOf(row.id, "s"), row.at_s) << row.id << " at s";
  }
}

TEST_F(JvTest, Figure4LabelRendering) {
  // Spot-check the label strings of Figure 4.
  const JvTuple& t2 = Find("t2");
  EXPECT_EQ(t2.cell_labels[0].Render(*ds_.lattice), "UCS");
  EXPECT_EQ(t2.tuple_label.Render(*ds_.lattice), "UCS");

  const JvTuple& t4 = Find("t4");
  EXPECT_EQ(t4.cell_labels[0].Render(*ds_.lattice), "US");   // starship
  EXPECT_EQ(t4.cell_labels[1].Render(*ds_.lattice), "U-S");  // objective
  EXPECT_EQ(t4.tuple_label.Render(*ds_.lattice), "U-S");

  const JvTuple& t5p = Find("t5'");
  EXPECT_EQ(t5p.cell_labels[0].Render(*ds_.lattice), "CS");
  EXPECT_EQ(t5p.cell_labels[1].Render(*ds_.lattice), "C-S");

  const JvTuple& t10 = Find("t10");
  EXPECT_EQ(t10.tuple_label.Render(*ds_.lattice), "U");
}

TEST_F(JvTest, RenderLabeledTableContainsAllVersions) {
  std::string table = ds_.jv_mission->RenderLabeled();
  for (const char* id :
       {"t1", "t2", "t3", "t4", "t4'", "t5", "t5'", "t8", "t9", "t10"}) {
    EXPECT_NE(table.find(id), std::string::npos) << "missing " << id;
  }
  EXPECT_NE(table.find("U-S"), std::string::npos);
}

TEST_F(JvTest, RenderInterpretationsMatchesFigure5Shape) {
  Result<std::string> table =
      ds_.jv_mission->RenderInterpretations({"u", "c", "s"});
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_NE(table->find("cover story"), std::string::npos);
  EXPECT_NE(table->find("mirage"), std::string::npos);
  EXPECT_NE(table->find("irrelevant"), std::string::npos);
}

TEST_F(JvTest, MirageRequiresNoReplacement) {
  // t9 (Falcon) has no s-level replacement: mirage. t8 (Voyager) has t3:
  // cover story. The distinction is exactly "does a believed replacement
  // exist at that level".
  EXPECT_EQ(InterpretationOf("t9", "s"), "mirage");
  EXPECT_EQ(InterpretationOf("t8", "s"), "cover story");
}

TEST_F(JvTest, AddRejectsArityMismatch) {
  JvTuple bad;
  bad.id = "bad";
  bad.created_at = "u";
  bad.values = {Value::Str("X")};
  bad.cell_labels = {JvLabel{{"u"}, {}}};
  bad.tuple_label = JvLabel{{"u"}, {}};
  EXPECT_FALSE(ds_.jv_mission->Add(bad).ok());
}

TEST_F(JvTest, AddRejectsBelieverBelowCreation) {
  JvTuple bad;
  bad.id = "bad";
  bad.created_at = "s";
  bad.values = {Value::Str("X"), Value::Str("Y"), Value::Str("Z")};
  bad.cell_labels = {JvLabel{{"s"}, {}}, JvLabel{{"s"}, {}},
                     JvLabel{{"s"}, {}}};
  bad.tuple_label = JvLabel{{"u"}, {}};  // u cannot see an s-created tuple
  EXPECT_FALSE(ds_.jv_mission->Add(bad).ok());
}

}  // namespace
}  // namespace multilog::mls
