#include "mls/transaction.h"

#include <gtest/gtest.h>

#include "mls/integrity.h"

namespace multilog::mls {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lattice_ = lattice::SecurityLattice::Military();
    Result<Scheme> scheme = Scheme::Create(
        "T", {{"K", "u", "t"}, {"V", "u", "t"}}, "K", lattice_);
    ASSERT_TRUE(scheme.ok());
    relation_ =
        std::make_unique<Relation>(std::move(scheme).value(), &lattice_);
    ASSERT_TRUE(
        relation_->InsertAt("u", {Value::Str("k1"), Value::Str("v1")}).ok());
  }

  lattice::SecurityLattice lattice_;
  std::unique_ptr<Relation> relation_;
};

TEST_F(TransactionTest, CommitAppliesBufferedOps) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
  ASSERT_TRUE(txn.ok()) << txn.status();
  ASSERT_TRUE(txn->Insert({Value::Str("k2"), Value::Str("v2")}).ok());
  ASSERT_TRUE(txn->Update(Value::Str("k1"), "V", Value::Str("v1b")).ok());
  EXPECT_EQ(relation_->size(), 1u);  // live untouched pre-commit
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(relation_->size(), 2u);
  std::vector<const Tuple*> k1 = relation_->TuplesWithKey(Value::Str("k1"));
  ASSERT_EQ(k1.size(), 1u);
  EXPECT_EQ(k1[0]->cells[1].value, Value::Str("v1b"));
  EXPECT_TRUE(CheckConsistent(*relation_).ok());
}

TEST_F(TransactionTest, AbortDiscardsEverything) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Insert({Value::Str("k2"), Value::Str("v2")}).ok());
  ASSERT_TRUE(txn->Delete(Value::Str("k1")).ok());
  txn->Abort();
  EXPECT_EQ(relation_->size(), 1u);
  EXPECT_FALSE(txn->active());
  EXPECT_TRUE(txn->Commit().IsInvalidArgument());
}

TEST_F(TransactionTest, ReadYourWrites) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Insert({Value::Str("k2"), Value::Str("v2")}).ok());
  Result<Relation> view = txn->View();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 2u);
  // The live relation still shows one tuple.
  EXPECT_EQ(relation_->ViewAt("u")->size(), 1u);
}

TEST_F(TransactionTest, OperationsRunAtTransactionLevel) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "s");
  ASSERT_TRUE(txn.ok());
  // An s-subject's update polyinstantiates instead of overwriting.
  ASSERT_TRUE(txn->Update(Value::Str("k1"), "V", Value::Str("secret")).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(relation_->size(), 2u);
  EXPECT_EQ(relation_->tuples()[1].tc, "s");
}

TEST_F(TransactionTest, InvalidOperationsDoNotEnterTheLog) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
  ASSERT_TRUE(txn.ok());
  EXPECT_FALSE(txn->Insert({Value::Str("only-one")}).ok());  // arity
  EXPECT_FALSE(txn->Delete(Value::Str("ghost")).ok());       // not found
  EXPECT_EQ(txn->pending_operations(), 0u);
  ASSERT_TRUE(txn->Commit().ok());  // empty commit is fine
  EXPECT_EQ(relation_->size(), 1u);
}

TEST_F(TransactionTest, CommitConflictLeavesLiveUntouched) {
  Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txn->Insert({Value::Str("k2"), Value::Str("v2")}).ok());
  ASSERT_TRUE(txn->Delete(Value::Str("k1")).ok());

  // Meanwhile another subject commits a conflicting change: k1 vanishes
  // from u (deleted directly), making the buffered delete un-replayable.
  ASSERT_TRUE(relation_->DeleteAt("u", Value::Str("k1")).ok());

  Status st = txn->Commit();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(txn->active());  // still active; caller may Abort
  // The failed commit applied nothing.
  EXPECT_EQ(relation_->size(), 0u);
  txn->Abort();
}

TEST_F(TransactionTest, UnknownLevelRejectedAtBegin) {
  EXPECT_FALSE(Transaction::Begin(relation_.get(), "zz").ok());
}

TEST_F(TransactionTest, SequentialTransactions) {
  for (int i = 2; i <= 4; ++i) {
    Result<Transaction> txn = Transaction::Begin(relation_.get(), "u");
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Insert({Value::Str("k" + std::to_string(i)),
                             Value::Str("v")})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(relation_->size(), 4u);
  EXPECT_TRUE(CheckConsistent(*relation_).ok());
}

}  // namespace
}  // namespace multilog::mls
