#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mls/integrity.h"
#include "mls/relation.h"
#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

/// Renders a tuple compactly for golden comparisons:
/// "Avenger/s Shipping/s Pluto/s TC=s".
std::string Row(const Tuple& t) {
  std::string out;
  for (const Cell& c : t.cells) {
    out += c.ToString();
    out += " ";
  }
  out += "TC=" + t.tc;
  return out;
}

std::set<std::string> Rows(const Relation& r) {
  std::set<std::string> out;
  for (const Tuple& t : r.tuples()) out.insert(Row(t));
  return out;
}

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MissionDataset> ds = BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
  }

  MissionDataset ds_;
};

TEST_F(ViewTest, Figure1Loads) {
  EXPECT_EQ(ds_.mission->size(), 10u);
  EXPECT_TRUE(CheckEntityIntegrity(*ds_.mission).ok());
  EXPECT_TRUE(CheckNullIntegrity(*ds_.mission).ok());
  EXPECT_TRUE(CheckPolyinstantiationIntegrity(*ds_.mission).ok());
}

TEST_F(ViewTest, Figure2ULevelView) {
  Result<Relation> view = ds_.mission->ViewAt("u");
  ASSERT_TRUE(view.ok()) << view.status();
  std::set<std::string> expected = {
      "Phantom/u ⊥/u Omega/u TC=u",          // t4, the leaked null
      "Atlantis/u Diplomacy/u Vulcan/u TC=u",  // t7* (t2, t6 collapse)
      "Voyager/u Training/u Mars/u TC=u",      // t8* (subsumes t3's view)
      "Falcon/u Piracy/u Venus/u TC=u",        // t9
      "Eagle/u Patrolling/u Degoba/u TC=u",    // t10
  };
  EXPECT_EQ(Rows(*view), expected);
}

TEST_F(ViewTest, Figure3CLevelView) {
  Result<Relation> view = ds_.mission->ViewAt("c");
  ASSERT_TRUE(view.ok()) << view.status();
  std::set<std::string> expected = {
      "Phantom/u ⊥/u Omega/u TC=c",            // t4, surprise story
      "Phantom/c ⊥/c ⊥/c TC=c",                // t5, surprise story
      "Atlantis/u Diplomacy/u Vulcan/u TC=c",  // t6* (t2, t7 collapse)
      "Voyager/u Training/u Mars/u TC=u",      // t8* (subsumes t3's view)
      "Falcon/u Piracy/u Venus/u TC=u",        // t9
      "Eagle/u Patrolling/u Degoba/u TC=u",    // t10
  };
  EXPECT_EQ(Rows(*view), expected);
}

TEST_F(ViewTest, SLevelViewSeesEverything) {
  Result<Relation> view = ds_.mission->ViewAt("s", /*apply_subsumption=*/false);
  ASSERT_TRUE(view.ok()) << view.status();
  // All ten tuples are fully visible at s (no nulls introduced).
  EXPECT_EQ(view->size(), 10u);
  for (const Tuple& t : view->tuples()) {
    for (const Cell& c : t.cells) {
      EXPECT_FALSE(c.value.is_null()) << Row(t);
    }
  }
}

TEST_F(ViewTest, SurpriseStoriesDetectedAtC) {
  Result<std::vector<Tuple>> surprises =
      FindSurpriseStories(*ds_.mission, "c");
  ASSERT_TRUE(surprises.ok()) << surprises.status();
  ASSERT_EQ(surprises->size(), 2u);  // Figure 3's t4 and t5
  std::set<std::string> keys;
  for (const Tuple& t : *surprises) keys.insert(t.key_cell().value.str());
  EXPECT_EQ(keys, std::set<std::string>{"Phantom"});
}

TEST_F(ViewTest, SurpriseStoryAtUToo) {
  Result<std::vector<Tuple>> surprises =
      FindSurpriseStories(*ds_.mission, "u");
  ASSERT_TRUE(surprises.ok()) << surprises.status();
  EXPECT_EQ(surprises->size(), 1u);  // Figure 2's t4
}

TEST_F(ViewTest, NoSurpriseStoriesAtS) {
  Result<std::vector<Tuple>> surprises =
      FindSurpriseStories(*ds_.mission, "s");
  ASSERT_TRUE(surprises.ok()) << surprises.status();
  EXPECT_TRUE(surprises->empty());
}

TEST_F(ViewTest, ViewTupleClassNeverExceedsViewer) {
  for (const std::string level : {"u", "c", "s"}) {
    Result<Relation> view = ds_.mission->ViewAt(level);
    ASSERT_TRUE(view.ok());
    for (const Tuple& t : view->tuples()) {
      EXPECT_TRUE(ds_.lattice->Leq(t.tc, level).value_or(false))
          << "TC " << t.tc << " above viewer " << level;
      for (const Cell& c : t.cells) {
        EXPECT_TRUE(ds_.lattice->Leq(c.classification, level).value_or(false));
      }
    }
  }
}

TEST_F(ViewTest, FilterCompositionalityHolds) {
  EXPECT_TRUE(CheckFilterCompositionality(*ds_.mission).ok());
}

TEST_F(ViewTest, ViewAtUnknownLevelFails) {
  Result<Relation> view = ds_.mission->ViewAt("zz");
  EXPECT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsNotFound());
}

TEST_F(ViewTest, SubsumptionKeepsHigherTcOnEqualCells) {
  // t2 (TC=s), t6 (TC=c), t7 (TC=u) share cells; at c, t2 clamps to c and
  // collapses with t6, which then subsumes t7.
  Result<Relation> view = ds_.mission->ViewAt("c");
  ASSERT_TRUE(view.ok());
  int atlantis_count = 0;
  for (const Tuple& t : view->tuples()) {
    if (t.key_cell().value == Value::Str("Atlantis")) {
      ++atlantis_count;
      EXPECT_EQ(t.tc, "c");
    }
  }
  EXPECT_EQ(atlantis_count, 1);
}

TEST_F(ViewTest, ViewWithoutSubsumptionKeepsDuplicateVersions) {
  Result<Relation> view = ds_.mission->ViewAt("c", /*apply_subsumption=*/false);
  ASSERT_TRUE(view.ok());
  int atlantis_count = 0;
  for (const Tuple& t : view->tuples()) {
    if (t.key_cell().value == Value::Str("Atlantis")) ++atlantis_count;
  }
  // t2/t6 collapse (both clamp to TC=c) but t7 (TC=u) stays distinct.
  EXPECT_EQ(atlantis_count, 2);
}

}  // namespace
}  // namespace multilog::mls
