// CautiousBeliefView must stay *byte-identical* to a scratch
// Believe(base, level, kCautious) - rendered relation and conflict flag
// alike - under randomized interleaved inserts and retracts of
// polyinstantiation-dense tuples over a diamond lattice (incomparable
// levels a, b make maximal-cell conflicts and unrepresentable
// combinations common). This is the regroup-stage half of the
// incremental maintenance oracle; the engine-level half lives in the
// multilog mutation property tests.

#include "mls/belief.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "lattice/lattice.h"
#include "mls/relation.h"
#include "mls/sample_data.h"
#include "mls/scheme.h"

namespace multilog::mls {
namespace {

lattice::SecurityLattice Diamond() {
  Result<lattice::SecurityLattice> lat = lattice::SecurityLattice::Builder()
                                             .AddLevel("u")
                                             .AddLevel("a")
                                             .AddLevel("b")
                                             .AddLevel("ts")
                                             .AddOrder("u", "a")
                                             .AddOrder("u", "b")
                                             .AddOrder("a", "ts")
                                             .AddOrder("b", "ts")
                                             .Build();
  EXPECT_TRUE(lat.ok()) << lat.status();
  return std::move(lat).value();
}

class BeliefViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lat_ = Diamond();
    Result<Scheme> scheme = Scheme::Create(
        "obj",
        {{"k", "u", "ts"}, {"x", "u", "ts"}, {"y", "u", "ts"}}, "k", lat_);
    ASSERT_TRUE(scheme.ok()) << scheme.status();
    scheme_ = std::move(scheme).value();
  }

  /// Rebuilds the base relation from `tuples` and runs scratch cautious
  /// belief - the oracle the maintained view is held to.
  Result<BeliefOutcome> Scratch(const std::vector<Tuple>& tuples,
                                const std::string& level,
                                const BeliefOptions& options) {
    Relation base(*scheme_, &lat_);
    for (const Tuple& t : tuples) {
      MULTILOG_RETURN_IF_ERROR(base.AppendDerived(t));
    }
    return Believe(base, level, BeliefMode::kCautious, options);
  }

  lattice::SecurityLattice lat_;
  std::optional<Scheme> scheme_;
};

/// A dense random tuple: few keys and values, uniform draw over the
/// four levels for every classification and the TC, so key versions,
/// incomparable candidates, and invisible tuples all occur constantly.
Tuple RandomTuple(std::mt19937* rng) {
  static const char* kLevels[] = {"u", "a", "b", "ts"};
  auto level = [&] { return kLevels[(*rng)() % 4]; };
  Tuple t;
  const std::string kc = level();
  t.cells.push_back({Value::Str("k" + std::to_string((*rng)() % 3)), kc});
  t.cells.push_back({Value::Str("x" + std::to_string((*rng)() % 2)),
                     level()});
  t.cells.push_back({Value::Str("y" + std::to_string((*rng)() % 2)),
                     level()});
  t.tc = level();
  return t;
}

TEST_F(BeliefViewTest, RandomizedInterleavingMatchesScratchEverywhere) {
  for (const bool merge : {false, true}) {
    BeliefOptions options;
    options.merge_key_versions = merge;
    for (const std::string level : {"u", "a", "ts"}) {
      std::mt19937 rng(20260809u + (merge ? 7u : 0u) + level.size());
      Relation empty(*scheme_, &lat_);
      Result<CautiousBeliefView> view =
          CautiousBeliefView::Build(empty, level, options);
      ASSERT_TRUE(view.ok()) << view.status();

      std::vector<Tuple> shadow;
      for (int step = 0; step < 300; ++step) {
        const bool remove = !shadow.empty() && rng() % 10 < 4;
        Tuple t;
        if (remove) {
          const size_t victim = rng() % shadow.size();
          t = shadow[victim];
          shadow.erase(shadow.begin() + static_cast<ptrdiff_t>(victim));
        } else {
          t = RandomTuple(&rng);
          shadow.push_back(t);
        }
        Status st = view->Apply(t, remove);
        ASSERT_TRUE(st.ok()) << st;

        Result<BeliefOutcome> live = view->Outcome();
        ASSERT_TRUE(live.ok()) << live.status();
        Result<BeliefOutcome> scratch = Scratch(shadow, level, options);
        ASSERT_TRUE(scratch.ok()) << scratch.status();
        ASSERT_EQ(live->relation.ToString(), scratch->relation.ToString())
            << "step " << step << " level " << level << " merge " << merge;
        ASSERT_EQ(live->conflict, scratch->conflict)
            << "step " << step << " level " << level << " merge " << merge;
      }
    }
  }
}

TEST_F(BeliefViewTest, RemovingAbsentTupleIsNotFoundAndLeavesViewIntact) {
  Relation empty(*scheme_, &lat_);
  Result<CautiousBeliefView> view = CautiousBeliefView::Build(empty, "ts", {});
  ASSERT_TRUE(view.ok()) << view.status();

  Tuple t;
  t.cells = {{Value::Str("k0"), "u"},
             {Value::Str("x0"), "u"},
             {Value::Str("y0"), "u"}};
  t.tc = "u";
  ASSERT_TRUE(view->Apply(t, /*remove=*/false).ok());
  Result<BeliefOutcome> before = view->Outcome();
  ASSERT_TRUE(before.ok()) << before.status();

  Tuple absent = t;
  absent.tc = "a";
  EXPECT_TRUE(view->Apply(absent, /*remove=*/true).IsNotFound());
  Result<BeliefOutcome> after = view->Outcome();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(before->relation.ToString(), after->relation.ToString());
  EXPECT_EQ(view->group_count(), 1u);
}

TEST_F(BeliefViewTest, InvisibleTuplesAreNoOpsButStayRemovable) {
  // A tuple above the believing level never affects the outcome; the
  // view reports it as absent on retract (it was never tracked).
  Relation empty(*scheme_, &lat_);
  Result<CautiousBeliefView> view = CautiousBeliefView::Build(empty, "a", {});
  ASSERT_TRUE(view.ok()) << view.status();

  Tuple high;
  high.cells = {{Value::Str("k0"), "b"},
                {Value::Str("x0"), "b"},
                {Value::Str("y0"), "b"}};
  high.tc = "b";  // b is incomparable with the believing level a
  ASSERT_TRUE(view->Apply(high, /*remove=*/false).ok());
  EXPECT_EQ(view->group_count(), 0u);
  ASSERT_TRUE(view->Apply(high, /*remove=*/true).ok());
  EXPECT_EQ(view->group_count(), 0u);
}

TEST(BeliefViewMissionTest, MatchesScratchOnThePaperDataset) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok()) << ds.status();
  for (const std::string level : {"u", "c", "s", "t"}) {
    Result<CautiousBeliefView> view =
        CautiousBeliefView::Build(*ds->mission, level, {});
    ASSERT_TRUE(view.ok()) << view.status();
    Result<BeliefOutcome> live = view->Outcome();
    ASSERT_TRUE(live.ok()) << live.status();
    Result<BeliefOutcome> scratch =
        Believe(*ds->mission, level, BeliefMode::kCautious);
    ASSERT_TRUE(scratch.ok()) << scratch.status();
    EXPECT_EQ(live->relation.ToString(), scratch->relation.ToString())
        << level;
    EXPECT_EQ(live->conflict, scratch->conflict) << level;
  }
}

}  // namespace
}  // namespace multilog::mls
