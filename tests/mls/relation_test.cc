#include "mls/relation.h"

#include <gtest/gtest.h>

#include "mls/integrity.h"
#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lattice_ = lattice::SecurityLattice::Military();
    Result<Scheme> scheme = Scheme::Create(
        "Mission",
        {{"Starship", "u", "t"}, {"Objective", "u", "t"}, {"Destin", "u", "t"}},
        "Starship", lattice_);
    ASSERT_TRUE(scheme.ok()) << scheme.status();
    relation_ = std::make_unique<Relation>(std::move(scheme).value(),
                                           &lattice_);
  }

  Tuple Make(const std::string& ship, const std::string& c1,
             const std::string& obj, const std::string& c2,
             const std::string& dest, const std::string& c3,
             const std::string& tc = "") {
    Tuple t;
    t.cells = {Cell{Value::Str(ship), c1}, Cell{Value::Str(obj), c2},
               Cell{Value::Str(dest), c3}};
    t.tc = tc;
    return t;
  }

  lattice::SecurityLattice lattice_;
  std::unique_ptr<Relation> relation_;
};

TEST_F(RelationTest, InsertComputesTcAsLub) {
  ASSERT_TRUE(
      relation_->InsertTuple(Make("A", "u", "B", "s", "C", "u")).ok());
  EXPECT_EQ(relation_->tuples()[0].tc, "s");
}

TEST_F(RelationTest, InsertAcceptsTcAboveLub) {
  // Figure 1's t2: all-u cells under TC = s.
  ASSERT_TRUE(
      relation_->InsertTuple(Make("A", "u", "B", "u", "C", "u", "s")).ok());
}

TEST_F(RelationTest, InsertRejectsTcBelowLub) {
  Status st =
      relation_->InsertTuple(Make("A", "u", "B", "s", "C", "u", "u"));
  EXPECT_TRUE(st.IsIntegrityViolation()) << st;
}

TEST_F(RelationTest, InsertRejectsNullKey) {
  Tuple t = Make("x", "u", "B", "u", "C", "u");
  t.cells[0].value = Value::NullValue();
  EXPECT_TRUE(relation_->InsertTuple(t).IsIntegrityViolation());
}

TEST_F(RelationTest, InsertRejectsAttributeBelowKey) {
  Status st = relation_->InsertTuple(Make("A", "c", "B", "u", "C", "c"));
  EXPECT_TRUE(st.IsIntegrityViolation()) << st;
}

TEST_F(RelationTest, InsertRejectsMisclassifiedNull) {
  Tuple t = Make("A", "u", "B", "s", "C", "u");
  t.cells[1].value = Value::NullValue();  // null must sit at key class u
  EXPECT_TRUE(relation_->InsertTuple(t).IsIntegrityViolation());
}

TEST_F(RelationTest, InsertAcceptsNullAtKeyClass) {
  Tuple t = Make("A", "u", "B", "u", "C", "u");
  t.cells[1].value = Value::NullValue();
  EXPECT_TRUE(relation_->InsertTuple(t).ok());
}

TEST_F(RelationTest, InsertRejectsExactDuplicate) {
  Tuple t = Make("A", "u", "B", "u", "C", "u", "u");
  ASSERT_TRUE(relation_->InsertTuple(t).ok());
  EXPECT_TRUE(relation_->InsertTuple(t).IsIntegrityViolation());
}

TEST_F(RelationTest, InsertRejectsPolyinstantiationConflict) {
  ASSERT_TRUE(
      relation_->InsertTuple(Make("A", "u", "B", "u", "C", "u", "u")).ok());
  // Same key cell (A, u), same objective class u, different value.
  Status st = relation_->InsertTuple(Make("A", "u", "X", "u", "C", "u", "c"));
  EXPECT_TRUE(st.IsIntegrityViolation()) << st;
}

TEST_F(RelationTest, InsertAllowsPolyinstantiationAcrossClasses) {
  ASSERT_TRUE(
      relation_->InsertTuple(Make("A", "u", "B", "u", "C", "u", "u")).ok());
  // Different objective class: a legitimate polyinstantiated version.
  EXPECT_TRUE(
      relation_->InsertTuple(Make("A", "u", "X", "s", "C", "u", "s")).ok());
}

TEST_F(RelationTest, InsertRejectsUnknownLevel) {
  Status st = relation_->InsertTuple(Make("A", "zz", "B", "zz", "C", "zz"));
  EXPECT_FALSE(st.ok());
}

TEST_F(RelationTest, InsertAtClassifiesUniformly) {
  ASSERT_TRUE(relation_
                  ->InsertAt("c", {Value::Str("A"), Value::Str("B"),
                                   Value::Str("C")})
                  .ok());
  const Tuple& t = relation_->tuples()[0];
  EXPECT_EQ(t.tc, "c");
  for (const Cell& cell : t.cells) EXPECT_EQ(cell.classification, "c");
}

TEST_F(RelationTest, UpdateInPlaceAtOwnLevel) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("A"), Value::Str("B"),
                                   Value::Str("C")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("u", Value::Str("A"), "Objective",
                             Value::Str("B2"))
                  .ok());
  ASSERT_EQ(relation_->size(), 1u);
  EXPECT_EQ(relation_->tuples()[0].cells[1].value, Value::Str("B2"));
}

TEST_F(RelationTest, UpdateFromAboveCreatesPolyinstantiatedVersion) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("Phantom"), Value::Str("Cargo"),
                                   Value::Str("Omega")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("s", Value::Str("Phantom"), "Objective",
                             Value::Str("Spying"))
                  .ok());
  ASSERT_EQ(relation_->size(), 2u);
  // The new version keeps the key classification u - the surprise-story
  // precursor of Section 3.
  const Tuple& fresh = relation_->tuples()[1];
  EXPECT_EQ(fresh.key_cell().classification, "u");
  EXPECT_EQ(fresh.cells[1].classification, "s");
  EXPECT_EQ(fresh.tc, "s");
}

TEST_F(RelationTest, SurpriseStoryLifecycle) {
  // The paper's genesis story: U inserts, S updates, U deletes - the
  // S version with a U key classification remains, and the U view now
  // shows a null-bearing tuple it cannot explain.
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("Phantom"), Value::Str("Cargo"),
                                   Value::Str("Omega")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("s", Value::Str("Phantom"), "Objective",
                             Value::Str("Spying"))
                  .ok());
  Result<std::vector<Tuple>> before =
      FindSurpriseStories(*relation_, "u");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());  // the u tuple subsumes the masked view

  ASSERT_TRUE(relation_->DeleteAt("u", Value::Str("Phantom")).ok());
  Result<std::vector<Tuple>> after = FindSurpriseStories(*relation_, "u");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_TRUE(after->front().cells[1].value.is_null());
}

TEST_F(RelationTest, UpdateUnknownKeyFails) {
  Status st = relation_->UpdateAt("s", Value::Str("Ghost"), "Objective",
                                  Value::Str("X"));
  EXPECT_TRUE(st.IsNotFound()) << st;
}

TEST_F(RelationTest, UpdateKeyAttributeRejected) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("A"), Value::Str("B"),
                                   Value::Str("C")})
                  .ok());
  Status st = relation_->UpdateAt("u", Value::Str("A"), "Starship",
                                  Value::Str("A2"));
  EXPECT_TRUE(st.IsInvalidArgument()) << st;
}

TEST_F(RelationTest, DeleteOnlyRemovesOwnLevel) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("A"), Value::Str("B"),
                                   Value::Str("C")})
                  .ok());
  ASSERT_TRUE(relation_
                  ->UpdateAt("s", Value::Str("A"), "Objective",
                             Value::Str("X"))
                  .ok());
  ASSERT_TRUE(relation_->DeleteAt("u", Value::Str("A")).ok());
  ASSERT_EQ(relation_->size(), 1u);
  EXPECT_EQ(relation_->tuples()[0].tc, "s");
  // Deleting again at u finds nothing.
  EXPECT_TRUE(relation_->DeleteAt("u", Value::Str("A")).IsNotFound());
}

TEST_F(RelationTest, SchemeRejectsUnknownKey) {
  Result<Scheme> bad = Scheme::Create(
      "R", {{"A", "u", "t"}}, "Nope", lattice_);
  EXPECT_FALSE(bad.ok());
}

TEST_F(RelationTest, SchemeRejectsEmptyRange) {
  Result<Scheme> bad = Scheme::Create(
      "R", {{"A", "t", "u"}}, "A", lattice_);
  EXPECT_FALSE(bad.ok());
}

TEST_F(RelationTest, SchemeMovesKeyFirst) {
  Result<Scheme> s = Scheme::Create(
      "R", {{"A", "u", "t"}, {"K", "u", "t"}}, "K", lattice_);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->attributes()[0].name, "K");
  EXPECT_EQ(s->key_attribute(), "K");
}

TEST_F(RelationTest, ClassificationRangeEnforced) {
  Result<Scheme> narrow = Scheme::Create(
      "R", {{"K", "u", "c"}, {"A", "u", "c"}}, "K", lattice_);
  ASSERT_TRUE(narrow.ok());
  Relation r(std::move(narrow).value(), &lattice_);
  // s is outside [u, c].
  Status st = r.InsertAt("s", {Value::Str("k"), Value::Str("v")});
  EXPECT_TRUE(st.IsIntegrityViolation()) << st;
}

TEST_F(RelationTest, ToStringRendersTable) {
  ASSERT_TRUE(relation_
                  ->InsertAt("u", {Value::Str("A"), Value::Str("B"),
                                   Value::Str("C")})
                  .ok());
  std::string table = relation_->ToString();
  EXPECT_NE(table.find("Starship"), std::string::npos);
  EXPECT_NE(table.find("TC"), std::string::npos);
  EXPECT_NE(table.find("A"), std::string::npos);
}

}  // namespace
}  // namespace multilog::mls
