#include <gtest/gtest.h>

#include "mls/integrity.h"
#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

TEST(ExplainSurpriseTest, MissionLeaksAtCExplainBackToSources) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());

  Result<std::vector<SurpriseStoryExplanation>> explanations =
      ExplainSurpriseStories(*ds->mission, "c");
  ASSERT_TRUE(explanations.ok()) << explanations.status();
  // Figure 3's two Phantom leaks, each traced to one stored source.
  ASSERT_EQ(explanations->size(), 2u);

  for (const SurpriseStoryExplanation& e : *explanations) {
    EXPECT_EQ(e.leaked.key_cell().value, Value::Str("Phantom"));
    EXPECT_EQ(e.source.tc, "s");  // both leaks trace to s-level versions
    ASSERT_FALSE(e.masked.empty());
    for (const auto& [attribute, classification] : e.masked) {
      EXPECT_EQ(classification, "s") << attribute;
    }
  }

  // t4's leak masks only Objective; t5's masks Objective and Destin.
  std::vector<size_t> masked_counts;
  for (const auto& e : *explanations) masked_counts.push_back(e.masked.size());
  std::sort(masked_counts.begin(), masked_counts.end());
  EXPECT_EQ(masked_counts, (std::vector<size_t>{1, 2}));
}

TEST(ExplainSurpriseTest, CleanViewExplainsNothing) {
  Result<MissionDataset> ds = BuildMissionDataset();
  ASSERT_TRUE(ds.ok());
  Result<std::vector<SurpriseStoryExplanation>> explanations =
      ExplainSurpriseStories(*ds->mission, "s");
  ASSERT_TRUE(explanations.ok());
  EXPECT_TRUE(explanations->empty());
}

TEST(ExplainSurpriseTest, FreshLifecycle) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  Result<Scheme> scheme = Scheme::Create(
      "R", {{"K", "u", "t"}, {"A", "u", "t"}, {"B", "u", "t"}}, "K", lat);
  ASSERT_TRUE(scheme.ok());
  Relation rel(std::move(scheme).value(), &lat);
  ASSERT_TRUE(rel.InsertAt("u", {Value::Str("x"), Value::Str("a0"),
                                 Value::Str("b0")})
                  .ok());
  ASSERT_TRUE(rel.UpdateAt("s", Value::Str("x"), "A", Value::Str("a1")).ok());
  ASSERT_TRUE(rel.DeleteAt("u", Value::Str("x")).ok());

  Result<std::vector<SurpriseStoryExplanation>> explanations =
      ExplainSurpriseStories(rel, "u");
  ASSERT_TRUE(explanations.ok());
  ASSERT_EQ(explanations->size(), 1u);
  const SurpriseStoryExplanation& e = explanations->front();
  ASSERT_EQ(e.masked.size(), 1u);
  EXPECT_EQ(e.masked[0].first, "A");
  EXPECT_EQ(e.masked[0].second, "s");
  // The high-side fix suggested by the explanation: purge or re-cover.
  ASSERT_TRUE(rel.DeleteAt("s", Value::Str("x")).ok());
  EXPECT_TRUE(ExplainSurpriseStories(rel, "u")->empty());
}

TEST(LatticeDotTest, RendersHasseDiagram) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  std::string dot = lat.ToDot();
  EXPECT_NE(dot.find("digraph lattice"), std::string::npos);
  EXPECT_NE(dot.find("\"u\" -> \"c\""), std::string::npos);
  EXPECT_NE(dot.find("\"s\" -> \"t\""), std::string::npos);
}

}  // namespace
}  // namespace multilog::mls
