#include <gtest/gtest.h>

#include "mls/scheme.h"
#include "mls/tuple.h"
#include "mls/value.h"

namespace multilog::mls {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  Value n;
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n.ToString(), "⊥");
  EXPECT_EQ(n, Value::NullValue());

  Value s = Value::Str("abc");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.str(), "abc");
  EXPECT_EQ(s.ToString(), "abc");

  Value i = Value::Int(-3);
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.int_value(), -3);
  EXPECT_EQ(i.ToString(), "-3");
}

TEST(ValueTest, EqualityAcrossKinds) {
  EXPECT_NE(Value::Str("1"), Value::Int(1));
  EXPECT_NE(Value::NullValue(), Value::Str(""));
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_NE(Value::Int(7), Value::Int(8));
}

TEST(ValueTest, TotalOrderIsConsistent) {
  std::vector<Value> values = {Value::Str("b"), Value::NullValue(),
                               Value::Int(2), Value::Str("a"),
                               Value::Int(1)};
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_FALSE(values[i + 1] < values[i]);
  }
}

TEST(TupleTest, ToStringShowsCellsAndTc) {
  Tuple t;
  t.cells = {Cell{Value::Str("k"), "u"}, Cell{Value::NullValue(), "u"}};
  t.tc = "s";
  EXPECT_EQ(t.ToString(), "(k/u, ⊥/u | TC=s)");
  EXPECT_EQ(t.key_cell().value, Value::Str("k"));
}

TEST(TupleTest, SubsumesCells) {
  Tuple full, holey, other;
  full.cells = {Cell{Value::Str("k"), "u"}, Cell{Value::Str("v"), "u"}};
  holey.cells = {Cell{Value::Str("k"), "u"}, Cell{Value::NullValue(), "u"}};
  other.cells = {Cell{Value::Str("k"), "u"}, Cell{Value::Str("w"), "u"}};

  EXPECT_TRUE(full.SubsumesCells(holey));
  EXPECT_FALSE(holey.SubsumesCells(full));
  EXPECT_TRUE(full.SubsumesCells(full));
  EXPECT_FALSE(full.SubsumesCells(other));

  // Classification mismatch blocks subsumption even with equal values.
  Tuple reclassified = full;
  reclassified.cells[1].classification = "s";
  EXPECT_FALSE(reclassified.SubsumesCells(full));

  // Arity mismatch never subsumes.
  Tuple shorter;
  shorter.cells = {Cell{Value::Str("k"), "u"}};
  EXPECT_FALSE(full.SubsumesCells(shorter));
}

TEST(SchemeTest, AttributeIndexAndRanges) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  Result<Scheme> scheme = Scheme::Create(
      "R", {{"K", "u", "t"}, {"Mid", "c", "s"}}, "K", lat);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->AttributeIndex("Mid").value(), 1u);
  EXPECT_TRUE(scheme->AttributeIndex("Nope").status().IsNotFound());
  EXPECT_TRUE(scheme->InRange(1, "c", lat).value());
  EXPECT_TRUE(scheme->InRange(1, "s", lat).value());
  EXPECT_FALSE(scheme->InRange(1, "u", lat).value());
  EXPECT_FALSE(scheme->InRange(1, "t", lat).value());
  EXPECT_EQ(scheme->key_arity(), 1u);
  EXPECT_TRUE(scheme->IsKeyPosition(0));
  EXPECT_FALSE(scheme->IsKeyPosition(1));
}

TEST(SchemeTest, ValidationErrors) {
  lattice::SecurityLattice lat = lattice::SecurityLattice::Military();
  EXPECT_FALSE(Scheme::Create("R", {}, "K", lat).ok());
  EXPECT_FALSE(Scheme::Create("R", {{"", "u", "t"}}, "", lat).ok());
  EXPECT_FALSE(
      Scheme::Create("R", {{"A", "u", "t"}, {"A", "u", "t"}}, "A", lat)
          .ok());
}

}  // namespace
}  // namespace multilog::mls
