#include "mls/cuppens.h"

#include <gtest/gtest.h>

#include <set>

#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

std::set<std::string> Rows(const std::vector<Tuple>& tuples) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(t.ToString());
  return out;
}

class CuppensTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MissionDataset> ds = BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
    ASSERT_TRUE(RegisterCuppensModes(&registry_).ok());
  }

  MissionDataset ds_;
  BeliefModeRegistry registry_;
};

TEST_F(CuppensTest, AllThreeModesRegistered) {
  EXPECT_TRUE(registry_.Has("additive"));
  EXPECT_TRUE(registry_.Has("trusted"));
  EXPECT_TRUE(registry_.Has("suspicious"));
}

// The paper's subsumption claim, executable: each Cuppens view is
// definable through beta's modes.
TEST_F(CuppensTest, AdditiveEqualsOptimistic) {
  for (const std::string level : {"u", "c", "s"}) {
    Result<std::vector<Tuple>> additive =
        AdditiveView(*ds_.mission, level);
    Result<BeliefOutcome> opt =
        Believe(*ds_.mission, level, BeliefMode::kOptimistic);
    ASSERT_TRUE(additive.ok() && opt.ok());
    EXPECT_EQ(Rows(*additive), Rows(opt->relation.tuples()))
        << "level " << level;
  }
}

TEST_F(CuppensTest, TrustedEqualsMergedCautious) {
  for (const std::string level : {"u", "c", "s"}) {
    Result<std::vector<Tuple>> trusted = TrustedView(*ds_.mission, level);
    BeliefOptions options;
    options.merge_key_versions = true;
    Result<BeliefOutcome> cau =
        Believe(*ds_.mission, level, BeliefMode::kCautious, options);
    ASSERT_TRUE(trusted.ok() && cau.ok());
    EXPECT_EQ(Rows(*trusted), Rows(cau->relation.tuples()))
        << "level " << level;
  }
}

TEST_F(CuppensTest, SuspiciousIsSubsetOfFirm) {
  for (const std::string level : {"u", "c", "s"}) {
    Result<std::vector<Tuple>> suspicious =
        SuspiciousView(*ds_.mission, level);
    Result<BeliefOutcome> firm =
        Believe(*ds_.mission, level, BeliefMode::kFirm);
    ASSERT_TRUE(suspicious.ok() && firm.ok());
    std::set<std::string> firm_rows = Rows(firm->relation.tuples());
    for (const Tuple& t : *suspicious) {
      EXPECT_TRUE(firm_rows.count(t.ToString()))
          << t.ToString() << " at " << level;
    }
  }
}

TEST_F(CuppensTest, SuspiciousAtURejectsPolyinstantiatedEntities) {
  Result<std::vector<Tuple>> suspicious = SuspiciousView(*ds_.mission, "u");
  ASSERT_TRUE(suspicious.ok());
  std::set<std::string> keys;
  for (const Tuple& t : *suspicious) keys.insert(t.key_cell().value.str());
  // Voyager (s-level spying version exists) and Atlantis (re-asserted at
  // c and s) are disputed; Falcon and Eagle are clean u-level facts.
  EXPECT_EQ(keys, (std::set<std::string>{"Falcon", "Eagle"}));
}

TEST_F(CuppensTest, SuspiciousAtSRejectsMixedClassificationTuples) {
  Result<std::vector<Tuple>> suspicious = SuspiciousView(*ds_.mission, "s");
  ASSERT_TRUE(suspicious.ok());
  // Only t1 (Avenger) is uniformly s-classified, s-asserted, and
  // undisputed.
  std::set<std::string> keys;
  for (const Tuple& t : *suspicious) keys.insert(t.key_cell().value.str());
  EXPECT_EQ(keys, std::set<std::string>{"Avenger"});
}

TEST_F(CuppensTest, ThroughTheRegistry) {
  Result<BeliefOutcome> out =
      registry_.Believe(*ds_.mission, "c", "additive");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->relation.size(), 4u);  // Figure 7's surprise-free rows
}

}  // namespace
}  // namespace multilog::mls
