#include <gtest/gtest.h>

#include <random>
#include <set>

#include "mls/belief.h"
#include "mls/integrity.h"
#include "mls/relation.h"

namespace multilog::mls {
namespace {

/// Drives a random polyinstantiation history - subject-level inserts,
/// updates, and deletes at random levels - and checks the model's
/// invariants after every operation. Deterministic in the seed.
class HistoryPropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    rng_.seed(GetParam());
    if (GetParam() % 2 == 0) {
      lattice_ = lattice::SecurityLattice::Military();
    } else {
      // A diamond: bot < {left, right} < top.
      lattice::SecurityLattice::Builder b;
      b.AddLevel("bot").AddLevel("left").AddLevel("right").AddLevel("top");
      b.AddOrder("bot", "left").AddOrder("bot", "right");
      b.AddOrder("left", "top").AddOrder("right", "top");
      lattice_ = std::move(b.Build()).value();
    }
    Result<Scheme> scheme = Scheme::Create(
        "H",
        {{"K", lattice_.MinimalElements().front(),
          lattice_.MaximalElements().front()},
         {"A", lattice_.MinimalElements().front(),
          lattice_.MaximalElements().front()},
         {"B", lattice_.MinimalElements().front(),
          lattice_.MaximalElements().front()}},
        "K", lattice_);
    ASSERT_TRUE(scheme.ok());
    relation_ =
        std::make_unique<Relation>(std::move(scheme).value(), &lattice_);
  }

  std::string RandomLevel() {
    const auto& names = lattice_.names();
    std::uniform_int_distribution<size_t> d(0, names.size() - 1);
    return names[d(rng_)];
  }

  Value RandomKey() {
    std::uniform_int_distribution<int> d(0, 4);
    return Value::Str("k" + std::to_string(d(rng_)));
  }

  Value RandomValue() {
    std::uniform_int_distribution<int> d(0, 9);
    return Value::Str("v" + std::to_string(d(rng_)));
  }

  void CheckInvariants() {
    // The mutators must preserve the Definition 5.4 integrity bundle.
    ASSERT_TRUE(CheckConsistent(*relation_).ok())
        << relation_->ToString();

    // Every stored cell class participates in the lattice and every
    // view clamps below the viewer.
    for (const std::string& level : lattice_.names()) {
      Result<Relation> view = relation_->ViewAt(level);
      ASSERT_TRUE(view.ok());
      for (const Tuple& t : view->tuples()) {
        EXPECT_TRUE(lattice_.Leq(t.tc, level).value_or(false));
        for (const Cell& c : t.cells) {
          EXPECT_TRUE(
              lattice_.Leq(c.classification, level).value_or(false));
        }
      }
    }
  }

  std::mt19937 rng_;
  lattice::SecurityLattice lattice_;
  std::unique_ptr<Relation> relation_;
};

TEST_P(HistoryPropertyTest, MutatorsPreserveIntegrity) {
  std::uniform_int_distribution<int> op_dist(0, 9);
  for (int step = 0; step < 40; ++step) {
    int op = op_dist(rng_);
    if (op < 5) {
      (void)relation_->InsertAt(RandomLevel(),
                                {RandomKey(), RandomValue(), RandomValue()});
    } else if (op < 8) {
      (void)relation_->UpdateAt(RandomLevel(), RandomKey(),
                                op % 2 == 0 ? "A" : "B", RandomValue());
    } else {
      (void)relation_->DeleteAt(RandomLevel(), RandomKey());
    }
    CheckInvariants();
  }
}

TEST_P(HistoryPropertyTest, BeliefInvariantsOnFinalState) {
  std::uniform_int_distribution<int> op_dist(0, 9);
  for (int step = 0; step < 40; ++step) {
    int op = op_dist(rng_);
    if (op < 5) {
      (void)relation_->InsertAt(RandomLevel(),
                                {RandomKey(), RandomValue(), RandomValue()});
    } else if (op < 8) {
      (void)relation_->UpdateAt(RandomLevel(), RandomKey(),
                                op % 2 == 0 ? "A" : "B", RandomValue());
    } else {
      (void)relation_->DeleteAt(RandomLevel(), RandomKey());
    }
  }

  // Every stored cell, as (key, attribute, value, class).
  std::set<std::string> stored_cells;
  for (const Tuple& t : relation_->tuples()) {
    for (size_t i = 0; i < t.cells.size(); ++i) {
      stored_cells.insert(t.key_cell().value.ToString() + "|" +
                          std::to_string(i) + "|" + t.cells[i].ToString());
    }
  }

  for (const std::string& level : lattice_.names()) {
    Result<BeliefOutcome> fir =
        Believe(*relation_, level, BeliefMode::kFirm);
    Result<BeliefOutcome> opt =
        Believe(*relation_, level, BeliefMode::kOptimistic);
    Result<BeliefOutcome> cau =
        Believe(*relation_, level, BeliefMode::kCautious);
    ASSERT_TRUE(fir.ok() && opt.ok() && cau.ok());

    // beta never invents cells: every believed cell is a stored cell.
    for (const Relation* believed :
         {&fir->relation, &opt->relation, &cau->relation}) {
      for (const Tuple& t : believed->tuples()) {
        for (size_t i = 0; i < t.cells.size(); ++i) {
          EXPECT_TRUE(stored_cells.count(
              t.key_cell().value.ToString() + "|" + std::to_string(i) +
              "|" + t.cells[i].ToString()))
              << "invented cell " << t.cells[i].ToString() << " at "
              << level;
        }
      }
    }

    // Firm tuples reappear among optimistic ones (cell-wise; firm keeps
    // TC = level = optimistic's retargeted TC).
    std::set<std::string> opt_rows;
    for (const Tuple& t : opt->relation.tuples()) {
      opt_rows.insert(t.ToString());
    }
    for (const Tuple& t : fir->relation.tuples()) {
      EXPECT_TRUE(opt_rows.count(t.ToString())) << t.ToString();
    }

    // Cautious cells are maximal among visible cells of their key/attr.
    for (const Tuple& t : cau->relation.tuples()) {
      for (size_t i = 1; i < t.cells.size(); ++i) {
        for (const Tuple& other : relation_->tuples()) {
          if (other.key_cell().value != t.key_cell().value) continue;
          if (!lattice_.Leq(other.tc, level).value_or(false)) continue;
          EXPECT_FALSE(lattice_
                           .Lt(t.cells[i].classification,
                               other.cells[i].classification)
                           .value_or(false))
              << "non-maximal cautious cell " << t.cells[i].ToString()
              << " overridden by " << other.cells[i].ToString() << " at "
              << level;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HistoryPropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace multilog::mls
