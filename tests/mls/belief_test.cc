#include "mls/belief.h"

#include <gtest/gtest.h>

#include <set>

#include "mls/sample_data.h"

namespace multilog::mls {
namespace {

std::string Row(const Tuple& t) {
  std::string out;
  for (const Cell& c : t.cells) {
    out += c.ToString();
    out += " ";
  }
  out += "TC=" + t.tc;
  return out;
}

std::set<std::string> Rows(const Relation& r) {
  std::set<std::string> out;
  for (const Tuple& t : r.tuples()) out.insert(Row(t));
  return out;
}

class BeliefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MissionDataset> ds = BuildMissionDataset();
    ASSERT_TRUE(ds.ok()) << ds.status();
    ds_ = std::move(ds).value();
  }

  Result<Relation> Beta(const std::string& level, BeliefMode mode,
                        bool merge_keys = false) {
    BeliefOptions options;
    options.merge_key_versions = merge_keys;
    Result<BeliefOutcome> out = Believe(*ds_.mission, level, mode, options);
    if (!out.ok()) return out.status();
    return std::move(out->relation);
  }

  MissionDataset ds_;
};

TEST_F(BeliefTest, Figure6FirmViewAtC) {
  Result<Relation> firm = Beta("c", BeliefMode::kFirm);
  ASSERT_TRUE(firm.ok()) << firm.status();
  // Only t6 was asserted at C.
  EXPECT_EQ(Rows(*firm),
            std::set<std::string>{"Atlantis/u Diplomacy/u Vulcan/u TC=c"});
}

TEST_F(BeliefTest, Figure7OptimisticViewAtC) {
  Result<Relation> opt = Beta("c", BeliefMode::kOptimistic);
  ASSERT_TRUE(opt.ok()) << opt.status();
  // Figure 7 minus the surprise stories t4/t5, which beta deliberately
  // does not generate (Sections 3.2 and 7); TC becomes c everywhere.
  std::set<std::string> expected = {
      "Atlantis/u Diplomacy/u Vulcan/u TC=c",
      "Voyager/u Training/u Mars/u TC=c",
      "Falcon/u Piracy/u Venus/u TC=c",
      "Eagle/u Patrolling/u Degoba/u TC=c",
  };
  EXPECT_EQ(Rows(*opt), expected);
}

TEST_F(BeliefTest, Figure8CautiousViewAtC) {
  Result<Relation> cau = Beta("c", BeliefMode::kCautious);
  ASSERT_TRUE(cau.ok()) << cau.status();
  // Figure 8 minus the surprise story t5; at C every visible Mission
  // entity has uniformly-U cells, so cautious equals optimistic here.
  std::set<std::string> expected = {
      "Atlantis/u Diplomacy/u Vulcan/u TC=c",
      "Voyager/u Training/u Mars/u TC=c",
      "Falcon/u Piracy/u Venus/u TC=c",
      "Eagle/u Patrolling/u Degoba/u TC=c",
  };
  EXPECT_EQ(Rows(*cau), expected);
}

TEST_F(BeliefTest, FirmAtUSeesOnlyULevelAssertions) {
  Result<Relation> firm = Beta("u", BeliefMode::kFirm);
  ASSERT_TRUE(firm.ok()) << firm.status();
  std::set<std::string> expected = {
      "Atlantis/u Diplomacy/u Vulcan/u TC=u",  // t7
      "Voyager/u Training/u Mars/u TC=u",      // t8
      "Falcon/u Piracy/u Venus/u TC=u",        // t9
      "Eagle/u Patrolling/u Degoba/u TC=u",    // t10
  };
  EXPECT_EQ(Rows(*firm), expected);
}

TEST_F(BeliefTest, CautiousAtSOverridesTrainingWithSpying) {
  Result<Relation> cau = Beta("s", BeliefMode::kCautious);
  ASSERT_TRUE(cau.ok()) << cau.status();
  // Voyager: objective candidates Training/u (t8) and Spying/s (t3);
  // s strictly dominates u, so cautious belief at s keeps Spying only.
  bool saw_spying = false;
  for (const Tuple& t : cau->tuples()) {
    if (t.key_cell().value == Value::Str("Voyager")) {
      EXPECT_EQ(t.cells[1].value, Value::Str("Spying")) << Row(t);
      saw_spying = true;
    }
  }
  EXPECT_TRUE(saw_spying);
}

TEST_F(BeliefTest, CautiousAtSPolyinstantiatedPhantomKeepsBothKeyVersions) {
  // Definition 3.1 literally: both visible key versions (Phantom,u) and
  // (Phantom,c) yield believed tuples; objectives Spying/s (via t4) and
  // Supply/s (via t5) tie at classification s - a belief conflict.
  BeliefOptions options;
  Result<BeliefOutcome> out =
      Believe(*ds_.mission, "s", BeliefMode::kCautious, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->conflict);

  std::set<std::string> key_classes;
  for (const Tuple& t : out->relation.tuples()) {
    if (t.key_cell().value == Value::Str("Phantom")) {
      key_classes.insert(t.key_cell().classification);
    }
  }
  EXPECT_EQ(key_classes, (std::set<std::string>{"u", "c"}));
}

TEST_F(BeliefTest, CautiousMergedKeysKeepOnlyDominatingKeyClass) {
  BeliefOptions options;
  options.merge_key_versions = true;
  Result<BeliefOutcome> out =
      Believe(*ds_.mission, "s", BeliefMode::kCautious, options);
  ASSERT_TRUE(out.ok()) << out.status();
  std::set<std::string> key_classes;
  for (const Tuple& t : out->relation.tuples()) {
    if (t.key_cell().value == Value::Str("Phantom")) {
      key_classes.insert(t.key_cell().classification);
    }
  }
  EXPECT_EQ(key_classes, std::set<std::string>{"c"});
}

TEST_F(BeliefTest, NoSurpriseStoriesInAnyBelievedRelation) {
  for (const std::string level : {"u", "c", "s"}) {
    for (BeliefMode mode : {BeliefMode::kFirm, BeliefMode::kOptimistic,
                            BeliefMode::kCautious}) {
      Result<Relation> believed = Beta(level, mode);
      ASSERT_TRUE(believed.ok()) << believed.status();
      for (const Tuple& t : believed->tuples()) {
        for (const Cell& c : t.cells) {
          EXPECT_FALSE(c.value.is_null())
              << "surprise story leaked into beta(" << level << ", "
              << BeliefModeToString(mode) << "): " << Row(t);
        }
      }
    }
  }
}

TEST_F(BeliefTest, FirmSubsetOfOptimistic) {
  for (const std::string level : {"u", "c", "s"}) {
    Result<Relation> firm = Beta(level, BeliefMode::kFirm);
    Result<Relation> opt = Beta(level, BeliefMode::kOptimistic);
    ASSERT_TRUE(firm.ok() && opt.ok());
    // Firm tuples keep TC = level = believing level, so cell-wise they
    // must all appear among the optimistic tuples.
    std::set<std::string> opt_rows = Rows(*opt);
    for (const Tuple& t : firm->tuples()) {
      EXPECT_TRUE(opt_rows.count(Row(t))) << Row(t);
    }
  }
}

TEST_F(BeliefTest, OptimisticAtUEqualsFirmAtU) {
  // u is the bottom level: nothing below to accumulate.
  Result<Relation> firm = Beta("u", BeliefMode::kFirm);
  Result<Relation> opt = Beta("u", BeliefMode::kOptimistic);
  ASSERT_TRUE(firm.ok() && opt.ok());
  EXPECT_EQ(Rows(*firm), Rows(*opt));
}

TEST_F(BeliefTest, ParseBeliefModeAcceptsPaperSpellings) {
  EXPECT_TRUE(ParseBeliefMode("fir").ok());
  EXPECT_TRUE(ParseBeliefMode("FIRMLY").ok());
  EXPECT_TRUE(ParseBeliefMode("optimistically").ok());
  EXPECT_TRUE(ParseBeliefMode("cau").ok());
  EXPECT_FALSE(ParseBeliefMode("suspicious").ok());
}

TEST_F(BeliefTest, UnknownLevelRejected) {
  Result<BeliefOutcome> out =
      Believe(*ds_.mission, "zz", BeliefMode::kFirm);
  EXPECT_FALSE(out.ok());
}

TEST_F(BeliefTest, UserDefinedModeThroughRegistry) {
  BeliefModeRegistry registry;
  // "suspicious": believe only data created strictly below one's level
  // (distrust peers, trust the rank and file) - a Cuppens-style view.
  Status st = registry.Register(
      "suspicious",
      [](const Relation& r,
         const std::string& level) -> Result<std::vector<Tuple>> {
        std::vector<Tuple> out;
        for (const Tuple& t : r.tuples()) {
          MULTILOG_ASSIGN_OR_RETURN(bool lt, r.lat().Lt(t.tc, level));
          if (!lt) continue;
          Tuple copy = t;
          copy.tc = level;
          out.push_back(std::move(copy));
        }
        return out;
      });
  ASSERT_TRUE(st.ok()) << st;

  Result<BeliefOutcome> out =
      registry.Believe(*ds_.mission, "c", "suspicious");
  ASSERT_TRUE(out.ok()) << out.status();
  // Only the four u-level tuples qualify below c.
  EXPECT_EQ(out->relation.size(), 4u);
}

TEST_F(BeliefTest, RegistryRejectsBuiltinOverrides) {
  BeliefModeRegistry registry;
  EXPECT_FALSE(registry
                   .Register("cau",
                             [](const Relation&, const std::string&)
                                 -> Result<std::vector<Tuple>> {
                               return std::vector<Tuple>{};
                             })
                   .ok());
}

TEST_F(BeliefTest, RegistryDispatchesBuiltins) {
  BeliefModeRegistry registry;
  Result<BeliefOutcome> out = registry.Believe(*ds_.mission, "c", "firmly");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->relation.size(), 1u);
  EXPECT_TRUE(registry.Has("opt"));
  EXPECT_FALSE(registry.Has("nope"));
}

}  // namespace
}  // namespace multilog::mls
