// Snapshot format tests: atomic write/read round trips and checksum
// rejection of every corruption class (magic, header, body, short file).

#include "storage/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace multilog::storage {
namespace {

std::string TempSnapPath(const std::string& tag) {
  return ::testing::TempDir() + "/snapshot_test_" + tag + "_" +
         std::to_string(::getpid()) + ".mls";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr char kSource[] = "level(u).\nu[p(k : a -u-> v)].\n";

TEST(SnapshotTest, WriteReadRoundTrip) {
  const std::string path = TempSnapPath("roundtrip");
  ASSERT_TRUE(WriteSnapshot(path, 42, kSource).ok());
  Result<Snapshot> snap = ReadSnapshot(path);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ(snap->seqno, 42u);
  EXPECT_EQ(snap->source, kSource);
  // The temp file used for atomic replacement must not be left behind.
  EXPECT_NE(ReadFile(path), "");
  EXPECT_EQ(ReadFile(path + ".tmp"), "");
  std::remove(path.c_str());
}

TEST(SnapshotTest, RewriteReplacesAtomically) {
  const std::string path = TempSnapPath("rewrite");
  ASSERT_TRUE(WriteSnapshot(path, 1, "old").ok());
  ASSERT_TRUE(WriteSnapshot(path, 2, "new").ok());
  Result<Snapshot> snap = ReadSnapshot(path);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ(snap->seqno, 2u);
  EXPECT_EQ(snap->source, "new");
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<Snapshot> snap = ReadSnapshot(TempSnapPath("missing"));
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsNotFound()) << snap.status();
}

TEST(SnapshotTest, EveryBitFlipIsRejected) {
  const std::string path = TempSnapPath("bitflip");
  ASSERT_TRUE(WriteSnapshot(path, 7, kSource).ok());
  const std::string bytes = ReadFile(path);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x04);
    WriteFile(path, damaged);
    Result<Snapshot> snap = ReadSnapshot(path);
    // A seqno flip is outside the checksum and survives - the body it
    // describes is still the body that was written - but any flip in
    // magic, lengths, checksum, or body must be caught.
    if (snap.ok()) {
      EXPECT_GE(pos, 8u) << "magic flip accepted";
      EXPECT_LT(pos, 16u) << "non-seqno flip accepted at pos " << pos;
      EXPECT_EQ(snap->source, kSource);
    } else {
      EXPECT_TRUE(snap.status().IsDataLoss())
          << "pos=" << pos << ": " << snap.status();
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileIsDataLoss) {
  const std::string path = TempSnapPath("short");
  ASSERT_TRUE(WriteSnapshot(path, 9, kSource).ok());
  const std::string bytes = ReadFile(path);
  for (size_t cut : {size_t{0}, size_t{4}, size_t{8}, size_t{23},
                     bytes.size() - 1}) {
    WriteFile(path, bytes.substr(0, cut));
    Result<Snapshot> snap = ReadSnapshot(path);
    ASSERT_FALSE(snap.ok()) << "cut=" << cut;
    EXPECT_TRUE(snap.status().IsDataLoss())
        << "cut=" << cut << ": " << snap.status();
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, TrailingJunkIsDataLoss) {
  const std::string path = TempSnapPath("junk");
  ASSERT_TRUE(WriteSnapshot(path, 3, kSource).ok());
  WriteFile(path, ReadFile(path) + "junk");
  Result<Snapshot> snap = ReadSnapshot(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsDataLoss()) << snap.status();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace multilog::storage
