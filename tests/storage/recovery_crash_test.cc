// Crash-injection harness for the storage subsystem: kill-mid-append
// (torn tails at every byte boundary), bit flips, and the
// checkpoint-rename crash window. The invariant under test is the
// tentpole guarantee: recovery always converges to a database
// byte-identical to a clean rebuild that stops at the last durable
// write - never a corrupted or half-applied state.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "multilog/engine.h"
#include "storage/snapshot.h"
#include "storage/storage.h"
#include "storage/wal.h"

namespace multilog::storage {
namespace {

/// A diamond lattice (a and b incomparable) so recovery is exercised on
/// more than a chain, plus one seed fact per extreme level.
constexpr char kBaseSource[] = R"(
level(u).
level(a).
level(b).
level(ts).
order(u, a).
order(u, b).
order(a, ts).
order(b, ts).
u[item(base : id -u-> base, val -u-> seed)].
)";

int g_dir_counter = 0;

std::string FreshDir(const std::string& tag) {
  return ::testing::TempDir() + "/recovery_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(g_dir_counter++);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Copies a data dir (snapshot + wal) into a fresh dir, optionally
/// truncating the WAL copy to `wal_bytes` - the "kill -9 mid-append"
/// simulation.
std::string CloneDirTruncated(const std::string& src_dir, size_t wal_bytes,
                              const std::string& tag) {
  const std::string dst = FreshDir(tag);
  ::mkdir(dst.c_str(), 0755);
  WriteFile(dst + "/snapshot.mls", ReadFile(src_dir + "/snapshot.mls"));
  WriteFile(dst + "/wal.log",
            ReadFile(src_dir + "/wal.log").substr(0, wal_bytes));
  return dst;
}

/// The five mutations the crash sweeps replay, spread over levels
/// including both incomparable ones.
struct Mutation {
  const char* level;
  const char* fact;
};
constexpr Mutation kMutations[] = {
    {"u", "u[item(k1 : id -u-> k1, val -u-> red)]."},
    {"a", "a[item(k2 : id -a-> k2, val -a-> green)]."},
    {"b", "b[item(k3 : id -b-> k3, val -b-> blue)]."},
    {"ts", "ts[item(k4 : id -ts-> k4, val -ts-> black)]."},
    // Mixed classifications: the key is low, the value dominates it.
    {"a", "a[item(k5 : id -u-> k5, val -a-> white)]."},
};

TEST(StorageOpenTest, FirstOpenSeedsTheSnapshot) {
  const std::string dir = FreshDir("seed");
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->recovered().snapshot_source, kBaseSource);
  EXPECT_TRUE(st->recovered().records.empty());
  EXPECT_TRUE(st->recovered().data_loss.ok());
  EXPECT_EQ(st->next_seqno(), 1u);
}

TEST(StorageOpenTest, SecondOpenIgnoresInitialSourceDiskWins) {
  const std::string dir = FreshDir("diskwins");
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    ASSERT_TRUE(st->AppendAssert("u", kMutations[0].fact).ok());
  }
  Result<Storage> st = Storage::Open(dir, "level(zzz).\n");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->recovered().snapshot_source, kBaseSource);
  ASSERT_EQ(st->recovered().records.size(), 1u);
  EXPECT_EQ(st->recovered().records[0].fact, kMutations[0].fact);
  EXPECT_EQ(st->next_seqno(), 2u);
}

TEST(StorageOpenTest, CorruptSnapshotRefusesToOpen) {
  const std::string dir = FreshDir("badsnap");
  { ASSERT_TRUE(Storage::Open(dir, kBaseSource).ok()); }
  std::string bytes = ReadFile(dir + "/snapshot.mls");
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  WriteFile(dir + "/snapshot.mls", bytes);
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsDataLoss()) << st.status();
}

TEST(StorageOpenTest, CheckpointCrashWindowReplaysAsNoOp) {
  const std::string dir = FreshDir("ckptwindow");
  std::string dump;
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    for (const Mutation& m : kMutations) {
      ASSERT_TRUE(st->AppendAssert(m.level, m.fact).ok());
    }
    // Simulate a crash between the checkpoint's snapshot rename and its
    // WAL reset: the new snapshot covers every seqno, but the old WAL
    // records are still on disk.
    dump = std::string(kBaseSource) + "extra(line).\n";
    ASSERT_TRUE(WriteSnapshot(dir + "/snapshot.mls", 5, dump).ok());
  }
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->recovered().snapshot_source, dump);
  EXPECT_TRUE(st->recovered().records.empty())
      << "stale WAL records below the snapshot seqno must be skipped";
  EXPECT_EQ(st->next_seqno(), 6u);
}

/// The full kill-mid-append sweep, checked end-to-end through the
/// engine: for EVERY possible WAL length (every byte a crash could have
/// stopped at), recovery must produce a database byte-identical to a
/// clean in-memory rebuild that applied exactly the recovered prefix of
/// mutations.
TEST(CrashInjectionTest, TruncationSweepConvergesToByteIdenticalModel) {
  const std::string dir = FreshDir("sweep_src");
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (const Mutation& m : kMutations) {
      Result<ml::WriteResult> w = engine->Assert(m.fact, m.level);
      ASSERT_TRUE(w.ok()) << m.fact << ": " << w.status();
    }
  }

  // Clean rebuilds: dumps[k] is the canonical source after applying the
  // first k mutations in memory, never touching disk.
  std::vector<std::string> dumps;
  {
    Result<ml::Engine> clean = ml::Engine::FromSource(kBaseSource);
    ASSERT_TRUE(clean.ok()) << clean.status();
    dumps.push_back(clean->DumpSource());
    for (const Mutation& m : kMutations) {
      ASSERT_TRUE(clean->Assert(m.fact, m.level).ok());
      dumps.push_back(clean->DumpSource());
    }
  }

  const size_t wal_size = ReadFile(dir + "/wal.log").size();
  ASSERT_GT(wal_size, 0u);
  size_t damaged_recoveries = 0;
  for (size_t cut = 0; cut <= wal_size; ++cut) {
    const std::string crashed = CloneDirTruncated(dir, cut, "sweep");
    Result<Storage> st = Storage::Open(crashed, kBaseSource);
    ASSERT_TRUE(st.ok()) << "cut=" << cut << ": " << st.status();
    if (!st->recovered().data_loss.ok()) ++damaged_recoveries;
    const size_t k = st->recovered().records.size();
    ASSERT_LE(k, dumps.size() - 1) << "cut=" << cut;
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << "cut=" << cut << ": " << engine.status();
    EXPECT_EQ(engine->DumpSource(), dumps[k])
        << "cut=" << cut << " recovered " << k << " records";
  }
  // Most cut points land mid-record; the sweep must actually have
  // exercised the torn-tail path, not just clean boundaries.
  EXPECT_GT(damaged_recoveries, wal_size / 2);
}

/// Bit-flip sweep (sampled): recovery after any single corrupted byte
/// yields some clean prefix of the mutation history - and after the
/// truncation repair, a reopened store appends happily.
TEST(CrashInjectionTest, BitFlipSweepRecoversAPrefixAndStaysWritable) {
  const std::string dir = FreshDir("flip_src");
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (const Mutation& m : kMutations) {
      ASSERT_TRUE(engine->Assert(m.fact, m.level).ok());
    }
  }
  std::vector<std::string> dumps;
  {
    Result<ml::Engine> clean = ml::Engine::FromSource(kBaseSource);
    ASSERT_TRUE(clean.ok()) << clean.status();
    dumps.push_back(clean->DumpSource());
    for (const Mutation& m : kMutations) {
      ASSERT_TRUE(clean->Assert(m.fact, m.level).ok());
      dumps.push_back(clean->DumpSource());
    }
  }

  const std::string wal = ReadFile(dir + "/wal.log");
  for (size_t pos = 0; pos < wal.size(); pos += 7) {
    const std::string crashed = CloneDirTruncated(dir, wal.size(), "flip");
    std::string damaged = wal;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    WriteFile(crashed + "/wal.log", damaged);

    Result<Storage> st = Storage::Open(crashed, kBaseSource);
    if (!st.ok()) continue;  // an insane-but-decodable frame may refuse
    EXPECT_FALSE(st->recovered().data_loss.ok()) << "pos=" << pos;
    const size_t k = st->recovered().records.size();
    ASSERT_LT(k, dumps.size()) << "pos=" << pos;
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << "pos=" << pos << ": " << engine.status();
    EXPECT_EQ(engine->DumpSource(), dumps[k]) << "pos=" << pos;

    // The store is usable after repair: a fresh write lands and
    // survives another reopen.
    Result<ml::WriteResult> w =
        engine->Assert("ts[item(post : id -ts-> post)].", "ts");
    ASSERT_TRUE(w.ok()) << "pos=" << pos << ": " << w.status();
    const std::string after = engine->DumpSource();
    Result<Storage> st2 = Storage::Open(crashed, kBaseSource);
    ASSERT_TRUE(st2.ok()) << "pos=" << pos;
    EXPECT_TRUE(st2->recovered().data_loss.ok()) << "pos=" << pos;
    Result<ml::Engine> engine2 = ml::Engine::FromStorage(&*st2);
    ASSERT_TRUE(engine2.ok()) << "pos=" << pos;
    EXPECT_EQ(engine2->DumpSource(), after) << "pos=" << pos;
  }
}

/// Checkpoint + reopen is lossless and compacting: the WAL empties, and
/// the reopened database is byte-identical to the pre-restart one.
TEST(CrashInjectionTest, CheckpointCompactsAndReopensByteIdentically) {
  const std::string dir = FreshDir("ckpt");
  std::string before;
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (const Mutation& m : kMutations) {
      ASSERT_TRUE(engine->Assert(m.fact, m.level).ok());
    }
    EXPECT_GT(st->wal_records(), 0u);
    ASSERT_TRUE(engine->Checkpoint().ok());
    EXPECT_EQ(st->wal_records(), 0u);
    EXPECT_EQ(st->checkpoints(), 1u);
    before = engine->DumpSource();
    // Post-checkpoint writes land in the fresh WAL.
    ASSERT_TRUE(engine->Assert("u[item(k9 : id -u-> k9)].", "u").ok());
    EXPECT_EQ(st->wal_records(), 1u);
    before = engine->DumpSource();
  }
  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->recovered().records.size(), 1u);
  Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->DumpSource(), before);
}

/// Retracts replay too: assert-then-retract recovered from disk equals
/// the same history applied in memory.
TEST(CrashInjectionTest, RetractsReplayByteIdentically) {
  const std::string dir = FreshDir("retract");
  std::string before;
  {
    Result<Storage> st = Storage::Open(dir, kBaseSource);
    ASSERT_TRUE(st.ok()) << st.status();
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->Assert(kMutations[0].fact, "u").ok());
    ASSERT_TRUE(engine->Assert(kMutations[1].fact, "a").ok());
    ASSERT_TRUE(engine->Retract(kMutations[0].fact, "u").ok());
    before = engine->DumpSource();
  }
  Result<ml::Engine> clean = ml::Engine::FromSource(kBaseSource);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->Assert(kMutations[0].fact, "u").ok());
  ASSERT_TRUE(clean->Assert(kMutations[1].fact, "a").ok());
  ASSERT_TRUE(clean->Retract(kMutations[0].fact, "u").ok());
  EXPECT_EQ(clean->DumpSource(), before);

  Result<Storage> st = Storage::Open(dir, kBaseSource);
  ASSERT_TRUE(st.ok()) << st.status();
  Result<ml::Engine> engine = ml::Engine::FromStorage(&*st);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ(engine->DumpSource(), before);
}

}  // namespace
}  // namespace multilog::storage
