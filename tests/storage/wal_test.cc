// WAL framing tests: append/replay round trips, symbol-table deltas
// across reopen, and corruption detection (torn tails, bit flips) with
// exact prefix recovery.

#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace multilog::storage {
namespace {

std::string TempWalPath(const std::string& tag) {
  return ::testing::TempDir() + "/wal_test_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

WalRecord Mutation(WalRecordType type, uint64_t seqno, std::string level,
                   std::string fact) {
  WalRecord r;
  r.type = type;
  r.seqno = seqno;
  r.level = std::move(level);
  r.fact = std::move(fact);
  return r;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A WAL with `n` alternating assert/retract records across two levels.
std::vector<WalRecord> WriteSample(const std::string& path, size_t n) {
  std::vector<WalRecord> written;
  Result<WalWriter> writer = WalWriter::Open(path);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (size_t i = 0; i < n; ++i) {
    WalRecord r = Mutation(
        i % 3 == 2 ? WalRecordType::kRetract : WalRecordType::kAssert, i + 1,
        i % 2 == 0 ? "u" : "s",
        "s[p(k" + std::to_string(i) + " : a -s-> v" + std::to_string(i) +
            ")].");
    EXPECT_TRUE(writer->Append(r).ok());
    written.push_back(std::move(r));
  }
  writer->Close();
  return written;
}

void ExpectSameRecords(const std::vector<WalRecord>& got,
                       const std::vector<WalRecord>& want, size_t want_count) {
  ASSERT_EQ(got.size(), want_count);
  for (size_t i = 0; i < want_count; ++i) {
    EXPECT_EQ(got[i].type, want[i].type) << "record " << i;
    EXPECT_EQ(got[i].seqno, want[i].seqno) << "record " << i;
    EXPECT_EQ(got[i].level, want[i].level) << "record " << i;
    EXPECT_EQ(got[i].fact, want[i].fact) << "record " << i;
  }
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempWalPath("roundtrip");
  const std::vector<WalRecord> written = WriteSample(path, 7);

  Result<WalReplay> replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->tail.ok()) << replay->tail;
  ExpectSameRecords(replay->records, written, written.size());
  // Two distinct levels -> two interned symbols, in first-use order.
  EXPECT_EQ(replay->symbols, (std::vector<std::string>{"u", "s"}));
  EXPECT_EQ(replay->valid_bytes, ReadFile(path).size());
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileReplaysEmpty) {
  Result<WalReplay> replay = ReplayWal(TempWalPath("missing"));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->tail.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, 0u);
}

TEST(WalTest, ReopenExtendsTheSameSymbolSpace) {
  const std::string path = TempWalPath("reopen");
  std::vector<WalRecord> written = WriteSample(path, 3);

  Result<WalReplay> first = ReplayWal(path);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<WalWriter> writer = WalWriter::Open(path, first->symbols);
  ASSERT_TRUE(writer.ok()) << writer.status();
  // One record at a known level (no new symbol) and one at a new level.
  written.push_back(
      Mutation(WalRecordType::kAssert, 4, "u", "u[q(x : b -u-> x)]."));
  written.push_back(
      Mutation(WalRecordType::kAssert, 5, "ts", "ts[q(y : b -ts-> y)]."));
  ASSERT_TRUE(writer->Append(written[written.size() - 2]).ok());
  ASSERT_TRUE(writer->Append(written.back()).ok());
  writer->Close();

  Result<WalReplay> replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->tail.ok()) << replay->tail;
  ExpectSameRecords(replay->records, written, written.size());
  EXPECT_EQ(replay->symbols, (std::vector<std::string>{"u", "s", "ts"}));
  std::remove(path.c_str());
}

TEST(WalTest, TruncationSweepRecoversTheLongestIntactPrefix) {
  const std::string path = TempWalPath("truncate");
  const std::vector<WalRecord> written = WriteSample(path, 5);
  const std::string bytes = ReadFile(path);

  // Every possible torn tail: cut the file at every byte length. The
  // replayed records must always be an exact prefix of what was
  // written, the tail must be flagged unless the cut lands on a record
  // boundary, and truncating to valid_bytes must yield a clean replay.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFile(path, bytes.substr(0, cut));
    Result<WalReplay> replay = ReplayWal(path);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": " << replay.status();
    ASSERT_LE(replay->records.size(), written.size()) << "cut=" << cut;
    ExpectSameRecords(replay->records, written, replay->records.size());
    EXPECT_LE(replay->valid_bytes, cut) << "cut=" << cut;
    if (replay->valid_bytes != cut) {
      EXPECT_TRUE(replay->tail.IsDataLoss())
          << "cut=" << cut << ": " << replay->tail;
      ASSERT_TRUE(TruncateWal(path, replay->valid_bytes).ok());
      Result<WalReplay> repaired = ReplayWal(path);
      ASSERT_TRUE(repaired.ok()) << "cut=" << cut;
      EXPECT_TRUE(repaired->tail.ok()) << "cut=" << cut;
      EXPECT_EQ(repaired->records.size(), replay->records.size());
    } else {
      EXPECT_TRUE(replay->tail.ok()) << "cut=" << cut << ": " << replay->tail;
    }
  }
  std::remove(path.c_str());
}

TEST(WalTest, BitFlipSweepNeverYieldsWrongRecords) {
  const std::string path = TempWalPath("bitflip");
  const std::vector<WalRecord> written = WriteSample(path, 4);
  const std::string bytes = ReadFile(path);

  // Flip one bit at every byte position. CRC32C must stop replay at (or
  // before) the damaged record: whatever is recovered is a correct
  // prefix, never a silently altered record.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    WriteFile(path, damaged);
    Result<WalReplay> replay = ReplayWal(path);
    if (!replay.ok()) continue;  // decodable-but-insane frames may error
    ASSERT_LE(replay->records.size(), written.size()) << "pos=" << pos;
    ExpectSameRecords(replay->records, written, replay->records.size());
    EXPECT_LT(replay->records.size(), written.size())
        << "pos=" << pos << ": a bit flip went completely undetected";
    EXPECT_FALSE(replay->tail.ok()) << "pos=" << pos;
  }
  std::remove(path.c_str());
}

TEST(WalTest, GarbageFileIsAllTail) {
  const std::string path = TempWalPath("garbage");
  WriteFile(path, "this is not a wal at all, clearly");
  Result<WalReplay> replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->valid_bytes, 0u);
  EXPECT_TRUE(replay->tail.IsDataLoss()) << replay->tail;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace multilog::storage
