// WalReader tailing tests: a reader following a WAL that a live
// WalWriter is still appending to. The invariant under test is the
// damage-classification rule that makes tailing safe: an incomplete
// frame at the current end of file is a torn in-flight append
// (kEndOfPrefix, poll again) and NEVER corruption, while damage with
// durable bytes beyond it - which no writer can ever complete - is
// real (kDataLoss). Plus the checkpoint signature: a file that shrank
// reads as kReset, telling the shipper to go back to the snapshot.

#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace multilog::storage {
namespace {

std::string TempWalPath(const std::string& tag) {
  return ::testing::TempDir() + "/wal_tail_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

WalRecord Mutation(WalRecordType type, uint64_t seqno, std::string level,
                   std::string fact) {
  WalRecord r;
  r.type = type;
  r.seqno = seqno;
  r.level = std::move(level);
  r.fact = std::move(fact);
  return r;
}

WalRecord SampleRecord(uint64_t seqno) {
  return Mutation(
      seqno % 3 == 2 ? WalRecordType::kRetract : WalRecordType::kAssert, seqno,
      seqno % 2 == 0 ? "u" : "s",
      "s[p(k" + std::to_string(seqno) + " : a -s-> v" + std::to_string(seqno) +
          ")].");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectRecordEq(const WalRecord& got, const WalRecord& want) {
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.seqno, want.seqno);
  EXPECT_EQ(got.level, want.level);
  EXPECT_EQ(got.fact, want.fact);
}

/// Next() must yield a record; returns it.
WalRecord MustNextRecord(WalReader& reader) {
  Result<WalReader::Item> item = reader.Next();
  EXPECT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->event, WalReader::Event::kRecord);
  return item->record;
}

void ExpectEndOfPrefix(WalReader& reader) {
  Result<WalReader::Item> item = reader.Next();
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->event, WalReader::Event::kEndOfPrefix);
}

TEST(WalTailTest, ReaderFollowsLiveWriter) {
  const std::string path = TempWalPath("follow");
  Result<WalWriter> writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  // Records written before the first poll arrive in order...
  const WalRecord r1 = SampleRecord(1);
  const WalRecord r2 = SampleRecord(2);
  ASSERT_TRUE(writer->Append(r1).ok());
  ASSERT_TRUE(writer->Append(r2).ok());
  ExpectRecordEq(MustNextRecord(*reader), r1);
  ExpectRecordEq(MustNextRecord(*reader), r2);
  // ...then the tail runs dry without error...
  ExpectEndOfPrefix(*reader);
  // ...and new appends become visible on the next poll.
  const WalRecord r3 = SampleRecord(3);
  ASSERT_TRUE(writer->Append(r3).ok());
  ExpectRecordEq(MustNextRecord(*reader), r3);
  ExpectEndOfPrefix(*reader);
  std::remove(path.c_str());
}

TEST(WalTailTest, MissingFileIsEndOfPrefixUntilTheWriterCreatesIt) {
  const std::string path = TempWalPath("missing");
  std::remove(path.c_str());
  // The writer creates the WAL lazily; a reader opened first must treat
  // "no file yet" as an empty prefix, not an error.
  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ExpectEndOfPrefix(*reader);

  Result<WalWriter> writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  const WalRecord r1 = SampleRecord(1);
  ASSERT_TRUE(writer->Append(r1).ok());
  ExpectRecordEq(MustNextRecord(*reader), r1);
  std::remove(path.c_str());
}

TEST(WalTailTest, TornInFlightFrameIsEndOfPrefixAtEveryByteBoundary) {
  const std::string path = TempWalPath("torn");
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(SampleRecord(1)).ok());
    ASSERT_TRUE(writer->Append(SampleRecord(2)).ok());
    writer->Close();
  }
  const std::string full = ReadFile(path);
  // Find where record 1's frames end: replay a truncated copy until it
  // yields exactly one mutation. (Symbol frames precede it, so the
  // boundary is not simply "half the file".)
  size_t boundary = 0;
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    Result<WalReplay> replay = ReplayWal(path);
    ASSERT_TRUE(replay.ok());
    if (replay->records.size() == 1 && replay->tail.ok()) {
      boundary = cut;
      break;
    }
  }
  ASSERT_GT(boundary, 0u);

  // Every truncation point inside the in-flight suffix must read as
  // "record 1, then end of prefix" - never an error, never a partial
  // record 2.
  for (size_t cut = boundary; cut < full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    Result<WalReader> reader = WalReader::Open(path);
    ASSERT_TRUE(reader.ok());
    const WalRecord got = MustNextRecord(*reader);
    EXPECT_EQ(got.seqno, 1u) << "cut at " << cut;
    Result<WalReader::Item> tail = reader->Next();
    ASSERT_TRUE(tail.ok()) << "cut at " << cut << ": " << tail.status();
    EXPECT_EQ(tail->event, WalReader::Event::kEndOfPrefix)
        << "cut at " << cut;
    // The writer finishing the append (restoring the full bytes) must
    // heal the same reader in place.
    WriteFile(path, full);
    const WalRecord healed = MustNextRecord(*reader);
    EXPECT_EQ(healed.seqno, 2u) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(WalTailTest, DamageWithDurableBytesBeyondIsDataLoss) {
  const std::string path = TempWalPath("midfile");
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(SampleRecord(1)).ok());
    ASSERT_TRUE(writer->Append(SampleRecord(2)).ok());
    writer->Close();
  }
  std::string bytes = ReadFile(path);
  // Flip one byte inside the FIRST frame's payload (offset 8 is the
  // payload start, right after the [len][crc] header): the CRC mismatch
  // has intact bytes durably beyond it, so no writer can ever complete
  // it - this is corruption, not an in-flight append. (Payload damage
  // specifically: a flipped *length* field can masquerade as a torn
  // append until the file outgrows the phantom frame, which is why the
  // classification keys on the frame boundary, not the byte position.)
  ASSERT_GT(bytes.size(), 16u);
  bytes[9] ^= 0x40;
  WriteFile(path, bytes);

  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  // The reader must surface kDataLoss on the damaged frame, never
  // silently skip to the intact frames beyond.
  Result<WalReader::Item> item = reader->Next();
  ASSERT_FALSE(item.ok());
  EXPECT_TRUE(item.status().IsDataLoss()) << item.status();
  std::remove(path.c_str());
}

TEST(WalTailTest, ImplausibleFrameLengthIsDataLossEvenAtTheTail) {
  const std::string path = TempWalPath("implausible");
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(SampleRecord(1)).ok());
    writer->Close();
  }
  // Append a header declaring a frame far past the record size cap. A
  // torn append can leave a *short* frame, but never an absurd length:
  // lengths are written before payloads, so a garbage length at the
  // tail means the file is damaged, and waiting for the "rest" of a
  // 4 GiB frame would hang the shipper forever.
  std::string bytes = ReadFile(path);
  bytes += std::string("\xff\xff\xff\x7f\x00\x00\x00\x00", 8);
  WriteFile(path, bytes);

  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(MustNextRecord(*reader).seqno, 1u);
  Result<WalReader::Item> item = reader->Next();
  ASSERT_FALSE(item.ok());
  EXPECT_TRUE(item.status().IsDataLoss()) << item.status();
  std::remove(path.c_str());
}

TEST(WalTailTest, FileShrinkReadsAsResetAndAFreshReaderResumes) {
  const std::string path = TempWalPath("reset");
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(SampleRecord(1)).ok());
    ASSERT_TRUE(writer->Append(SampleRecord(2)).ok());
    writer->Close();
  }
  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(MustNextRecord(*reader).seqno, 1u);
  EXPECT_EQ(MustNextRecord(*reader).seqno, 2u);

  // Checkpoint: the WAL resets to empty and a fresh epoch begins (new
  // symbol table, higher seqnos). The stale reader must notice the
  // shrink rather than misread the new epoch through old state.
  ASSERT_TRUE(TruncateWal(path, 0).ok());
  {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(SampleRecord(3)).ok());
    writer->Close();
  }
  Result<WalReader::Item> item = reader->Next();
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(item->event, WalReader::Event::kReset);

  // The shipper's response to kReset: re-open from the start.
  Result<WalReader> fresh = WalReader::Open(path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(MustNextRecord(*fresh).seqno, 3u);
  std::remove(path.c_str());
}

TEST(WalTailTest, ConcurrentWriterAndTailingReaderAgreeOnEveryRecord) {
  const std::string path = TempWalPath("concurrent");
  std::remove(path.c_str());
  constexpr uint64_t kRecords = 400;

  std::thread writer_thread([&] {
    Result<WalWriter> writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (uint64_t seqno = 1; seqno <= kRecords; ++seqno) {
      // sync=false maximizes torn-frame exposure: the reader races
      // appends that may be half-flushed by the page cache.
      ASSERT_TRUE(writer->Append(SampleRecord(seqno), /*sync=*/false).ok());
      if (seqno % 32 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    writer->Close();
  });

  Result<WalReader> reader = WalReader::Open(path);
  ASSERT_TRUE(reader.ok());
  uint64_t next_expected = 1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (next_expected <= kRecords) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stalled at seqno " << next_expected;
    Result<WalReader::Item> item = reader->Next();
    ASSERT_TRUE(item.ok()) << item.status();
    if (item->event == WalReader::Event::kEndOfPrefix) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    ASSERT_EQ(item->event, WalReader::Event::kRecord);
    // No duplicates, no skips, no reordering - byte-exact content.
    ExpectRecordEq(item->record, SampleRecord(next_expected));
    ++next_expected;
  }
  writer_thread.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace multilog::storage
