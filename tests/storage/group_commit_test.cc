// Group commit: the unsynced-append + SyncTo split that lets N
// concurrent committers share one fdatasync instead of queueing one
// each. Covers ticket monotonicity, the already-durable fast path,
// batching (group_syncs grows sublinearly in committers), durability of
// the unsynced path across reopen, and the engine-level equivalence of
// group-commit on/off (same facts, same seqnos - only the fsync
// schedule differs).

#include "storage/storage.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mls/sample_data.h"
#include "multilog/engine.h"

namespace multilog::storage {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "/group_commit_" + tag + "_" +
      std::to_string(::getpid());
  return dir;
}

std::string Fact(int i) {
  const std::string entity = "gc" + std::to_string(i);
  return "s[p(" + entity + " : a -s-> " + entity + ")].";
}

TEST(GroupCommitTest, TicketsAreMonotonicAndSyncToMakesThemDurable) {
  const std::string dir = TempDir("tickets");
  Result<Storage> st = Storage::Open(dir, mls::D1Source());
  ASSERT_TRUE(st.ok()) << st.status();

  EXPECT_EQ(st->last_append_ticket(), 0u);
  // SyncTo(0): nothing to do, no fsync spent.
  ASSERT_TRUE(st->SyncTo(0).ok());
  EXPECT_EQ(st->group_syncs(), 0u);

  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> seqno = st->AppendAssert("s", Fact(i), /*sync=*/false);
    ASSERT_TRUE(seqno.ok()) << seqno.status();
    EXPECT_EQ(st->last_append_ticket(), static_cast<uint64_t>(i + 1));
  }
  const uint64_t ticket = st->last_append_ticket();
  ASSERT_TRUE(st->SyncTo(ticket).ok());
  EXPECT_GE(st->group_syncs(), 1u);

  // Already durable: a second SyncTo to the same ticket is free.
  const uint64_t syncs_before = st->group_syncs();
  ASSERT_TRUE(st->SyncTo(ticket).ok());
  EXPECT_EQ(st->group_syncs(), syncs_before);
}

TEST(GroupCommitTest, ConcurrentCommittersShareFsyncs) {
  const std::string dir = TempDir("sharing");
  Result<Storage> st = Storage::Open(dir, mls::D1Source());
  ASSERT_TRUE(st.ok()) << st.status();
  Storage* storage = &*st;

  // Appends are serialized (as the engine's db lock does in
  // production); each committer captures its own ticket. Once every
  // append has landed, all eight committers SyncTo concurrently: the
  // first to take leadership covers all 64 buffered records with a
  // single fdatasync, and every follower finds its ticket already
  // durable.
  constexpr int kCommits = 64;
  std::vector<uint64_t> tickets(kCommits, 0);
  {
    std::mutex append_mu;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (int i = t * 8; i < (t + 1) * 8; ++i) {
          std::lock_guard<std::mutex> lock(append_mu);
          Result<uint64_t> seqno =
              storage->AppendAssert("s", Fact(i), /*sync=*/false);
          ASSERT_TRUE(seqno.ok()) << seqno.status();
          tickets[static_cast<size_t>(i)] = storage->last_append_ticket();
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(storage->last_append_ticket(), static_cast<uint64_t>(kCommits));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (int i = t * 8; i < (t + 1) * 8; ++i) {
          ASSERT_TRUE(storage->SyncTo(tickets[static_cast<size_t>(i)]).ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // Batching is the point: 64 durable commits, one shared fdatasync
  // (a second only if a leader raced the counter read - never 64).
  EXPECT_GE(storage->group_syncs(), 1u);
  EXPECT_LE(storage->group_syncs(), 2u)
      << "group commit degenerated toward one fsync per commit";
}

TEST(GroupCommitTest, UnsyncedAppendsSurviveReopenAfterSyncTo) {
  const std::string dir = TempDir("reopen");
  constexpr int kRecords = 10;
  {
    Result<Storage> st = Storage::Open(dir, mls::D1Source());
    ASSERT_TRUE(st.ok()) << st.status();
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(st->AppendAssert("s", Fact(i), /*sync=*/false).ok());
    }
    ASSERT_TRUE(st->SyncTo(st->last_append_ticket()).ok());
  }
  Result<Storage> again = Storage::Open(dir, mls::D1Source());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->recovered().records.size(),
            static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(again->recovered().records[static_cast<size_t>(i)].fact,
              Fact(i));
  }
}

TEST(GroupCommitTest, EngineGroupCommitOnAndOffProduceTheSameDatabase) {
  // The same mutation stream through a group-commit engine and a
  // sync-every-write engine must yield identical facts and seqnos;
  // only the fsync schedule may differ.
  auto run = [](bool group_commit, const std::string& dir)
      -> std::vector<std::string> {
    Result<Storage> st = Storage::Open(dir, mls::D1Source());
    EXPECT_TRUE(st.ok()) << st.status();
    ml::EngineOptions options;
    options.group_commit = group_commit;
    Result<ml::Engine> engine = ml::Engine::FromStorage(&*st, options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    for (int i = 0; i < 8; ++i) {
      Result<ml::WriteResult> r = engine->Assert(Fact(i), "s");
      EXPECT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->seqno, static_cast<uint64_t>(i + 1));
    }
    const ml::StorageCounters sc = engine->StorageStats();
    if (group_commit) {
      EXPECT_GE(sc.group_syncs, 1u) << "group-commit engine never batched";
    } else {
      EXPECT_EQ(sc.group_syncs, 0u)
          << "sync-per-write engine used the group path";
    }
    // Reopen and collect what recovery sees.
    Result<Storage> again = Storage::Open(dir, mls::D1Source());
    EXPECT_TRUE(again.ok()) << again.status();
    std::vector<std::string> facts;
    for (const WalRecord& rec : again->recovered().records) {
      facts.push_back(std::to_string(rec.seqno) + " " + rec.fact);
    }
    return facts;
  };
  const std::vector<std::string> grouped = run(true, TempDir("eng_on"));
  const std::vector<std::string> ungrouped = run(false, TempDir("eng_off"));
  ASSERT_EQ(grouped.size(), 8u);
  EXPECT_EQ(grouped, ungrouped);
}

TEST(GroupCommitTest, KillSwitchDisablesTheDefault) {
  ASSERT_EQ(::setenv("MULTILOG_NO_GROUP_COMMIT", "1", 1), 0);
  EXPECT_FALSE(ml::GroupCommitDefault());
  ASSERT_EQ(::unsetenv("MULTILOG_NO_GROUP_COMMIT"), 0);
  EXPECT_TRUE(ml::GroupCommitDefault());
}

}  // namespace
}  // namespace multilog::storage
