#ifndef MULTILOG_TESTS_SHARDING_ROUTER_TEST_UTIL_H_
#define MULTILOG_TESTS_SHARDING_ROUTER_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "multilog/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "sharding/router.h"
#include "sharding/routing.h"
#include "sharding/shard_map.h"
#include "storage/storage.h"

namespace multilog::sharding {

/// A database whose Sigma spans several entity keys, with an anchored
/// replicated rule (vet) and both an untainted (q) and a tainted
/// (watch) p-predicate - enough surface to exercise every routing path.
inline const char* ClusterSource() {
  return R"(
level(u). level(c). level(s).
order(u, c). order(c, s).
u[intel(k1 : src -u-> v1)].
c[intel(k1 : src -c-> t1)].
u[intel(k2 : src -u-> v2)].
s[intel(k3 : src -s-> v3)].
c[intel(k4 : src -c-> v4)].
s[intel(K : vet -u-> yes)] :- c[intel(K : src -c-> T)] << cau.
q(j).
watch(K) :- u[intel(K : src -u-> V)].
)";
}

/// One in-process sharded deployment: N shard servers seeded with
/// PartitionSource's split, the router over them, and a reference
/// engine server fed the *unsplit* source - the byte-identity oracle.
class RouterClusterTest : public ::testing::Test {
 protected:
  /// `data_base`, when non-empty, puts each shard on durable storage
  /// under ShardDataDir(data_base, i) - required for checkpoint tests.
  void StartCluster(const std::string& source, size_t num_shards = 3,
                    const std::string& data_base = "") {
    source_ = source;
    const ShardMap map(num_shards);
    Result<std::vector<std::string>> parts = PartitionSource(source, map);
    ASSERT_TRUE(parts.ok()) << parts.status();
    // Storage::Open creates the shard dir but not its parent.
    if (!data_base.empty()) ::mkdir(data_base.c_str(), 0755);
    RouterOptions options;
    // Tests want failures fast, not patient redials.
    options.connect_attempts = 3;
    options.connect_backoff_ms = 10;
    for (size_t i = 0; i < parts->size(); ++i) {
      ASSERT_TRUE(StartShard(
          (*parts)[i],
          data_base.empty() ? "" : storage::ShardDataDir(data_base, i)));
      options.shards.push_back({"127.0.0.1", shard_servers_.back()->port()});
    }
    Result<ml::Engine> ref = ml::Engine::FromSource(source);
    ASSERT_TRUE(ref.ok()) << ref.status();
    reference_engine_ = std::make_unique<ml::Engine>(std::move(ref).value());
    server::ServerOptions ref_options;
    ref_options.port = 0;
    reference_server_ = std::make_unique<server::Server>(
        reference_engine_.get(), ref_options,
        std::vector<server::SqlCatalogEntry>{});
    ASSERT_TRUE(reference_server_->Start().ok());

    router_ = std::make_unique<Router>(source, options);
    const Status started = router_->Start();
    ASSERT_TRUE(started.ok()) << started;
  }

  /// Starts one shard server over `part`; appends to the fleet. A
  /// non-empty `data_dir` makes the shard durable (storage-backed).
  bool StartShard(const std::string& part, const std::string& data_dir = "") {
    Result<ml::Engine> engine = Status::Internal("unreached");
    if (data_dir.empty()) {
      engine = ml::Engine::FromSource(part);
    } else {
      Result<storage::Storage> st = storage::Storage::Open(data_dir, part);
      EXPECT_TRUE(st.ok()) << st.status();
      if (!st.ok()) return false;
      shard_storages_.push_back(
          std::make_unique<storage::Storage>(std::move(st).value()));
      engine = ml::Engine::FromStorage(shard_storages_.back().get());
    }
    EXPECT_TRUE(engine.ok()) << engine.status();
    if (!engine.ok()) return false;
    shard_engines_.push_back(
        std::make_unique<ml::Engine>(std::move(engine).value()));
    server::ServerOptions options;
    options.port = 0;
    shard_servers_.push_back(std::make_unique<server::Server>(
        shard_engines_.back().get(), options,
        std::vector<server::SqlCatalogEntry>{}));
    const Status started = shard_servers_.back()->Start();
    EXPECT_TRUE(started.ok()) << started;
    return started.ok();
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    for (auto& server : shard_servers_) server->Stop();
    if (reference_server_ != nullptr) reference_server_->Stop();
  }

  server::Client ConnectRouter() {
    Result<server::Client> c = server::Client::Connect(router_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  server::Client ConnectReference() {
    Result<server::Client> c =
        server::Client::Connect(reference_server_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  /// Runs `goal` through the router and the reference engine and
  /// demands identical outcomes: same error code on failure; on
  /// success the same count and - for relayed and reduced-merge paths -
  /// byte-identical answer arrays. Operational scatter answers are
  /// proof-ordered on a single engine, so there (and only there) both
  /// sides are compared as sorted sets, which check_both separately
  /// proves equal to the reduced answers.
  void ExpectSameAnswers(server::Client& via_router, server::Client& via_ref,
                         const std::string& goal, const std::string& mode,
                         bool operational_scatter = false) {
    Result<server::Json> a = via_router.Query(goal, -1, mode);
    Result<server::Json> b = via_ref.Query(goal, -1, mode);
    ASSERT_EQ(a.ok(), b.ok()) << goal << " [" << mode
                              << "] router: " << a.status()
                              << " reference: " << b.status();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code())
          << goal << " router: " << a.status()
          << " reference: " << b.status();
      return;
    }
    const server::Json* ans_a = a->Find("answers");
    const server::Json* ans_b = b->Find("answers");
    ASSERT_NE(ans_a, nullptr) << goal;
    ASSERT_NE(ans_b, nullptr) << goal;
    if (operational_scatter) {
      std::vector<std::string> sa, sb;
      for (const server::Json& s : ans_a->array_items()) {
        sa.push_back(s.string_value());
      }
      for (const server::Json& s : ans_b->array_items()) {
        sb.push_back(s.string_value());
      }
      std::sort(sa.begin(), sa.end());
      sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
      std::sort(sb.begin(), sb.end());
      sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
      EXPECT_EQ(sa, sb) << goal << " [" << mode << "]";
    } else {
      EXPECT_EQ(a->GetInt("count"), b->GetInt("count"))
          << goal << " [" << mode << "]";
      EXPECT_EQ(ans_a->Serialize(), ans_b->Serialize())
          << goal << " [" << mode << "]";
    }
  }

  std::string source_;
  std::vector<std::unique_ptr<storage::Storage>> shard_storages_;
  std::vector<std::unique_ptr<ml::Engine>> shard_engines_;
  std::vector<std::unique_ptr<server::Server>> shard_servers_;
  std::unique_ptr<ml::Engine> reference_engine_;
  std::unique_ptr<server::Server> reference_server_;
  std::unique_ptr<Router> router_;
};

}  // namespace multilog::sharding

#endif  // MULTILOG_TESTS_SHARDING_ROUTER_TEST_UTIL_H_
