// Partial-failure behavior: a shard that dies mid-service must surface
// as kUnavailable naming it - never as a silently truncated answer - a
// restarted shard must rejoin without router intervention, a restarted
// router must keep serving the live shard fleet, and point routing must
// stay consistent under concurrent interleaved writes.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "sharding/router.h"
#include "router_test_util.h"

namespace multilog::sharding {
namespace {

using server::Client;
using server::Json;

constexpr char kWideGoal[] = "?- c[intel(K : src -R-> V)] << opt.";

class RouterFailureTest : public RouterClusterTest {};

TEST_F(RouterFailureTest, ShardDownMidSessionYieldsUnavailableNotTruncation) {
  StartCluster(ClusterSource(), 2);
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  // Warm both backend connections so the failure hits an established
  // session, not a dial.
  ASSERT_TRUE(client.Query(kWideGoal).ok());

  shard_servers_[1]->Stop();

  Result<Json> r = client.Query(kWideGoal);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status();
  EXPECT_NE(r.status().message().find("shard 1"), std::string::npos)
      << r.status();

  // The raw response carries no answers member at all: a failed scatter
  // returns *nothing*, not the surviving shards' subset.
  Json raw = Json::Object();
  raw.Set("cmd", Json::Str("query"));
  raw.Set("goal", Json::Str(kWideGoal));
  Result<Json> wire = client.RoundTrip(raw);
  ASSERT_TRUE(wire.ok()) << wire.status();
  EXPECT_FALSE(wire->GetBool("ok", true));
  EXPECT_EQ(wire->Find("answers"), nullptr);

  // Point queries owned by the surviving shard still answer.
  for (const char* key : {"k1", "k2", "k3", "k4"}) {
    const std::string goal =
        "?- c[intel(" + std::string(key) + " : src -R-> V)] << opt.";
    Result<Json> point = client.Query(goal);
    if (router_->shard_map().ShardOfKeyText(key) == 0) {
      EXPECT_TRUE(point.ok()) << key << ": " << point.status();
    } else {
      ASSERT_FALSE(point.ok()) << key;
      EXPECT_TRUE(point.status().IsUnavailable()) << point.status();
    }
  }
  EXPECT_GT(router_->Counters().shard_errors, 0u);
}

TEST_F(RouterFailureTest, RestartedShardRejoinsOnTheNextRequest) {
  StartCluster(ClusterSource(), 2);
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> before = client.Query(kWideGoal);
  ASSERT_TRUE(before.ok()) << before.status();

  const uint16_t port1 = shard_servers_[1]->port();
  shard_servers_[1]->Stop();
  Result<Json> down = client.Query(kWideGoal);
  ASSERT_FALSE(down.ok());
  EXPECT_TRUE(down.status().IsUnavailable()) << down.status();

  // Bring the shard back on the same port with the same data (the
  // engine outlived the server, as it would with a durable data dir).
  server::ServerOptions options;
  options.port = port1;
  shard_servers_[1] = std::make_unique<server::Server>(
      shard_engines_[1].get(), options,
      std::vector<server::SqlCatalogEntry>{});
  ASSERT_TRUE(shard_servers_[1]->Start().ok());

  // Same session, no router restart: the dropped backend redials, and
  // the rejoined fleet serves exactly the pre-failure answers.
  Result<Json> back = client.Query(kWideGoal);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->Find("answers")->Serialize(),
            before->Find("answers")->Serialize());
  EXPECT_EQ(back->GetInt("count"), before->GetInt("count"));
}

TEST_F(RouterFailureTest, PerShardDeadlinePropagatesAndNamesTheRefusal) {
  StartCluster(ClusterSource(), 2);
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  // min_seqno far past anything applied + a tiny wait: every shard
  // gives up with DeadlineExceeded, and the router relays the shard's
  // own structured refusal (scatter picks the lowest shard index).
  Result<Json> r = client.Query(kWideGoal, /*deadline_ms=*/-1, /*mode=*/"",
                                /*proofs=*/false, /*trace=*/false,
                                /*min_seqno=*/1000, /*wait_ms=*/30);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();

  // An expired wall-clock deadline is likewise the shard's verdict,
  // relayed with the connection intact.
  Result<Json> expired = client.Query(kWideGoal, /*deadline_ms=*/0);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded()) << expired.status();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(RouterFailureTest, RouterRestartServesTheLiveShardsAgain) {
  StartCluster(ClusterSource(), 2);
  {
    Client client = ConnectRouter();
    ASSERT_TRUE(client.Hello("c").ok());
    ASSERT_TRUE(client.Assert("c[intel(k77 : src -c-> k77)].").ok());
  }
  router_->Stop();

  // A fresh router over the same fleet: the data lives on the shards,
  // so nothing is lost and the shard map (same size, same hash) places
  // k77 where the old router wrote it.
  RouterOptions options;
  options.connect_attempts = 3;
  options.connect_backoff_ms = 10;
  for (const auto& server : shard_servers_) {
    options.shards.push_back({"127.0.0.1", server->port()});
  }
  router_ = std::make_unique<Router>(source_, options);
  ASSERT_TRUE(router_->Start().ok());

  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("c").ok());
  Result<Json> r = client.Query("?- c[intel(k77 : src -R-> V)] << opt.");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->GetInt("count"), 1);
}

TEST_F(RouterFailureTest, PointRoutingStaysConsistentUnderInterleavedWrites) {
  StartCluster(ClusterSource(), 3);
  // Writers keep asserting fresh entities while a reader point-queries
  // entities already written; every read must come from the key's
  // owning shard and see the committed fact (reads and writes for one
  // key serialize on the owner - there is no cross-shard lag to hide).
  constexpr int kWriters = 4;
  constexpr int kFactsPerWriter = 8;
  std::atomic<int> written{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([this, t, &written] {
      Result<Client> client = Client::Connect(router_->port());
      ASSERT_TRUE(client.ok()) << client.status();
      ASSERT_TRUE(client->Hello("c").ok());
      for (int i = 0; i < kFactsPerWriter; ++i) {
        const std::string entity =
            "iw" + std::to_string(t) + "x" + std::to_string(i);
        const std::string fact =
            "c[intel(" + entity + " : f -c-> " + entity + ")].";
        Result<Json> r = client->Assert(fact);
        EXPECT_TRUE(r.ok()) << fact << ": " << r.status();
        written.fetch_add(1, std::memory_order_release);
      }
    });
  }
  threads.emplace_back([this, &written] {
    Result<Client> client = Client::Connect(router_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->Hello("c").ok());
    int reads = 0;
    while (reads < 20) {
      // Re-read a fact that was acknowledged before the query started.
      if (written.load(std::memory_order_acquire) < kFactsPerWriter) continue;
      const int i = reads % kFactsPerWriter;
      const std::string key = "iw0x" + std::to_string(i % 4);
      Result<Json> r = client->Query("?- c[intel(" + key +
                                     " : f -R-> V)] << opt.");
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->GetInt("count"), 1) << key;
      EXPECT_EQ(static_cast<size_t>(r->Find("shard")->int_value()),
                router_->shard_map().ShardOfKeyText(key));
      ++reads;
    }
  });
  for (std::thread& t : threads) t.join();

  // Every write landed on its owner: per-shard direct reads partition
  // the written keys exactly as the map says.
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kFactsPerWriter; ++i) {
      const std::string key =
          "iw" + std::to_string(t) + "x" + std::to_string(i);
      const size_t owner = router_->shard_map().ShardOfKeyText(key);
      for (size_t s = 0; s < shard_servers_.size(); ++s) {
        Result<Client> direct = Client::Connect(shard_servers_[s]->port());
        ASSERT_TRUE(direct.ok());
        ASSERT_TRUE(direct->Hello("c").ok());
        Result<Json> r = direct->Query("?- c[intel(" + key +
                                       " : f -R-> V)] << opt.");
        ASSERT_TRUE(r.ok()) << r.status();
        EXPECT_EQ(r->GetInt("count"), s == owner ? 1 : 0)
            << key << " on shard " << s;
      }
    }
  }
}

}  // namespace
}  // namespace multilog::sharding
