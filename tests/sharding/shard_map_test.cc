// The shard map's contract: the hash is stable (fixed known vectors,
// not just self-consistency), the key is the *rendered text* of the
// entity key, and every key lands on a valid shard.

#include "sharding/shard_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "datalog/term.h"

namespace multilog::sharding {
namespace {

TEST(StableHash64, MatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64-bit vectors. If these ever change, every
  // existing deployment's data placement silently breaks - that is the
  // regression this test exists to catch.
  EXPECT_EQ(StableHash64(""), 14695981039346656037ull);
  EXPECT_EQ(StableHash64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(StableHash64("foobar"), 0x85944171f73967e8ull);
}

TEST(StableHash64, SensitiveToEveryByte) {
  EXPECT_NE(StableHash64("k1"), StableHash64("k2"));
  EXPECT_NE(StableHash64("k1"), StableHash64("K1"));
  EXPECT_NE(StableHash64("ab"), StableHash64("ba"));
}

TEST(ShardMap, ZeroShardsClampsToOne) {
  const ShardMap map(0);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.ShardOfKeyText("anything"), 0u);
}

TEST(ShardMap, ShardIsAlwaysInRangeAndDeterministic) {
  const ShardMap map(5);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "entity" + std::to_string(i);
    const size_t shard = map.ShardOfKeyText(key);
    EXPECT_LT(shard, 5u);
    EXPECT_EQ(shard, map.ShardOfKeyText(key));  // stable across calls
  }
}

TEST(ShardMap, EveryShardOwnsSomeKeys) {
  const ShardMap map(4);
  std::set<size_t> hit;
  for (int i = 0; i < 1000; ++i) {
    hit.insert(map.ShardOfKeyText("entity" + std::to_string(i)));
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardMap, ShardOfKeyHashesTheRenderedTerm) {
  // The load-bearing property: placement follows the key's *text*, so
  // every process (router, tools, future rebalancers) agrees without
  // sharing a symbol table.
  const ShardMap map(7);
  EXPECT_EQ(map.ShardOfKey(datalog::Term::Sym("k1")),
            map.ShardOfKeyText("k1"));
  EXPECT_EQ(map.ShardOfKey(datalog::Term::Int(42)),
            map.ShardOfKeyText("42"));
}

TEST(ShardMap, VersionDefaultsToOneAndIsCarried) {
  EXPECT_EQ(ShardMap(3).version(), 1u);
  EXPECT_EQ(ShardMap(3, 9).version(), 9u);
}

}  // namespace
}  // namespace multilog::sharding
