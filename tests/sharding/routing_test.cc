// The routing analysis: which databases may be sharded at all, where
// each Sigma clause lives, and how goals are classified. These rules
// are the entire soundness argument of the router (see routing.h), so
// each refusal case gets its own test.

#include "sharding/routing.h"

#include <gtest/gtest.h>

#include <string>

#include "multilog/parser.h"

namespace multilog::sharding {
namespace {

constexpr char kLattice[] =
    "level(u). level(c). level(s). order(u, c). order(c, s).\n";

ml::Database MustParse(const std::string& source) {
  Result<ml::Database> db = ml::ParseMultiLog(source);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

RoutingAnalysis MustAnalyze(const std::string& source) {
  Result<RoutingAnalysis> analysis = RoutingAnalysis::Analyze(MustParse(source));
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  return std::move(analysis).value();
}

/// The single Sigma clause of `source` routed under `map`.
Result<std::optional<size_t>> RouteSigma(const std::string& clause,
                                         const RoutingAnalysis& taint,
                                         const ShardMap& map) {
  ml::Database db = MustParse(kLattice + clause);
  EXPECT_EQ(db.sigma.size(), 1u);
  return ShardOfSigmaClause(db.sigma[0], taint, map);
}

Result<RouteDecision> Route(const std::string& goal,
                            const RoutingAnalysis& taint,
                            const ShardMap& map) {
  Result<std::vector<ml::MlLiteral>> parsed = ml::ParseMlGoal(goal);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return RouteGoal(*parsed, taint, map);
}

TEST(RoutingAnalysis, TaintPropagatesTransitivelyThroughPi) {
  const RoutingAnalysis a = MustAnalyze(
      std::string(kLattice) +
      "q(j).\n"
      "vis(K) :- u[p(K : a -u-> V)].\n"   // directly secured
      "wide(K) :- vis(K).\n"              // transitively secured
      "pure(X) :- q(X).\n");              // plain Datalog
  EXPECT_TRUE(a.IsTainted("vis"));
  EXPECT_TRUE(a.IsTainted("wide"));
  EXPECT_FALSE(a.IsTainted("q"));
  EXPECT_FALSE(a.IsTainted("pure"));
}

TEST(RoutingAnalysis, RejectsUnshardableSigmaUpFront) {
  Result<ml::Database> db = ml::ParseMultiLog(
      std::string(kLattice) + "s[p(k1 : a -s-> v)] :- u[p(k2 : a -u-> v)].\n");
  ASSERT_TRUE(db.ok()) << db.status();
  Result<RoutingAnalysis> a = RoutingAnalysis::Analyze(*db);
  ASSERT_FALSE(a.ok());
  EXPECT_TRUE(a.status().IsInvalidProgram()) << a.status();
}

TEST(ShardOfSigmaClauseTest, GroundKeyFactGoesToItsOwner) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  const ShardMap map(4);
  Result<std::optional<size_t>> shard =
      RouteSigma("u[p(k1 : a -u-> v)].", taint, map);
  ASSERT_TRUE(shard.ok()) << shard.status();
  ASSERT_TRUE(shard->has_value());
  EXPECT_EQ(**shard, map.ShardOfKeyText("k1"));
}

TEST(ShardOfSigmaClauseTest, GroundKeyRuleGoesToItsOwnerNotEverywhere) {
  // Replicating a ground-key rule would let a non-owner derive part of
  // k's group - the partial-key-group failure mode.
  const RoutingAnalysis taint = MustAnalyze(std::string(kLattice) + "q(j).\n");
  const ShardMap map(4);
  Result<std::optional<size_t>> shard =
      RouteSigma("c[p(k : a -c-> t)] :- q(j).", taint, map);
  ASSERT_TRUE(shard.ok()) << shard.status();
  ASSERT_TRUE(shard->has_value());
  EXPECT_EQ(**shard, map.ShardOfKeyText("k"));
}

TEST(ShardOfSigmaClauseTest, AnchoredKeyLocalRuleIsReplicated) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  Result<std::optional<size_t>> shard = RouteSigma(
      "s[p(K : a -u-> v)] :- c[p(K : a -c-> t)] << cau.", taint, ShardMap(4));
  ASSERT_TRUE(shard.ok()) << shard.status();
  EXPECT_FALSE(shard->has_value());  // nullopt = replicate to all
}

TEST(ShardOfSigmaClauseTest, UnanchoredNonGroundRuleIsRefused) {
  // No secured body atom: the rule would derive atoms for keys whose
  // stored group lives on another shard.
  const RoutingAnalysis taint = MustAnalyze(std::string(kLattice) + "q(j).\n");
  Result<std::optional<size_t>> shard =
      RouteSigma("s[p(K : a -s-> v)] :- q(K).", taint, ShardMap(4));
  ASSERT_FALSE(shard.ok());
  EXPECT_TRUE(shard.status().IsInvalidProgram()) << shard.status();
}

TEST(ShardOfSigmaClauseTest, CrossKeyRuleIsRefused) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  Result<std::optional<size_t>> shard = RouteSigma(
      "s[p(k1 : a -s-> v)] :- u[p(k2 : a -u-> v)].", taint, ShardMap(4));
  ASSERT_FALSE(shard.ok());
  EXPECT_TRUE(shard.status().IsInvalidProgram()) << shard.status();
}

TEST(ShardOfSigmaClauseTest, TaintedBodyPredicateIsRefused) {
  const RoutingAnalysis taint = MustAnalyze(
      std::string(kLattice) + "vis(K) :- u[p(K : a -u-> V)].\n");
  Result<std::optional<size_t>> shard =
      RouteSigma("s[p(k : a -s-> v)] :- vis(k).", taint, ShardMap(4));
  ASSERT_FALSE(shard.ok());
  EXPECT_TRUE(shard.status().IsInvalidProgram()) << shard.status();
}

TEST(RouteGoalTest, GroundKeyIsAPointQuery) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  const ShardMap map(4);
  Result<RouteDecision> d =
      Route("?- c[p(k1 : a -R-> v)] << opt.", taint, map);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, RouteDecision::Kind::kPoint);
  EXPECT_EQ(d->shard, map.ShardOfKeyText("k1"));
}

TEST(RouteGoalTest, NonGroundKeyScatters) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  Result<RouteDecision> d =
      Route("?- c[p(K : a -R-> v)] << opt.", taint, ShardMap(4));
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, RouteDecision::Kind::kScatter);
}

TEST(RouteGoalTest, KeyFreeGoalRoutesAnywhere) {
  const RoutingAnalysis taint = MustAnalyze(std::string(kLattice) + "q(j).\n");
  Result<RouteDecision> d = Route("?- q(X).", taint, ShardMap(4));
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, RouteDecision::Kind::kAnywhere);
}

TEST(RouteGoalTest, TaintedPredicateIsRefused) {
  const RoutingAnalysis taint = MustAnalyze(
      std::string(kLattice) + "vis(K) :- u[p(K : a -u-> V)].\n");
  Result<RouteDecision> d = Route("?- vis(X).", taint, ShardMap(4));
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsInvalidArgument()) << d.status();
}

TEST(RouteGoalTest, TwoGroundKeysOnTheSameShardStayAPointQuery) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  // Find two distinct keys that collide on one shard of two.
  const ShardMap map(2);
  std::string other;
  for (int i = 0; i < 100; ++i) {
    const std::string candidate = "co" + std::to_string(i);
    if (candidate != "k1" &&
        map.ShardOfKeyText(candidate) == map.ShardOfKeyText("k1")) {
      other = candidate;
      break;
    }
  }
  ASSERT_FALSE(other.empty());
  Result<RouteDecision> d = Route("?- c[p(k1 : a -R-> v)] << opt, c[p(" +
                                      other + " : a -S-> w)] << opt.",
                                  taint, map);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->kind, RouteDecision::Kind::kPoint);
  EXPECT_EQ(d->shard, map.ShardOfKeyText("k1"));
}

TEST(RouteGoalTest, CrossShardGroundJoinIsRefused) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  const ShardMap map(2);
  std::string other;
  for (int i = 0; i < 100; ++i) {
    const std::string candidate = "xs" + std::to_string(i);
    if (map.ShardOfKeyText(candidate) != map.ShardOfKeyText("k1")) {
      other = candidate;
      break;
    }
  }
  ASSERT_FALSE(other.empty());
  Result<RouteDecision> d = Route("?- c[p(k1 : a -R-> v)] << opt, c[p(" +
                                      other + " : a -S-> w)] << opt.",
                                  taint, map);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsInvalidArgument()) << d.status();
}

TEST(RouteGoalTest, MixedGroundAndVariableKeysAreRefused) {
  const RoutingAnalysis taint = MustAnalyze(kLattice);
  Result<RouteDecision> d = Route(
      "?- c[p(k1 : a -R-> v)] << opt, c[p(K : a -S-> w)] << opt.", taint,
      ShardMap(4));
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsInvalidArgument()) << d.status();
}

TEST(PartitionSourceTest, EveryClauseLandsExactlyWhereItBelongs) {
  const std::string source = std::string(kLattice) +
                             "u[p(k1 : a -u-> v)].\n"
                             "u[p(k2 : a -u-> w)].\n"
                             "c[p(k1 : a -c-> t)] :- q(j).\n"
                             "s[p(K : a -u-> v)] :- c[p(K : a -c-> t)] << "
                             "cau.\n"
                             "q(j).\n"
                             "?- c[p(k1 : a -R-> v)] << opt.\n";
  const ShardMap map(3);
  Result<std::vector<std::string>> parts = PartitionSource(source, map);
  ASSERT_TRUE(parts.ok()) << parts.status();
  ASSERT_EQ(parts->size(), 3u);

  size_t total_ground = 0;
  for (size_t i = 0; i < parts->size(); ++i) {
    // Each part must itself be a valid database, with Lambda, Pi, and
    // stored queries replicated and the anchored rule everywhere.
    ml::Database db = MustParse((*parts)[i]);
    EXPECT_EQ(db.lambda.size(), 5u) << "shard " << i;
    EXPECT_EQ(db.pi.size(), 1u) << "shard " << i;
    EXPECT_EQ(db.queries.size(), 1u) << "shard " << i;
    size_t replicated = 0;
    for (const ml::MlClause& clause : db.sigma) {
      Result<std::optional<size_t>> owner =
          ShardOfSigmaClause(clause, RoutingAnalysis(), map);
      ASSERT_TRUE(owner.ok()) << owner.status();
      if (owner->has_value()) {
        EXPECT_EQ(**owner, i) << "clause on the wrong shard: "
                              << clause.ToString();
        ++total_ground;
      } else {
        ++replicated;
      }
    }
    EXPECT_EQ(replicated, 1u) << "shard " << i;
  }
  EXPECT_EQ(total_ground, 3u);  // k1 fact, k2 fact, k1 rule
}

TEST(PartitionSourceTest, UnshardableSourceFailsLoudly) {
  Result<std::vector<std::string>> parts = PartitionSource(
      std::string(kLattice) + "s[p(K : a -s-> v)] :- q(K).\nq(j).\n",
      ShardMap(2));
  ASSERT_FALSE(parts.ok());
  EXPECT_TRUE(parts.status().IsInvalidProgram()) << parts.status();
}

}  // namespace
}  // namespace multilog::sharding
