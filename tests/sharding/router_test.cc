// The router's functional contract: protocol parity with multilogd,
// the shardmap surface, and - the core acceptance property - byte-
// identical answers to a single reference engine fed the same stream,
// at every clearance and mode, under randomized interleaved writes,
// single- and multi-threaded.

#include "sharding/router.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "router_test_util.h"

namespace multilog::sharding {
namespace {

using server::Client;
using server::Json;

const char* const kLevels[] = {"u", "c", "s"};
const char* const kModes[] = {"operational", "reduced", "check_both"};

/// Goals covering each routing class against ClusterSource().
const char* const kPointGoals[] = {
    "?- c[intel(k1 : src -R-> V)] << opt.",
    "?- s[intel(k3 : src -R-> V)] << cau.",
    "?- s[intel(k1 : vet -R-> V)] << cau.",  // via the replicated rule
    "?- u[intel(k2 : src -R-> V)] << fir.",
};
const char* const kWideGoals[] = {
    "?- c[intel(K : src -R-> V)] << opt.",
    "?- u[intel(K : src -R-> V)] << cau.",
    "?- s[intel(K : vet -R-> V)] << cau.",
    "?- s[intel(K : src -R-> V)] << fir.",
};

class RouterTest : public RouterClusterTest {};

TEST_F(RouterTest, HelloBindsAndReportsRouterIdentity) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  Result<Json> hello = client.Hello("s", "operational");
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_EQ(hello->GetString("server"), "multilog-router");
  EXPECT_EQ(hello->GetString("level"), "s");
  EXPECT_EQ(hello->GetString("mode"), "operational");
  EXPECT_EQ(hello->GetInt("shards"), 3);
}

TEST_F(RouterTest, UnknownLevelIsRefusedLikeAnEngine) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  Result<Json> hello = client.Hello("nosuch");
  ASSERT_FALSE(hello.ok());
  EXPECT_TRUE(hello.status().IsSecurityViolation()) << hello.status();
}

TEST_F(RouterTest, QueryBeforeHelloIsRefused) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  Result<Json> r = client.Query(kPointGoals[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSecurityViolation()) << r.status();
}

TEST_F(RouterTest, ShardMapIsServedWithoutHello) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  Result<Json> resp = client.ShardMap();
  ASSERT_TRUE(resp.ok()) << resp.status();
  const Json* map = resp->Find("shardmap");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->GetInt("version"), 1);
  EXPECT_EQ(map->GetInt("num_shards"), 3);
  EXPECT_EQ(map->GetString("hash"), kShardHashName);
  ASSERT_NE(map->Find("shards"), nullptr);
  EXPECT_EQ(map->Find("shards")->array_items().size(), 3u);
}

TEST_F(RouterTest, PlainEngineRefusesShardMap) {
  StartCluster(ClusterSource());
  Client client = ConnectReference();
  Result<Json> resp = client.ShardMap();
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsInvalidArgument()) << resp.status();
}

TEST_F(RouterTest, SqlAndReplicateAreRefused) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> sql = client.Sql("select * from mission");
  ASSERT_FALSE(sql.ok());
  EXPECT_TRUE(sql.status().IsInvalidArgument()) << sql.status();
}

TEST_F(RouterTest, TaintedGoalIsRefusedNotSilentlyWrong) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> r = client.Query("?- watch(K).");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_F(RouterTest, PointResponsesCarryTheOwningShard) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  Result<Json> r = client.Query(kPointGoals[0]);
  ASSERT_TRUE(r.ok()) << r.status();
  const Json* shard = r->Find("shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(static_cast<size_t>(shard->int_value()),
            router_->shard_map().ShardOfKeyText("k1"));
}

TEST_F(RouterTest, AllGoalsAllLevelsAllModesMatchTheReferenceEngine) {
  StartCluster(ClusterSource());
  for (const char* level : kLevels) {
    Client via_router = ConnectRouter();
    Client via_ref = ConnectReference();
    ASSERT_TRUE(via_router.Hello(level).ok());
    ASSERT_TRUE(via_ref.Hello(level).ok());
    for (const char* mode : kModes) {
      for (const char* goal : kPointGoals) {
        ExpectSameAnswers(via_router, via_ref, goal, mode);
      }
      for (const char* goal : kWideGoals) {
        ExpectSameAnswers(via_router, via_ref, goal, mode,
                          /*operational_scatter=*/mode ==
                              std::string("operational"));
      }
      // Key-free goals route to a single arbitrary shard - every shard
      // holds all of Pi, so any one of them matches the reference.
      ExpectSameAnswers(via_router, via_ref, "?- q(X).", mode);
    }
  }
}

TEST_F(RouterTest, ProofsRelayOnPointQueriesAndAreRefusedOnScatter) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s", "operational").ok());
  Result<Json> point =
      client.Query(kPointGoals[0], -1, "", /*proofs=*/true);
  ASSERT_TRUE(point.ok()) << point.status();
  ASSERT_NE(point->Find("proofs"), nullptr);
  EXPECT_EQ(point->Find("proofs")->array_items().size(),
            static_cast<size_t>(point->GetInt("count")));

  Result<Json> scatter =
      client.Query(kWideGoals[0], -1, "", /*proofs=*/true);
  ASSERT_FALSE(scatter.ok());
  EXPECT_TRUE(scatter.status().IsInvalidArgument()) << scatter.status();
}

TEST_F(RouterTest, StatsAndMetricsExposeRoutingCounters) {
  StartCluster(ClusterSource());
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("s").ok());
  ASSERT_TRUE(client.Query(kPointGoals[0]).ok());
  ASSERT_TRUE(client.Query(kWideGoals[0]).ok());
  ASSERT_TRUE(client.Query("?- q(X).").ok());

  Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json* routing = stats->Find("stats")->Find("routing");
  ASSERT_NE(routing, nullptr);
  EXPECT_EQ(routing->GetInt("point_queries"), 1);
  EXPECT_EQ(routing->GetInt("scatter_queries"), 1);
  EXPECT_EQ(routing->GetInt("anywhere_queries"), 1);

  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("multilog_router_point_queries_total 1"),
            std::string::npos);
  EXPECT_NE(metrics->find("multilog_router_shards 3"), std::string::npos);
}

TEST_F(RouterTest, WritesRouteToTheOwnerAndCheckpointFansOut) {
  // Durable shards: checkpoint is only served by storage-backed engines.
  StartCluster(ClusterSource(), 3,
               ::testing::TempDir() + "/router_writes_" +
                   std::to_string(::getpid()));
  Client client = ConnectRouter();
  ASSERT_TRUE(client.Hello("c").ok());
  // Entity integrity (Def. 5.4) wants a key cell: the value is the key.
  const std::string fact = "c[intel(k9 : src -c-> k9)].";
  Result<Json> written = client.Assert(fact);
  ASSERT_TRUE(written.ok()) << written.status();
  const size_t owner = router_->shard_map().ShardOfKeyText("k9");
  EXPECT_EQ(static_cast<size_t>(written->Find("shard")->int_value()), owner);

  // The fact is on the owner shard and nowhere else.
  for (size_t i = 0; i < shard_servers_.size(); ++i) {
    Result<Client> direct = Client::Connect(shard_servers_[i]->port());
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(direct->Hello("c").ok());
    Result<Json> r = direct->Query("?- c[intel(k9 : src -R-> V)] << opt.");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->GetInt("count"), i == owner ? 1 : 0) << "shard " << i;
  }

  Result<Json> checkpoint = client.Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->GetInt("shards"), 3);
  EXPECT_TRUE(client.Retract(fact).ok());
}

TEST_F(RouterTest, ByteIdentityUnderRandomizedInterleavedWrites) {
  StartCluster(ClusterSource());
  // One session per level on each side; the same op stream goes to
  // both, and every outcome (success or refusal) must match.
  std::vector<Client> via_router, via_ref;
  for (const char* level : kLevels) {
    via_router.push_back(ConnectRouter());
    via_ref.push_back(ConnectReference());
    ASSERT_TRUE(via_router.back().Hello(level).ok());
    ASSERT_TRUE(via_ref.back().Hello(level).ok());
  }

  std::mt19937 rng(20260809);
  std::uniform_int_distribution<size_t> level_dist(0, 2);
  std::uniform_int_distribution<int> entity_dist(0, 11);
  std::uniform_int_distribution<int> op_dist(0, 2);

  for (int step = 0; step < 120; ++step) {
    const size_t li = level_dist(rng);
    const std::string level = kLevels[li];
    // Entity integrity (Def. 5.4) wants a key cell, so the cell value
    // is the key itself.
    const std::string entity = "e" + std::to_string(entity_dist(rng));
    const std::string fact = level + "[intel(" + entity + " : f -" +
                             level + "-> " + entity + ")].";
    // Random asserts and retracts, *including* invalid ones (asserting
    // a fact already present, retracting the absent): the router must
    // relay exactly the refusals the reference produces, keeping both
    // sides in lockstep.
    Result<Json> a = Status::Internal("unreached");
    Result<Json> b = Status::Internal("unreached");
    if (op_dist(rng) != 0) {
      a = via_router[li].Assert(fact);
      b = via_ref[li].Assert(fact);
    } else {
      a = via_router[li].Retract(fact);
      b = via_ref[li].Retract(fact);
    }
    ASSERT_EQ(a.ok(), b.ok()) << "step " << step << " " << fact
                              << " router: " << a.status()
                              << " reference: " << b.status();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code())
          << "step " << step << " " << fact;
    }

    if (step % 10 == 9) {
      for (size_t qi = 0; qi < 3; ++qi) {
        ExpectSameAnswers(via_router[qi], via_ref[qi],
                          "?- " + std::string(kLevels[qi]) +
                              "[intel(K : f -R-> V)] << cau.",
                          "reduced");
        ExpectSameAnswers(via_router[qi], via_ref[qi],
                          "?- " + std::string(kLevels[qi]) + "[intel(e" +
                              std::to_string(entity_dist(rng)) +
                              " : f -R-> V)] << opt.",
                          "operational");
      }
    }
  }
  // Final full sweep: every level, every mode, wide and derived goals.
  for (size_t li = 0; li < 3; ++li) {
    for (const char* mode : kModes) {
      ExpectSameAnswers(via_router[li], via_ref[li],
                        "?- " + std::string(kLevels[li]) +
                            "[intel(K : f -R-> V)] << cau.",
                        mode,
                        /*operational_scatter=*/mode ==
                            std::string("operational"));
    }
  }
}

TEST_F(RouterTest, EightConcurrentWritersThenByteIdenticalAnswers) {
  StartCluster(ClusterSource());
  // Eight threads assert disjoint entities through the router; asserts
  // of distinct facts commute, so feeding the same set serially to the
  // reference engine must converge to the same answers.
  constexpr int kThreads = 8;
  constexpr int kFactsPerThread = 6;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([this, t] {
      Result<Client> client = Client::Connect(router_->port());
      ASSERT_TRUE(client.ok()) << client.status();
      ASSERT_TRUE(client->Hello("c").ok());
      for (int i = 0; i < kFactsPerThread; ++i) {
        const std::string entity =
            "w" + std::to_string(t) + "e" + std::to_string(i);
        const std::string fact =
            "c[intel(" + entity + " : f -c-> " + entity + ")].";
        Result<Json> r = client->Assert(fact);
        EXPECT_TRUE(r.ok()) << fact << ": " << r.status();
      }
    });
  }
  for (std::thread& t : writers) t.join();

  Client ref = ConnectReference();
  ASSERT_TRUE(ref.Hello("c").ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kFactsPerThread; ++i) {
      const std::string entity =
          "w" + std::to_string(t) + "e" + std::to_string(i);
      ASSERT_TRUE(
          ref.Assert("c[intel(" + entity + " : f -c-> " + entity + ")].")
              .ok());
    }
  }

  for (const char* level : kLevels) {
    Client via_router = ConnectRouter();
    Client via_ref = ConnectReference();
    ASSERT_TRUE(via_router.Hello(level).ok());
    ASSERT_TRUE(via_ref.Hello(level).ok());
    for (const char* mode : kModes) {
      ExpectSameAnswers(via_router, via_ref,
                        "?- c[intel(K : f -R-> V)] << opt.", mode,
                        /*operational_scatter=*/mode ==
                            std::string("operational"));
      ExpectSameAnswers(via_router, via_ref,
                        "?- c[intel(w3e1 : f -R-> V)] << opt.", mode);
    }
  }
  const RouterCounters counters = router_->Counters();
  EXPECT_EQ(counters.writes_routed, kThreads * kFactsPerThread);
  EXPECT_EQ(counters.shard_errors, 0u);
}

}  // namespace
}  // namespace multilog::sharding
