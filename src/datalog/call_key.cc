#include "datalog/call_key.h"

#include <functional>
#include <unordered_map>

namespace multilog::datalog {

size_t CallKeyHash::operator()(const CallKey& key) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (uint64_t word : key.code) {
    h ^= std::hash<uint64_t>()(word) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

CallKey MakeCallKey(const Atom& pattern) {
  // A tag in the upper bits, a symbol id / variable rank / payload
  // below. Arities make the encoding unambiguous.
  constexpr uint64_t kVarTag = 1ULL << 32;
  constexpr uint64_t kSymTag = 2ULL << 32;
  constexpr uint64_t kIntTag = 3ULL << 32;
  constexpr uint64_t kFnTag = 4ULL << 32;

  std::unordered_map<Symbol, uint32_t> renaming;
  CallKey key;
  key.code.reserve(2 + pattern.arity());
  key.code.push_back(pattern.PredicateId().name.id());
  key.code.push_back(pattern.arity());
  std::function<void(const Term&)> visit = [&](const Term& t) {
    switch (t.kind()) {
      case Term::Kind::kVariable: {
        auto [it, inserted] = renaming.emplace(
            t.symbol(), static_cast<uint32_t>(renaming.size()));
        (void)inserted;
        key.code.push_back(kVarTag | it->second);
        return;
      }
      case Term::Kind::kSymbol:
        key.code.push_back(kSymTag | t.symbol().id());
        return;
      case Term::Kind::kInt:
        key.code.push_back(kIntTag);
        key.code.push_back(static_cast<uint64_t>(t.int_value()));
        return;
      case Term::Kind::kCompound:
        key.code.push_back(kFnTag | t.symbol().id());
        key.code.push_back(t.args().size());
        for (const Term& a : t.args()) visit(a);
        return;
    }
  };
  for (const Term& t : pattern.args()) visit(t);
  return key;
}

}  // namespace multilog::datalog
