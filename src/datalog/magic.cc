#include "datalog/magic.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

#include "common/str_util.h"
#include "datalog/eval.h"

namespace multilog::datalog {

namespace {

/// The synthesized head predicate a conjunctive goal is compiled
/// through (CompileMagicPlan). Double-underscore keeps it out of the
/// user namespace, like the placeholder variables.
constexpr const char* kGoalPredicate = "__goal";

/// Placeholder-variable prefix for parameterized goals ("magic param").
constexpr const char* kParamPrefix = "__mp";

/// Adorned predicate name, e.g. p + "bf" -> "p__bf".
std::string AdornedName(const std::string& pred,
                        const std::string& adornment) {
  return pred + "__" + adornment;
}

std::string MagicName(const std::string& pred,
                      const std::string& adornment) {
  return "magic__" + pred + "__" + adornment;
}

/// True when every variable of `t` is in `bound` (constants trivially).
bool TermBound(const Term& t, const std::set<Symbol>& bound) {
  std::vector<Symbol> vars;
  t.CollectVariables(&vars);
  return std::all_of(vars.begin(), vars.end(),
                     [&bound](Symbol v) { return bound.count(v) > 0; });
}

/// Binding pattern of `atom` under `bound`.
std::string AdornmentOf(const Atom& atom, const std::set<Symbol>& bound) {
  std::string adornment;
  adornment.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    adornment += TermBound(t, bound) ? 'b' : 'f';
  }
  return adornment;
}

/// The arguments at the bound positions of `adornment`.
std::vector<Term> BoundArgs(const Atom& atom, const std::string& adornment) {
  std::vector<Term> out;
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (adornment[i] == 'b') out.push_back(atom.args()[i]);
  }
  return out;
}

void AddVars(const Atom& atom, std::set<Symbol>* bound) {
  std::vector<Symbol> vars;
  atom.CollectVariables(&vars);
  bound->insert(vars.begin(), vars.end());
}

using PredicateIdSet = std::unordered_set<PredicateId, PredicateIdHash>;

/// The shared rewrite core behind MagicTransform and CompileMagicPlan.
struct RewriteOutput {
  Program program;
  Atom query;            // adorned
  Symbol seed_predicate; // magic predicate of the query's seed
  /// True when the query predicate is EDB or unknown: nothing to
  /// specialize, `program`/`query` are the inputs unchanged.
  bool passthrough = false;
};

/// Rewrites `program` (plus the optional synthesized `goal_clause`,
/// treated as the sole definition of its head predicate) for `query`.
/// Negation/aggregate checks run per *reached* clause - unreachable
/// unsupported clauses never fail the rewrite. When `add_seed` is set
/// the query's bound constants become a magic seed fact (the legacy
/// single-shot form); plans instead seed at execution time.
Result<RewriteOutput> RewriteForQuery(const Program& program,
                                      const Clause* goal_clause,
                                      const Atom& query, bool add_seed) {
  // IDB = predicates with at least one rule (non-empty body or an
  // aggregate). Fact-only predicates stay EDB: their facts pass through
  // unadorned, so joins keep the model's argument indexes instead of
  // funneling every fact through a per-fact guard rule.
  PredicateIdSet idb;
  for (const Clause& c : program.clauses()) {
    if (!c.body().empty() || c.is_aggregate()) {
      idb.insert(c.head().PredicateId());
    }
  }
  if (goal_clause != nullptr) idb.insert(goal_clause->head().PredicateId());

  auto clauses_for =
      [&](const PredicateId& id) -> std::vector<const Clause*> {
    if (goal_clause != nullptr && id == goal_clause->head().PredicateId()) {
      return {goal_clause};
    }
    return program.ClausesFor(id);
  };

  RewriteOutput out;

  const PredicateId query_id = query.PredicateId();
  if (!idb.count(query_id)) {
    // Nothing to specialize: the query touches only EDB (or nothing).
    out.program = program;
    out.query = query;
    out.passthrough = true;
    return out;
  }

  std::set<Symbol> no_bound;
  const std::string query_adornment = AdornmentOf(query, no_bound);
  out.seed_predicate =
      Symbol::Intern(MagicName(query.predicate(), query_adornment));

  // Seed: the query's bound constants (plans seed per execution).
  if (add_seed) {
    out.program.AddFact(
        Atom(out.seed_predicate, BoundArgs(query, query_adornment)));
  }

  // EDB predicates whose facts the rewritten fragment joins against.
  PredicateIdSet edb_needed;

  std::deque<std::pair<PredicateId, std::string>> worklist;  // (pred id, a)
  std::set<std::pair<PredicateId, std::string>> processed;
  worklist.emplace_back(query_id, query_adornment);

  while (!worklist.empty()) {
    auto [pred_id, adornment] = worklist.front();
    worklist.pop_front();
    if (!processed.emplace(pred_id, adornment).second) continue;

    for (const Clause* clause : clauses_for(pred_id)) {
      if (clause->is_aggregate()) {
        return Status::InvalidProgram(
            "magic-sets rewriting does not support aggregate clauses "
            "reachable from the query: " +
            clause->ToString());
      }
      const Atom& head = clause->head();

      std::set<Symbol> bound;
      for (size_t i = 0; i < head.arity(); ++i) {
        if (adornment[i] == 'b') AddVars(Atom("", {head.args()[i]}), &bound);
      }

      // The rewritten body starts with the head's magic guard.
      std::vector<Literal> rewritten;
      rewritten.push_back(Literal::Positive(
          Atom(MagicName(head.predicate(), adornment),
               BoundArgs(head, adornment))));

      for (const Literal& lit : clause->body()) {
        if (lit.negated()) {
          return Status::InvalidProgram(
              "magic-sets rewriting supports only positive programs "
              "reachable from the query; found: " +
              lit.ToString());
        }
        if (lit.is_builtin()) {
          // `=` binds (as in the safety analysis); other comparisons are
          // pure filters.
          if (lit.comparison() == Comparison::kEq) {
            bool lhs_bound = TermBound(lit.lhs(), bound);
            bool rhs_bound = TermBound(lit.rhs(), bound);
            if (lhs_bound || rhs_bound) {
              std::vector<Symbol> vars;
              lit.lhs().CollectVariables(&vars);
              lit.rhs().CollectVariables(&vars);
              bound.insert(vars.begin(), vars.end());
            }
          }
          rewritten.push_back(lit);
          continue;
        }
        const Atom& atom = lit.atom();
        if (!idb.count(atom.PredicateId())) {
          edb_needed.insert(atom.PredicateId());
          rewritten.push_back(lit);
          AddVars(atom, &bound);
          continue;
        }
        // IDB literal: adorn, emit its magic rule, enqueue.
        const std::string sub_adornment = AdornmentOf(atom, bound);
        worklist.emplace_back(atom.PredicateId(), sub_adornment);

        std::vector<Term> magic_args = BoundArgs(atom, sub_adornment);
        out.program.AddClause(Clause(
            Atom(MagicName(atom.predicate(), sub_adornment),
                 std::move(magic_args)),
            rewritten));

        rewritten.push_back(Literal::Positive(
            Atom(AdornedName(atom.predicate(), sub_adornment), atom.args())));
        AddVars(atom, &bound);
      }

      out.program.AddClause(Clause(
          Atom(AdornedName(head.predicate(), adornment), head.args()),
          std::move(rewritten)));
    }
  }

  // The reachable EDB predicates' facts, verbatim and in source order.
  for (const Clause& c : program.clauses()) {
    if (edb_needed.count(c.head().PredicateId())) out.program.AddClause(c);
  }

  out.query = Atom(AdornedName(query.predicate(), query_adornment),
                   query.args());
  return out;
}

}  // namespace

Result<MagicProgram> MagicTransform(const Program& program,
                                    const Atom& query) {
  MULTILOG_ASSIGN_OR_RETURN(
      RewriteOutput out,
      RewriteForQuery(program, nullptr, query, /*add_seed=*/true));
  MagicProgram magic;
  magic.program = std::move(out.program);
  magic.query = std::move(out.query);
  return magic;
}

Result<std::vector<Substitution>> MagicSolve(const Program& program,
                                             const Atom& query,
                                             const EvalOptions& options) {
  MULTILOG_ASSIGN_OR_RETURN(MagicProgram magic,
                            MagicTransform(program, query));
  MULTILOG_ASSIGN_OR_RETURN(Model model, Evaluate(magic.program, options));
  return QueryModel(model, {Literal::Positive(magic.query)}, options.cancel);
}

MagicGoalPattern ParameterizeGoal(const std::vector<Literal>& goal) {
  MagicGoalPattern out;

  // A goal variable literally named like a placeholder would collide
  // with the abstraction; such goals are declared unparameterizable
  // (any_bound = false, callers fall back to plain evaluation).
  std::vector<Symbol> goal_vars;
  for (const Literal& l : goal) l.CollectVariables(&goal_vars);
  const bool collides =
      std::any_of(goal_vars.begin(), goal_vars.end(), [](Symbol v) {
        return StartsWith(v.str(), kParamPrefix);
      });
  if (collides) {
    out.literals = goal;
    for (const Literal& l : out.literals) {
      out.signature += l.ToString();
      out.signature += ", ";
    }
    return out;
  }

  auto parameterize = [&out](const Term& t) -> Term {
    if (!t.IsGround()) return t;  // partially-ground compounds verbatim
    const Symbol v = Symbol::Intern(std::string(kParamPrefix) +
                                    std::to_string(out.params.size()));
    out.params.push_back(t);
    out.param_vars.push_back(v);
    return Term::Var(v);
  };

  for (const Literal& lit : goal) {
    if (lit.negated()) {
      // Negated literals keep their constants: their variables must be
      // bound positively anyway, and abstracting a negative check adds
      // nothing (the signature just stays per-constant for them).
      out.literals.push_back(lit);
      continue;
    }
    if (lit.is_builtin()) {
      out.literals.push_back(Literal::Builtin(
          lit.comparison(), parameterize(lit.lhs()), parameterize(lit.rhs())));
      continue;
    }
    std::vector<Term> args;
    args.reserve(lit.atom().arity());
    bool bound_here = false;
    for (const Term& t : lit.atom().args()) {
      if (t.IsGround()) bound_here = true;
      args.push_back(parameterize(t));
    }
    if (bound_here) out.any_bound = true;
    out.literals.push_back(Literal::Positive(
        Atom(lit.atom().predicate_symbol(), std::move(args))));
  }

  for (const Literal& l : out.literals) {
    out.signature += l.ToString();
    out.signature += ", ";
  }
  return out;
}

Result<MagicPlan> CompileMagicPlan(const Program& program,
                                   const MagicGoalPattern& pattern,
                                   const EvalOptions& options) {
  // The synthesized head carries the placeholders first (they become
  // the bound positions), then the goal's variables sorted and deduped -
  // the same order QueryModel restricts answers to, which is what makes
  // plan answers byte-identical to the full path.
  std::vector<Symbol> vars;
  for (const Literal& l : pattern.literals) l.CollectVariables(&vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  const std::set<Symbol> params(pattern.param_vars.begin(),
                                pattern.param_vars.end());

  std::vector<Term> head_args;
  head_args.reserve(pattern.param_vars.size() + vars.size());
  for (Symbol v : pattern.param_vars) head_args.push_back(Term::Var(v));
  for (Symbol v : vars) {
    if (params.count(v) == 0) head_args.push_back(Term::Var(v));
  }
  const Atom head(kGoalPredicate, head_args);
  const Clause goal_clause(head, pattern.literals);

  // The query atom drives the adornment: placeholder positions carry
  // the (ground) parameters, so they adorn 'b'; goal variables stay 'f'.
  std::vector<Term> query_args = head_args;
  for (size_t i = 0; i < pattern.params.size(); ++i) {
    query_args[i] = pattern.params[i];
  }
  const Atom query(kGoalPredicate, std::move(query_args));

  MULTILOG_ASSIGN_OR_RETURN(
      RewriteOutput out,
      RewriteForQuery(program, &goal_clause, query, /*add_seed=*/false));

  MagicPlan plan;
  plan.num_params = pattern.params.size();
  plan.seed_predicate = out.seed_predicate;
  plan.query = std::move(out.query);
  MULTILOG_ASSIGN_OR_RETURN(plan.prepared,
                            PrepareProgram(out.program, options));
  return plan;
}

Result<std::vector<Substitution>> ExecuteMagicPlan(
    const MagicPlan& plan, const std::vector<Term>& params,
    const EvalOptions& options, EvalStats* stats) {
  if (params.size() != plan.num_params) {
    return Status::InvalidArgument(
        "ExecuteMagicPlan: expected " + std::to_string(plan.num_params) +
        " parameters, got " + std::to_string(params.size()));
  }
  for (const Term& p : params) {
    if (!p.IsGround()) {
      return Status::InvalidArgument(
          "ExecuteMagicPlan: non-ground parameter " + p.ToString());
    }
  }

  std::vector<Atom> seeds;
  seeds.push_back(Atom(plan.seed_predicate, params));

  std::vector<Term> query_args = plan.query.args();
  for (size_t i = 0; i < params.size(); ++i) query_args[i] = params[i];
  Atom query(plan.query.predicate_symbol(), std::move(query_args));

  MULTILOG_ASSIGN_OR_RETURN(
      Model model, EvaluatePrepared(plan.prepared, seeds, options, stats));
  return QueryModel(model, {Literal::Positive(std::move(query))},
                    options.cancel);
}

}  // namespace multilog::datalog
