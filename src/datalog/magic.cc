#include "datalog/magic.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

#include "datalog/eval.h"

namespace multilog::datalog {

namespace {

/// Adorned predicate name, e.g. p + "bf" -> "p__bf".
std::string AdornedName(const std::string& pred,
                        const std::string& adornment) {
  return pred + "__" + adornment;
}

std::string MagicName(const std::string& pred,
                      const std::string& adornment) {
  return "magic__" + pred + "__" + adornment;
}

/// True when every variable of `t` is in `bound` (constants trivially).
bool TermBound(const Term& t, const std::set<Symbol>& bound) {
  std::vector<Symbol> vars;
  t.CollectVariables(&vars);
  return std::all_of(vars.begin(), vars.end(),
                     [&bound](Symbol v) { return bound.count(v) > 0; });
}

/// Binding pattern of `atom` under `bound`.
std::string AdornmentOf(const Atom& atom, const std::set<Symbol>& bound) {
  std::string adornment;
  adornment.reserve(atom.arity());
  for (const Term& t : atom.args()) {
    adornment += TermBound(t, bound) ? 'b' : 'f';
  }
  return adornment;
}

/// The arguments at the bound positions of `adornment`.
std::vector<Term> BoundArgs(const Atom& atom, const std::string& adornment) {
  std::vector<Term> out;
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (adornment[i] == 'b') out.push_back(atom.args()[i]);
  }
  return out;
}

void AddVars(const Atom& atom, std::set<Symbol>* bound) {
  std::vector<Symbol> vars;
  atom.CollectVariables(&vars);
  bound->insert(vars.begin(), vars.end());
}

}  // namespace

Result<MagicProgram> MagicTransform(const Program& program,
                                    const Atom& query) {
  for (const Clause& c : program.clauses()) {
    if (c.is_aggregate()) {
      return Status::InvalidProgram(
          "magic-sets rewriting does not support aggregate clauses");
    }
    for (const Literal& l : c.body()) {
      if (l.negated()) {
        return Status::InvalidProgram(
            "magic-sets rewriting supports only positive programs; found: " +
            l.ToString());
      }
    }
  }

  std::unordered_set<PredicateId, PredicateIdHash> idb;
  for (const Clause& c : program.clauses()) {
    idb.insert(c.head().PredicateId());
  }

  MagicProgram out;

  // EDB facts and EDB-only predicates pass through untouched; everything
  // defined by a head is rewritten per adornment.
  const PredicateId query_id = query.PredicateId();
  if (!idb.count(query_id)) {
    // Nothing to specialize: the query touches only EDB (or nothing).
    out.program = program;
    out.query = query;
    return out;
  }

  std::set<Symbol> no_bound;
  const std::string query_adornment = AdornmentOf(query, no_bound);

  // Seed: the query's bound constants.
  {
    Atom seed(MagicName(query.predicate(), query_adornment),
              BoundArgs(query, query_adornment));
    out.program.AddFact(std::move(seed));
  }

  std::deque<std::pair<PredicateId, std::string>> worklist;  // (pred id, a)
  std::set<std::pair<PredicateId, std::string>> processed;
  worklist.emplace_back(query_id, query_adornment);

  while (!worklist.empty()) {
    auto [pred_id, adornment] = worklist.front();
    worklist.pop_front();
    if (!processed.emplace(pred_id, adornment).second) continue;

    for (const Clause* clause : program.ClausesFor(pred_id)) {
      const Atom& head = clause->head();

      std::set<Symbol> bound;
      for (size_t i = 0; i < head.arity(); ++i) {
        if (adornment[i] == 'b') AddVars(Atom("", {head.args()[i]}), &bound);
      }

      // The rewritten body starts with the head's magic guard.
      std::vector<Literal> rewritten;
      rewritten.push_back(Literal::Positive(
          Atom(MagicName(head.predicate(), adornment),
               BoundArgs(head, adornment))));

      for (const Literal& lit : clause->body()) {
        if (lit.is_builtin()) {
          // `=` binds (as in the safety analysis); other comparisons are
          // pure filters.
          if (lit.comparison() == Comparison::kEq) {
            bool lhs_bound = TermBound(lit.lhs(), bound);
            bool rhs_bound = TermBound(lit.rhs(), bound);
            if (lhs_bound || rhs_bound) {
              std::vector<Symbol> vars;
              lit.lhs().CollectVariables(&vars);
              lit.rhs().CollectVariables(&vars);
              bound.insert(vars.begin(), vars.end());
            }
          }
          rewritten.push_back(lit);
          continue;
        }
        const Atom& atom = lit.atom();
        if (!idb.count(atom.PredicateId())) {
          rewritten.push_back(lit);
          AddVars(atom, &bound);
          continue;
        }
        // IDB literal: adorn, emit its magic rule, enqueue.
        const std::string sub_adornment = AdornmentOf(atom, bound);
        worklist.emplace_back(atom.PredicateId(), sub_adornment);

        std::vector<Term> magic_args = BoundArgs(atom, sub_adornment);
        out.program.AddClause(Clause(
            Atom(MagicName(atom.predicate(), sub_adornment),
                 std::move(magic_args)),
            rewritten));

        rewritten.push_back(Literal::Positive(
            Atom(AdornedName(atom.predicate(), sub_adornment), atom.args())));
        AddVars(atom, &bound);
      }

      out.program.AddClause(Clause(
          Atom(AdornedName(head.predicate(), adornment), head.args()),
          std::move(rewritten)));
    }
  }

  // EDB facts (clauses whose head predicate never appears... all EDB
  // predicates are body-only, so they have no clauses; IDB facts were
  // rewritten above). Pass through clauses of predicates that are IDB
  // but never reached - they cannot affect the query - and all builtin
  // support is inline, so nothing else is needed.

  out.query = Atom(AdornedName(query.predicate(), query_adornment),
                   query.args());
  return out;
}

Result<std::vector<Substitution>> MagicSolve(const Program& program,
                                             const Atom& query) {
  MULTILOG_ASSIGN_OR_RETURN(MagicProgram magic,
                            MagicTransform(program, query));
  MULTILOG_ASSIGN_OR_RETURN(Model model, Evaluate(magic.program));
  return QueryModel(model, {Literal::Positive(magic.query)});
}

}  // namespace multilog::datalog
