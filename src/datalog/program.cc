#include "datalog/program.h"

#include <algorithm>
#include <set>

namespace multilog::datalog {

void Program::Append(const Program& other) {
  clauses_.insert(clauses_.end(), other.clauses_.begin(),
                  other.clauses_.end());
}

std::vector<std::string> Program::Predicates() const {
  std::set<std::string> ids;
  for (const Clause& c : clauses_) {
    ids.insert(c.head().PredicateId().ToString());
    for (const Literal& l : c.body()) {
      if (!l.is_builtin()) ids.insert(l.atom().PredicateId().ToString());
    }
  }
  return {ids.begin(), ids.end()};
}

std::vector<std::string> Program::DefinedPredicates() const {
  std::set<std::string> ids;
  for (const Clause& c : clauses_) {
    ids.insert(c.head().PredicateId().ToString());
  }
  return {ids.begin(), ids.end()};
}

std::vector<const Clause*> Program::ClausesFor(const PredicateId& id) const {
  std::vector<const Clause*> out;
  for (const Clause& c : clauses_) {
    if (c.head().PredicateId() == id) out.push_back(&c);
  }
  return out;
}

Status Program::CheckSafety() const {
  for (const Clause& c : clauses_) {
    Status s = c.CheckSafety();
    if (!s.ok()) return s.WithContext("in clause '" + c.ToString() + "'");
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string out;
  for (const Clause& c : clauses_) {
    out += c.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace multilog::datalog
