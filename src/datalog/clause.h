#ifndef MULTILOG_DATALOG_CLAUSE_H_
#define MULTILOG_DATALOG_CLAUSE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/atom.h"

namespace multilog::datalog {

/// Aggregate operations usable in clause heads (CORAL-style grouping):
///   outdeg(X, count(Y)) :- edge(X, Y).
/// The non-aggregate head arguments are the group-by key; the aggregate
/// argument collapses, per group, the multiset of bindings of its
/// variable across all body matches. Aggregation is non-monotone and is
/// stratified like negation: the body may only use strictly lower
/// strata.
enum class AggregateOp { kCount, kSum, kMin, kMax };

const char* AggregateOpToString(AggregateOp op);

/// A definite clause with (stratified) negation and builtins in the body:
///   head :- lit1, ..., litn.
/// A clause with an empty body is a fact. At most one head argument may
/// be an aggregate (set via MakeAggregate / detected by the parser from
/// count(...)/sum(...)/min(...)/max(...) head arguments).
class Clause {
 public:
  Clause() = default;
  Clause(Atom head, std::vector<Literal> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  /// Convenience: a bodyless clause.
  static Clause Fact(Atom head) { return Clause(std::move(head), {}); }

  /// Builds an aggregate clause: the head argument at `position` is the
  /// aggregate op applied to `term` (e.g. count over Y). The head atom
  /// passed in should hold a placeholder variable at that position.
  static Clause MakeAggregate(Atom head, std::vector<Literal> body,
                              size_t position, AggregateOp op, Term term);

  const Atom& head() const { return head_; }
  const std::vector<Literal>& body() const { return body_; }
  bool IsFact() const { return body_.empty(); }

  bool is_aggregate() const { return is_aggregate_; }
  size_t aggregate_position() const { return aggregate_position_; }
  AggregateOp aggregate_op() const { return aggregate_op_; }
  /// The aggregated term (typically a body variable).
  const Term& aggregate_term() const { return aggregate_term_; }

  /// Range-restriction (safety): every variable occurring in the head, in
  /// a negated literal, or in a builtin must also occur in a positive,
  /// non-builtin body literal. Ground facts are trivially safe. Returns
  /// InvalidProgram naming the offending variable otherwise.
  Status CheckSafety() const;

  /// "head :- b1, b2." or "head." for facts.
  std::string ToString() const;

  bool operator==(const Clause& other) const {
    return head_ == other.head_ && body_ == other.body_ &&
           is_aggregate_ == other.is_aggregate_ &&
           aggregate_position_ == other.aggregate_position_ &&
           aggregate_op_ == other.aggregate_op_ &&
           aggregate_term_ == other.aggregate_term_;
  }

 private:
  Atom head_;
  std::vector<Literal> body_;
  bool is_aggregate_ = false;
  size_t aggregate_position_ = 0;
  AggregateOp aggregate_op_ = AggregateOp::kCount;
  Term aggregate_term_ = Term::Sym("");
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_CLAUSE_H_
