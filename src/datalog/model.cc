#include "datalog/model.h"

#include <algorithm>
#include <cassert>

namespace multilog::datalog {

namespace {
const std::vector<Atom> kNoFacts;
}  // namespace

bool Model::Insert(const Atom& atom) {
  assert(atom.IsGround());
  Relation& rel = relations_[atom.PredicateId()];
  if (!rel.set.insert(atom).second) return false;
  size_t idx = rel.facts.size();
  rel.facts.push_back(atom);
  for (size_t pos = 0; pos < atom.arity(); ++pos) {
    rel.index[pos][atom.args()[pos]].push_back(idx);
  }
  ++size_;
  return true;
}

bool Model::Contains(const Atom& atom) const {
  auto it = relations_.find(atom.PredicateId());
  if (it == relations_.end()) return false;
  return it->second.set.count(atom) > 0;
}

const std::vector<Atom>& Model::FactsFor(
    const std::string& predicate_id) const {
  auto it = relations_.find(predicate_id);
  if (it == relations_.end()) return kNoFacts;
  return it->second.facts;
}

std::vector<const Atom*> Model::FactsMatching(const std::string& predicate_id,
                                              size_t position,
                                              const Term& value) const {
  std::vector<const Atom*> out;
  auto it = relations_.find(predicate_id);
  if (it == relations_.end()) return out;
  auto pos_it = it->second.index.find(position);
  if (pos_it == it->second.index.end()) return out;
  auto val_it = pos_it->second.find(value);
  if (val_it == pos_it->second.end()) return out;
  out.reserve(val_it->second.size());
  for (size_t idx : val_it->second) {
    out.push_back(&it->second.facts[idx]);
  }
  return out;
}

std::vector<std::string> Model::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [id, rel] : relations_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::string Model::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(size_);
  for (const auto& [id, rel] : relations_) {
    for (const Atom& a : rel.facts) lines.push_back(a.ToString() + ".");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

bool Model::operator==(const Model& other) const {
  if (size_ != other.size_) return false;
  for (const auto& [id, rel] : relations_) {
    for (const Atom& a : rel.facts) {
      if (!other.Contains(a)) return false;
    }
  }
  return true;
}

}  // namespace multilog::datalog
