#include "datalog/model.h"

#include <algorithm>
#include <cassert>

namespace multilog::datalog {

namespace {
const std::vector<Atom> kNoFacts;
}  // namespace

bool Model::Insert(const Atom& atom) {
  assert(atom.IsGround());
  Relation& rel = relations_[atom.PredicateId()];
  if (!rel.set.insert(atom).second) return false;
  size_t idx = rel.facts.size();
  rel.facts.push_back(atom);
  if (rel.index.size() < atom.arity()) rel.index.resize(atom.arity());
  for (size_t pos = 0; pos < atom.arity(); ++pos) {
    rel.index[pos][atom.args()[pos]].push_back(idx);
  }
  ++size_;
  return true;
}

size_t Model::RemoveFacts(const std::vector<Atom>& atoms) {
  // Pass 1: drop from the membership sets, tracking touched relations.
  std::unordered_set<PredicateId, PredicateIdHash> touched;
  size_t removed = 0;
  for (const Atom& atom : atoms) {
    assert(atom.IsGround());
    auto it = relations_.find(atom.PredicateId());
    if (it == relations_.end()) continue;
    if (it->second.set.erase(atom) == 0) continue;
    touched.insert(it->first);
    ++removed;
    --size_;
  }
  if (removed == 0) return 0;
  // Pass 2: rebuild each touched relation's fact vector (surviving
  // facts keep their relative insertion order) and posting lists.
  for (const PredicateId& id : touched) {
    auto it = relations_.find(id);
    Relation& rel = it->second;
    if (rel.set.empty()) {
      relations_.erase(it);
      continue;
    }
    std::vector<Atom> survivors;
    survivors.reserve(rel.set.size());
    for (Atom& a : rel.facts) {
      if (rel.set.count(a) > 0) survivors.push_back(std::move(a));
    }
    rel.facts = std::move(survivors);
    for (auto& posting : rel.index) posting.clear();
    for (size_t idx = 0; idx < rel.facts.size(); ++idx) {
      const Atom& a = rel.facts[idx];
      for (size_t pos = 0; pos < a.arity(); ++pos) {
        rel.index[pos][a.args()[pos]].push_back(idx);
      }
    }
  }
  return removed;
}

bool Model::Contains(const Atom& atom) const {
  auto it = relations_.find(atom.PredicateId());
  if (it == relations_.end()) return false;
  return it->second.set.count(atom) > 0;
}

const std::vector<Atom>& Model::FactsFor(const PredicateId& id) const {
  auto it = relations_.find(id);
  if (it == relations_.end()) return kNoFacts;
  return it->second.facts;
}

FactSlice Model::FactsMatching(const PredicateId& id, size_t position,
                               const Term& value) const {
  auto it = relations_.find(id);
  if (it == relations_.end()) return FactSlice();
  const Relation& rel = it->second;
  if (position >= rel.index.size()) return FactSlice();
  auto val_it = rel.index[position].find(value);
  if (val_it == rel.index[position].end()) return FactSlice();
  return FactSlice(&rel.facts, &val_it->second);
}

std::vector<std::string> Model::Predicates() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [id, rel] : relations_) out.push_back(id.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::string Model::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(size_);
  for (const auto& [id, rel] : relations_) {
    for (const Atom& a : rel.facts) lines.push_back(a.ToString() + ".");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

bool Model::operator==(const Model& other) const {
  if (size_ != other.size_) return false;
  for (const auto& [id, rel] : relations_) {
    for (const Atom& a : rel.facts) {
      if (!other.Contains(a)) return false;
    }
  }
  return true;
}

}  // namespace multilog::datalog
