#include "datalog/stratify.h"

#include <algorithm>

namespace multilog::datalog {

Result<Stratification> Stratify(const Program& program) {
  Stratification out;
  size_t predicate_count = 0;
  for (const Clause& clause : program.clauses()) {
    predicate_count += out.stratum_of.emplace(clause.head().PredicateId(), 0)
                           .second;
    for (const Literal& lit : clause.body()) {
      if (lit.is_builtin()) continue;
      predicate_count +=
          out.stratum_of.emplace(lit.atom().PredicateId(), 0).second;
    }
  }
  if (out.stratum_of.empty()) {
    return out;
  }

  // Relax until fixpoint:
  //   stratum(head) >= stratum(q)      for positive body literal q,
  //   stratum(head) >= stratum(q) + 1  for negative body literal q.
  // If any stratum exceeds the number of predicates, there is a cycle
  // containing a negative edge and the program is not stratifiable.
  const size_t limit = predicate_count;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : program.clauses()) {
      const PredicateId head_id = clause.head().PredicateId();
      size_t& head_stratum = out.stratum_of[head_id];
      for (const Literal& lit : clause.body()) {
        if (lit.is_builtin()) continue;
        const PredicateId body_id = lit.atom().PredicateId();
        // Aggregation is non-monotone: like negation, the whole body of
        // an aggregate clause must live in strictly lower strata.
        const bool strict = lit.negated() || clause.is_aggregate();
        size_t required = out.stratum_of[body_id] + (strict ? 1 : 0);
        if (required > head_stratum) {
          head_stratum = required;
          changed = true;
          if (head_stratum > limit) {
            return Status::InvalidProgram(
                "program is not stratifiable: predicate '" +
                head_id.ToString() +
                "' is involved in recursion through negation (via '" +
                body_id.ToString() + "')");
          }
        }
      }
    }
  }

  size_t max_stratum = 0;
  for (const auto& [p, s] : out.stratum_of) {
    max_stratum = std::max(max_stratum, s);
  }
  out.strata.assign(max_stratum + 1, {});
  for (const auto& [p, s] : out.stratum_of) out.strata[s].push_back(p);
  for (auto& stratum : out.strata) std::sort(stratum.begin(), stratum.end());
  return out;
}

}  // namespace multilog::datalog
