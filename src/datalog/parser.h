#ifndef MULTILOG_DATALOG_PARSER_H_
#define MULTILOG_DATALOG_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "datalog/program.h"

namespace multilog::datalog {

/// A parsed source file: the program plus any `?- goal.` queries it
/// contained, in source order.
struct ParsedProgram {
  Program program;
  std::vector<std::vector<Literal>> queries;
};

/// Parses Datalog source in the concrete syntax used by CORAL-era
/// systems:
///
///   % line comment            // line comment
///   edge(a, b).                          facts
///   path(X, Y) :- edge(X, Y).            rules
///   path(X, Y) :- edge(X, Z), path(Z, Y).
///   safe(X) :- node(X), not bad(X).      stratified negation
///   big(X)  :- val(X, N), N >= 10.       builtins: = != < <= > >=
///   ?- path(a, X).                       queries
///
/// Lexical conventions: identifiers starting with a lower-case letter are
/// symbols (constants/functors/predicates); identifiers starting with an
/// upper-case letter or '_' are variables; 'quoted text' is a symbolic
/// constant with arbitrary characters; integers are 64-bit.
Result<ParsedProgram> ParseDatalog(std::string_view source);

/// Parses a single term, e.g. "f(X, 42)".
Result<Term> ParseTerm(std::string_view source);

/// Parses a comma-separated literal list (a clause body / query goal).
Result<std::vector<Literal>> ParseGoal(std::string_view source);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_PARSER_H_
