#include "datalog/topdown.h"

#include <algorithm>
#include <functional>
#include <set>

#include "datalog/eval.h"

namespace multilog::datalog {

TopDownEngine::TopDownEngine(Program program) : program_(std::move(program)) {
  status_ = program_.CheckSafety();
  if (status_.ok()) {
    status_ = Stratify(program_).status();
  }
  if (status_.ok()) {
    for (const Clause& c : program_.clauses()) {
      if (c.is_aggregate()) {
        status_ = Status::InvalidProgram(
            "the top-down engine does not support aggregate clauses; use "
            "bottom-up evaluation");
        break;
      }
    }
  }
  for (const Clause& c : program_.clauses()) {
    clauses_by_pred_[c.head().PredicateId()].push_back(&c);
  }
}

size_t TopDownEngine::TotalTableSize() const {
  size_t total = 0;
  for (const auto& [key, table] : tables_) total += table.answers.size();
  return total;
}

Status TopDownEngine::SolveAtomOnce(const Atom& pattern, size_t depth,
                                    const TopDownOptions& options) {
  const CallKey key = MakeCallKey(pattern);
  if (active_.count(key)) {
    // Already on the resolution path: consume tabled answers only; the
    // outer fixpoint will bring late answers around.
    return Status::OK();
  }
  active_.insert(key);
  ++stats_.calls;

  auto it = clauses_by_pred_.find(pattern.PredicateId());
  if (it != clauses_by_pred_.end()) {
    for (const Clause* clause : it->second) {
      ++rename_counter_;
      Atom head = RenameAtom(clause->head(), rename_counter_);
      std::optional<Substitution> unified =
          UnifyAtoms(pattern, head, Substitution());
      if (!unified.has_value()) continue;

      std::vector<Literal> body;
      body.reserve(clause->body().size());
      for (const Literal& l : clause->body()) {
        body.push_back(RenameLiteral(l, rename_counter_));
      }

      std::vector<Substitution> matches;
      MULTILOG_RETURN_IF_ERROR(
          SolveBody(body, 0, *unified, depth + 1, options, &matches));
      for (const Substitution& m : matches) {
        Atom answer = m.Apply(head);
        if (!answer.IsGround()) {
          return Status::InvalidProgram("derived non-ground answer: " +
                                        answer.ToString());
        }
        AnswerTable& table = tables_[key];
        if (table.set.insert(answer).second) {
          table.answers.push_back(answer);
          ++stats_.tabled_answers;
          if (stats_.tabled_answers > options.max_answers) {
            return Status::ResourceExhausted(
                "top-down evaluation exceeded max_answers");
          }
        }
      }
    }
  }

  active_.erase(key);
  return Status::OK();
}

Status TopDownEngine::SolveBody(const std::vector<Literal>& body, size_t index,
                                const Substitution& subst, size_t depth,
                                const TopDownOptions& options,
                                std::vector<Substitution>* out) {
  if (index == body.size()) {
    out->push_back(subst);
    return Status::OK();
  }
  const Literal& lit = body[index];

  if (lit.is_builtin()) {
    MULTILOG_ASSIGN_OR_RETURN(Term lhs,
                              EvalArithmetic(subst.Apply(lit.lhs())));
    MULTILOG_ASSIGN_OR_RETURN(Term rhs,
                              EvalArithmetic(subst.Apply(lit.rhs())));
    if (lit.comparison() == Comparison::kEq &&
        (!lhs.IsGround() || !rhs.IsGround())) {
      Substitution extended = subst;
      if (!UnifyTerms(lhs, rhs, &extended)) return Status::OK();
      return SolveBody(body, index + 1, extended, depth, options, out);
    }
    MULTILOG_ASSIGN_OR_RETURN(bool holds,
                              EvalBuiltin(lit.comparison(), lhs, rhs));
    if (!holds) return Status::OK();
    return SolveBody(body, index + 1, subst, depth, options, out);
  }

  if (lit.negated()) {
    Atom grounded = subst.Apply(lit.atom());
    if (!grounded.IsGround()) {
      return Status::InvalidProgram(
          "negative literal not ground at evaluation time: not " +
          grounded.ToString());
    }
    // Complete evaluation of the (lower-stratum) subgoal: iterate its
    // table to a local fixpoint, then test membership.
    const CallKey key = MakeCallKey(grounded);
    size_t before;
    do {
      before = TotalTableSize();
      MULTILOG_RETURN_IF_ERROR(SolveAtomOnce(grounded, depth, options));
    } while (TotalTableSize() != before);
    auto it = tables_.find(key);
    if (it != tables_.end() && it->second.set.count(grounded)) {
      return Status::OK();  // negation fails
    }
    return SolveBody(body, index + 1, subst, depth, options, out);
  }

  const Atom pattern = subst.Apply(lit.atom());
  MULTILOG_RETURN_IF_ERROR(SolveAtomOnce(pattern, depth, options));
  const CallKey key = MakeCallKey(pattern);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::OK();
  // Iterate over a copy: recursive calls may grow the table.
  const std::vector<Atom> answers = it->second.answers;
  for (const Atom& answer : answers) {
    std::optional<Substitution> extended = UnifyAtoms(pattern, answer, subst);
    if (!extended.has_value()) continue;
    MULTILOG_RETURN_IF_ERROR(
        SolveBody(body, index + 1, *extended, depth, options, out));
  }
  return Status::OK();
}

Result<std::vector<Substitution>> TopDownEngine::Solve(
    const std::vector<Literal>& goal, const TopDownOptions& options) {
  MULTILOG_RETURN_IF_ERROR(status_);

  std::vector<Symbol> goal_vars;
  for (const Literal& l : goal) l.CollectVariables(&goal_vars);
  std::sort(goal_vars.begin(), goal_vars.end());
  goal_vars.erase(std::unique(goal_vars.begin(), goal_vars.end()),
                  goal_vars.end());

  std::vector<Substitution> raw;
  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    ++stats_.passes;
    active_.clear();
    size_t before = TotalTableSize();
    raw.clear();
    MULTILOG_RETURN_IF_ERROR(
        SolveBody(goal, 0, Substitution(), 0, options, &raw));
    if (TotalTableSize() == before) break;
    if (pass + 1 == options.max_passes) {
      return Status::ResourceExhausted(
          "top-down evaluation did not converge within max_passes");
    }
  }

  std::set<std::string> seen;
  std::vector<Substitution> answers;
  for (const Substitution& s : raw) {
    Substitution restricted;
    for (Symbol v : goal_vars) {
      Term value = s.Apply(Term::Var(v));
      if (!value.IsVariable()) restricted.Bind(v, value);
    }
    if (seen.insert(restricted.ToString()).second) {
      answers.push_back(std::move(restricted));
    }
  }
  std::sort(answers.begin(), answers.end(),
            [](const Substitution& a, const Substitution& b) {
              return a.ToString() < b.ToString();
            });
  return answers;
}

}  // namespace multilog::datalog
