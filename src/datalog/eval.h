#ifndef MULTILOG_DATALOG_EVAL_H_
#define MULTILOG_DATALOG_EVAL_H_

#include <cstddef>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "datalog/model.h"
#include "datalog/program.h"
#include "datalog/stratify.h"
#include "datalog/unify.h"

namespace multilog::datalog {

/// Knobs for bottom-up evaluation.
struct EvalOptions {
  enum class Strategy {
    /// Semi-naive: per stratum, iterate only rule instantiations that use
    /// at least one fact derived in the previous round. The default, and
    /// what CORAL's bottom-up engine does.
    kSeminaive,
    /// Naive: re-derive everything each round. Kept as a test oracle and
    /// ablation baseline.
    kNaive,
  };
  Strategy strategy = Strategy::kSeminaive;

  /// Hard cap on the total number of derived facts; exceeded means
  /// ResourceExhausted (guards against runaway programs with compound
  /// terms, which make the Herbrand base infinite). Enforced on the
  /// emit path, so a single explosive round stops near the cap instead
  /// of overshooting it by an unbounded amount. The budget counts
  /// model facts plus the current round's emissions (duplicates
  /// included), so evaluation can stop while a round is still running.
  size_t max_facts = 10'000'000;

  /// Degree of parallelism for the bottom-up fixpoint. 1 (the default)
  /// is the exact sequential path. With k > 1 threads, each round's
  /// (clause x delta-chunk) work items are partitioned across k workers
  /// (the caller plus k-1 pool threads); every worker joins against the
  /// same immutable snapshot of the model and collects its derivations
  /// privately, and the round's results are merged into the model
  /// deterministically (concatenated in work-item order, then sorted),
  /// so the fixpoint model, the number of rounds, and all rendered
  /// output are identical for every thread count.
  size_t num_threads = 1;

  /// Cooperative cancellation: when set, evaluation polls the token on
  /// the same path that enforces `max_facts` (the emit-budget charge),
  /// at every rule application, and at round boundaries, returning
  /// kDeadlineExceeded once the token reports cancelled. The token must
  /// outlive the Evaluate call; nullptr (the default) disables polling.
  const CancelToken* cancel = nullptr;

  /// Greedy join reordering: before evaluation, each clause body is
  /// reordered so that literals with more already-bound arguments join
  /// first and negations/builtins run as soon as their variables are
  /// bound. Purely an optimization - the stratified model is unchanged
  /// (property-tested); disable for ablation.
  bool reorder_body = true;
};

/// Counters for benchmarking and tests.
struct EvalStats {
  size_t iterations = 0;         // fixpoint rounds across all strata
  size_t rule_applications = 0;  // body-join attempts (one per work item
                                 // when num_threads > 1 chunks the delta)
  size_t facts_derived = 0;      // successful head derivations (pre-dedup)
};

/// Computes the stratified minimal model of `program`. The program must
/// be safe (range-restricted) and stratifiable; both are checked.
Result<Model> Evaluate(const Program& program, const EvalOptions& options = {},
                       EvalStats* stats = nullptr);

/// A program compiled once for repeated evaluation: safety-checked,
/// stratified, and (when the preparing EvalOptions ask for it)
/// body-reordered. The per-call work of EvaluatePrepared is then the
/// fixpoint alone - the magic-sets plan cache in ml::Engine stores one
/// of these per (level, binding pattern).
struct PreparedProgram {
  Program program;  // body-reordered iff the preparing options said so
  Stratification strat;
};

/// Compiles `program` for repeated evaluation: CheckSafety + Stratify
/// (both on the original program) plus the ReorderBody pass when
/// `options.reorder_body` is set. The returned value is immutable and
/// self-contained (it copies the clauses), so it can outlive `program`.
Result<PreparedProgram> PrepareProgram(const Program& program,
                                       const EvalOptions& options = {});

/// Evaluates a prepared program. `seeds` are ground atoms inserted into
/// the model before the first stratum runs - the magic-sets execution
/// path passes the query's magic seed here, so one prepared rewrite
/// serves every query with the same binding pattern. With empty seeds
/// this is exactly Evaluate on the prepared clauses. `options`'
/// strategy / max_facts / cancel / num_threads apply as in Evaluate;
/// reorder_body is ignored (reordering happened at preparation).
Result<Model> EvaluatePrepared(const PreparedProgram& prepared,
                               const std::vector<Atom>& seeds,
                               const EvalOptions& options = {},
                               EvalStats* stats = nullptr);

/// The net effect of one ApplyDelta call on the maintained model:
/// `added` holds facts now in the model that were not before, `removed`
/// facts that were and are no longer. Both are duplicate-free, disjoint,
/// and in a deterministic order, so downstream views (decoded models,
/// belief groupings) can be maintained in O(|added| + |removed|).
struct DeltaChanges {
  std::vector<Atom> added;
  std::vector<Atom> removed;
};

/// Incrementally maintains a stratified fixpoint under EDB change
/// (DRed-style delete/rederive, per stratum, with semi-naive
/// propagation of both polarities across strata).
///
/// Contract: `model` is the fixpoint of the *pre-mutation* program, and
/// `program` is the *post-mutation* program; `adds`/`removes` are the
/// ground atoms whose bodyless fact clauses were added to / removed
/// from it. On success `*model` is the fixpoint of `program` - equal,
/// as a set, to a scratch `Evaluate(program)` (property-tested) - and
/// the returned DeltaChanges describe the net difference. Because
/// rederivation runs against the post-mutation program, overlapping EDB
/// support is handled: removing one of two fact clauses backing the
/// same atom nets to no change.
///
/// On any error (aggregate clauses, which are not incrementally
/// maintainable; budget exhaustion; cancellation) `*model` may be left
/// in an inconsistent intermediate state: the caller must discard it
/// and fall back to full recomputation.
Result<DeltaChanges> ApplyDelta(const Program& program,
                                const std::vector<Atom>& adds,
                                const std::vector<Atom>& removes,
                                Model* model, const EvalOptions& options = {},
                                EvalStats* stats = nullptr);

/// Matches a conjunctive goal (with negation and builtins) against a
/// completed model. Negative and builtin literals must be ground by the
/// time they are reached left-to-right (a dynamic safety check). Returns
/// one substitution per answer, restricted to the goal's variables,
/// deduplicated, in deterministic order.
Result<std::vector<Substitution>> QueryModel(const Model& model,
                                             const std::vector<Literal>& goal,
                                             const CancelToken* cancel =
                                                 nullptr);

/// The greedy body reordering used when EvalOptions::reorder_body is
/// set (exposed for tests and for the ablation bench): negations and
/// non-eq builtins are scheduled as soon as their variables are bound,
/// `=` as soon as one side is bound, and among positive literals the one
/// with the most bound/constant arguments joins next (ties keep source
/// order). Semantics-preserving for safe clauses.
Clause ReorderBody(const Clause& clause);

/// Folds ground arithmetic terms: plus/2, minus/2, times/2, div/2 and
/// mod/2 over integers evaluate recursively (e.g. plus(2, times(3, 4))
/// -> 14). Non-arithmetic terms and arithmetic terms with unbound
/// arguments are returned unchanged (so structural use stays possible);
/// ground arithmetic over non-integers and division by zero error.
/// Arithmetic folding applies inside builtin comparisons - `Z = plus(N,
/// 1)` is CORAL-style assignment.
Result<Term> EvalArithmetic(const Term& term);

/// Evaluates a ground builtin comparison (after arithmetic folding).
/// Errors when a side is not ground or the sides are of incomparable
/// kinds (int vs symbol) for ordering operators; = and != compare
/// structurally.
Result<bool> EvalBuiltin(Comparison op, const Term& lhs, const Term& rhs);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_EVAL_H_
