#include "datalog/clause.h"

#include <algorithm>
#include <unordered_set>

namespace multilog::datalog {

const char* AggregateOpToString(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "count";
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
  }
  return "?";
}

Clause Clause::MakeAggregate(Atom head, std::vector<Literal> body,
                             size_t position, AggregateOp op, Term term) {
  Clause c(std::move(head), std::move(body));
  c.is_aggregate_ = true;
  c.aggregate_position_ = position;
  c.aggregate_op_ = op;
  c.aggregate_term_ = std::move(term);
  return c;
}

Status Clause::CheckSafety() const {
  std::unordered_set<Symbol> bound;
  for (const Literal& lit : body_) {
    if (!lit.is_builtin() && !lit.negated()) {
      std::vector<Symbol> vars;
      lit.CollectVariables(&vars);
      bound.insert(vars.begin(), vars.end());
    }
  }

  // `=` binds: a variable equated (possibly transitively) with a bound
  // term is itself bound. Iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : body_) {
      if (!lit.is_builtin() || lit.comparison() != Comparison::kEq) continue;
      std::vector<Symbol> lhs_vars, rhs_vars;
      lit.lhs().CollectVariables(&lhs_vars);
      lit.rhs().CollectVariables(&rhs_vars);
      auto all_bound = [&bound](const std::vector<Symbol>& vars) {
        return std::all_of(vars.begin(), vars.end(), [&bound](Symbol v) {
          return bound.count(v) > 0;
        });
      };
      if (all_bound(lhs_vars) && !all_bound(rhs_vars)) {
        for (Symbol v : rhs_vars) changed |= bound.insert(v).second;
      } else if (all_bound(rhs_vars) && !all_bound(lhs_vars)) {
        for (Symbol v : lhs_vars) changed |= bound.insert(v).second;
      }
    }
  }

  auto check = [&bound](const std::vector<Symbol>& vars,
                        const std::string& where) -> Status {
    for (Symbol v : vars) {
      if (!bound.count(v)) {
        return Status::InvalidProgram("unsafe clause: variable '" + v.str() +
                                      "' in " + where +
                                      " does not occur in any positive "
                                      "body literal");
      }
    }
    return Status::OK();
  };

  std::vector<Symbol> head_vars;
  if (is_aggregate_) {
    // The aggregate-position placeholder is produced by grouping, not by
    // the body; the aggregated term itself must be body-bound.
    for (size_t i = 0; i < head_.args().size(); ++i) {
      if (i == aggregate_position_) continue;
      head_.args()[i].CollectVariables(&head_vars);
    }
    aggregate_term_.CollectVariables(&head_vars);
  } else {
    head_.CollectVariables(&head_vars);
  }
  MULTILOG_RETURN_IF_ERROR(check(head_vars, "head " + head_.ToString()));

  for (const Literal& lit : body_) {
    if (lit.is_builtin() || lit.negated()) {
      std::vector<Symbol> vars;
      lit.CollectVariables(&vars);
      MULTILOG_RETURN_IF_ERROR(check(vars, "literal " + lit.ToString()));
    }
  }
  return Status::OK();
}

std::string Clause::ToString() const {
  std::string out;
  if (is_aggregate_) {
    out = head_.predicate() + "(";
    for (size_t i = 0; i < head_.args().size(); ++i) {
      if (i > 0) out += ", ";
      if (i == aggregate_position_) {
        out += std::string(AggregateOpToString(aggregate_op_)) + "(" +
               aggregate_term_.ToString() + ")";
      } else {
        out += head_.args()[i].ToString();
      }
    }
    out += ")";
  } else {
    out = head_.ToString();
  }
  if (!body_.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString();
    }
  }
  out += ".";
  return out;
}

}  // namespace multilog::datalog
