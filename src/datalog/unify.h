#ifndef MULTILOG_DATALOG_UNIFY_H_
#define MULTILOG_DATALOG_UNIFY_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "datalog/atom.h"
#include "datalog/term.h"

namespace multilog::datalog {

/// A substitution: a finite map from variables (interned symbols) to
/// terms. Bindings may chain (X -> Y, Y -> a); Resolve/Apply follow
/// chains. Stored as a flat vector with linear lookup - clause-level
/// binding sets are tiny, so the scan beats hashing and makes the
/// per-candidate copies in UnifyAtoms cheap.
class Substitution {
 public:
  Substitution() = default;

  bool Contains(Symbol var) const { return Find(var) != nullptr; }
  bool Contains(const std::string& var) const {
    return Contains(Symbol::Intern(var));
  }

  /// Adds var -> term. Precondition: var is unbound.
  void Bind(Symbol var, Term term);
  void Bind(const std::string& var, Term term) {
    Bind(Symbol::Intern(var), std::move(term));
  }

  /// Follows variable chains from `t` until a non-variable or unbound
  /// variable is reached. Does not descend into compound args.
  Term Walk(const Term& t) const;

  /// Fully applies the substitution, descending into compound terms.
  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Literal Apply(const Literal& l) const;

  size_t size() const { return bindings_.size(); }
  bool empty() const { return bindings_.empty(); }
  const std::vector<std::pair<Symbol, Term>>& bindings() const {
    return bindings_;
  }

  /// "{X=a, Y=f(b)}" with keys sorted by name; "{}" when empty.
  std::string ToString() const;

 private:
  const Term* Find(Symbol var) const {
    for (const auto& [v, t] : bindings_) {
      if (v == var) return &t;
    }
    return nullptr;
  }

  std::vector<std::pair<Symbol, Term>> bindings_;
};

/// Unifies `a` and `b` under `subst`, extending it in place on success.
/// Performs the occurs check (needed because compound terms are allowed).
/// On failure `subst` may hold partial bindings; callers that need
/// backtracking should copy first (see UnifyAtoms).
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Unifies two atoms (same predicate and arity, then argument-wise).
/// Returns the extended substitution, or nullopt. `base` is not modified.
std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& base);

/// Returns a copy of the clause with every variable X renamed to
/// "X#<suffix>", making it variable-disjoint from any other renaming.
class Clause;
Atom RenameAtom(const Atom& a, int suffix);
Term RenameTerm(const Term& t, int suffix);
Literal RenameLiteral(const Literal& l, int suffix);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_UNIFY_H_
