#ifndef MULTILOG_DATALOG_UNIFY_H_
#define MULTILOG_DATALOG_UNIFY_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "datalog/atom.h"
#include "datalog/term.h"

namespace multilog::datalog {

/// A substitution: a finite map from variable names to terms. Bindings
/// may chain (X -> Y, Y -> a); Resolve/Apply follow chains.
class Substitution {
 public:
  Substitution() = default;

  bool Contains(const std::string& var) const {
    return bindings_.count(var) > 0;
  }

  /// Adds var -> term. Precondition: var is unbound.
  void Bind(const std::string& var, Term term);

  /// Follows variable chains from `t` until a non-variable or unbound
  /// variable is reached. Does not descend into compound args.
  Term Walk(const Term& t) const;

  /// Fully applies the substitution, descending into compound terms.
  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Literal Apply(const Literal& l) const;

  size_t size() const { return bindings_.size(); }
  bool empty() const { return bindings_.empty(); }
  const std::unordered_map<std::string, Term>& bindings() const {
    return bindings_;
  }

  /// "{X=a, Y=f(b)}" with keys sorted; "{}" when empty.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, Term> bindings_;
};

/// Unifies `a` and `b` under `subst`, extending it in place on success.
/// Performs the occurs check (needed because compound terms are allowed).
/// On failure `subst` may hold partial bindings; callers that need
/// backtracking should copy first (see UnifyAtoms).
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Unifies two atoms (same predicate and arity, then argument-wise).
/// Returns the extended substitution, or nullopt. `base` is not modified.
std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& base);

/// Returns a copy of the clause with every variable X renamed to
/// "X#<suffix>", making it variable-disjoint from any other renaming.
class Clause;
Atom RenameAtom(const Atom& a, int suffix);
Term RenameTerm(const Term& t, int suffix);
Literal RenameLiteral(const Literal& l, int suffix);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_UNIFY_H_
