#ifndef MULTILOG_DATALOG_STRATIFY_H_
#define MULTILOG_DATALOG_STRATIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "datalog/program.h"

namespace multilog::datalog {

/// The result of stratifying a program: an assignment of each predicate
/// to a stratum such that
///  - a predicate depends positively only on predicates in the same or
///    lower strata, and
///  - depends negatively only on predicates in strictly lower strata.
struct Stratification {
  /// Stratum index (0-based) per predicate id. String lookups like
  /// stratum_of.at("p/2") keep working via PredicateId's implicit
  /// conversion.
  std::unordered_map<PredicateId, size_t, PredicateIdHash> stratum_of;
  /// Predicates per stratum, each list sorted (by "p/n" rendering).
  std::vector<std::vector<PredicateId>> strata;

  size_t num_strata() const { return strata.size(); }
};

/// Computes a stratification by iterated relaxation over the predicate
/// dependency graph (Ullman's classic algorithm). Returns InvalidProgram
/// when the program has recursion through negation (a negative edge
/// inside a dependency cycle), naming an offending predicate.
Result<Stratification> Stratify(const Program& program);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_STRATIFY_H_
