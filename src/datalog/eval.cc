#include "datalog/eval.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "datalog/stratify.h"

namespace multilog::datalog {

Result<Term> EvalArithmetic(const Term& term) {
  if (!term.IsCompound() || term.args().size() != 2) return term;
  const std::string& f = term.name();
  if (f != "plus" && f != "minus" && f != "times" && f != "div" &&
      f != "mod") {
    return term;
  }
  if (!term.IsGround()) return term;  // structural use stays possible

  MULTILOG_ASSIGN_OR_RETURN(Term a, EvalArithmetic(term.args()[0]));
  MULTILOG_ASSIGN_OR_RETURN(Term b, EvalArithmetic(term.args()[1]));
  if (!a.IsInt() || !b.IsInt()) {
    return Status::InvalidProgram("arithmetic over non-integers: " +
                                  term.ToString());
  }
  const int64_t x = a.int_value();
  const int64_t y = b.int_value();
  auto overflow = [&term](const char* op) {
    return Status::InvalidProgram(std::string("integer overflow in ") + op +
                                  ": " + term.ToString());
  };
  int64_t r = 0;
  if (f == "plus") {
    if (__builtin_add_overflow(x, y, &r)) return overflow("plus");
    return Term::Int(r);
  }
  if (f == "minus") {
    if (__builtin_sub_overflow(x, y, &r)) return overflow("minus");
    return Term::Int(r);
  }
  if (f == "times") {
    if (__builtin_mul_overflow(x, y, &r)) return overflow("times");
    return Term::Int(r);
  }
  if (y == 0) {
    return Status::InvalidProgram("division by zero in " + term.ToString());
  }
  // INT64_MIN / -1 (and the corresponding mod) overflow int64_t even
  // though the divisor is non-zero.
  if (x == INT64_MIN && y == -1) {
    return overflow(f == "div" ? "div" : "mod");
  }
  if (f == "div") return Term::Int(x / y);
  return Term::Int(x % y);
}

Result<bool> EvalBuiltin(Comparison op, const Term& raw_lhs,
                         const Term& raw_rhs) {
  MULTILOG_ASSIGN_OR_RETURN(Term lhs, EvalArithmetic(raw_lhs));
  MULTILOG_ASSIGN_OR_RETURN(Term rhs, EvalArithmetic(raw_rhs));
  if (!lhs.IsGround() || !rhs.IsGround()) {
    return Status::InvalidProgram(
        "builtin comparison on non-ground terms: " + lhs.ToString() + " " +
        ComparisonToString(op) + " " + rhs.ToString());
  }
  if (op == Comparison::kEq) return lhs == rhs;
  if (op == Comparison::kNe) return lhs != rhs;

  // Ordering comparisons need both sides of the same primitive kind.
  int cmp = 0;
  if (lhs.IsInt() && rhs.IsInt()) {
    cmp = lhs.int_value() < rhs.int_value()   ? -1
          : lhs.int_value() > rhs.int_value() ? 1
                                              : 0;
  } else if (lhs.IsSymbol() && rhs.IsSymbol()) {
    cmp = lhs.name().compare(rhs.name());
    cmp = cmp < 0 ? -1 : cmp > 0 ? 1 : 0;
  } else {
    return Status::InvalidProgram(
        "ordering comparison between incomparable terms: " + lhs.ToString() +
        " " + ComparisonToString(op) + " " + rhs.ToString());
  }
  switch (op) {
    case Comparison::kLt:
      return cmp < 0;
    case Comparison::kLe:
      return cmp <= 0;
    case Comparison::kGt:
      return cmp > 0;
    case Comparison::kGe:
      return cmp >= 0;
    default:
      return Status::Internal("unreachable comparison");
  }
}

Clause ReorderBody(const Clause& clause) {
  const std::vector<Literal>& body = clause.body();
  if (body.size() < 2) return clause;

  std::unordered_set<Symbol> bound;
  std::vector<bool> used(body.size(), false);
  std::vector<Literal> ordered;
  ordered.reserve(body.size());

  auto vars_of = [](const Literal& lit) {
    std::vector<Symbol> vars;
    lit.CollectVariables(&vars);
    return vars;
  };
  auto all_bound = [&bound](const std::vector<Symbol>& vars) {
    return std::all_of(vars.begin(), vars.end(), [&bound](Symbol v) {
      return bound.count(v) > 0;
    });
  };

  while (ordered.size() < body.size()) {
    int pick = -1;

    // 1. A negation or non-eq builtin whose variables are all bound, or
    //    an eq with one bound side, runs immediately (cheap filter).
    for (size_t i = 0; i < body.size() && pick < 0; ++i) {
      if (used[i]) continue;
      const Literal& lit = body[i];
      if (lit.negated() ||
          (lit.is_builtin() && lit.comparison() != Comparison::kEq)) {
        if (all_bound(vars_of(lit))) pick = static_cast<int>(i);
      } else if (lit.is_builtin()) {  // kEq
        std::vector<Symbol> lhs_vars, rhs_vars;
        lit.lhs().CollectVariables(&lhs_vars);
        lit.rhs().CollectVariables(&rhs_vars);
        if (all_bound(lhs_vars) || all_bound(rhs_vars)) {
          pick = static_cast<int>(i);
        }
      }
    }

    // 2. Otherwise the positive literal with the most bound/constant
    //    argument positions (ties keep source order).
    if (pick < 0) {
      int best_score = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if (used[i]) continue;
        const Literal& lit = body[i];
        if (lit.is_builtin() || lit.negated()) continue;
        int score = 0;
        for (const Term& arg : lit.atom().args()) {
          std::vector<Symbol> vars;
          arg.CollectVariables(&vars);
          if (vars.empty() || all_bound(vars)) ++score;
        }
        if (score > best_score) {
          best_score = score;
          pick = static_cast<int>(i);
        }
      }
    }

    // 3. Fallback (unsafe or stalled-eq clauses): first unused literal
    //    in source order, preserving the original semantics checkpoints.
    if (pick < 0) {
      for (size_t i = 0; i < body.size(); ++i) {
        if (!used[i]) {
          pick = static_cast<int>(i);
          break;
        }
      }
    }

    used[static_cast<size_t>(pick)] = true;
    const Literal& chosen = body[static_cast<size_t>(pick)];
    ordered.push_back(chosen);
    if (!chosen.negated()) {
      std::vector<Symbol> vars = vars_of(chosen);
      bound.insert(vars.begin(), vars.end());
    }
  }

  if (clause.is_aggregate()) {
    return Clause::MakeAggregate(clause.head(), std::move(ordered),
                                 clause.aggregate_position(),
                                 clause.aggregate_op(),
                                 clause.aggregate_term());
  }
  return Clause(clause.head(), std::move(ordered));
}

namespace {

/// One round's shared emission budget: `base` is the model size at the
/// start of the round, `emitted` counts the round's emissions of heads
/// not already in the model (re-derivations of known facts never grow
/// the model, so they are free; a genuinely new fact derived twice in
/// one round is charged twice, a bounded overcount). Checking on the
/// emit path bounds how far a single explosive round can run past
/// `max_facts` instead of letting the round finish unboundedly.
struct EmitBudget {
  size_t max_facts = 0;
  size_t base = 0;
  /// Cooperative cancellation rides the same checkpoint as the fact
  /// budget: every charged emission also polls the caller's token, so a
  /// cancelled query unwinds with kDeadlineExceeded at derivation rate.
  const CancelToken* cancel = nullptr;
  std::atomic<size_t> emitted{0};

  Status Charge() {
    if (cancel != nullptr && cancel->Cancelled()) {
      return Status::DeadlineExceeded(
          "evaluation cancelled (deadline exceeded)");
    }
    const size_t count = emitted.fetch_add(1, std::memory_order_relaxed) + 1;
    if (base + count > max_facts) {
      return Status::ResourceExhausted("evaluation exceeded max_facts = " +
                                       std::to_string(max_facts));
    }
    return Status::OK();
  }
};

/// The round-boundary / rule-application cancellation poll. Kept
/// separate from EmitBudget so paths that never charge the budget
/// (rounds deriving nothing new, long all-duplicate joins) still
/// observe cancellation between rule applications.
Status CheckCancelled(const CancelToken* cancel) {
  if (cancel != nullptr && cancel->Cancelled()) {
    return Status::DeadlineExceeded(
        "evaluation cancelled (deadline exceeded)");
  }
  return Status::OK();
}

using AtomSet = std::unordered_set<Atom, AtomHash>;

/// Enumerates all substitutions satisfying `body` starting at literal
/// `index` under `subst`, against `model`. When `delta_index >= 0`, the
/// literal at that index ranges over the [delta_begin, delta_end) fact
/// range instead of the model (the semi-naive restriction; parallel
/// rounds pass one chunk of the delta per work item). When
/// `neg_absent` is non-null, atoms in it are treated as absent by
/// negated literals even though the model contains them - the delta
/// path uses this to evaluate negation against the pre-mutation state
/// while the model holds a superset (see ApplyDelta). Invokes `emit`
/// for each complete match. Returns an error only for ill-formed
/// builtins / non-ground negation.
Status JoinBody(const std::vector<Literal>& body, size_t index,
                const Model& model, const Atom* delta_begin,
                const Atom* delta_end, int delta_index,
                const AtomSet* neg_absent, Substitution subst,
                const std::function<Status(const Substitution&)>& emit) {
  if (index == body.size()) return emit(subst);
  const Literal& lit = body[index];

  if (lit.is_builtin()) {
    MULTILOG_ASSIGN_OR_RETURN(Term lhs,
                              EvalArithmetic(subst.Apply(lit.lhs())));
    MULTILOG_ASSIGN_OR_RETURN(Term rhs,
                              EvalArithmetic(subst.Apply(lit.rhs())));
    if (lit.comparison() == Comparison::kEq &&
        (!lhs.IsGround() || !rhs.IsGround())) {
      // Allow `=` to act as unification when a side is still free.
      Substitution extended = subst;
      if (!UnifyTerms(lhs, rhs, &extended)) return Status::OK();
      return JoinBody(body, index + 1, model, delta_begin, delta_end,
                      delta_index, neg_absent, std::move(extended), emit);
    }
    MULTILOG_ASSIGN_OR_RETURN(bool holds,
                              EvalBuiltin(lit.comparison(), lhs, rhs));
    if (!holds) return Status::OK();
    return JoinBody(body, index + 1, model, delta_begin, delta_end,
                    delta_index, neg_absent, std::move(subst), emit);
  }

  if (lit.negated()) {
    Atom grounded = subst.Apply(lit.atom());
    if (!grounded.IsGround()) {
      return Status::InvalidProgram(
          "negative literal not ground at evaluation time: not " +
          grounded.ToString());
    }
    const bool present =
        model.Contains(grounded) &&
        (neg_absent == nullptr || neg_absent->count(grounded) == 0);
    if (present) return Status::OK();
    return JoinBody(body, index + 1, model, delta_begin, delta_end,
                    delta_index, neg_absent, std::move(subst), emit);
  }

  const Atom pattern = subst.Apply(lit.atom());

  // Candidate facts: the delta chunk when this is the designated delta
  // literal, otherwise an indexed selection from the model when some
  // argument is already ground, otherwise a full predicate scan.
  auto try_fact = [&](const Atom& fact) -> Status {
    std::optional<Substitution> extended = UnifyAtoms(pattern, fact, subst);
    if (!extended.has_value()) return Status::OK();
    return JoinBody(body, index + 1, model, delta_begin, delta_end,
                    delta_index, neg_absent, std::move(*extended), emit);
  };

  if (delta_begin != nullptr && static_cast<int>(index) == delta_index) {
    for (const Atom* fact = delta_begin; fact != delta_end; ++fact) {
      MULTILOG_RETURN_IF_ERROR(try_fact(*fact));
    }
    return Status::OK();
  }

  // Among the ground argument positions, use the most selective index
  // (fewest candidates); fall back to a full predicate scan when no
  // argument is bound.
  const PredicateId pred = pattern.PredicateId();
  bool have_index = false;
  FactSlice best;
  for (size_t pos = 0; pos < pattern.arity(); ++pos) {
    if (!pattern.args()[pos].IsConstant()) continue;
    FactSlice candidates =
        model.FactsMatching(pred, pos, pattern.args()[pos]);
    if (!have_index || candidates.size() < best.size()) {
      best = candidates;
      have_index = true;
      if (best.empty()) break;
    }
  }
  if (have_index) {
    for (const Atom& fact : best) {
      MULTILOG_RETURN_IF_ERROR(try_fact(fact));
    }
    return Status::OK();
  }
  for (const Atom& fact : model.FactsFor(pred)) {
    MULTILOG_RETURN_IF_ERROR(try_fact(fact));
  }
  return Status::OK();
}

/// Applies one (non-aggregate) clause, appending newly derivable head
/// atoms (possibly already known) to `derived`. Reads only `model` and
/// the delta range; writes only the caller-private `stats`/`derived`
/// (and the shared atomic budget), so concurrent calls on distinct
/// outputs are safe.
Status ApplyClause(const Clause& clause, const Model& model,
                   const Atom* delta_begin, const Atom* delta_end,
                   int delta_index, EmitBudget* budget, EvalStats* stats,
                   std::vector<Atom>* derived,
                   const AtomSet* neg_absent = nullptr) {
  if (budget != nullptr) {
    MULTILOG_RETURN_IF_ERROR(CheckCancelled(budget->cancel));
  }
  if (stats != nullptr) ++stats->rule_applications;
  return JoinBody(
      clause.body(), 0, model, delta_begin, delta_end, delta_index,
      neg_absent, Substitution(),
      [&](const Substitution& subst) -> Status {
        Atom head = subst.Apply(clause.head());
        if (!head.IsGround()) {
          return Status::InvalidProgram("derived non-ground head: " +
                                        head.ToString());
        }
        if (budget != nullptr && !model.Contains(head)) {
          MULTILOG_RETURN_IF_ERROR(budget->Charge());
        }
        if (stats != nullptr) ++stats->facts_derived;
        derived->push_back(std::move(head));
        return Status::OK();
      });
}

/// Applies an aggregate clause: groups the body's solutions by the
/// non-aggregate head arguments and collapses the *set* of distinct
/// bindings of the aggregated term per group (set semantics, matching
/// the model's set-based storage).
Status ApplyAggregateClause(const Clause& clause, const Model& model,
                            EmitBudget* budget, EvalStats* stats,
                            std::vector<Atom>* derived) {
  if (stats != nullptr) ++stats->rule_applications;

  // Group key (ground head args minus the aggregate slot) -> value set.
  std::map<std::vector<Term>, std::set<Term>> groups;
  MULTILOG_RETURN_IF_ERROR(JoinBody(
      clause.body(), 0, model, nullptr, nullptr, -1, nullptr, Substitution(),
      [&](const Substitution& subst) -> Status {
        std::vector<Term> key;
        for (size_t i = 0; i < clause.head().args().size(); ++i) {
          if (i == clause.aggregate_position()) continue;
          Term t = subst.Apply(clause.head().args()[i]);
          if (!t.IsGround()) {
            return Status::InvalidProgram(
                "non-ground group-by argument in " + clause.ToString());
          }
          key.push_back(std::move(t));
        }
        Term value = subst.Apply(clause.aggregate_term());
        if (!value.IsGround()) {
          return Status::InvalidProgram("non-ground aggregated term in " +
                                        clause.ToString());
        }
        groups[std::move(key)].insert(std::move(value));
        return Status::OK();
      }));

  for (const auto& [key, values] : groups) {
    Term result = Term::Int(0);
    switch (clause.aggregate_op()) {
      case AggregateOp::kCount:
        result = Term::Int(static_cast<int64_t>(values.size()));
        break;
      case AggregateOp::kSum: {
        int64_t total = 0;
        for (const Term& v : values) {
          if (!v.IsInt()) {
            return Status::InvalidProgram(
                "sum over a non-integer value " + v.ToString() + " in " +
                clause.ToString());
          }
          if (__builtin_add_overflow(total, v.int_value(), &total)) {
            return Status::InvalidProgram("integer overflow in sum: " +
                                          clause.ToString());
          }
        }
        result = Term::Int(total);
        break;
      }
      case AggregateOp::kMin:
        result = *values.begin();
        break;
      case AggregateOp::kMax:
        result = *values.rbegin();
        break;
    }

    std::vector<Term> args;
    size_t key_index = 0;
    for (size_t i = 0; i < clause.head().args().size(); ++i) {
      if (i == clause.aggregate_position()) {
        args.push_back(result);
      } else {
        args.push_back(key[key_index++]);
      }
    }
    if (budget != nullptr) MULTILOG_RETURN_IF_ERROR(budget->Charge());
    if (stats != nullptr) ++stats->facts_derived;
    derived->push_back(
        Atom(clause.head().predicate_symbol(), std::move(args)));
  }
  return Status::OK();
}

/// Runs `n` independent work items, each writing into a private
/// stats/derived pair, and merges the results in work-item order.
/// Sequential when `pool == nullptr` (exactly today's single-threaded
/// behavior, including early exit on the first error). In parallel
/// mode every item runs even if an earlier one failed; the first
/// error *in item order* is returned (schedule-independent). The
/// derivations are concatenated in item order, which is already
/// schedule-independent: items are ordered (clause x delta-chunk)
/// pieces, and within an item the join order is fixed, so the merged
/// sequence matches a sequential run over the same items regardless of
/// which worker ran what.
Status RunRound(ThreadPool* pool, size_t n,
                const std::function<Status(size_t, EvalStats*,
                                           std::vector<Atom>*)>& item,
                EvalStats* stats, std::vector<Atom>* derived) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      MULTILOG_RETURN_IF_ERROR(item(i, stats, derived));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(n);
  std::vector<EvalStats> item_stats(n);
  std::vector<std::vector<Atom>> outs(n);
  pool->ParallelFor(n, [&](size_t i) {
    statuses[i] = item(i, &item_stats[i], &outs[i]);
  });
  if (stats != nullptr) {
    for (const EvalStats& s : item_stats) {
      stats->rule_applications += s.rule_applications;
      stats->facts_derived += s.facts_derived;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    MULTILOG_RETURN_IF_ERROR(statuses[i]);
  }
  size_t total = derived->size();
  for (const std::vector<Atom>& out : outs) total += out.size();
  derived->reserve(total);
  for (std::vector<Atom>& out : outs) {
    for (Atom& a : out) derived->push_back(std::move(a));
  }
  return Status::OK();
}

using PredicateIdSet = std::unordered_set<PredicateId, PredicateIdHash>;

/// The recursive rounds of semi-naive evaluation: repeatedly fires the
/// stratum's clauses on the facts derived last round (delta literal
/// rotated to the front, delta chunked across workers) until no new
/// fact appears. `delta` is the seed (facts just inserted into the
/// model). When `inserted_log` is non-null every fact the loop inserts
/// is appended to it, in deterministic merge order - the delta path
/// uses this to compute net changes.
Status SeminaiveRounds(const std::vector<const Clause*>& clauses,
                       const PredicateIdSet& stratum_preds,
                       const EvalOptions& options, ThreadPool* pool,
                       Model* model, EvalStats* stats, std::vector<Atom> delta,
                       std::vector<Atom>* inserted_log) {
  while (!delta.empty()) {
    trace::Span round_span(trace::Stage::kEvalRound);
    MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
    if (model->size() > options.max_facts) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_facts = " +
          std::to_string(options.max_facts));
    }
    EmitBudget budget{options.max_facts, model->size(), options.cancel};

    // Delta chunk size: one chunk in sequential mode (today's exact
    // behavior); ~4 chunks per thread in parallel mode so index-stealing
    // can balance skewed clauses.
    const size_t threads = pool == nullptr ? 1 : pool->num_workers() + 1;
    size_t chunk = delta.size();
    if (threads > 1) {
      chunk = std::max<size_t>(1, delta.size() / (threads * 4));
    }

    std::deque<Clause> rotations;  // stable addresses for the items
    struct Item {
      const Clause* clause;
      size_t begin, end;  // delta range
    };
    std::vector<Item> items;
    for (const Clause* c : clauses) {
      for (size_t i = 0; i < c->body().size(); ++i) {
        const Literal& lit = c->body()[i];
        if (lit.is_builtin() || lit.negated()) continue;
        if (!stratum_preds.count(lit.atom().PredicateId())) continue;
        // Rotate the delta literal to the front: it is scanned linearly
        // (the delta has no index), so binding its variables first lets
        // every remaining positive literal use the model's argument
        // indexes. Safe for negation/builtins - they only ever see more
        // bindings than before.
        std::vector<Literal> body;
        body.reserve(c->body().size());
        body.push_back(lit);
        for (size_t j = 0; j < c->body().size(); ++j) {
          if (j != i) body.push_back(c->body()[j]);
        }
        rotations.emplace_back(c->head(), std::move(body));
        const Clause* rotated = &rotations.back();
        for (size_t b = 0; b < delta.size(); b += chunk) {
          items.push_back({rotated, b, std::min(b + chunk, delta.size())});
        }
      }
    }

    std::vector<Atom> derived;
    {
      trace::Span join_span(trace::Stage::kEvalJoin);
      MULTILOG_RETURN_IF_ERROR(RunRound(
          pool, items.size(),
          [&](size_t i, EvalStats* s, std::vector<Atom>* out) {
            const Item& it = items[i];
            return ApplyClause(*it.clause, *model, delta.data() + it.begin,
                               delta.data() + it.end, 0, &budget, s, out);
          },
          stats, &derived));
    }

    trace::Span merge_span(trace::Stage::kEvalMerge);
    std::vector<Atom> next_delta;
    for (Atom& a : derived) {
      if (model->Insert(a)) {
        if (inserted_log != nullptr) inserted_log->push_back(a);
        next_delta.push_back(std::move(a));
      }
    }
    delta = std::move(next_delta);
    if (stats != nullptr) ++stats->iterations;
  }
  return Status::OK();
}

Status EvaluateStratumSeminaive(const std::vector<const Clause*>& clauses,
                                const PredicateIdSet& stratum_preds,
                                const EvalOptions& options, ThreadPool* pool,
                                Model* model, EvalStats* stats) {
  // Round 0: apply every clause against the current model. Aggregate
  // clauses always run on the calling thread (each folds one global
  // group map); plain clauses are one work item each.
  std::vector<Atom> delta;
  {
    trace::Span round_span(trace::Stage::kEvalRound);
    MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
    EmitBudget budget{options.max_facts, model->size(), options.cancel};
    std::vector<Atom> derived;
    {
      trace::Span join_span(trace::Stage::kEvalJoin);
      if (pool == nullptr) {
        for (const Clause* c : clauses) {
          if (c->is_aggregate()) {
            MULTILOG_RETURN_IF_ERROR(
                ApplyAggregateClause(*c, *model, &budget, stats, &derived));
          } else {
            MULTILOG_RETURN_IF_ERROR(ApplyClause(
                *c, *model, nullptr, nullptr, -1, &budget, stats, &derived));
          }
        }
      } else {
        std::vector<const Clause*> plain;
        for (const Clause* c : clauses) {
          if (c->is_aggregate()) {
            MULTILOG_RETURN_IF_ERROR(
                ApplyAggregateClause(*c, *model, &budget, stats, &derived));
          } else {
            plain.push_back(c);
          }
        }
        MULTILOG_RETURN_IF_ERROR(RunRound(
            pool, plain.size(),
            [&](size_t i, EvalStats* s, std::vector<Atom>* out) {
              return ApplyClause(*plain[i], *model, nullptr, nullptr, -1,
                                 &budget, s, out);
            },
            stats, &derived));
      }
    }
    trace::Span merge_span(trace::Stage::kEvalMerge);
    for (Atom& a : derived) {
      if (model->Insert(a)) delta.push_back(std::move(a));
    }
    if (stats != nullptr) ++stats->iterations;
  }

  // Recursive rounds: only clauses with a positive literal on a predicate
  // of this stratum can fire on new facts. Work items are (rotated
  // clause x delta chunk); every worker reads the same frozen model and
  // delta, so the round is embarrassingly parallel.
  return SeminaiveRounds(clauses, stratum_preds, options, pool, model, stats,
                         std::move(delta), nullptr);
}

Status EvaluateStratumNaive(const std::vector<const Clause*>& clauses,
                            const EvalOptions& options, ThreadPool* pool,
                            Model* model, EvalStats* stats) {
  bool changed = true;
  while (changed) {
    MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
    if (model->size() > options.max_facts) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_facts = " +
          std::to_string(options.max_facts));
    }
    changed = false;
    EmitBudget budget{options.max_facts, model->size(), options.cancel};
    std::vector<Atom> derived;
    if (pool == nullptr) {
      for (const Clause* c : clauses) {
        if (c->is_aggregate()) {
          MULTILOG_RETURN_IF_ERROR(
              ApplyAggregateClause(*c, *model, &budget, stats, &derived));
        } else {
          MULTILOG_RETURN_IF_ERROR(ApplyClause(*c, *model, nullptr, nullptr,
                                               -1, &budget, stats, &derived));
        }
      }
    } else {
      std::vector<const Clause*> plain;
      for (const Clause* c : clauses) {
        if (c->is_aggregate()) {
          MULTILOG_RETURN_IF_ERROR(
              ApplyAggregateClause(*c, *model, &budget, stats, &derived));
        } else {
          plain.push_back(c);
        }
      }
      MULTILOG_RETURN_IF_ERROR(RunRound(
          pool, plain.size(),
          [&](size_t i, EvalStats* s, std::vector<Atom>* out) {
            return ApplyClause(*plain[i], *model, nullptr, nullptr, -1,
                               &budget, s, out);
          },
          stats, &derived));
    }
    for (const Atom& a : derived) {
      if (model->Insert(a)) changed = true;
    }
    if (stats != nullptr) ++stats->iterations;
  }
  return Status::OK();
}

}  // namespace

Result<PreparedProgram> PrepareProgram(const Program& program,
                                       const EvalOptions& options) {
  // Safety and stratification are checked on the original program so
  // diagnostics point at the source clauses, not their reordered forms
  // (the reordering is semantics-preserving either way).
  MULTILOG_RETURN_IF_ERROR(program.CheckSafety());
  PreparedProgram prepared;
  MULTILOG_ASSIGN_OR_RETURN(prepared.strat, Stratify(program));
  if (options.reorder_body) {
    for (const Clause& c : program.clauses()) {
      prepared.program.AddClause(ReorderBody(c));
    }
  } else {
    prepared.program = program;
  }
  return prepared;
}

Result<Model> EvaluatePrepared(const PreparedProgram& prepared,
                               const std::vector<Atom>& seeds,
                               const EvalOptions& options, EvalStats* stats) {
  // num_threads counts the calling thread, so the pool holds one fewer
  // worker. No pool at all when num_threads <= 1: that path must stay
  // byte-for-byte the historical sequential evaluator.
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads - 1);
  }

  Model model;
  // Seeds land before the first stratum, so round 0 of every stratum
  // sees them exactly like program facts.
  for (const Atom& seed : seeds) model.Insert(seed);

  const Stratification& strat = prepared.strat;
  for (size_t s = 0; s < strat.num_strata(); ++s) {
    PredicateIdSet stratum_preds(strat.strata[s].begin(),
                                 strat.strata[s].end());
    std::vector<const Clause*> clauses;
    for (const Clause& c : prepared.program.clauses()) {
      if (stratum_preds.count(c.head().PredicateId())) clauses.push_back(&c);
    }
    if (options.strategy == EvalOptions::Strategy::kSeminaive) {
      MULTILOG_RETURN_IF_ERROR(EvaluateStratumSeminaive(
          clauses, stratum_preds, options, pool.get(), &model, stats));
    } else {
      MULTILOG_RETURN_IF_ERROR(EvaluateStratumNaive(
          clauses, options, pool.get(), &model, stats));
    }
  }
  return model;
}

Result<Model> Evaluate(const Program& program, const EvalOptions& options,
                       EvalStats* stats) {
  MULTILOG_ASSIGN_OR_RETURN(PreparedProgram prepared,
                            PrepareProgram(program, options));
  return EvaluatePrepared(prepared, {}, options, stats);
}

namespace {

/// Early-exit sentinel for the rederivation probe: JoinBody has no
/// first-match mode, so the probe's emit callback returns this to
/// unwind as soon as one derivation is found and the caller translates
/// it back into "found". Never escapes ApplyDelta.
Status RederiveFound() {
  return Status::Internal("__apply_delta_rederive_found__");
}

}  // namespace

Result<DeltaChanges> ApplyDelta(const Program& program,
                                const std::vector<Atom>& adds,
                                const std::vector<Atom>& removes,
                                Model* model, const EvalOptions& options,
                                EvalStats* stats) {
  for (const Clause& c : program.clauses()) {
    if (c.is_aggregate()) {
      return Status::InvalidProgram(
          "ApplyDelta: aggregate clauses are not incrementally "
          "maintainable");
    }
  }
  MULTILOG_RETURN_IF_ERROR(program.CheckSafety());
  MULTILOG_ASSIGN_OR_RETURN(Stratification strat, Stratify(program));

  Program reordered;
  const Program* effective = &program;
  if (options.reorder_body) {
    for (const Clause& c : program.clauses()) {
      reordered.AddClause(ReorderBody(c));
    }
    effective = &reordered;
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads - 1);
  }

  // Partition the external EDB delta by the stratum of its predicate. A
  // removed atom whose predicate no longer appears in the program has
  // no stratum; nothing can rederive or consume it, so stratum 0 is as
  // good as any (it just gets dropped from the model there).
  const size_t nstrata = std::max<size_t>(strat.num_strata(), 1);
  std::vector<std::vector<Atom>> ext_adds(nstrata), ext_removes(nstrata);
  auto stratum_of = [&strat, nstrata](const Atom& a) -> size_t {
    auto it = strat.stratum_of.find(a.PredicateId());
    return it == strat.stratum_of.end() ? 0 : std::min(it->second, nstrata - 1);
  };
  for (const Atom& a : adds) ext_adds[stratum_of(a)].push_back(a);
  for (const Atom& a : removes) ext_removes[stratum_of(a)].push_back(a);

  // Net changes from fully processed ("settled") strata. The vectors
  // keep deterministic order for the caller; the sets answer membership;
  // the predicate sets let a stratum skip clauses the delta cannot fire.
  DeltaChanges net;
  AtomSet net_added_set, net_removed_set;
  PredicateIdSet net_added_preds, net_removed_preds;

  for (size_t s = 0; s < nstrata; ++s) {
    PredicateIdSet stratum_preds;
    if (s < strat.num_strata()) {
      stratum_preds.insert(strat.strata[s].begin(), strat.strata[s].end());
    }
    std::vector<const Clause*> clauses;
    for (const Clause& c : effective->clauses()) {
      if (stratum_preds.count(c.head().PredicateId())) clauses.push_back(&c);
    }

    // --- Phase 1: overestimate deletions (DRed). Joins must see the
    // pre-mutation state, so the settled removals are temporarily
    // reinserted; the model then shows old facts for positive joins
    // (plus the settled additions - harmless, over-deletion is repaired
    // by rederivation) while negation recovers the *exact* old state by
    // masking the settled additions (JoinBody's neg_absent).
    for (const Atom& a : net.removed) model->Insert(a);

    AtomSet doomed;
    std::vector<Atom> doomed_order;
    std::vector<Atom>* doom_sink = &doomed_order;
    auto condemn = [&](const Atom& fact) {
      if (model->Contains(fact) && doomed.insert(fact).second) {
        doom_sink->push_back(fact);
      }
    };
    for (const Atom& a : ext_removes[s]) condemn(a);

    auto doom_heads = [&](const std::vector<Literal>& body, const Atom& head,
                          const Atom* dbegin, const Atom* dend) -> Status {
      if (stats != nullptr) ++stats->rule_applications;
      return JoinBody(body, 0, *model, dbegin, dend, 0, &net_added_set,
                      Substitution(),
                      [&](const Substitution& subst) -> Status {
                        Atom h = subst.Apply(head);
                        if (!h.IsGround()) {
                          return Status::InvalidProgram(
                              "derived non-ground head: " + h.ToString());
                        }
                        condemn(h);
                        return Status::OK();
                      });
    };

    // Seeds from the settled lower-strata changes: a positive literal
    // that matched a removed fact, or a negated literal whose atom was
    // just added, each kills derivations that existed before.
    for (const Clause* c : clauses) {
      if (net.removed.empty() && net.added.empty()) break;
      MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
      for (size_t i = 0; i < c->body().size(); ++i) {
        const Literal& lit = c->body()[i];
        if (lit.is_builtin()) continue;
        std::vector<Literal> body;
        const std::vector<Atom>* dvec = nullptr;
        if (!lit.negated()) {
          if (!net_removed_preds.count(lit.atom().PredicateId())) continue;
          dvec = &net.removed;
          body.reserve(c->body().size());
          body.push_back(lit);
          for (size_t j = 0; j < c->body().size(); ++j) {
            if (j != i) body.push_back(c->body()[j]);
          }
        } else {
          if (!net_added_preds.count(lit.atom().PredicateId())) continue;
          // Bind from the added fact; drop this occurrence of the
          // negation (it held in the old state by construction).
          dvec = &net.added;
          body.reserve(c->body().size());
          body.push_back(Literal::Positive(lit.atom()));
          for (size_t j = 0; j < c->body().size(); ++j) {
            if (j != i) body.push_back(c->body()[j]);
          }
        }
        MULTILOG_RETURN_IF_ERROR(doom_heads(
            body, c->head(), dvec->data(), dvec->data() + dvec->size()));
      }
    }

    // Propagate deletions within the stratum: anything deriving through
    // a doomed fact is doomed too (still the overestimate - the model
    // has not been touched, so joins see the old stratum content).
    // Newly doomed facts collect in a side vector per round because
    // JoinBody holds raw pointers into the round's frontier.
    size_t frontier_begin = 0;
    while (frontier_begin < doomed_order.size()) {
      MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
      const size_t frontier_end = doomed_order.size();
      std::vector<Atom> newly;
      doom_sink = &newly;
      for (const Clause* c : clauses) {
        for (size_t i = 0; i < c->body().size(); ++i) {
          const Literal& lit = c->body()[i];
          if (lit.is_builtin() || lit.negated()) continue;
          if (!stratum_preds.count(lit.atom().PredicateId())) continue;
          std::vector<Literal> body;
          body.reserve(c->body().size());
          body.push_back(lit);
          for (size_t j = 0; j < c->body().size(); ++j) {
            if (j != i) body.push_back(c->body()[j]);
          }
          MULTILOG_RETURN_IF_ERROR(
              doom_heads(body, c->head(), doomed_order.data() + frontier_begin,
                         doomed_order.data() + frontier_end));
        }
      }
      doom_sink = &doomed_order;
      frontier_begin = frontier_end;
      doomed_order.insert(doomed_order.end(), newly.begin(), newly.end());
    }

    // --- Phase 2: drop the overestimate along with the reinserted
    // old-state scaffolding; the model now underestimates the stratum.
    {
      std::vector<Atom> scaffold = net.removed;
      scaffold.insert(scaffold.end(), doomed_order.begin(),
                      doomed_order.end());
      model->RemoveFacts(scaffold);
    }

    // --- Phase 3: rederive. A doomed fact with an alternative
    // derivation in the new state comes back; rederived facts then
    // propagate semi-naively, resurrecting doomed facts that depended
    // on them. Because `program` is the post-mutation program, an EDB
    // atom still backed by another fact clause rederives through that
    // clause's empty body here.
    std::vector<Atom> inserted_log;
    std::vector<Atom> redelta;
    for (const Atom& f : doomed_order) {
      MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
      bool found = false;
      for (const Clause* c : clauses) {
        std::optional<Substitution> head_subst =
            UnifyAtoms(c->head(), f, Substitution());
        if (!head_subst.has_value()) continue;
        if (stats != nullptr) ++stats->rule_applications;
        Status st = JoinBody(
            c->body(), 0, *model, nullptr, nullptr, -1, nullptr, *head_subst,
            [](const Substitution&) -> Status { return RederiveFound(); });
        if (st.ok()) continue;
        if (st == RederiveFound()) {
          found = true;
          break;
        }
        return st;
      }
      if (found && model->Insert(f)) {
        inserted_log.push_back(f);
        redelta.push_back(f);
      }
    }
    MULTILOG_RETURN_IF_ERROR(SeminaiveRounds(clauses, stratum_preds, options,
                                             pool.get(), model, stats,
                                             std::move(redelta),
                                             &inserted_log));

    // --- Phase 4: additions. Seeds are the external adds plus clause
    // firings enabled by the settled changes - a positive literal
    // matching an added fact, or a negated literal whose atom was
    // removed (bound from the removal; the original negation stays in
    // the body and re-checks against the new state). The rest of each
    // body joins the current model, which already holds all settled
    // additions, so multi-change combinations are covered.
    EmitBudget budget{options.max_facts, model->size(), options.cancel};
    std::vector<Atom> derived;
    derived.insert(derived.end(), ext_adds[s].begin(), ext_adds[s].end());
    for (const Clause* c : clauses) {
      if (net.removed.empty() && net.added.empty()) break;
      MULTILOG_RETURN_IF_ERROR(CheckCancelled(options.cancel));
      for (size_t i = 0; i < c->body().size(); ++i) {
        const Literal& lit = c->body()[i];
        if (lit.is_builtin()) continue;
        std::vector<Literal> body;
        const std::vector<Atom>* dvec = nullptr;
        if (!lit.negated()) {
          if (!net_added_preds.count(lit.atom().PredicateId())) continue;
          dvec = &net.added;
          body.reserve(c->body().size());
          body.push_back(lit);
          for (size_t j = 0; j < c->body().size(); ++j) {
            if (j != i) body.push_back(c->body()[j]);
          }
        } else {
          if (!net_removed_preds.count(lit.atom().PredicateId())) continue;
          dvec = &net.removed;
          body.reserve(c->body().size() + 1);
          body.push_back(Literal::Positive(lit.atom()));
          for (const Literal& l : c->body()) body.push_back(l);
        }
        if (stats != nullptr) ++stats->rule_applications;
        MULTILOG_RETURN_IF_ERROR(JoinBody(
            body, 0, *model, dvec->data(), dvec->data() + dvec->size(), 0,
            nullptr, Substitution(),
            [&](const Substitution& subst) -> Status {
              Atom h = subst.Apply(c->head());
              if (!h.IsGround()) {
                return Status::InvalidProgram("derived non-ground head: " +
                                              h.ToString());
              }
              if (!model->Contains(h)) {
                MULTILOG_RETURN_IF_ERROR(budget.Charge());
              }
              if (stats != nullptr) ++stats->facts_derived;
              derived.push_back(std::move(h));
              return Status::OK();
            }));
      }
    }
    std::vector<Atom> add_delta;
    for (Atom& a : derived) {
      if (model->Insert(a)) {
        inserted_log.push_back(a);
        add_delta.push_back(std::move(a));
      }
    }
    if (stats != nullptr) ++stats->iterations;
    MULTILOG_RETURN_IF_ERROR(SeminaiveRounds(clauses, stratum_preds, options,
                                             pool.get(), model, stats,
                                             std::move(add_delta),
                                             &inserted_log));

    // --- Stratum bookkeeping: the net effect feeds the next strata and
    // the caller. Doomed facts that made it back (rederived or re-added)
    // net to nothing, as do inserted facts that were doomed.
    for (const Atom& f : doomed_order) {
      if (!model->Contains(f) && net_removed_set.insert(f).second) {
        net.removed.push_back(f);
        net_removed_preds.insert(f.PredicateId());
      }
    }
    for (const Atom& a : inserted_log) {
      if (doomed.count(a) > 0) continue;
      if (net_added_set.insert(a).second) {
        net.added.push_back(a);
        net_added_preds.insert(a.PredicateId());
      }
    }
  }
  return net;
}

Result<std::vector<Substitution>> QueryModel(const Model& model,
                                             const std::vector<Literal>& goal,
                                             const CancelToken* cancel) {
  MULTILOG_RETURN_IF_ERROR(CheckCancelled(cancel));
  std::vector<Symbol> goal_vars;
  for (const Literal& l : goal) l.CollectVariables(&goal_vars);
  std::sort(goal_vars.begin(), goal_vars.end());
  goal_vars.erase(std::unique(goal_vars.begin(), goal_vars.end()),
                  goal_vars.end());

  std::set<std::string> seen;  // canonical text of the restricted answer
  std::vector<Substitution> answers;
  MULTILOG_RETURN_IF_ERROR(JoinBody(
      goal, 0, model, nullptr, nullptr, -1, nullptr, Substitution(),
      [&](const Substitution& subst) -> Status {
        MULTILOG_RETURN_IF_ERROR(CheckCancelled(cancel));
        Substitution restricted;
        for (Symbol v : goal_vars) {
          Term value = subst.Apply(Term::Var(v));
          if (!value.IsVariable()) restricted.Bind(v, value);
        }
        if (seen.insert(restricted.ToString()).second) {
          answers.push_back(std::move(restricted));
        }
        return Status::OK();
      }));
  std::sort(answers.begin(), answers.end(),
            [](const Substitution& a, const Substitution& b) {
              return a.ToString() < b.ToString();
            });
  return answers;
}

}  // namespace multilog::datalog
