#include "datalog/unify.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace multilog::datalog {

void Substitution::Bind(const std::string& var, Term term) {
  assert(!Contains(var));
  bindings_.emplace(var, std::move(term));
}

Term Substitution::Walk(const Term& t) const {
  Term cur = t;
  while (cur.IsVariable()) {
    auto it = bindings_.find(cur.name());
    if (it == bindings_.end()) return cur;
    cur = it->second;
  }
  return cur;
}

Term Substitution::Apply(const Term& t) const {
  Term walked = Walk(t);
  if (walked.IsCompound()) {
    std::vector<Term> args;
    args.reserve(walked.args().size());
    for (const Term& a : walked.args()) args.push_back(Apply(a));
    return Term::Fn(walked.name(), std::move(args));
  }
  return walked;
}

Atom Substitution::Apply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(Apply(t));
  return Atom(a.predicate(), std::move(args));
}

Literal Substitution::Apply(const Literal& l) const {
  if (l.is_builtin()) {
    return Literal::Builtin(l.comparison(), Apply(l.lhs()), Apply(l.rhs()));
  }
  if (l.negated()) return Literal::Negative(Apply(l.atom()));
  return Literal::Positive(Apply(l.atom()));
}

std::string Substitution::ToString() const {
  std::map<std::string, Term> sorted(bindings_.begin(), bindings_.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += var + "=" + Apply(term).ToString();
  }
  out += "}";
  return out;
}

namespace {

bool OccursIn(const std::string& var, const Term& t,
              const Substitution& subst) {
  Term walked = subst.Walk(t);
  if (walked.IsVariable()) return walked.name() == var;
  if (walked.IsCompound()) {
    for (const Term& a : walked.args()) {
      if (OccursIn(var, a, subst)) return true;
    }
  }
  return false;
}

}  // namespace

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term x = subst->Walk(a);
  Term y = subst->Walk(b);

  if (x.IsVariable()) {
    if (y.IsVariable() && y.name() == x.name()) return true;
    if (OccursIn(x.name(), y, *subst)) return false;
    subst->Bind(x.name(), y);
    return true;
  }
  if (y.IsVariable()) {
    if (OccursIn(y.name(), x, *subst)) return false;
    subst->Bind(y.name(), x);
    return true;
  }
  if (x.kind() != y.kind()) return false;
  switch (x.kind()) {
    case Term::Kind::kSymbol:
      return x.name() == y.name();
    case Term::Kind::kInt:
      return x.int_value() == y.int_value();
    case Term::Kind::kCompound: {
      if (x.name() != y.name() || x.args().size() != y.args().size()) {
        return false;
      }
      for (size_t i = 0; i < x.args().size(); ++i) {
        if (!UnifyTerms(x.args()[i], y.args()[i], subst)) return false;
      }
      return true;
    }
    case Term::Kind::kVariable:
      break;  // unreachable: handled above
  }
  return false;
}

std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& base) {
  if (a.predicate() != b.predicate() || a.arity() != b.arity()) {
    return std::nullopt;
  }
  Substitution subst = base;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!UnifyTerms(a.args()[i], b.args()[i], &subst)) return std::nullopt;
  }
  return subst;
}

Term RenameTerm(const Term& t, int suffix) {
  switch (t.kind()) {
    case Term::Kind::kVariable:
      return Term::Var(t.name() + "#" + std::to_string(suffix));
    case Term::Kind::kSymbol:
    case Term::Kind::kInt:
      return t;
    case Term::Kind::kCompound: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(RenameTerm(a, suffix));
      return Term::Fn(t.name(), std::move(args));
    }
  }
  return t;
}

Atom RenameAtom(const Atom& a, int suffix) {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(RenameTerm(t, suffix));
  return Atom(a.predicate(), std::move(args));
}

Literal RenameLiteral(const Literal& l, int suffix) {
  if (l.is_builtin()) {
    return Literal::Builtin(l.comparison(), RenameTerm(l.lhs(), suffix),
                            RenameTerm(l.rhs(), suffix));
  }
  if (l.negated()) return Literal::Negative(RenameAtom(l.atom(), suffix));
  return Literal::Positive(RenameAtom(l.atom(), suffix));
}

}  // namespace multilog::datalog
