#include "datalog/unify.h"

#include <algorithm>
#include <cassert>

namespace multilog::datalog {

void Substitution::Bind(Symbol var, Term term) {
  assert(!Contains(var));
  bindings_.emplace_back(var, std::move(term));
}

Term Substitution::Walk(const Term& t) const {
  Term cur = t;
  while (cur.IsVariable()) {
    const Term* bound = Find(cur.symbol());
    if (bound == nullptr) return cur;
    cur = *bound;
  }
  return cur;
}

Term Substitution::Apply(const Term& t) const {
  Term walked = Walk(t);
  if (walked.IsCompound()) {
    std::vector<Term> args;
    args.reserve(walked.args().size());
    for (const Term& a : walked.args()) args.push_back(Apply(a));
    return Term::Fn(walked.symbol(), std::move(args));
  }
  return walked;
}

Atom Substitution::Apply(const Atom& a) const {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(Apply(t));
  return Atom(a.predicate_symbol(), std::move(args));
}

Literal Substitution::Apply(const Literal& l) const {
  if (l.is_builtin()) {
    return Literal::Builtin(l.comparison(), Apply(l.lhs()), Apply(l.rhs()));
  }
  if (l.negated()) return Literal::Negative(Apply(l.atom()));
  return Literal::Positive(Apply(l.atom()));
}

std::string Substitution::ToString() const {
  std::vector<std::pair<Symbol, Term>> sorted = bindings_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += var.str() + "=" + Apply(term).ToString();
  }
  out += "}";
  return out;
}

namespace {

bool OccursIn(Symbol var, const Term& t, const Substitution& subst) {
  Term walked = subst.Walk(t);
  if (walked.IsVariable()) return walked.symbol() == var;
  if (walked.IsCompound()) {
    for (const Term& a : walked.args()) {
      if (OccursIn(var, a, subst)) return true;
    }
  }
  return false;
}

}  // namespace

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term x = subst->Walk(a);
  Term y = subst->Walk(b);

  if (x.IsVariable()) {
    if (y.IsVariable() && y.symbol() == x.symbol()) return true;
    if (OccursIn(x.symbol(), y, *subst)) return false;
    subst->Bind(x.symbol(), y);
    return true;
  }
  if (y.IsVariable()) {
    if (OccursIn(y.symbol(), x, *subst)) return false;
    subst->Bind(y.symbol(), x);
    return true;
  }
  if (x.kind() != y.kind()) return false;
  switch (x.kind()) {
    case Term::Kind::kSymbol:
      return x.symbol() == y.symbol();
    case Term::Kind::kInt:
      return x.int_value() == y.int_value();
    case Term::Kind::kCompound: {
      if (x.symbol() != y.symbol() || x.args().size() != y.args().size()) {
        return false;
      }
      for (size_t i = 0; i < x.args().size(); ++i) {
        if (!UnifyTerms(x.args()[i], y.args()[i], subst)) return false;
      }
      return true;
    }
    case Term::Kind::kVariable:
      break;  // unreachable: handled above
  }
  return false;
}

std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& base) {
  if (a.predicate_symbol() != b.predicate_symbol() ||
      a.arity() != b.arity()) {
    return std::nullopt;
  }
  Substitution subst = base;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!UnifyTerms(a.args()[i], b.args()[i], &subst)) return std::nullopt;
  }
  return subst;
}

Term RenameTerm(const Term& t, int suffix) {
  switch (t.kind()) {
    case Term::Kind::kVariable:
      return Term::Var(t.name() + "#" + std::to_string(suffix));
    case Term::Kind::kSymbol:
    case Term::Kind::kInt:
      return t;
    case Term::Kind::kCompound: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(RenameTerm(a, suffix));
      return Term::Fn(t.symbol(), std::move(args));
    }
  }
  return t;
}

Atom RenameAtom(const Atom& a, int suffix) {
  std::vector<Term> args;
  args.reserve(a.args().size());
  for (const Term& t : a.args()) args.push_back(RenameTerm(t, suffix));
  return Atom(a.predicate_symbol(), std::move(args));
}

Literal RenameLiteral(const Literal& l, int suffix) {
  if (l.is_builtin()) {
    return Literal::Builtin(l.comparison(), RenameTerm(l.lhs(), suffix),
                            RenameTerm(l.rhs(), suffix));
  }
  if (l.negated()) return Literal::Negative(RenameAtom(l.atom(), suffix));
  return Literal::Positive(RenameAtom(l.atom(), suffix));
}

}  // namespace multilog::datalog
