#ifndef MULTILOG_DATALOG_PROGRAM_H_
#define MULTILOG_DATALOG_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/clause.h"

namespace multilog::datalog {

/// A Datalog program: an ordered collection of clauses. Clause order has
/// no semantic significance (the semantics is the stratified minimal
/// model) but is preserved for printing and diagnostics.
class Program {
 public:
  Program() = default;

  void AddClause(Clause clause) { clauses_.push_back(std::move(clause)); }
  void AddFact(Atom fact) { clauses_.push_back(Clause::Fact(std::move(fact))); }

  /// Appends every clause of `other`.
  void Append(const Program& other);

  /// Inserts `clause` at position `pos` (<= size()), shifting later
  /// clauses - the incremental reduction path splices fact clauses into
  /// the middle of a maintained program to match a scratch rebuild's
  /// clause order exactly.
  void InsertClause(size_t pos, Clause clause) {
    clauses_.insert(clauses_.begin() + static_cast<ptrdiff_t>(pos),
                    std::move(clause));
  }

  /// Removes the clause at position `pos` (< size()).
  void EraseClauseAt(size_t pos) {
    clauses_.erase(clauses_.begin() + static_cast<ptrdiff_t>(pos));
  }

  /// Removes `count` clauses starting at `pos` (pos + count <= size()).
  void EraseClauses(size_t pos, size_t count) {
    clauses_.erase(clauses_.begin() + static_cast<ptrdiff_t>(pos),
                   clauses_.begin() + static_cast<ptrdiff_t>(pos + count));
  }

  const std::vector<Clause>& clauses() const { return clauses_; }
  size_t size() const { return clauses_.size(); }

  /// All predicate ids ("p/2"), sorted; includes predicates that occur
  /// only in bodies.
  std::vector<std::string> Predicates() const;

  /// Predicate ids defined by at least one clause head.
  std::vector<std::string> DefinedPredicates() const;

  /// Clauses whose head predicate id equals `id`, in program order.
  /// (String call sites like ClausesFor("p/2") convert implicitly.)
  std::vector<const Clause*> ClausesFor(const PredicateId& id) const;

  /// Checks every clause for range-restriction.
  Status CheckSafety() const;

  /// Full listing, one clause per line.
  std::string ToString() const;

 private:
  std::vector<Clause> clauses_;
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_PROGRAM_H_
