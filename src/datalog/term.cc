#include "datalog/term.h"

#include <functional>

namespace multilog::datalog {

namespace {
const std::vector<Term> kNoArgs;

size_t CombineHash(size_t seed, size_t value) {
  // Boost-style mix.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

Term Term::Var(std::string name) {
  return Term(Kind::kVariable, std::move(name), 0);
}

Term Term::Sym(std::string name) {
  return Term(Kind::kSymbol, std::move(name), 0);
}

Term Term::Int(int64_t value) { return Term(Kind::kInt, "", value); }

Term Term::Fn(std::string functor, std::vector<Term> args) {
  Term t(Kind::kCompound, std::move(functor), 0);
  t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
  return t;
}

const std::vector<Term>& Term::args() const {
  if (args_) return *args_;
  return kNoArgs;
}

bool Term::IsGround() const {
  switch (kind_) {
    case Kind::kVariable:
      return false;
    case Kind::kSymbol:
    case Kind::kInt:
      return true;
    case Kind::kCompound:
      for (const Term& a : args()) {
        if (!a.IsGround()) return false;
      }
      return true;
  }
  return false;
}

void Term::CollectVariables(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->push_back(name_);
      return;
    case Kind::kSymbol:
    case Kind::kInt:
      return;
    case Kind::kCompound:
      for (const Term& a : args()) a.CollectVariables(out);
      return;
  }
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name_;
    case Kind::kInt:
      return std::to_string(int_value_);
    case Kind::kCompound: {
      std::string out = name_ + "(";
      const auto& as = args();
      for (size_t i = 0; i < as.size(); ++i) {
        if (i > 0) out += ", ";
        out += as[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name_ == other.name_;
    case Kind::kInt:
      return int_value_ == other.int_value_;
    case Kind::kCompound:
      return name_ == other.name_ && args() == other.args();
  }
  return false;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_);
  }
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name_ < other.name_;
    case Kind::kInt:
      return int_value_ < other.int_value_;
    case Kind::kCompound: {
      if (name_ != other.name_) return name_ < other.name_;
      const auto& a = args();
      const auto& b = other.args();
      if (a.size() != b.size()) return a.size() < b.size();
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
      }
      return false;
    }
  }
  return false;
}

size_t Term::Hash() const {
  size_t h = static_cast<size_t>(kind_);
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return CombineHash(h, std::hash<std::string>()(name_));
    case Kind::kInt:
      return CombineHash(h, std::hash<int64_t>()(int_value_));
    case Kind::kCompound: {
      h = CombineHash(h, std::hash<std::string>()(name_));
      for (const Term& a : args()) h = CombineHash(h, a.Hash());
      return h;
    }
  }
  return h;
}

}  // namespace multilog::datalog
