#include "datalog/term.h"

#include <functional>

namespace multilog::datalog {

namespace {
const std::vector<Term> kNoArgs;

size_t CombineHash(size_t seed, size_t value) {
  // Boost-style mix.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}
}  // namespace

Term Term::Var(std::string_view name) { return Var(Symbol::Intern(name)); }

Term Term::Var(Symbol name) { return Term(Kind::kVariable, name, 0); }

Term Term::Sym(std::string_view name) { return Sym(Symbol::Intern(name)); }

Term Term::Sym(Symbol name) { return Term(Kind::kSymbol, name, 0); }

Term Term::Int(int64_t value) { return Term(Kind::kInt, Symbol(), value); }

Term Term::Fn(std::string_view functor, std::vector<Term> args) {
  return Fn(Symbol::Intern(functor), std::move(args));
}

Term Term::Fn(Symbol functor, std::vector<Term> args) {
  Term t(Kind::kCompound, functor, 0);
  t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
  return t;
}

const std::vector<Term>& Term::args() const {
  if (args_) return *args_;
  return kNoArgs;
}

bool Term::IsGround() const {
  switch (kind_) {
    case Kind::kVariable:
      return false;
    case Kind::kSymbol:
    case Kind::kInt:
      return true;
    case Kind::kCompound:
      for (const Term& a : args()) {
        if (!a.IsGround()) return false;
      }
      return true;
  }
  return false;
}

void Term::CollectVariables(std::vector<Symbol>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->push_back(sym_);
      return;
    case Kind::kSymbol:
    case Kind::kInt:
      return;
    case Kind::kCompound:
      for (const Term& a : args()) a.CollectVariables(out);
      return;
  }
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name();
    case Kind::kInt:
      return std::to_string(int_value_);
    case Kind::kCompound: {
      std::string out = name() + "(";
      const auto& as = args();
      for (size_t i = 0; i < as.size(); ++i) {
        if (i > 0) out += ", ";
        out += as[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return sym_ == other.sym_;
    case Kind::kInt:
      return int_value_ == other.int_value_;
    case Kind::kCompound:
      return sym_ == other.sym_ && args() == other.args();
  }
  return false;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_);
  }
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return sym_ < other.sym_;  // lexicographic via resolution
    case Kind::kInt:
      return int_value_ < other.int_value_;
    case Kind::kCompound: {
      if (sym_ != other.sym_) return sym_ < other.sym_;
      const auto& a = args();
      const auto& b = other.args();
      if (a.size() != b.size()) return a.size() < b.size();
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
      }
      return false;
    }
  }
  return false;
}

size_t Term::Hash() const {
  size_t h = static_cast<size_t>(kind_);
  switch (kind_) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return CombineHash(h, sym_.Hash());
    case Kind::kInt:
      return CombineHash(h, std::hash<int64_t>()(int_value_));
    case Kind::kCompound: {
      h = CombineHash(h, sym_.Hash());
      for (const Term& a : args()) h = CombineHash(h, a.Hash());
      return h;
    }
  }
  return h;
}

}  // namespace multilog::datalog
