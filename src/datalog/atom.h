#ifndef MULTILOG_DATALOG_ATOM_H_
#define MULTILOG_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "datalog/term.h"

namespace multilog::datalog {

/// A predicate applied to terms: p(t1,...,tn). Predicates are identified
/// by name and arity; p/2 and p/3 are distinct.
class Atom {
 public:
  Atom() = default;
  Atom(std::string predicate, std::vector<Term> args)
      : predicate_(std::move(predicate)), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  /// "p/3" — the canonical predicate identifier.
  std::string PredicateId() const {
    return predicate_ + "/" + std::to_string(args_.size());
  }

  bool IsGround() const;
  void CollectVariables(std::vector<std::string>* out) const;

  std::string ToString() const;

  bool operator==(const Atom& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const;

  size_t Hash() const;

 private:
  std::string predicate_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Comparison builtins usable in rule bodies: X = Y, X != Y, X < Y, ...
/// Ordering comparisons require both sides to be ground integers or both
/// ground symbols (lexicographic) at evaluation time.
enum class Comparison { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ComparisonToString(Comparison op);

/// A body element: a possibly negated atom, or a builtin comparison.
class Literal {
 public:
  /// Positive or negated predicate literal.
  static Literal Positive(Atom atom);
  static Literal Negative(Atom atom);
  /// Builtin comparison literal.
  static Literal Builtin(Comparison op, Term lhs, Term rhs);

  bool is_builtin() const { return is_builtin_; }
  bool negated() const { return negated_; }
  const Atom& atom() const { return atom_; }

  Comparison comparison() const { return comparison_; }
  const Term& lhs() const { return atom_.args()[0]; }
  const Term& rhs() const { return atom_.args()[1]; }

  void CollectVariables(std::vector<std::string>* out) const {
    atom_.CollectVariables(out);
  }

  std::string ToString() const;

  bool operator==(const Literal& other) const {
    return is_builtin_ == other.is_builtin_ && negated_ == other.negated_ &&
           comparison_ == other.comparison_ && atom_ == other.atom_;
  }

 private:
  Literal() = default;

  bool is_builtin_ = false;
  bool negated_ = false;
  Comparison comparison_ = Comparison::kEq;
  Atom atom_;  // for builtins, a pseudo-atom holding {lhs, rhs}
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_ATOM_H_
