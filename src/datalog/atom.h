#ifndef MULTILOG_DATALOG_ATOM_H_
#define MULTILOG_DATALOG_ATOM_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "datalog/term.h"

namespace multilog::datalog {

/// The canonical predicate identifier "name/arity", packed as an
/// interned symbol plus a 32-bit arity - 8 bytes, integer equality and
/// hashing. Implicitly constructible from "p/3"-style strings so
/// string-literal call sites (lookups, comparisons) keep working;
/// `ToString()` re-renders the classic form. `operator<` matches the
/// ordering of the old string representation ("p/10" < "p/2").
struct PredicateId {
  Symbol name;
  uint32_t arity = 0;

  PredicateId() = default;
  PredicateId(Symbol name, uint32_t arity) : name(name), arity(arity) {}
  /// Parses "p/3". Text without a "/arity" suffix becomes name/0.
  PredicateId(std::string_view text);
  PredicateId(const std::string& text)
      : PredicateId(std::string_view(text)) {}
  PredicateId(const char* text) : PredicateId(std::string_view(text)) {}

  /// "p/3" - the classic rendering.
  std::string ToString() const;

  bool operator==(const PredicateId& o) const {
    return name == o.name && arity == o.arity;
  }
  bool operator!=(const PredicateId& o) const { return !(*this == o); }
  /// Lexicographic on the "p/3" rendering (so "p/10" < "p/2"), keeping
  /// every ordered container's iteration order identical to the
  /// string-keyed era.
  bool operator<(const PredicateId& o) const;

  size_t Hash() const {
    return name.Hash() ^ (static_cast<size_t>(arity) * 0x9e3779b9u);
  }
};

struct PredicateIdHash {
  size_t operator()(const PredicateId& p) const { return p.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const PredicateId& id);

/// A predicate applied to terms: p(t1,...,tn). Predicates are identified
/// by name and arity; p/2 and p/3 are distinct. The predicate name is
/// interned; equality and hashing are integer operations.
class Atom {
 public:
  Atom() = default;
  Atom(std::string_view predicate, std::vector<Term> args)
      : predicate_(Symbol::Intern(predicate)), args_(std::move(args)) {}
  Atom(Symbol predicate, std::vector<Term> args)
      : predicate_(predicate), args_(std::move(args)) {}

  const std::string& predicate() const { return predicate_.str(); }
  Symbol predicate_symbol() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  /// The packed name/arity identifier (no string building).
  datalog::PredicateId PredicateId() const {
    return {predicate_, static_cast<uint32_t>(args_.size())};
  }

  bool IsGround() const;
  void CollectVariables(std::vector<Symbol>* out) const;

  std::string ToString() const;

  bool operator==(const Atom& other) const {
    return predicate_ == other.predicate_ && args_ == other.args_;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  bool operator<(const Atom& other) const;

  size_t Hash() const;

 private:
  Symbol predicate_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Comparison builtins usable in rule bodies: X = Y, X != Y, X < Y, ...
/// Ordering comparisons require both sides to be ground integers or both
/// ground symbols (lexicographic) at evaluation time.
enum class Comparison { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ComparisonToString(Comparison op);

/// A body element: a possibly negated atom, or a builtin comparison.
class Literal {
 public:
  /// Positive or negated predicate literal.
  static Literal Positive(Atom atom);
  static Literal Negative(Atom atom);
  /// Builtin comparison literal.
  static Literal Builtin(Comparison op, Term lhs, Term rhs);

  bool is_builtin() const { return is_builtin_; }
  bool negated() const { return negated_; }
  const Atom& atom() const { return atom_; }

  Comparison comparison() const { return comparison_; }
  const Term& lhs() const { return atom_.args()[0]; }
  const Term& rhs() const { return atom_.args()[1]; }

  void CollectVariables(std::vector<Symbol>* out) const {
    atom_.CollectVariables(out);
  }

  std::string ToString() const;

  bool operator==(const Literal& other) const {
    return is_builtin_ == other.is_builtin_ && negated_ == other.negated_ &&
           comparison_ == other.comparison_ && atom_ == other.atom_;
  }

 private:
  Literal() = default;

  bool is_builtin_ = false;
  bool negated_ = false;
  Comparison comparison_ = Comparison::kEq;
  Atom atom_;  // for builtins, a pseudo-atom holding {lhs, rhs}
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_ATOM_H_
