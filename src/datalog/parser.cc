#include "datalog/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>

namespace multilog::datalog {

namespace {

/// A hand-rolled lexer/recursive-descent parser. Kept private to this
/// translation unit; the public API is the three Parse* functions.
class DatalogParser {
 public:
  explicit DatalogParser(std::string_view source) : src_(source) {}

  Result<ParsedProgram> ParseProgram() {
    ParsedProgram out;
    SkipWhitespaceAndComments();
    while (!AtEnd()) {
      if (TryConsume("?-")) {
        MULTILOG_ASSIGN_OR_RETURN(std::vector<Literal> goal, ParseBody());
        MULTILOG_RETURN_IF_ERROR(Expect("."));
        out.queries.push_back(std::move(goal));
      } else {
        MULTILOG_ASSIGN_OR_RETURN(Atom head, ParseAtom());
        std::vector<Literal> body;
        if (TryConsume(":-")) {
          MULTILOG_ASSIGN_OR_RETURN(body, ParseBody());
        }
        MULTILOG_RETURN_IF_ERROR(Expect("."));
        MULTILOG_ASSIGN_OR_RETURN(
            Clause clause, FinishClause(std::move(head), std::move(body)));
        out.program.AddClause(std::move(clause));
      }
      SkipWhitespaceAndComments();
    }
    return out;
  }

  Result<Term> ParseSingleTerm() {
    SkipWhitespaceAndComments();
    MULTILOG_ASSIGN_OR_RETURN(Term t, ParseTermInternal());
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing input after term");
    return t;
  }

  Result<std::vector<Literal>> ParseGoalList() {
    MULTILOG_ASSIGN_OR_RETURN(std::vector<Literal> body, ParseBody());
    SkipWhitespaceAndComments();
    TryConsume(".");
    SkipWhitespaceAndComments();
    if (!AtEnd()) return Error("trailing input after goal");
    return body;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool TryConsume(std::string_view token) {
    SkipWhitespaceAndComments();
    if (src_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status Expect(std::string_view token) {
    if (!TryConsume(token)) {
      return Error("expected '" + std::string(token) + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " +
                              message);
  }

  Result<std::string> ParseIdentifier() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    if (AtEnd() || !(std::isalpha(static_cast<unsigned char>(Peek())) ||
                     Peek() == '_')) {
      return Error("expected identifier");
    }
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      ++pos_;
    }
    return std::string(src_.substr(start, pos_ - start));
  }

  Result<Term> ParseTermInternal() {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Error("expected term");
    char c = Peek();

    if (c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != '\'') ++pos_;
      if (AtEnd()) return Error("unterminated quoted constant");
      std::string text(src_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      return Term::Sym(std::move(text));
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      const std::string digits(src_.substr(start, pos_ - start));
      errno = 0;
      const long long value = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Error("integer literal '" + digits + "' out of range");
      }
      return Term::Int(value);
    }

    MULTILOG_ASSIGN_OR_RETURN(std::string id, ParseIdentifier());
    bool is_var = std::isupper(static_cast<unsigned char>(id[0])) || id[0] == '_';
    if (is_var) {
      return Term::Var(std::move(id));
    }
    SkipWhitespaceAndComments();
    if (Peek() == '(') {
      ++pos_;
      std::vector<Term> args;
      MULTILOG_ASSIGN_OR_RETURN(Term first, ParseTermInternal());
      args.push_back(std::move(first));
      while (TryConsume(",")) {
        MULTILOG_ASSIGN_OR_RETURN(Term next, ParseTermInternal());
        args.push_back(std::move(next));
      }
      MULTILOG_RETURN_IF_ERROR(Expect(")"));
      return Term::Fn(std::move(id), std::move(args));
    }
    return Term::Sym(std::move(id));
  }

  /// Detects an aggregate head argument - count(T), sum(T), min(T),
  /// max(T) - and builds the corresponding aggregate clause; at most one
  /// is allowed. These functors are reserved in head argument positions.
  Result<Clause> FinishClause(Atom head, std::vector<Literal> body) {
    static constexpr struct {
      const char* name;
      AggregateOp op;
    } kOps[] = {{"count", AggregateOp::kCount},
                {"sum", AggregateOp::kSum},
                {"min", AggregateOp::kMin},
                {"max", AggregateOp::kMax}};

    std::optional<size_t> agg_pos;
    AggregateOp agg_op = AggregateOp::kCount;
    Term agg_term = Term::Sym("");
    for (size_t i = 0; i < head.args().size(); ++i) {
      const Term& arg = head.args()[i];
      if (!arg.IsCompound() || arg.args().size() != 1) continue;
      for (const auto& op : kOps) {
        if (arg.name() != op.name) continue;
        if (agg_pos.has_value()) {
          return Error("at most one aggregate argument per head");
        }
        agg_pos = i;
        agg_op = op.op;
        agg_term = arg.args()[0];
      }
    }
    if (!agg_pos.has_value()) {
      return Clause(std::move(head), std::move(body));
    }
    std::vector<Term> args = head.args();
    args[*agg_pos] = Term::Var("_agg");
    return Clause::MakeAggregate(Atom(head.predicate(), std::move(args)),
                                 std::move(body), *agg_pos, agg_op,
                                 std::move(agg_term));
  }

  Result<Atom> ParseAtom() {
    MULTILOG_ASSIGN_OR_RETURN(std::string pred, ParseIdentifier());
    if (std::isupper(static_cast<unsigned char>(pred[0])) || pred[0] == '_') {
      return Error("predicate name '" + pred +
                   "' must start with a lower-case letter");
    }
    std::vector<Term> args;
    SkipWhitespaceAndComments();
    if (Peek() == '(') {
      ++pos_;
      MULTILOG_ASSIGN_OR_RETURN(Term first, ParseTermInternal());
      args.push_back(std::move(first));
      while (TryConsume(",")) {
        MULTILOG_ASSIGN_OR_RETURN(Term next, ParseTermInternal());
        args.push_back(std::move(next));
      }
      MULTILOG_RETURN_IF_ERROR(Expect(")"));
    }
    return Atom(std::move(pred), std::move(args));
  }

  /// Parses one body element: `not atom`, an atom, or `term OP term`.
  Result<Literal> ParseLiteral() {
    SkipWhitespaceAndComments();
    size_t save = pos_;
    if (TryConsume("not") &&
        (AtEnd() || (!std::isalnum(static_cast<unsigned char>(Peek())) &&
                     Peek() != '_'))) {
      MULTILOG_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      return Literal::Negative(std::move(a));
    }
    pos_ = save;

    // Try `term OP term` first when an operator follows a term; otherwise
    // fall back to a plain atom. Strategy: parse a term, look for an
    // operator; if the term was actually an atom (compound/symbol) and no
    // operator follows, reinterpret.
    MULTILOG_ASSIGN_OR_RETURN(Term lhs, ParseTermInternal());
    SkipWhitespaceAndComments();

    struct OpToken {
      const char* text;
      Comparison op;
    };
    // Longest tokens first so "<=" is not read as "<".
    static constexpr OpToken kOps[] = {
        {"!=", Comparison::kNe}, {"<=", Comparison::kLe},
        {">=", Comparison::kGe}, {"=", Comparison::kEq},
        {"<", Comparison::kLt},  {">", Comparison::kGt},
    };
    for (const OpToken& op : kOps) {
      if (TryConsume(op.text)) {
        MULTILOG_ASSIGN_OR_RETURN(Term rhs, ParseTermInternal());
        return Literal::Builtin(op.op, std::move(lhs), std::move(rhs));
      }
    }

    // No operator: the term must be usable as an atom.
    if (lhs.IsCompound()) {
      return Literal::Positive(Atom(lhs.name(), lhs.args()));
    }
    if (lhs.IsSymbol()) {
      return Literal::Positive(Atom(lhs.name(), {}));
    }
    return Error("expected a predicate literal or comparison");
  }

  Result<std::vector<Literal>> ParseBody() {
    std::vector<Literal> body;
    MULTILOG_ASSIGN_OR_RETURN(Literal first, ParseLiteral());
    body.push_back(std::move(first));
    while (TryConsume(",")) {
      MULTILOG_ASSIGN_OR_RETURN(Literal next, ParseLiteral());
      body.push_back(std::move(next));
    }
    return body;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<ParsedProgram> ParseDatalog(std::string_view source) {
  return DatalogParser(source).ParseProgram();
}

Result<Term> ParseTerm(std::string_view source) {
  return DatalogParser(source).ParseSingleTerm();
}

Result<std::vector<Literal>> ParseGoal(std::string_view source) {
  return DatalogParser(source).ParseGoalList();
}

}  // namespace multilog::datalog
