#ifndef MULTILOG_DATALOG_TERM_H_
#define MULTILOG_DATALOG_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace multilog::datalog {

/// First-order terms over the signature F ∪ V of the paper's language L:
/// variables, symbolic constants, integer constants, and compound
/// (function) terms. Terms are immutable values; compound arguments are
/// shared via copy-on-write vectors.
class Term {
 public:
  enum class Kind { kVariable, kSymbol, kInt, kCompound };

  /// Named variable, e.g. Var("X").
  static Term Var(std::string name);
  /// Symbolic constant, e.g. Sym("avenger").
  static Term Sym(std::string name);
  /// Integer constant.
  static Term Int(int64_t value);
  /// Function term f(t1,...,tn); n may be 0 (then prefer Sym).
  static Term Fn(std::string functor, std::vector<Term> args);

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsSymbol() const { return kind_ == Kind::kSymbol; }
  bool IsInt() const { return kind_ == Kind::kInt; }
  bool IsCompound() const { return kind_ == Kind::kCompound; }
  bool IsConstant() const {
    return kind_ == Kind::kSymbol || kind_ == Kind::kInt;
  }

  /// Variable name, symbol text, or functor, depending on kind.
  const std::string& name() const { return name_; }
  int64_t int_value() const { return int_value_; }
  const std::vector<Term>& args() const;

  /// True when no variable occurs anywhere in the term.
  bool IsGround() const;

  /// Appends the names of all variables, in first-occurrence order,
  /// possibly with duplicates.
  void CollectVariables(std::vector<std::string>* out) const;

  /// Prolog-ish rendering: X, avenger, 42, f(a, X).
  std::string ToString() const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order over terms (kind, then content); gives deterministic
  /// output ordering everywhere.
  bool operator<(const Term& other) const;

  size_t Hash() const;

 private:
  Term(Kind kind, std::string name, int64_t int_value)
      : kind_(kind), name_(std::move(name)), int_value_(int_value) {}

  Kind kind_ = Kind::kSymbol;
  std::string name_;
  int64_t int_value_ = 0;
  std::shared_ptr<const std::vector<Term>> args_;  // only for kCompound
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_TERM_H_
