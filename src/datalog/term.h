#ifndef MULTILOG_DATALOG_TERM_H_
#define MULTILOG_DATALOG_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/symbol.h"

namespace multilog::datalog {

/// First-order terms over the signature F ∪ V of the paper's language L:
/// variables, symbolic constants, integer constants, and compound
/// (function) terms. Terms are immutable values; compound arguments are
/// shared via copy-on-write vectors.
///
/// Names (variable names, symbolic constants, functors) are interned:
/// a Term is a small tagged value holding a kind, a 32-bit Symbol id or
/// an inline int64, and (for compounds only) a shared argument vector.
/// Equality and hashing are integer operations; `operator<` resolves
/// symbols so ordering stays lexicographic (deterministic output
/// ordering everywhere depends on this). Strings appear only at the
/// parser/printer boundary.
class Term {
 public:
  enum class Kind { kVariable, kSymbol, kInt, kCompound };

  /// Named variable, e.g. Var("X").
  static Term Var(std::string_view name);
  static Term Var(Symbol name);
  /// Symbolic constant, e.g. Sym("avenger").
  static Term Sym(std::string_view name);
  static Term Sym(Symbol name);
  /// Integer constant.
  static Term Int(int64_t value);
  /// Function term f(t1,...,tn); n may be 0 (then prefer Sym).
  static Term Fn(std::string_view functor, std::vector<Term> args);
  static Term Fn(Symbol functor, std::vector<Term> args);

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsSymbol() const { return kind_ == Kind::kSymbol; }
  bool IsInt() const { return kind_ == Kind::kInt; }
  bool IsCompound() const { return kind_ == Kind::kCompound; }
  bool IsConstant() const {
    return kind_ == Kind::kSymbol || kind_ == Kind::kInt;
  }

  /// Variable name, symbol text, or functor, depending on kind
  /// (resolved from the symbol table; the reference is stable).
  const std::string& name() const { return sym_.str(); }
  /// The interned name; meaningless for kInt.
  Symbol symbol() const { return sym_; }
  int64_t int_value() const { return int_value_; }
  const std::vector<Term>& args() const;

  /// True when no variable occurs anywhere in the term.
  bool IsGround() const;

  /// Appends the names of all variables, in first-occurrence order,
  /// possibly with duplicates.
  void CollectVariables(std::vector<Symbol>* out) const;

  /// Prolog-ish rendering: X, avenger, 42, f(a, X).
  std::string ToString() const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order over terms (kind, then content); symbol content
  /// compares lexicographically, giving deterministic output ordering
  /// everywhere.
  bool operator<(const Term& other) const;

  size_t Hash() const;

 private:
  Term(Kind kind, Symbol sym, int64_t int_value)
      : kind_(kind), sym_(sym), int_value_(int_value) {}

  Kind kind_ = Kind::kSymbol;
  Symbol sym_;
  int64_t int_value_ = 0;
  std::shared_ptr<const std::vector<Term>> args_;  // only for kCompound
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_TERM_H_
