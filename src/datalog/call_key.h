#ifndef MULTILOG_DATALOG_CALL_KEY_H_
#define MULTILOG_DATALOG_CALL_KEY_H_

#include <cstdint>
#include <vector>

#include "datalog/atom.h"

namespace multilog::datalog {

/// Canonical key for a tabled call pattern: predicate + args with
/// variables alpha-renamed to v0, v1, ... in order of first occurrence,
/// encoded as a flat sequence of tagged 64-bit words. Alpha-equivalent
/// calls share a table, and no strings are built per call.
struct CallKey {
  std::vector<uint64_t> code;
  bool operator==(const CallKey& other) const { return code == other.code; }
};

struct CallKeyHash {
  size_t operator()(const CallKey& key) const;
};

/// Builds the key for `pattern`.
CallKey MakeCallKey(const Atom& pattern);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_CALL_KEY_H_
