#ifndef MULTILOG_DATALOG_MODEL_H_
#define MULTILOG_DATALOG_MODEL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/atom.h"

namespace multilog::datalog {

/// A set of ground atoms (an Herbrand interpretation), indexed for the
/// access patterns of bottom-up evaluation:
///  - membership test (duplicate elimination),
///  - scan of one predicate's facts,
///  - scan of the facts matching a (predicate, argument position,
///    constant) selection - used to drive joins from bound arguments.
class Model {
 public:
  Model() = default;

  /// Inserts a ground atom. Returns true if it was new. Precondition:
  /// atom.IsGround().
  bool Insert(const Atom& atom);

  bool Contains(const Atom& atom) const;

  /// All facts for "p/n", in insertion order. Empty vector if none.
  const std::vector<Atom>& FactsFor(const std::string& predicate_id) const;

  /// Facts for "p/n" whose argument at `position` equals `value`
  /// (a ground term). Uses the argument index; falls back to an empty
  /// result when the predicate is absent.
  std::vector<const Atom*> FactsMatching(const std::string& predicate_id,
                                         size_t position,
                                         const Term& value) const;

  /// Total number of facts.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Predicate ids present, sorted.
  std::vector<std::string> Predicates() const;

  /// All facts of all predicates, sorted, one per line - used by tests
  /// to compare models structurally.
  std::string ToString() const;

  bool operator==(const Model& other) const;

 private:
  struct Relation {
    std::vector<Atom> facts;
    std::unordered_set<Atom, AtomHash> set;
    // (position, term) -> indices into `facts`.
    std::unordered_map<size_t, std::unordered_map<Term, std::vector<size_t>,
                                                  TermHash>>
        index;
  };

  std::unordered_map<std::string, Relation> relations_;
  size_t size_ = 0;
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_MODEL_H_
