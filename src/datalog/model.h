#ifndef MULTILOG_DATALOG_MODEL_H_
#define MULTILOG_DATALOG_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/atom.h"

namespace multilog::datalog {

/// A non-owning view of the facts selected by one argument-index
/// posting list: resolves indices into the relation's fact vector on
/// the fly, so a join probe allocates nothing. Iterators yield
/// `const Atom&`. Invalidated by any mutation of the owning Model.
class FactSlice {
 public:
  FactSlice() = default;
  FactSlice(const std::vector<Atom>* facts, const std::vector<size_t>* ids)
      : facts_(facts), ids_(ids) {}

  size_t size() const { return ids_ == nullptr ? 0 : ids_->size(); }
  bool empty() const { return size() == 0; }
  const Atom& operator[](size_t i) const { return (*facts_)[(*ids_)[i]]; }

  class iterator {
   public:
    iterator(const FactSlice* slice, size_t i) : slice_(slice), i_(i) {}
    const Atom& operator*() const { return (*slice_)[i_]; }
    const Atom* operator->() const { return &(*slice_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const FactSlice* slice_;
    size_t i_;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, size()); }

 private:
  const std::vector<Atom>* facts_ = nullptr;
  const std::vector<size_t>* ids_ = nullptr;
};

/// A set of ground atoms (an Herbrand interpretation), indexed for the
/// access patterns of bottom-up evaluation:
///  - membership test (duplicate elimination),
///  - scan of one predicate's facts,
///  - scan of the facts matching a (predicate, argument position,
///    constant) selection - used to drive joins from bound arguments.
///
/// Relations are keyed by interned PredicateId and argument indexes by
/// (u32 position, Term) with integer hashing; no strings are touched
/// on the insert or probe paths.
class Model {
 public:
  Model() = default;

  /// Inserts a ground atom. Returns true if it was new. Precondition:
  /// atom.IsGround().
  bool Insert(const Atom& atom);

  /// Removes a batch of ground atoms, ignoring ones not present, and
  /// returns how many were actually removed. Affected relations are
  /// rebuilt once per call (facts vector compacted in insertion order,
  /// posting lists reindexed), so a delta of k facts costs O(sum of the
  /// touched relations' sizes), not O(k * relation). Invalidates every
  /// FactSlice and FactsFor reference into the touched relations.
  size_t RemoveFacts(const std::vector<Atom>& atoms);

  bool Contains(const Atom& atom) const;

  /// All facts for p/n, in insertion order. Empty vector if none.
  /// (String call sites like FactsFor("edge/2") convert implicitly.)
  const std::vector<Atom>& FactsFor(const PredicateId& id) const;

  /// Facts for p/n whose argument at `position` equals `value` (a
  /// ground term), as a zero-allocation view over the posting list.
  /// Empty slice when the predicate or value is absent.
  FactSlice FactsMatching(const PredicateId& id, size_t position,
                          const Term& value) const;

  /// Total number of facts.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Predicate ids present, rendered "p/n", sorted.
  std::vector<std::string> Predicates() const;

  /// All facts of all predicates, sorted, one per line - used by tests
  /// to compare models structurally.
  std::string ToString() const;

  bool operator==(const Model& other) const;

 private:
  struct Relation {
    std::vector<Atom> facts;
    std::unordered_set<Atom, AtomHash> set;
    // One posting map per argument position: term -> indices into
    // `facts`. Sized to the relation's arity on first insert.
    std::vector<std::unordered_map<Term, std::vector<size_t>, TermHash>>
        index;
  };

  std::unordered_map<PredicateId, Relation, PredicateIdHash> relations_;
  size_t size_ = 0;
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_MODEL_H_
