#include "datalog/atom.h"

#include <functional>
#include <ostream>

namespace multilog::datalog {

PredicateId::PredicateId(std::string_view text) {
  size_t slash = text.rfind('/');
  if (slash != std::string_view::npos && slash + 1 < text.size()) {
    uint32_t parsed = 0;
    bool numeric = true;
    for (size_t i = slash + 1; i < text.size(); ++i) {
      char c = text[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      parsed = parsed * 10 + static_cast<uint32_t>(c - '0');
    }
    if (numeric) {
      name = Symbol::Intern(text.substr(0, slash));
      arity = parsed;
      return;
    }
  }
  name = Symbol::Intern(text);
  arity = 0;
}

std::string PredicateId::ToString() const {
  return name.str() + "/" + std::to_string(arity);
}

bool PredicateId::operator<(const PredicateId& o) const {
  if (name != o.name) return name.str() < o.name.str();
  if (arity == o.arity) return false;
  // The old representation compared "p/10" < "p/2" as strings; keep
  // that order so sorted listings are byte-identical.
  return std::to_string(arity) < std::to_string(o.arity);
}

std::ostream& operator<<(std::ostream& os, const PredicateId& id) {
  return os << id.ToString();
}

bool Atom::IsGround() const {
  for (const Term& t : args_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::vector<Symbol>* out) const {
  for (const Term& t : args_) t.CollectVariables(out);
}

std::string Atom::ToString() const {
  if (args_.empty()) return predicate();
  std::string out = predicate() + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

bool Atom::operator<(const Atom& other) const {
  if (predicate_ != other.predicate_) {
    return predicate_ < other.predicate_;  // lexicographic via resolution
  }
  if (args_.size() != other.args_.size()) {
    return args_.size() < other.args_.size();
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    if (args_[i] != other.args_[i]) return args_[i] < other.args_[i];
  }
  return false;
}

size_t Atom::Hash() const {
  size_t h = predicate_.Hash();
  for (const Term& t : args_) {
    h ^= t.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

const char* ComparisonToString(Comparison op) {
  switch (op) {
    case Comparison::kEq:
      return "=";
    case Comparison::kNe:
      return "!=";
    case Comparison::kLt:
      return "<";
    case Comparison::kLe:
      return "<=";
    case Comparison::kGt:
      return ">";
    case Comparison::kGe:
      return ">=";
  }
  return "?";
}

Literal Literal::Positive(Atom atom) {
  Literal l;
  l.atom_ = std::move(atom);
  return l;
}

Literal Literal::Negative(Atom atom) {
  Literal l;
  l.atom_ = std::move(atom);
  l.negated_ = true;
  return l;
}

Literal Literal::Builtin(Comparison op, Term lhs, Term rhs) {
  Literal l;
  l.is_builtin_ = true;
  l.comparison_ = op;
  l.atom_ = Atom(ComparisonToString(op), {std::move(lhs), std::move(rhs)});
  return l;
}

std::string Literal::ToString() const {
  if (is_builtin_) {
    return lhs().ToString() + " " + ComparisonToString(comparison_) + " " +
           rhs().ToString();
  }
  if (negated_) return "not " + atom_.ToString();
  return atom_.ToString();
}

}  // namespace multilog::datalog
