#include "datalog/atom.h"

#include <functional>

namespace multilog::datalog {

bool Atom::IsGround() const {
  for (const Term& t : args_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::vector<std::string>* out) const {
  for (const Term& t : args_) t.CollectVariables(out);
}

std::string Atom::ToString() const {
  if (args_.empty()) return predicate_;
  std::string out = predicate_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

bool Atom::operator<(const Atom& other) const {
  if (predicate_ != other.predicate_) return predicate_ < other.predicate_;
  if (args_.size() != other.args_.size()) {
    return args_.size() < other.args_.size();
  }
  for (size_t i = 0; i < args_.size(); ++i) {
    if (args_[i] != other.args_[i]) return args_[i] < other.args_[i];
  }
  return false;
}

size_t Atom::Hash() const {
  size_t h = std::hash<std::string>()(predicate_);
  for (const Term& t : args_) {
    h ^= t.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

const char* ComparisonToString(Comparison op) {
  switch (op) {
    case Comparison::kEq:
      return "=";
    case Comparison::kNe:
      return "!=";
    case Comparison::kLt:
      return "<";
    case Comparison::kLe:
      return "<=";
    case Comparison::kGt:
      return ">";
    case Comparison::kGe:
      return ">=";
  }
  return "?";
}

Literal Literal::Positive(Atom atom) {
  Literal l;
  l.atom_ = std::move(atom);
  return l;
}

Literal Literal::Negative(Atom atom) {
  Literal l;
  l.atom_ = std::move(atom);
  l.negated_ = true;
  return l;
}

Literal Literal::Builtin(Comparison op, Term lhs, Term rhs) {
  Literal l;
  l.is_builtin_ = true;
  l.comparison_ = op;
  l.atom_ = Atom(ComparisonToString(op), {std::move(lhs), std::move(rhs)});
  return l;
}

std::string Literal::ToString() const {
  if (is_builtin_) {
    return lhs().ToString() + " " + ComparisonToString(comparison_) + " " +
           rhs().ToString();
  }
  if (negated_) return "not " + atom_.ToString();
  return atom_.ToString();
}

}  // namespace multilog::datalog
