#ifndef MULTILOG_DATALOG_TOPDOWN_H_
#define MULTILOG_DATALOG_TOPDOWN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "datalog/call_key.h"
#include "datalog/model.h"
#include "datalog/program.h"
#include "datalog/stratify.h"
#include "datalog/unify.h"

namespace multilog::datalog {

/// Options for the top-down engine.
struct TopDownOptions {
  /// Maximum outer fixpoint passes over the answer tables (each pass can
  /// only grow the tables, so for function-free programs convergence is
  /// guaranteed well before any sane bound).
  size_t max_passes = 1024;
  /// Hard cap on the total number of tabled answers.
  size_t max_answers = 10'000'000;
};

/// Statistics from a Solve call.
struct TopDownStats {
  size_t passes = 0;
  size_t calls = 0;           // SLD expansions attempted
  size_t tabled_answers = 0;  // total answers across all call tables
};

/// A goal-directed, tabled SLD(NF) prover - the analogue of CORAL's
/// pipelined evaluation mode. Unlike plain SLD it terminates on
/// left-recursive programs: answers are memoized per call pattern, a call
/// already on the resolution path consumes only previously tabled
/// answers, and an outer fixpoint re-runs the query until the tables
/// stop growing.
///
/// Negation is handled by complete evaluation of the (necessarily
/// ground, necessarily lower-stratum) negated subgoal, so the program
/// must be stratifiable - checked at construction.
class TopDownEngine {
 public:
  /// Validates safety and stratifiability of `program` (call ok() after).
  explicit TopDownEngine(Program program);

  /// Construction-time validation status.
  const Status& status() const { return status_; }

  /// Solves a conjunctive goal. Returns answer substitutions restricted
  /// to the goal's variables, deduplicated, deterministically ordered.
  /// Tables persist across Solve calls (monotone growth).
  Result<std::vector<Substitution>> Solve(const std::vector<Literal>& goal,
                                          const TopDownOptions& options = {});

  const TopDownStats& stats() const { return stats_; }

 private:
  size_t TotalTableSize() const;

  Status SolveAtomOnce(const Atom& pattern, size_t depth,
                       const TopDownOptions& options);

  Status SolveBody(const std::vector<Literal>& body, size_t index,
                   const Substitution& subst, size_t depth,
                   const TopDownOptions& options,
                   std::vector<Substitution>* out);

  Program program_;
  Status status_;
  std::unordered_map<PredicateId, std::vector<const Clause*>,
                     PredicateIdHash>
      clauses_by_pred_;

  struct AnswerTable {
    std::vector<Atom> answers;
    std::unordered_set<Atom, AtomHash> set;
  };
  std::unordered_map<CallKey, AnswerTable, CallKeyHash> tables_;
  std::unordered_set<CallKey, CallKeyHash> active_;
  int rename_counter_ = 0;
  TopDownStats stats_;
};

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_TOPDOWN_H_
