#ifndef MULTILOG_DATALOG_MAGIC_H_
#define MULTILOG_DATALOG_MAGIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/symbol.h"
#include "datalog/eval.h"
#include "datalog/model.h"
#include "datalog/program.h"
#include "datalog/unify.h"

namespace multilog::datalog {

/// The magic-sets rewriting - CORAL's signature evaluation technique:
/// specializes a program to a query's binding pattern so that bottom-up
/// evaluation only derives facts relevant to the query, combining
/// bottom-up's termination/duplicate handling with top-down's
/// goal-direction.
///
/// Supported fragment: the part of the program *reachable from the
/// query* must be positive and aggregate-free (magic sets under
/// stratified negation needs the full supplementary-magic machinery and
/// is out of scope); unreachable negation/aggregates are simply never
/// visited. Builtins are allowed and treated as filters.
///
/// The rewriting is the textbook one (Bancilhon/Maier/Sagiv/Ullman):
///  - predicates are *adorned* with their binding pattern ("bf" = first
///    argument bound, second free), propagated left-to-right through
///    rule bodies (sideways information passing);
///  - each adorned IDB predicate p^a gets a magic predicate
///    magic__p__a(bound args) seeding the relevant calls;
///  - every rule is guarded by the magic of its head, and each IDB body
///    literal contributes a magic rule for its own calls;
///  - EDB predicates (fact-only: every defining clause is bodyless)
///    pass through unadorned, with exactly the reachable predicates'
///    facts copied verbatim, so joins against them keep the model's
///    argument indexes instead of going through per-fact guard rules.
struct MagicProgram {
  /// The rewritten program (adorned + magic rules + seed + EDB facts).
  Program program;
  /// The adorned query atom to match against the evaluated model.
  Atom query;
};

/// Rewrites `program` for `query` (one atom; its constant arguments
/// become the bound pattern). Returns InvalidProgram when the fragment
/// reachable from the query contains negation or aggregates. A query on
/// an unknown or fact-only predicate yields the program unchanged (and
/// so the same answers as plain evaluation).
Result<MagicProgram> MagicTransform(const Program& program,
                                    const Atom& query);

/// Convenience: rewrite, evaluate bottom-up, and return the answers to
/// `query` as substitutions (restricted to the query's variables,
/// deduplicated, sorted) - a drop-in alternative to
/// Evaluate + QueryModel for positive programs with selective queries.
/// `options` threads through evaluation (cancel token, emit budget,
/// num_threads) and the answer match (cancel token).
Result<std::vector<Substitution>> MagicSolve(const Program& program,
                                             const Atom& query,
                                             const EvalOptions& options = {});

/// A conjunctive goal abstracted over its constants, so one compiled
/// plan serves every goal with the same shape and binding pattern. Each
/// fully-ground argument of a positive non-builtin atom - and each
/// fully-ground side of a builtin - is replaced by a fresh placeholder
/// variable (__mp0, __mp1, ...) and recorded in `params`; everything
/// else is kept verbatim.
struct MagicGoalPattern {
  /// The goal with ground positions replaced by placeholder variables.
  std::vector<Literal> literals;
  /// The replaced ground terms, in placeholder order. ExecuteMagicPlan
  /// takes a vector of the same length to instantiate the plan.
  std::vector<Term> params;
  /// The placeholder variables, parallel to `params`.
  std::vector<Symbol> param_vars;
  /// Canonical text of `literals` - the plan-cache key (interned by the
  /// engine): two goals share a plan iff their signatures are equal.
  std::string signature;
  /// True when some positive non-builtin atom had a fully-ground
  /// argument - i.e. the binding pattern is selective enough for magic
  /// to help. All-free goals should use plain evaluation.
  bool any_bound = false;
};

/// Abstracts `goal` over its constants. Pure and deterministic - the
/// same goal shape always yields the same signature.
MagicGoalPattern ParameterizeGoal(const std::vector<Literal>& goal);

/// A compiled, parameterized magic plan: the rewritten program prepared
/// once (safety-checked, stratified, body-reordered), plus what
/// ExecuteMagicPlan needs to instantiate it - the magic seed predicate
/// whose single fact carries the parameters, and the adorned query atom
/// whose first `num_params` arguments are the placeholder positions.
struct MagicPlan {
  PreparedProgram prepared;
  Symbol seed_predicate;
  Atom query;
  size_t num_params = 0;
};

/// Compiles `pattern` against `program`: synthesizes a `__goal` rule
/// for the conjunctive goal, rewrites program + __goal with magic sets
/// (the placeholders are the bound positions), and prepares the result
/// for repeated evaluation. Returns InvalidProgram when the reachable
/// fragment has negation/aggregates or the synthesized rule is unsafe
/// (a goal variable appearing only under negation or in builtins) -
/// callers fall back to full evaluation.
Result<MagicPlan> CompileMagicPlan(const Program& program,
                                   const MagicGoalPattern& pattern,
                                   const EvalOptions& options = {});

/// Instantiates and runs a compiled plan: seeds the magic fixpoint with
/// `params` (must match plan.num_params; typically
/// MagicGoalPattern::params from the goal being served), evaluates, and
/// returns the answers exactly as QueryModel would - restricted to the
/// goal's variables, deduplicated, sorted - so plan answers are
/// byte-identical to the full Evaluate + QueryModel path.
Result<std::vector<Substitution>> ExecuteMagicPlan(
    const MagicPlan& plan, const std::vector<Term>& params,
    const EvalOptions& options = {}, EvalStats* stats = nullptr);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_MAGIC_H_
