#ifndef MULTILOG_DATALOG_MAGIC_H_
#define MULTILOG_DATALOG_MAGIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/model.h"
#include "datalog/program.h"
#include "datalog/unify.h"

namespace multilog::datalog {

/// The magic-sets rewriting - CORAL's signature evaluation technique:
/// specializes a program to a query's binding pattern so that bottom-up
/// evaluation only derives facts relevant to the query, combining
/// bottom-up's termination/duplicate handling with top-down's
/// goal-direction.
///
/// Supported fragment: positive programs (no negation; magic sets under
/// stratified negation needs the full supplementary-magic machinery and
/// is out of scope). Builtins are allowed and treated as filters.
///
/// The rewriting is the textbook one (Bancilhon/Maier/Sagiv/Ullman):
///  - predicates are *adorned* with their binding pattern ("bf" = first
///    argument bound, second free), propagated left-to-right through
///    rule bodies (sideways information passing);
///  - each adorned IDB predicate p^a gets a magic predicate
///    magic_p_a(bound args) seeding the relevant calls;
///  - every rule is guarded by the magic of its head, and each IDB body
///    literal contributes a magic rule for its own calls.
struct MagicProgram {
  /// The rewritten program (adorned + magic + seed).
  Program program;
  /// The adorned query atom to match against the evaluated model.
  Atom query;
};

/// Rewrites `program` for `query` (one atom; its constant arguments
/// become the bound pattern). Returns InvalidProgram for programs with
/// negation or for queries on unknown predicates... an unknown predicate
/// simply yields an empty program and no answers, mirroring plain
/// evaluation, so only negation errors.
Result<MagicProgram> MagicTransform(const Program& program,
                                    const Atom& query);

/// Convenience: rewrite, evaluate bottom-up, and return the answers to
/// `query` as substitutions (restricted to the query's variables,
/// deduplicated, sorted) - a drop-in alternative to
/// Evaluate + QueryModel for positive programs with selective queries.
Result<std::vector<Substitution>> MagicSolve(const Program& program,
                                             const Atom& query);

}  // namespace multilog::datalog

#endif  // MULTILOG_DATALOG_MAGIC_H_
