#include "replication/log_shipper.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "server/json.h"
#include "server/protocol.h"
#include "storage/wal.h"

namespace multilog::replication {

namespace {

using server::Json;
using server::WriteFrame;

Status SendSnapshot(int fd, uint64_t seqno, std::string source) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  frame.Set("kind", Json::Str("snapshot"));
  frame.Set("seqno", Json::Int(static_cast<int64_t>(seqno)));
  frame.Set("source", Json::Str(std::move(source)));
  return WriteFrame(fd, frame.Serialize());
}

Status SendRecord(int fd, const storage::WalRecord& record) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  frame.Set("kind", Json::Str("record"));
  frame.Set("rtype",
            Json::Str(record.type == storage::WalRecordType::kRetract
                          ? "retract"
                          : "assert"));
  frame.Set("seqno", Json::Int(static_cast<int64_t>(record.seqno)));
  frame.Set("level", Json::Str(record.level));
  frame.Set("fact", Json::Str(record.fact));
  return WriteFrame(fd, frame.Serialize());
}

Status SendHeartbeat(int fd, uint64_t next_seqno) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  frame.Set("kind", Json::Str("heartbeat"));
  frame.Set("next_seqno", Json::Int(static_cast<int64_t>(next_seqno)));
  return WriteFrame(fd, frame.Serialize());
}

/// Best-effort terminal error frame; the stream is over either way.
void SendError(int fd, const Status& status) {
  (void)WriteFrame(fd, server::ErrorResponse(status).Serialize());
}

}  // namespace

// A send failure below means the replica hung up (EPIPE/ECONNRESET on a
// loopback socket); that is normal replica churn, reported as OK so the
// server does not log every replica restart as a stream error.

Status ServeReplication(int fd, ml::Engine* engine, uint64_t from_seqno,
                        const std::atomic<bool>* stop,
                        const LogShipperOptions& options) {
  const ml::StorageCounters storage = engine->StorageStats();
  if (!storage.attached) {
    const Status err = Status::InvalidArgument(
        "replication requires a durable primary (start multilogd with "
        "--data-dir)");
    SendError(fd, err);
    return err;
  }

  // `pos` is the replication cursor: the last seqno the replica is known
  // to hold. Every path below ships strictly increasing seqnos past it.
  uint64_t pos = from_seqno;
  auto last_heartbeat = std::chrono::steady_clock::now();

  // Outer loop: one iteration per snapshot-staleness check. Entered at
  // stream start and again whenever the WAL resets under the reader.
  while (!stop->load(std::memory_order_relaxed)) {
    // A checkpoint folds records up to snapshot_seqno out of the WAL.
    // If the replica's position predates that fold, the WAL alone can
    // no longer produce those records - ship a full snapshot instead.
    if (pos < engine->StorageStats().snapshot_seqno) {
      uint64_t snap_seqno = 0;
      std::string source = engine->DumpSource(&snap_seqno);
      if (!SendSnapshot(fd, snap_seqno, std::move(source)).ok()) {
        return Status::OK();
      }
      pos = snap_seqno;
      last_heartbeat = std::chrono::steady_clock::now();
    }

    MULTILOG_ASSIGN_OR_RETURN(
        storage::WalReader reader,
        storage::WalReader::Open(storage.dir + "/wal.log"));

    // Inner loop: tail the WAL until it resets (re-check the snapshot)
    // or the stream ends.
    while (!stop->load(std::memory_order_relaxed)) {
      auto item_or = reader.Next();
      if (!item_or.ok()) {
        // Non-tail damage or an I/O failure: the feed cannot be trusted
        // past this point. Tell the replica why before hanging up; it
        // will reconnect and (after the primary repairs or re-snapshots)
        // catch up from its persisted position.
        SendError(fd, item_or.status());
        return std::move(item_or).status();
      }
      const storage::WalReader::Item item = std::move(item_or).value();
      if (item.event == storage::WalReader::Event::kReset) {
        break;  // checkpoint: back to the snapshot-staleness check
      }
      if (item.event == storage::WalReader::Event::kEndOfPrefix) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_heartbeat >=
            std::chrono::milliseconds(options.heartbeat_ms)) {
          // next_seqno from the engine, not the reader: the reader may
          // lag the committed tip by the frames still in its buffer.
          if (!SendHeartbeat(fd, engine->AppliedSeqno() + 1).ok()) {
            return Status::OK();
          }
          last_heartbeat = now;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.poll_ms));
        continue;
      }
      if (item.record.seqno <= pos) continue;  // replica already has it
      if (!SendRecord(fd, item.record).ok()) return Status::OK();
      pos = item.record.seqno;
      last_heartbeat = std::chrono::steady_clock::now();
    }
  }
  return Status::OK();
}

}  // namespace multilog::replication
