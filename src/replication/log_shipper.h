#ifndef MULTILOG_REPLICATION_LOG_SHIPPER_H_
#define MULTILOG_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "multilog/engine.h"

namespace multilog::replication {

/// # Primary-side log shipping
///
/// ServeReplication turns one accepted connection into a replication
/// stream: the server calls it on the connection's reader thread when a
/// `replicate` request arrives, and it writes frames until the peer
/// disconnects, the server stops, or the stream hits unrecoverable
/// damage. The catch-up state machine (DESIGN.md §16):
///
///   1. **Snapshot** - when the replica's position predates the
///      primary's on-disk snapshot, the live WAL cannot cover the gap
///      (a checkpoint folded it away), so the primary ships a full
///      {snapshot, seqno} pair: the engine's canonical dump and its
///      applied seqno, read under one hold of the database lock.
///   2. **Tail** - a WalReader follows the live WAL, shipping every
///      mutation record with seqno past the replica's position. A torn
///      in-flight tail frame reads as "end of prefix"; the shipper
///      polls. A checkpoint truncating the WAL under the reader reads
///      as a reset, which loops back to step 1's staleness check - the
///      records between the reader's position and the new snapshot
///      either were already shipped (continue tailing) or now live only
///      in the snapshot (ship it).
///   3. **Heartbeat** - while the tail is dry, periodic
///      {heartbeat, next_seqno} frames let the replica measure lag and
///      distinguish "primary idle" from "link dead".
///
/// The WAL is the replication log: records are shipped exactly as PR 4
/// framed them (seqno, level, canonical fact text), so a replica's
/// local WAL ends up frame-for-frame equivalent to the primary's and
/// its database byte-identical at every applied seqno.
struct LogShipperOptions {
  /// Sleep between WAL polls while the tail is dry.
  int64_t poll_ms = 2;
  /// Idle heartbeat period.
  int64_t heartbeat_ms = 250;
};

/// Streams the replication feed to `fd` starting after `from_seqno`
/// (ship records with seqno > from_seqno). Blocks until `stop` is set,
/// the peer disconnects (reported as OK - replica churn is normal), or
/// an unrecoverable error (non-durable engine, WAL damage). The caller
/// owns the fd and closes it afterwards.
Status ServeReplication(int fd, ml::Engine* engine, uint64_t from_seqno,
                        const std::atomic<bool>* stop,
                        const LogShipperOptions& options = {});

}  // namespace multilog::replication

#endif  // MULTILOG_REPLICATION_LOG_SHIPPER_H_
