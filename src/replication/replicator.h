#ifndef MULTILOG_REPLICATION_REPLICATOR_H_
#define MULTILOG_REPLICATION_REPLICATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "multilog/engine.h"

namespace multilog::replication {

/// # Replica-side apply loop
///
/// A Replicator owns one background thread that keeps a `replicate`
/// stream open to the primary and applies what arrives through the
/// engine's replication entry points:
///
///  - snapshot frames -> Engine::InstallSnapshot (skipped when the
///    replica already holds that seqno - reconnects always start the
///    stream from our persisted position, so a snapshot is only
///    installed when the primary checkpointed past us);
///  - record frames  -> Engine::ApplyReplicated, which persists the
///    record to the replica's own WAL before applying, so a restarted
///    replica resumes from its local applied seqno instead of
///    refetching history;
///  - heartbeat frames -> remembered as the primary's next_seqno, the
///    other half of the replication-lag gauge.
///
/// Connection loss is the normal case, not the error case: every
/// failure path records the error in Stats, sleeps an exponential
/// backoff (reset on the first healthy frame), and reconnects from
/// `engine->AppliedSeqno()`. Stop() interrupts both the blocking read
/// (shutdown(2) on the socket) and the backoff sleep (condition
/// variable), so replica shutdown is prompt.
///
/// Thread-safety: Start/Stop from one controlling thread; GetStats from
/// anywhere.
class Replicator {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// First reconnect delay; doubles per consecutive failure.
    int64_t backoff_initial_ms = 100;
    int64_t backoff_max_ms = 2000;
  };

  /// A point-in-time copy of the replication link's state.
  struct Stats {
    bool connected = false;
    uint64_t applied_seqno = 0;       // mirror of engine->AppliedSeqno()
    uint64_t primary_next_seqno = 0;  // 0 until the first heartbeat
    uint64_t records_applied = 0;
    uint64_t snapshots_installed = 0;
    uint64_t reconnects = 0;  // connection attempts after the first
    /// Most recent *unresolved* failure; cleared on the first healthy
    /// frame after a reconnect, "" while the link is fine.
    std::string last_error;
  };

  /// The engine must outlive the Replicator. Call Start() to begin.
  Replicator(ml::Engine* engine, Options options);
  ~Replicator();  // calls Stop()

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Spawns the apply-loop thread. Call once.
  void Start();

  /// Signals the thread, interrupts any blocking read or backoff sleep,
  /// and joins. Idempotent.
  void Stop();

  Stats GetStats() const;

 private:
  void Run();
  /// One connection's lifetime: dial, request the stream from our
  /// applied seqno, apply frames until the link drops or Stop().
  /// The returned status is the reason the connection ended (recorded
  /// as last_error when not OK).
  Status RunOnce();
  /// Interruptible sleep; returns false when Stop() fired.
  bool SleepBackoff(int64_t ms);

  ml::Engine* engine_;
  Options options_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  /// Set when an apply failed (local state diverged): the next stream
  /// request asks from seqno 0 so the primary ships a fresh snapshot.
  /// Only touched on the replicator thread - no lock.
  bool resync_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;    // wakes SleepBackoff on Stop()
  int live_fd_ = -1;              // the in-flight connection, for Stop()
  Stats stats_;
};

}  // namespace multilog::replication

#endif  // MULTILOG_REPLICATION_REPLICATOR_H_
