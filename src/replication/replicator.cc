#include "replication/replicator.h"

#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "server/client.h"
#include "server/json.h"
#include "storage/wal.h"

namespace multilog::replication {

namespace {

using server::Json;

/// Decodes one stream frame into a WalRecord. The shipper built the
/// frame from a decoded record, so a shape mismatch here means a
/// protocol bug or a non-multilogd peer - Internal either way.
Result<storage::WalRecord> RecordFromFrame(const Json& frame) {
  storage::WalRecord record;
  const std::string rtype = frame.GetString("rtype");
  if (rtype == "assert") {
    record.type = storage::WalRecordType::kAssert;
  } else if (rtype == "retract") {
    record.type = storage::WalRecordType::kRetract;
  } else {
    return Status::Internal("record frame has unknown rtype '" + rtype + "'");
  }
  const Json* seqno = frame.Find("seqno");
  if (seqno == nullptr || !seqno->is_int() || seqno->int_value() <= 0) {
    return Status::Internal("record frame is missing a positive 'seqno'");
  }
  record.seqno = static_cast<uint64_t>(seqno->int_value());
  record.level = frame.GetString("level");
  record.fact = frame.GetString("fact");
  if (record.level.empty() || record.fact.empty()) {
    return Status::Internal("record frame is missing 'level' or 'fact'");
  }
  return record;
}

}  // namespace

Replicator::Replicator(ml::Engine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Replicator::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Unblock the reader thread if it is parked in read(2) on the
    // stream: shutdown makes the pending read return 0 without racing
    // the Client's own close of the descriptor.
    if (live_fd_ >= 0) ::shutdown(live_fd_, SHUT_RDWR);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Replicator::Stats Replicator::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats copy = stats_;
  copy.applied_seqno = engine_->AppliedSeqno();
  return copy;
}

bool Replicator::SleepBackoff(int64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return stopping_.load(std::memory_order_relaxed);
  });
  return !stopping_.load(std::memory_order_relaxed);
}

void Replicator::Run() {
  int64_t backoff = options_.backoff_initial_ms;
  bool first_attempt = true;
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_attempt) ++stats_.reconnects;
    }
    first_attempt = false;
    const Status end = RunOnce();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.connected = false;
      live_fd_ = -1;
      if (!end.ok()) stats_.last_error = end.ToString();
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    // A connection that ended cleanly after healthy frames reset the
    // backoff inside RunOnce; repeated dial failures keep doubling it.
    if (!SleepBackoff(backoff)) break;
    backoff = std::min(backoff * 2, options_.backoff_max_ms);
    if (end.ok()) backoff = options_.backoff_initial_ms;
  }
}

Status Replicator::RunOnce() {
  auto client_or = server::Client::Connect(options_.host, options_.port);
  if (!client_or.ok()) return std::move(client_or).status();
  server::Client client = std::move(client_or).value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) return Status::OK();
    live_fd_ = client.fd();
    stats_.connected = true;
  }

  // Ask for everything past what we hold. AppliedSeqno survives replica
  // restarts (it recovers from the local snapshot + WAL), so a bounce
  // resumes here instead of refetching history. After an apply failure
  // (engine paranoia check tripped: our state diverged from the
  // primary's), ask from 0 instead - the primary answers a stale cursor
  // with a full snapshot, and InstallSnapshot replaces our database
  // wholesale, healing the divergence.
  Json request = Json::Object();
  request.Set("cmd", Json::Str("replicate"));
  request.Set("from_seqno",
              Json::Int(resync_ ? 0
                                : static_cast<int64_t>(engine_->AppliedSeqno())));
  MULTILOG_RETURN_IF_ERROR(client.SendRaw(request.Serialize()));

  bool healthy = false;  // any intact frame proves the link works
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto raw_or = client.ReadRaw();
    if (!raw_or.ok()) {
      // EOF or a torn frame: the link dropped. After healthy traffic
      // that is ordinary churn (primary restart), not an error state.
      if (healthy || stopping_.load(std::memory_order_relaxed)) {
        return Status::OK();
      }
      return std::move(raw_or).status();
    }
    MULTILOG_ASSIGN_OR_RETURN(Json frame, Json::Parse(*raw_or));
    if (!frame.GetBool("ok")) {
      return Status::Internal("primary ended the stream: " +
                              frame.GetString("error", "unknown error"));
    }
    const std::string kind = frame.GetString("kind");
    if (kind == "snapshot") {
      const Json* seqno = frame.Find("seqno");
      const Json* source = frame.Find("source");
      if (seqno == nullptr || !seqno->is_int() || seqno->int_value() < 0 ||
          source == nullptr || !source->is_string()) {
        return Status::Internal("malformed snapshot frame");
      }
      const uint64_t snap_seqno = static_cast<uint64_t>(seqno->int_value());
      // The primary ships a snapshot whenever the cursor predates its
      // checkpoint; if we already hold snap_seqno (e.g. the checkpoint
      // happened mid-handshake) the records are all duplicates and the
      // install would needlessly drop every cache.
      if (snap_seqno > engine_->AppliedSeqno() || resync_) {
        const Status installed =
            engine_->InstallSnapshot(snap_seqno, source->string_value());
        if (!installed.ok()) return installed;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.snapshots_installed;
      }
      resync_ = false;
    } else if (kind == "record") {
      MULTILOG_ASSIGN_OR_RETURN(storage::WalRecord record,
                                RecordFromFrame(frame));
      const Status applied = engine_->ApplyReplicated(record).status();
      if (!applied.ok()) {
        resync_ = true;
        return applied;
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.records_applied;
      if (record.seqno >= stats_.primary_next_seqno) {
        stats_.primary_next_seqno = record.seqno + 1;
      }
    } else if (kind == "heartbeat") {
      const Json* next = frame.Find("next_seqno");
      if (next != nullptr && next->is_int() && next->int_value() >= 0) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.primary_next_seqno = static_cast<uint64_t>(next->int_value());
      }
    } else {
      return Status::Internal("unknown stream frame kind '" + kind + "'");
    }
    if (!healthy) {
      healthy = true;
      // An intact frame means the previous failure is resolved: clear
      // it, or a replica that reconnected cleanly would advertise a
      // stale error forever.
      std::lock_guard<std::mutex> lock(mu_);
      stats_.last_error.clear();
    }
  }
  return Status::OK();
}

}  // namespace multilog::replication
