#ifndef MULTILOG_SHARDING_ROUTING_H_
#define MULTILOG_SHARDING_ROUTING_H_

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "multilog/ast.h"
#include "sharding/shard_map.h"

namespace multilog::sharding {

/// # Why key-sharding preserves the paper's semantics
///
/// Belief (beta) and the Definition 5.4 integrity checks partition
/// Sigma by entity key: whether an agent cautiously/optimistically/
/// firmly believes s[p(k : a -c-> v)] depends only on the secured atoms
/// whose key is k. Hash-partitioning Sigma by key therefore preserves
/// every belief answer - PROVIDED no shard ever holds a *partial* key
/// group (a subset of a key's atoms would make a lower conflicting fact
/// invisible and flip a cautious belief), and no rule or goal joins
/// across keys (each shard only sees its own keys' groups).
///
/// RoutingAnalysis enforces exactly that invariant:
///
///  - a *tainted* p-predicate is one whose Pi derivation transitively
///    depends on m-/b-atoms. Its extension differs per shard (each
///    shard holds different Sigma), so Sigma rules and goals that
///    reference tainted predicates are refused. Untainted Pi is pure
///    Datalog over replicated p-facts - identical on every shard;
///  - a Sigma clause with a *ground* key (facts and rules alike)
///    belongs wholly to the key's owning shard. Replicating a ground-
///    key rule would let a non-owner derive part of the key's group -
///    a partial group, the exact failure mode above;
///  - a Sigma rule with a *non-ground* key must be key-local (every
///    m-/b-atom in head and body carries the same key term) and
///    anchored (at least one *body* m-/b-atom). Such a rule is
///    replicated to every shard: by induction it can only derive atoms
///    for keys whose secured atoms already live on that shard, so the
///    owner invariant is preserved.
///
/// The net effect: every shard holds complete key groups for exactly
/// the keys it owns, so a point query is answered entirely by the
/// owner, and a scatter-gather union over all shards equals the single-
/// engine answer set.
class RoutingAnalysis {
 public:
  /// Computes the taint fixpoint over Pi and validates that Sigma is
  /// shardable under the rules above (kInvalidProgram when not - the
  /// database must then be served unsharded).
  static Result<RoutingAnalysis> Analyze(const ml::Database& db);

  /// True when `predicate`'s Pi extension depends on Sigma.
  bool IsTainted(const std::string& predicate) const {
    return tainted_.count(predicate) > 0;
  }

  const std::set<std::string>& tainted() const { return tainted_; }

 private:
  std::set<std::string> tainted_;
};

/// Where one Sigma clause lives under `map`: the owning shard for a
/// ground-key clause, nullopt for a replicated (non-ground, key-local,
/// anchored) rule. kInvalidProgram for clauses that cannot be sharded:
/// cross-key rules, unanchored non-ground rules, non-ground facts, and
/// bodies referencing tainted p-predicates.
Result<std::optional<size_t>> ShardOfSigmaClause(const ml::MlClause& clause,
                                                 const RoutingAnalysis& taint,
                                                 const ShardMap& map);

/// How the router should execute one goal.
struct RouteDecision {
  enum class Kind {
    /// All secured atoms share one ground key: the owning shard answers
    /// alone, and its response is relayed verbatim (byte-identical to a
    /// single engine in every mode).
    kPoint,
    /// One shared non-ground key term: every shard answers over its own
    /// keys and the router returns the deterministic ordered union.
    kScatter,
    /// No secured atoms at all (pure untainted-Pi / lattice goals): any
    /// single shard gives the full answer, so the router picks one.
    kAnywhere,
  };
  Kind kind = Kind::kAnywhere;
  size_t shard = 0;  // meaningful for kPoint only
};

/// Classifies a parsed goal. kInvalidArgument when the goal cannot be
/// routed soundly: tainted p-atoms, two distinct ground keys on
/// different shards, or distinct key terms (a cross-shard join) - never
/// a silently wrong answer.
Result<RouteDecision> RouteGoal(const std::vector<ml::MlLiteral>& goal,
                                const RoutingAnalysis& taint,
                                const ShardMap& map);

/// Splits full MultiLog `source` into `map.num_shards()` per-shard
/// sources: Lambda, untainted-and-tainted Pi alike, and stored queries
/// are replicated to every shard (Pi is code; replicating tainted rules
/// is harmless because goals touching them are refused at the router);
/// each Sigma clause goes to its owner or, for replicated rules, to all
/// shards, preserving relative Sigma order. Fails (kInvalidProgram)
/// when the database is not shardable.
Result<std::vector<std::string>> PartitionSource(std::string_view source,
                                                 const ShardMap& map);

}  // namespace multilog::sharding

#endif  // MULTILOG_SHARDING_ROUTING_H_
