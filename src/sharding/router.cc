#include "sharding/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>

#include "multilog/parser.h"

namespace multilog::sharding {

namespace {

using server::Client;
using server::ErrorResponse;
using server::ExecModeName;
using server::Json;
using server::OkResponse;
using server::ReadFrame;
using server::Request;
using server::WriteFrame;

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

/// Per-connection state, owned by the reader thread. One backend
/// session per shard, dialed lazily and bound at the client's own
/// clearance, so the shard enforces visibility exactly as if the client
/// had connected directly.
struct Router::RouterSession {
  bool hello_done = false;
  std::string level;
  ml::ExecMode mode = ml::ExecMode::kReduced;
  std::vector<std::unique_ptr<Client>> backends;
};

Router::Router(std::string db_source, RouterOptions options)
    : db_source_(std::move(db_source)),
      options_(std::move(options)),
      map_(options_.shards.size()) {}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (options_.shards.empty()) {
    return Status::InvalidArgument("a router needs at least one shard");
  }
  MULTILOG_ASSIGN_OR_RETURN(ml::Database db, ml::ParseMultiLog(db_source_));
  MULTILOG_ASSIGN_OR_RETURN(ml::CheckedDatabase cdb,
                            ml::CheckDatabase(std::move(db)));
  MULTILOG_ASSIGN_OR_RETURN(analysis_, RoutingAnalysis::Analyze(cdb.db));
  lattice_ = std::move(cdb.lattice);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  accept_thread_ = std::thread(&Router::AcceptLoop, this);
  started_ = true;
  return Status::OK();
}

void Router::Stop() {
  // Same drain pattern as the engine server: retire the listener, shut
  // each connection's read side down so its reader finishes the
  // in-flight exchange and exits, then join everything.
  if (!started_ || stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (!conn->closed) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // Joining without conn_mu_ is safe: only the accept thread (joined
  // above) and this function ever mutate connections_.
  for (const auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  started_ = false;
}

RouterCounters Router::Counters() const {
  RouterCounters c;
  c.requests_total = requests_total_.load(std::memory_order_relaxed);
  c.point_queries = point_queries_.load(std::memory_order_relaxed);
  c.scatter_queries = scatter_queries_.load(std::memory_order_relaxed);
  c.anywhere_queries = anywhere_queries_.load(std::memory_order_relaxed);
  c.refused_queries = refused_queries_.load(std::memory_order_relaxed);
  c.writes_routed = writes_routed_.load(std::memory_order_relaxed);
  c.checkpoint_fanouts = checkpoint_fanouts_.load(std::memory_order_relaxed);
  c.shard_errors = shard_errors_.load(std::memory_order_relaxed);
  return c;
}

void Router::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (connections_open_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      WriteFrame(fd, ErrorResponse(Status::ResourceExhausted(
                         "router at connection limit"))
                         .Serialize());
      ::close(fd);
      continue;
    }
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Free what previous sessions left behind before adding another -
    // under connection churn the table stays bounded by the number of
    // *live* connections, not the number ever accepted.
    ReapConnectionsLocked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    try {
      connections_.push_back(std::move(conn));
      raw->thread = std::thread(&Router::ServeConnection, this, raw);
    } catch (...) {
      if (!connections_.empty() && connections_.back().get() == raw) {
        connections_.pop_back();
      }
      ::close(fd);
      connections_open_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void Router::ReapConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection* conn = it->get();
    if (!conn->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (conn->thread.joinable()) conn->thread.join();
    it = connections_.erase(it);
  }
}

void Router::ServeConnection(Connection* conn) {
  RouterSession session;
  session.mode = options_.default_mode;
  session.backends.resize(options_.shards.size());
  try {
    while (HandleFrame(session, conn->fd)) {
    }
  } catch (...) {
    // Drop the connection (and its backend sessions with it).
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!conn->closed) {
      ::close(conn->fd);
      conn->closed = true;
    }
  }
  connections_open_.fetch_sub(1, std::memory_order_acq_rel);
  // Last store: after this the accept loop may join and free `conn`.
  conn->done.store(true, std::memory_order_release);
}

Result<Client*> Router::Backend(RouterSession& session, size_t shard) {
  if (session.backends[shard] != nullptr) {
    return session.backends[shard].get();
  }
  const ShardEndpoint& ep = options_.shards[shard];
  Result<Client> client =
      Client::ConnectWithRetry(ep.host, ep.port, options_.connect_attempts,
                               options_.connect_backoff_ms);
  if (!client.ok()) return ShardUnavailable(shard, client.status());
  auto backend = std::make_unique<Client>(std::move(client).value());
  // Bind the backend session at the client's own clearance and mode so
  // the shard enforces per-level visibility itself; the session's level
  // was validated against the same lattice at HELLO.
  Result<Json> hello =
      backend->Hello(session.level, ExecModeName(session.mode));
  if (!hello.ok()) {
    if (hello.status().IsInternal()) {
      return ShardUnavailable(shard, hello.status());
    }
    return hello.status();  // the shard's own structured refusal
  }
  session.backends[shard] = std::move(backend);
  return session.backends[shard].get();
}

void Router::DropBackend(RouterSession& session, size_t shard) {
  session.backends[shard].reset();
  shard_errors_.fetch_add(1, std::memory_order_relaxed);
}

Status Router::ShardUnavailable(size_t shard, const Status& cause) {
  const ShardEndpoint& ep = options_.shards[shard];
  return Status::Unavailable("shard " + std::to_string(shard) + " (" +
                             ep.host + ":" + std::to_string(ep.port) +
                             ") is unavailable: " + cause.message());
}

bool Router::HandleFrame(RouterSession& session, int fd) {
  Result<std::optional<std::string>> frame =
      ReadFrame(fd, options_.max_request_bytes);
  if (!frame.ok()) {
    WriteFrame(fd, ErrorResponse(frame.status()).Serialize());
    return false;  // framing damage: the stream can't resynchronize
  }
  if (!frame->has_value()) return false;  // clean EOF
  requests_total_.fetch_add(1, std::memory_order_relaxed);

  Result<Json> json = Json::Parse(**frame);
  if (!json.ok()) {
    WriteFrame(fd, ErrorResponse(json.status()).Serialize());
    return true;
  }
  Result<Request> parsed = server::ParseRequest(*json);
  if (!parsed.ok()) {
    WriteFrame(fd, ErrorResponse(parsed.status()).Serialize());
    return true;
  }
  const Request& req = *parsed;

  switch (req.cmd) {
    case Request::Cmd::kPing: {
      Json resp = OkResponse();
      resp.Set("pong", Json::Bool(true));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kBye: {
      WriteFrame(fd, OkResponse().Serialize());
      return false;
    }
    case Request::Cmd::kShardMap: {
      Json resp = OkResponse();
      resp.Set("shardmap", ShardMapJson());
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kStats: {
      Json resp = OkResponse();
      resp.Set("stats", StatsJson());
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kMetrics: {
      Json resp = OkResponse();
      resp.Set("format", Json::Str("prometheus"));
      resp.Set("body", Json::Str(MetricsText()));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kHello: {
      if (session.hello_done) {
        WriteFrame(fd, ErrorResponse(Status::InvalidArgument(
                           "session is already bound; reconnect to change "
                           "clearance"))
                           .Serialize());
        return true;
      }
      if (!lattice_.Contains(req.level)) {
        WriteFrame(fd, ErrorResponse(Status::SecurityViolation(
                           "unknown clearance level '" + req.level + "'"))
                           .Serialize());
        return true;
      }
      session.hello_done = true;
      session.level = req.level;
      if (req.mode.has_value()) session.mode = *req.mode;
      Json resp = OkResponse();
      resp.Set("server", Json::Str("multilog-router"));
      resp.Set("level", Json::Str(session.level));
      resp.Set("mode", Json::Str(ExecModeName(session.mode)));
      resp.Set("shards",
               Json::Int(static_cast<int64_t>(options_.shards.size())));
      WriteFrame(fd, resp.Serialize());
      return true;
    }
    case Request::Cmd::kSql: {
      WriteFrame(fd, ErrorResponse(Status::InvalidArgument(
                         "the router does not serve 'sql'; connect to a "
                         "shard directly"))
                         .Serialize());
      return true;
    }
    case Request::Cmd::kReplicate: {
      WriteFrame(fd, ErrorResponse(Status::InvalidArgument(
                         "the router does not serve replication streams; "
                         "replicate from a shard"))
                         .Serialize());
      return true;
    }
    case Request::Cmd::kQuery:
    case Request::Cmd::kAssert:
    case Request::Cmd::kRetract:
    case Request::Cmd::kCheckpoint: {
      if (!session.hello_done) {
        WriteFrame(fd, ErrorResponse(Status::SecurityViolation(
                           "session has no clearance yet; send hello first"))
                           .Serialize());
        return true;
      }
      const Json resp = req.cmd == Request::Cmd::kQuery
                            ? HandleQuery(session, req)
                            : HandleWrite(session, req);
      WriteFrame(fd, resp.Serialize());
      return true;
    }
  }
  return true;
}

Json Router::RelayToShard(RouterSession& session, size_t shard,
                          const Json& request) {
  Result<Client*> backend = Backend(session, shard);
  if (!backend.ok()) return ErrorResponse(backend.status());
  Result<Json> response = (*backend)->RoundTrip(request);
  if (!response.ok()) {
    // Transport failure mid-exchange: the shard died (or restarted).
    // Drop the backend so the next request redials, and say which
    // shard - never return a partial or empty answer.
    DropBackend(session, shard);
    return ErrorResponse(ShardUnavailable(shard, response.status()));
  }
  Json resp = std::move(response).value();
  resp.Set("shard", Json::Int(static_cast<int64_t>(shard)));
  return resp;
}

Json Router::ScatterQuery(RouterSession& session, const Json& request) {
  const auto start = std::chrono::steady_clock::now();
  const size_t n = options_.shards.size();
  // Dial any missing backends first (serially: dial latency overlaps
  // poorly with correctness, and steady state redials nothing), then
  // fan the query out in parallel, one thread per shard - each thread
  // owns its shard's connection exclusively.
  for (size_t i = 0; i < n; ++i) {
    Result<Client*> backend = Backend(session, i);
    if (!backend.ok()) return ErrorResponse(backend.status());
  }
  std::vector<Result<Json>> responses(
      n, Result<Json>(Status::Internal("unreached")));
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([this, &session, &request, &responses, i] {
      responses[i] = session.backends[i]->RoundTrip(request);
    });
  }
  for (std::thread& t : threads) t.join();

  // Failures first, deterministically by shard index: a transport
  // failure is kUnavailable naming the shard; a shard's own structured
  // error (deadline, security...) is relayed as-is.
  for (size_t i = 0; i < n; ++i) {
    if (!responses[i].ok()) {
      DropBackend(session, i);
      return ErrorResponse(ShardUnavailable(i, responses[i].status()));
    }
    if (!responses[i]->GetBool("ok", false)) {
      Json resp = std::move(*responses[i]);
      resp.Set("shard", Json::Int(static_cast<int64_t>(i)));
      return resp;
    }
  }

  // Deterministic merge: the global ordered union over the decoded
  // answer tuples. Each shard's reduced-mode answers arrive sorted by
  // their canonical rendering and keys are disjoint across shards, so
  // the sorted, deduplicated union is byte-identical to a single
  // engine's answer list.
  std::set<std::string> merged;
  for (size_t i = 0; i < n; ++i) {
    const Json* answers = responses[i]->Find("answers");
    if (answers == nullptr || !answers->is_array()) {
      return ErrorResponse(Status::Internal(
          "shard " + std::to_string(i) + " returned no answer array"));
    }
    for (const Json& answer : answers->array_items()) {
      if (answer.is_string()) merged.insert(answer.string_value());
    }
  }
  Json resp = OkResponse();
  resp.Set("level", Json::Str(responses[0]->GetString("level")));
  resp.Set("mode", Json::Str(responses[0]->GetString("mode")));
  Json answers = Json::Array();
  for (const std::string& answer : merged) answers.Push(Json::Str(answer));
  resp.Set("count", Json::Int(static_cast<int64_t>(merged.size())));
  resp.Set("answers", std::move(answers));
  resp.Set("elapsed_ms",
           Json::Double(static_cast<double>(ElapsedMicros(start)) / 1000.0));
  resp.Set("shards", Json::Int(static_cast<int64_t>(n)));
  return resp;
}

Json Router::HandleQuery(RouterSession& session, const Request& req) {
  Result<std::vector<ml::MlLiteral>> goal = ml::ParseMlGoal(req.goal);
  if (!goal.ok()) {
    refused_queries_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(goal.status());
  }
  Result<RouteDecision> route = RouteGoal(*goal, analysis_, map_);
  if (!route.ok()) {
    refused_queries_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(route.status());
  }

  // The forwarded request pins the effective mode and deadline so the
  // shard's defaults can never disagree with the router's session.
  const ml::ExecMode mode = req.mode.has_value() ? *req.mode : session.mode;
  Json fwd = Json::Object();
  fwd.Set("cmd", Json::Str("query"));
  fwd.Set("goal", Json::Str(req.goal));
  fwd.Set("mode", Json::Str(ExecModeName(mode)));
  const int64_t deadline_ms = req.deadline_ms >= 0
                                  ? req.deadline_ms
                                  : (options_.default_deadline_ms > 0
                                         ? options_.default_deadline_ms
                                         : -1);
  if (deadline_ms >= 0) fwd.Set("deadline_ms", Json::Int(deadline_ms));
  if (req.want_proofs) fwd.Set("proofs", Json::Bool(true));
  if (req.want_trace) fwd.Set("trace", Json::Bool(true));
  if (req.min_seqno > 0) {
    fwd.Set("min_seqno", Json::Int(static_cast<int64_t>(req.min_seqno)));
    if (req.wait_ms > 0) fwd.Set("wait_ms", Json::Int(req.wait_ms));
  }

  switch (route->kind) {
    case RouteDecision::Kind::kPoint:
      point_queries_.fetch_add(1, std::memory_order_relaxed);
      return RelayToShard(session, route->shard, fwd);
    case RouteDecision::Kind::kAnywhere: {
      anywhere_queries_.fetch_add(1, std::memory_order_relaxed);
      const size_t shard =
          round_robin_.fetch_add(1, std::memory_order_relaxed) %
          options_.shards.size();
      return RelayToShard(session, shard, fwd);
    }
    case RouteDecision::Kind::kScatter: {
      if (req.want_proofs) {
        refused_queries_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(Status::InvalidArgument(
            "proof trees are not available for scatter-gather queries; "
            "bind the entity key for a single-shard proof"));
      }
      scatter_queries_.fetch_add(1, std::memory_order_relaxed);
      return ScatterQuery(session, fwd);
    }
  }
  return ErrorResponse(Status::Internal("unreachable route kind"));
}

Json Router::HandleWrite(RouterSession& session, const Request& req) {
  const auto start = std::chrono::steady_clock::now();
  if (req.cmd == Request::Cmd::kCheckpoint) {
    checkpoint_fanouts_.fetch_add(1, std::memory_order_relaxed);
    Json fwd = Json::Object();
    fwd.Set("cmd", Json::Str("checkpoint"));
    for (size_t i = 0; i < options_.shards.size(); ++i) {
      Json resp = RelayToShard(session, i, fwd);
      if (!resp.GetBool("ok", false)) return resp;  // names the shard
    }
    Json resp = OkResponse();
    resp.Set("level", Json::Str(session.level));
    resp.Set("shards",
             Json::Int(static_cast<int64_t>(options_.shards.size())));
    resp.Set("elapsed_ms",
             Json::Double(static_cast<double>(ElapsedMicros(start)) / 1000.0));
    return resp;
  }

  // Assert/Retract: the fact's entity key names its owner. The shard
  // re-validates everything (clearance pinning, Definition 5.4) - the
  // router only decides *where*, never *whether*.
  Result<std::string> key = ml::RoutingKeyOfFact(req.fact);
  if (!key.ok()) return ErrorResponse(key.status());
  const size_t shard = map_.ShardOfKeyText(*key);
  writes_routed_.fetch_add(1, std::memory_order_relaxed);
  Json fwd = Json::Object();
  fwd.Set("cmd", Json::Str(req.cmd == Request::Cmd::kRetract ? "retract"
                                                             : "assert"));
  fwd.Set("fact", Json::Str(req.fact));
  return RelayToShard(session, shard, fwd);
}

Json Router::ShardMapJson() const {
  Json map = Json::Object();
  map.Set("version", Json::Int(static_cast<int64_t>(map_.version())));
  map.Set("num_shards", Json::Int(static_cast<int64_t>(map_.num_shards())));
  map.Set("hash", Json::Str(kShardHashName));
  Json shards = Json::Array();
  for (const ShardEndpoint& ep : options_.shards) {
    Json shard = Json::Object();
    shard.Set("host", Json::Str(ep.host));
    shard.Set("port", Json::Int(ep.port));
    shards.Push(std::move(shard));
  }
  map.Set("shards", std::move(shards));
  return map;
}

Json Router::StatsJson() const {
  const RouterCounters c = Counters();
  Json root = Json::Object();
  root.Set("server", Json::Str("multilog-router"));
  root.Set("connections_open",
           Json::Int(static_cast<int64_t>(
               connections_open_.load(std::memory_order_relaxed))));
  root.Set("requests_total",
           Json::Int(static_cast<int64_t>(c.requests_total)));
  Json routing = Json::Object();
  routing.Set("point_queries",
              Json::Int(static_cast<int64_t>(c.point_queries)));
  routing.Set("scatter_queries",
              Json::Int(static_cast<int64_t>(c.scatter_queries)));
  routing.Set("anywhere_queries",
              Json::Int(static_cast<int64_t>(c.anywhere_queries)));
  routing.Set("refused_queries",
              Json::Int(static_cast<int64_t>(c.refused_queries)));
  routing.Set("writes_routed",
              Json::Int(static_cast<int64_t>(c.writes_routed)));
  routing.Set("checkpoint_fanouts",
              Json::Int(static_cast<int64_t>(c.checkpoint_fanouts)));
  routing.Set("shard_errors",
              Json::Int(static_cast<int64_t>(c.shard_errors)));
  root.Set("routing", std::move(routing));
  root.Set("shardmap", ShardMapJson());
  return root;
}

std::string Router::MetricsText() const {
  const RouterCounters c = Counters();
  std::string out;
  auto counter = [&out](const char* name, const char* help, uint64_t value,
                        const char* type = "counter") {
    out.append("# HELP ").append(name).append(" ").append(help).append("\n");
    out.append("# TYPE ").append(name).append(" ").append(type).append("\n");
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  };
  counter("multilog_router_shards", "Shards in the serving map.",
          options_.shards.size(), "gauge");
  counter("multilog_router_connections_open", "Open client sessions.",
          connections_open_.load(std::memory_order_relaxed), "gauge");
  counter("multilog_router_requests_total", "Requests received.",
          c.requests_total);
  counter("multilog_router_point_queries_total",
          "Queries routed to a single owning shard.", c.point_queries);
  counter("multilog_router_scatter_queries_total",
          "Queries scatter-gathered across every shard.", c.scatter_queries);
  counter("multilog_router_anywhere_queries_total",
          "Key-free queries served round-robin by one shard.",
          c.anywhere_queries);
  counter("multilog_router_refused_queries_total",
          "Goals refused as unroutable (cross-shard joins, tainted "
          "predicates).",
          c.refused_queries);
  counter("multilog_router_writes_routed_total",
          "Asserts/retracts routed to their key's owner.", c.writes_routed);
  counter("multilog_router_checkpoint_fanouts_total",
          "Checkpoints fanned out to every shard.", c.checkpoint_fanouts);
  counter("multilog_router_shard_errors_total",
          "Transport failures talking to shards.", c.shard_errors);
  return out;
}

}  // namespace multilog::sharding
