#include "sharding/shard_map.h"

namespace multilog::sharding {

uint64_t StableHash64(std::string_view text) {
  // FNV-1a, 64-bit: simple, allocation-free, and stable across
  // platforms and process lifetimes (unlike std::hash, which libstdc++
  // documents as salt-free today but does not guarantee).
  uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace multilog::sharding
