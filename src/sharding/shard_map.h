#ifndef MULTILOG_SHARDING_SHARD_MAP_H_
#define MULTILOG_SHARDING_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "datalog/term.h"

namespace multilog::sharding {

/// The stable 64-bit FNV-1a hash the shard map is built on. Hashing the
/// *rendered text* of the entity key - not the process-local interned
/// Symbol id - is load-bearing: symbol ids depend on interning order,
/// which differs between the router, each shard, and every client, while
/// the canonical text of a ground term is identical everywhere. Two
/// processes that agree on the key's text agree on its shard, forever.
uint64_t StableHash64(std::string_view text);

/// The wire name of the assignment function, served with the map so a
/// client can verify it implements the same hash before routing locally.
inline constexpr const char* kShardHashName = "fnv1a64/key-text";

/// Key -> shard assignment: shard(k) = StableHash64(text(k)) mod N.
///
/// The map is versioned: a router serves (version, N, endpoints) to
/// clients, and a future resharding bumps the version so a client
/// holding a stale map can detect it. The assignment itself is pure -
/// two ShardMaps with the same N agree on every key - so the map is
/// cheap to copy and needs no locking.
///
/// Semantics note (why mod-N hashing is sound here): beta and the
/// Definition 5.4 integrity checks partition Sigma by entity key, so a
/// partitioning that keeps each key's group on one shard preserves
/// cautious/optimistic/firm answers with no cross-shard joins in the
/// base data. See routing.h for the clause/goal analysis that enforces
/// key-locality.
class ShardMap {
 public:
  explicit ShardMap(size_t num_shards, uint64_t version = 1)
      : num_shards_(num_shards == 0 ? 1 : num_shards), version_(version) {}

  size_t num_shards() const { return num_shards_; }
  uint64_t version() const { return version_; }

  /// The owning shard of a key given its canonical rendered text
  /// (datalog::Term::ToString for parsed keys; clients hashing raw
  /// symbols must render the same spelling the parser would).
  size_t ShardOfKeyText(std::string_view key_text) const {
    return static_cast<size_t>(StableHash64(key_text) %
                               static_cast<uint64_t>(num_shards_));
  }

  /// The owning shard of a parsed (ground) entity-key term.
  size_t ShardOfKey(const datalog::Term& key) const {
    return ShardOfKeyText(key.ToString());
  }

 private:
  size_t num_shards_;
  uint64_t version_;
};

}  // namespace multilog::sharding

#endif  // MULTILOG_SHARDING_SHARD_MAP_H_
