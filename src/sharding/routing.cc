#include "sharding/routing.h"

#include <map>

#include "multilog/parser.h"

namespace multilog::sharding {

namespace {

using datalog::Term;
using ml::BAtom;
using ml::CAtom;
using ml::Database;
using ml::HAtom;
using ml::LAtom;
using ml::MAtom;
using ml::MlClause;
using ml::MlLiteral;
using ml::PAtom;

/// Appends the entity-key terms of any m-/b-atoms in `atom`.
void CollectKeyTerms(const ml::MlAtom& atom, std::vector<Term>* keys) {
  if (const auto* m = std::get_if<MAtom>(&atom)) {
    keys->push_back(m->key);
  } else if (const auto* b = std::get_if<BAtom>(&atom)) {
    keys->push_back(b->matom.key);
  }
}

/// The p-predicates referenced by `atom`, if any.
const std::string* PPredicateOf(const ml::MlAtom& atom) {
  if (const auto* p = std::get_if<PAtom>(&atom)) return &p->predicate();
  return nullptr;
}

bool BodyHasSecuredAtom(const MlClause& clause) {
  for (const MlLiteral& lit : clause.body) {
    if (std::holds_alternative<MAtom>(lit.atom) ||
        std::holds_alternative<BAtom>(lit.atom)) {
      return true;
    }
  }
  return false;
}

/// The distinct key terms appearing in head + body secured atoms.
std::vector<Term> DistinctKeyTerms(const ml::MlAtom& head,
                                   const std::vector<MlLiteral>& body) {
  std::vector<Term> keys;
  CollectKeyTerms(head, &keys);
  for (const MlLiteral& lit : body) CollectKeyTerms(lit.atom, &keys);
  std::vector<Term> distinct;
  for (const Term& k : keys) {
    bool seen = false;
    for (const Term& d : distinct) {
      if (d == k) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.push_back(k);
  }
  return distinct;
}

/// The first tainted p-predicate referenced by `body`, or nullptr.
const std::string* FirstTaintedPredicate(const std::vector<MlLiteral>& body,
                                         const RoutingAnalysis& taint) {
  for (const MlLiteral& lit : body) {
    if (const std::string* pred = PPredicateOf(lit.atom);
        pred != nullptr && taint.IsTainted(*pred)) {
      return pred;
    }
  }
  return nullptr;
}

}  // namespace

Result<RoutingAnalysis> RoutingAnalysis::Analyze(const Database& db) {
  RoutingAnalysis analysis;
  // Taint fixpoint over Pi: a p-predicate is tainted when any of its
  // clauses has a secured (m-/b-) body atom or depends on a tainted
  // p-predicate. Pi is small (code, not data), so the quadratic loop is
  // fine and keeps the pass dependency-free.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MlClause& clause : db.pi) {
      const auto* head = std::get_if<PAtom>(&clause.head);
      if (head == nullptr || analysis.tainted_.count(head->predicate()) > 0) {
        continue;
      }
      bool tainted = BodyHasSecuredAtom(clause);
      if (!tainted) {
        for (const MlLiteral& lit : clause.body) {
          if (const std::string* pred = PPredicateOf(lit.atom);
              pred != nullptr && analysis.tainted_.count(*pred) > 0) {
            tainted = true;
            break;
          }
        }
      }
      if (tainted) {
        analysis.tainted_.insert(head->predicate());
        changed = true;
      }
    }
  }
  // Validate Sigma once up front (ShardOfSigmaClause re-checks per
  // clause; a single-shard "map" suffices since only errors matter).
  const ShardMap probe(1);
  for (const MlClause& clause : db.sigma) {
    MULTILOG_ASSIGN_OR_RETURN(std::optional<size_t> shard,
                              ShardOfSigmaClause(clause, analysis, probe));
    (void)shard;
  }
  return analysis;
}

Result<std::optional<size_t>> ShardOfSigmaClause(const MlClause& clause,
                                                 const RoutingAnalysis& taint,
                                                 const ShardMap& map) {
  if (const std::string* pred = FirstTaintedPredicate(clause.body, taint)) {
    return Status::InvalidProgram(
        "Sigma clause '" + clause.ToString() +
        "' depends on p-predicate '" + *pred +
        "', whose derivation touches secured atoms; its extension would "
        "differ per shard");
  }
  const std::vector<Term> keys = DistinctKeyTerms(clause.head, clause.body);
  if (keys.size() != 1) {
    return Status::InvalidProgram(
        "Sigma clause '" + clause.ToString() + "' spans " +
        std::to_string(keys.size()) +
        " distinct entity keys; sharding requires key-local clauses");
  }
  const Term& key = keys.front();
  if (key.IsGround()) return std::optional<size_t>(map.ShardOfKey(key));
  if (clause.IsFact()) {
    return Status::InvalidProgram("Sigma fact '" + clause.ToString() +
                                  "' has a non-ground entity key");
  }
  if (!BodyHasSecuredAtom(clause)) {
    // Unanchored: the rule would derive atoms for keys whose stored
    // group lives elsewhere, creating partial key groups off-owner.
    return Status::InvalidProgram(
        "Sigma rule '" + clause.ToString() +
        "' has a non-ground key and no secured body atom to anchor it to "
        "a shard's own keys");
  }
  return std::optional<size_t>();  // key-local + anchored: replicate
}

Result<RouteDecision> RouteGoal(const std::vector<MlLiteral>& goal,
                                const RoutingAnalysis& taint,
                                const ShardMap& map) {
  if (const std::string* pred = FirstTaintedPredicate(goal, taint)) {
    return Status::InvalidArgument(
        "goal references p-predicate '" + *pred +
        "', whose derivation touches secured atoms; it cannot be routed "
        "(query a single unsharded engine instead)");
  }
  std::vector<Term> keys;
  for (const MlLiteral& lit : goal) CollectKeyTerms(lit.atom, &keys);
  std::vector<Term> distinct;
  for (const Term& k : keys) {
    bool seen = false;
    for (const Term& d : distinct) {
      if (d == k) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.push_back(k);
  }

  RouteDecision decision;
  if (distinct.empty()) {
    decision.kind = RouteDecision::Kind::kAnywhere;
    return decision;
  }
  if (distinct.size() == 1) {
    if (distinct.front().IsGround()) {
      decision.kind = RouteDecision::Kind::kPoint;
      decision.shard = map.ShardOfKey(distinct.front());
    } else {
      decision.kind = RouteDecision::Kind::kScatter;
    }
    return decision;
  }
  // Several distinct key terms: sound only when they are all ground and
  // happen to live on one shard (then it is a point query there). Any
  // non-ground term among them is a cross-shard join - an answer could
  // pair keys from different shards, which no shard can witness alone.
  bool all_ground = true;
  for (const Term& k : distinct) all_ground = all_ground && k.IsGround();
  if (all_ground) {
    const size_t shard = map.ShardOfKey(distinct.front());
    bool same = true;
    for (const Term& k : distinct) same = same && map.ShardOfKey(k) == shard;
    if (same) {
      decision.kind = RouteDecision::Kind::kPoint;
      decision.shard = shard;
      return decision;
    }
    return Status::InvalidArgument(
        "goal joins entity keys owned by different shards; cross-shard "
        "joins over secured atoms are not supported");
  }
  return Status::InvalidArgument(
      "goal mixes distinct entity-key terms over secured atoms; a "
      "scatter-gather answer could require a cross-shard join");
}

Result<std::vector<std::string>> PartitionSource(std::string_view source,
                                                 const ShardMap& map) {
  MULTILOG_ASSIGN_OR_RETURN(Database db, ml::ParseMultiLog(source));
  MULTILOG_ASSIGN_OR_RETURN(RoutingAnalysis taint,
                            RoutingAnalysis::Analyze(db));
  std::vector<Database> shards(map.num_shards());
  for (Database& shard : shards) {
    shard.lambda = db.lambda;
    shard.pi = db.pi;
    shard.queries = db.queries;
  }
  for (const MlClause& clause : db.sigma) {
    MULTILOG_ASSIGN_OR_RETURN(std::optional<size_t> owner,
                              ShardOfSigmaClause(clause, taint, map));
    if (owner.has_value()) {
      shards[*owner].sigma.push_back(clause);
    } else {
      for (Database& shard : shards) shard.sigma.push_back(clause);
    }
  }
  std::vector<std::string> sources;
  sources.reserve(shards.size());
  for (const Database& shard : shards) sources.push_back(shard.ToString());
  return sources;
}

}  // namespace multilog::sharding
