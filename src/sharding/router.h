#ifndef MULTILOG_SHARDING_ROUTER_H_
#define MULTILOG_SHARDING_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "lattice/lattice.h"
#include "multilog/database.h"
#include "multilog/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "sharding/routing.h"
#include "sharding/shard_map.h"

namespace multilog::sharding {

/// One engine shard the router fans out to.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  size_t max_connections = 64;
  size_t max_request_bytes = 1u << 20;  // 1 MiB
  /// Deadline forwarded to shards for queries that carry none; 0 = none.
  int64_t default_deadline_ms = 0;
  ml::ExecMode default_mode = ml::ExecMode::kReduced;
  /// The shard fleet, indexed by shard id (ShardMap::ShardOfKey).
  std::vector<ShardEndpoint> shards;
  /// Backend dial policy (a shard restart is survivable: the dead
  /// backend is dropped and redialed on the next request that needs it).
  int connect_attempts = 10;
  int64_t connect_backoff_ms = 50;
};

/// Observability snapshot for the router's stats/metrics surface.
struct RouterCounters {
  uint64_t requests_total = 0;
  uint64_t point_queries = 0;
  uint64_t scatter_queries = 0;
  uint64_t anywhere_queries = 0;
  uint64_t refused_queries = 0;  // unroutable goals (cross-shard joins...)
  uint64_t writes_routed = 0;
  uint64_t checkpoint_fanouts = 0;
  uint64_t shard_errors = 0;  // transport failures talking to shards
};

/// # multilog-router: the scatter-gather query layer over N shards
///
/// Speaks the exact multilogd wire protocol (same framing, same
/// commands, same session rules), so every existing client works
/// unchanged; `sql` and `replicate` are refused (shards own those).
/// HELLO binds {clearance, mode} against the *same* database lattice
/// the shards serve, and the router opens one backend session per
/// shard, per client session, hello'd at that clearance - the shard
/// re-enforces per-level visibility exactly as if the client had
/// connected to it directly, so the router adds no trusted surface.
///
///  - Point queries (one ground entity key) go to the owning shard and
///    its response is relayed verbatim plus a "shard" member: byte-
///    identical answers in every mode, because the owner holds the
///    key's complete group (see routing.h).
///  - Wide queries (one shared non-ground key term) scatter to every
///    shard in parallel and return the deterministic ordered union of
///    the decoded answers - the same sorted, deduplicated order the
///    reduced semantics produces on a single engine, so reduced-mode
///    answers are byte-identical. (Operational proof *order* is an
///    enumeration artifact; the answer set is identical, served
///    sorted.) Proof trees are refused on scatter.
///  - Key-free goals route round-robin to any single shard (each holds
///    all of Lambda and Pi).
///  - Assert/Retract route to the written key's owner; Checkpoint fans
///    out to every shard.
///
/// `deadline_ms` and `min_seqno`/`wait_ms` are propagated per shard. A
/// shard that cannot be reached - or dies mid-query - yields
/// kUnavailable naming the shard, never a silently truncated answer;
/// the backend is redialed on the next request, so a restarted shard
/// rejoins transparently. The `shardmap` command serves the versioned
/// map (hash name, shard count, endpoints) to routing-aware clients.
class Router {
 public:
  /// `db_source` is the same MultiLog source the shards were seeded
  /// from: the router parses it for the lattice (HELLO validation) and
  /// the routing analysis, but never evaluates it.
  Router(std::string db_source, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Checks the database + shardability, binds, and starts accepting.
  Status Start();

  /// Graceful shutdown; idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  const ShardMap& shard_map() const { return map_; }
  RouterCounters Counters() const;

 private:
  struct Connection {
    int fd = -1;
    bool closed = false;  // guarded by conn_mu_
    /// Set by ServeConnection on exit; the accept loop joins and frees
    /// finished connections before each accept (and Stop joins the
    /// rest), so connection churn doesn't accumulate dead threads.
    std::atomic<bool> done{false};
    std::thread thread;
  };
  struct RouterSession;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Joins and erases every finished connection. conn_mu_ held.
  void ReapConnectionsLocked();
  bool HandleFrame(RouterSession& session, int fd);

  /// The shard's backend client for this session, dialing and binding
  /// it (hello at the session clearance/mode) on first use or after a
  /// failure dropped it. kUnavailable, naming the shard, when the dial
  /// fails.
  Result<server::Client*> Backend(RouterSession& session, size_t shard);
  /// Drops a backend whose transport failed, so the next request
  /// redials (shard-restart recovery).
  void DropBackend(RouterSession& session, size_t shard);
  /// Wraps a transport-level failure talking to `shard` as
  /// kUnavailable naming it.
  Status ShardUnavailable(size_t shard, const Status& cause);

  server::Json HandleQuery(RouterSession& session,
                           const server::Request& req);
  server::Json HandleWrite(RouterSession& session,
                           const server::Request& req);
  server::Json RelayToShard(RouterSession& session, size_t shard,
                            const server::Json& request);
  server::Json ScatterQuery(RouterSession& session,
                            const server::Json& request);
  server::Json ShardMapJson() const;
  server::Json StatsJson() const;
  std::string MetricsText() const;

  std::string db_source_;
  RouterOptions options_;
  ShardMap map_;
  RoutingAnalysis analysis_;
  lattice::SecurityLattice lattice_;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> point_queries_{0};
  std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> anywhere_queries_{0};
  std::atomic<uint64_t> refused_queries_{0};
  std::atomic<uint64_t> writes_routed_{0};
  std::atomic<uint64_t> checkpoint_fanouts_{0};
  std::atomic<uint64_t> shard_errors_{0};
  std::atomic<uint64_t> round_robin_{0};
  std::atomic<size_t> connections_open_{0};

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex conn_mu_;
  /// Live (plus not-yet-reaped) connections; each owns its thread.
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace multilog::sharding

#endif  // MULTILOG_SHARDING_ROUTER_H_
