#include "lattice/lattice.h"

#include <algorithm>

#include "common/str_util.h"

namespace multilog::lattice {

SecurityLattice::Builder& SecurityLattice::Builder::AddLevel(
    const std::string& name) {
  if (index_.emplace(name, levels_.size()).second) {
    levels_.push_back(name);
  }
  return *this;
}

SecurityLattice::Builder& SecurityLattice::Builder::AddOrder(
    const std::string& low, const std::string& high) {
  pending_edges_.emplace_back(low, high);
  return *this;
}

Result<SecurityLattice> SecurityLattice::Builder::Build() const {
  SecurityLattice lat;
  lat.names_ = levels_;
  lat.index_ = index_;

  const size_t n = levels_.size();
  lat.leq_.assign(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) lat.leq_[i][i] = true;

  for (const auto& [low, high] : pending_edges_) {
    auto lo = lat.index_.find(low);
    auto hi = lat.index_.find(high);
    if (lo == lat.index_.end()) {
      return Status::InvalidProgram("order(" + low + ", " + high +
                                    ") references undeclared level '" + low +
                                    "'");
    }
    if (hi == lat.index_.end()) {
      return Status::InvalidProgram("order(" + low + ", " + high +
                                    ") references undeclared level '" + high +
                                    "'");
    }
    if (lo->second == hi->second) {
      return Status::InvalidProgram("order(" + low + ", " + high +
                                    ") is a self-loop");
    }
    lat.leq_[lo->second][hi->second] = true;
    lat.covers_.emplace_back(low, high);
  }

  // Reflexive-transitive closure (Warshall).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!lat.leq_[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (lat.leq_[k][j]) lat.leq_[i][j] = true;
      }
    }
  }

  // Antisymmetry: a <= b and b <= a implies a == b; otherwise the order
  // graph has a cycle and Lambda does not denote a partial order
  // (Definition 5.3's third condition).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (lat.leq_[i][j] && lat.leq_[j][i]) {
        return Status::InvalidProgram(
            "order declarations create a cycle through levels '" +
            levels_[i] + "' and '" + levels_[j] +
            "'; security levels must form a partial order");
      }
    }
  }

  return lat;
}

SecurityLattice SecurityLattice::Chain(
    const std::vector<std::string>& low_to_high) {
  Builder b;
  for (const auto& name : low_to_high) b.AddLevel(name);
  for (size_t i = 0; i + 1 < low_to_high.size(); ++i) {
    b.AddOrder(low_to_high[i], low_to_high[i + 1]);
  }
  Result<SecurityLattice> r = b.Build();
  // A chain over distinct names cannot fail validation; duplicates are
  // merged by AddLevel, which may make an edge a self-loop - treat that
  // as a programming error.
  return std::move(r).value();
}

SecurityLattice SecurityLattice::Military() {
  return Chain({"u", "c", "s", "t"});
}

namespace {

std::string SubsetName(const std::vector<std::string>& sorted_categories,
                       unsigned mask) {
  std::vector<std::string> members;
  for (size_t i = 0; i < sorted_categories.size(); ++i) {
    if (mask & (1u << i)) members.push_back(sorted_categories[i]);
  }
  return "{" + Join(members, ",") + "}";
}

}  // namespace

SecurityLattice SecurityLattice::Powerset(
    const std::vector<std::string>& categories) {
  std::vector<std::string> sorted = categories;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  const unsigned count = 1u << sorted.size();
  Builder b;
  for (unsigned mask = 0; mask < count; ++mask) {
    b.AddLevel(SubsetName(sorted, mask));
  }
  // Cover edges: add one element.
  for (unsigned mask = 0; mask < count; ++mask) {
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (!(mask & (1u << i))) {
        b.AddOrder(SubsetName(sorted, mask),
                   SubsetName(sorted, mask | (1u << i)));
      }
    }
  }
  return std::move(b.Build()).value();
}

SecurityLattice SecurityLattice::Product(const SecurityLattice& a,
                                         const SecurityLattice& b) {
  Builder builder;
  auto name = [&](size_t i, size_t j) {
    return a.Name(i) + "." + b.Name(j);
  };
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      builder.AddLevel(name(i, j));
    }
  }
  // Cover edges of a product: step along one component's cover edge while
  // holding the other fixed.
  for (const auto& [lo, hi] : a.CoverEdges()) {
    size_t li = a.Index(lo).value();
    size_t hi_i = a.Index(hi).value();
    for (size_t j = 0; j < b.size(); ++j) {
      builder.AddOrder(name(li, j), name(hi_i, j));
    }
  }
  for (const auto& [lo, hi] : b.CoverEdges()) {
    size_t lj = b.Index(lo).value();
    size_t hj = b.Index(hi).value();
    for (size_t i = 0; i < a.size(); ++i) {
      builder.AddOrder(name(i, lj), name(i, hj));
    }
  }
  return std::move(builder.Build()).value();
}

Result<size_t> SecurityLattice::Index(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown security level '" + name + "'");
  }
  return it->second;
}

Result<bool> SecurityLattice::Leq(const std::string& a,
                                  const std::string& b) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ia, Index(a));
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(b));
  return leq_[ia][ib];
}

Result<bool> SecurityLattice::Lt(const std::string& a,
                                 const std::string& b) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ia, Index(a));
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(b));
  return LtIndex(ia, ib);
}

Result<bool> SecurityLattice::Comparable(const std::string& a,
                                         const std::string& b) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ia, Index(a));
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(b));
  return leq_[ia][ib] || leq_[ib][ia];
}

Result<std::optional<std::string>> SecurityLattice::Lub(
    const std::string& a, const std::string& b) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ia, Index(a));
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(b));

  std::vector<size_t> uppers;
  for (size_t k = 0; k < size(); ++k) {
    if (leq_[ia][k] && leq_[ib][k]) uppers.push_back(k);
  }
  for (size_t k : uppers) {
    bool least = true;
    for (size_t other : uppers) {
      if (!leq_[k][other]) {
        least = false;
        break;
      }
    }
    if (least) return std::optional<std::string>(names_[k]);
  }
  return std::optional<std::string>();
}

Result<std::optional<std::string>> SecurityLattice::LubOfSet(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    return Status::InvalidArgument("LubOfSet requires a non-empty set");
  }
  std::string acc = names[0];
  MULTILOG_RETURN_IF_ERROR(Index(acc).status());
  for (size_t i = 1; i < names.size(); ++i) {
    MULTILOG_ASSIGN_OR_RETURN(std::optional<std::string> step,
                              Lub(acc, names[i]));
    if (!step.has_value()) return std::optional<std::string>();
    acc = *step;
  }
  return std::optional<std::string>(acc);
}

Result<std::optional<std::string>> SecurityLattice::Glb(
    const std::string& a, const std::string& b) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ia, Index(a));
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(b));

  std::vector<size_t> lowers;
  for (size_t k = 0; k < size(); ++k) {
    if (leq_[k][ia] && leq_[k][ib]) lowers.push_back(k);
  }
  for (size_t k : lowers) {
    bool greatest = true;
    for (size_t other : lowers) {
      if (!leq_[other][k]) {
        greatest = false;
        break;
      }
    }
    if (greatest) return std::optional<std::string>(names_[k]);
  }
  return std::optional<std::string>();
}

std::vector<std::string> SecurityLattice::MinimalElements() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < size(); ++i) {
    bool minimal = true;
    for (size_t j = 0; j < size(); ++j) {
      if (LtIndex(j, i)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(names_[i]);
  }
  return out;
}

std::vector<std::string> SecurityLattice::MaximalElements() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < size(); ++j) {
      if (LtIndex(i, j)) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.push_back(names_[i]);
  }
  return out;
}

Result<std::vector<std::string>> SecurityLattice::DownSet(
    const std::string& bound) const {
  MULTILOG_ASSIGN_OR_RETURN(size_t ib, Index(bound));
  std::vector<std::string> out;
  for (size_t i = 0; i < size(); ++i) {
    if (leq_[i][ib]) out.push_back(names_[i]);
  }
  return out;
}

bool SecurityLattice::IsTotalOrder() const {
  for (size_t i = 0; i < size(); ++i) {
    for (size_t j = i + 1; j < size(); ++j) {
      if (!leq_[i][j] && !leq_[j][i]) return false;
    }
  }
  return true;
}

std::vector<std::string> SecurityLattice::TopologicalOrder() const {
  // Counting sort on the size of each element's strict down-set gives a
  // valid topological order for a finite poset.
  std::vector<std::pair<size_t, size_t>> keyed;  // (downset size, index)
  keyed.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    size_t below = 0;
    for (size_t j = 0; j < size(); ++j) {
      if (LtIndex(j, i)) ++below;
    }
    keyed.emplace_back(below, i);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> out;
  out.reserve(size());
  for (const auto& [unused, i] : keyed) out.push_back(names_[i]);
  return out;
}

std::string SecurityLattice::ToDot() const {
  std::string out = "digraph lattice {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const std::string& name : names_) {
    out += "  \"" + name + "\";\n";
  }
  for (const auto& [low, high] : covers_) {
    out += "  \"" + low + "\" -> \"" + high + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace multilog::lattice
