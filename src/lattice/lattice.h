#ifndef MULTILOG_LATTICE_LATTICE_H_
#define MULTILOG_LATTICE_LATTICE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace multilog::lattice {

/// A finite partially ordered set of security levels (access classes),
/// exactly the structure MultiLog's Λ component denotes: `level(l)` facts
/// declare elements and `order(l, h)` facts declare cover edges (l is
/// immediately below h). Definition 5.3 of the paper requires Λ's meaning
/// to be a partial order; SecurityLattice::Builder::Build enforces that
/// (no cycles through order edges, all edge endpoints declared).
///
/// Despite the name — kept from the paper, which says "access classes are
/// partially ordered in a lattice" — unique least upper bounds are NOT
/// required to exist; Lub/Glb report absence or ambiguity, and the belief
/// machinery copes with incomparable levels (the paper's "multiple models
/// and associated unpredictability" remark in Section 3.1).
class SecurityLattice {
 public:
  /// Incrementally collects level() and order() declarations.
  class Builder {
   public:
    /// Declares a level. Duplicate declarations are idempotent.
    Builder& AddLevel(const std::string& name);

    /// Declares that `low` is immediately below `high` (an h-atom
    /// `order(low, high)`). Endpoints must also be declared as levels by
    /// the time Build() runs.
    Builder& AddOrder(const std::string& low, const std::string& high);

    /// Validates and produces the lattice:
    ///   - every order() endpoint was declared via AddLevel,
    ///   - the reflexive-transitive closure of order() is antisymmetric
    ///     (i.e. the order graph is acyclic).
    Result<SecurityLattice> Build() const;

   private:
    std::vector<std::string> levels_;
    std::unordered_map<std::string, size_t> index_;
    std::vector<std::pair<size_t, size_t>> edges_;  // (low, high)
    std::vector<std::pair<std::string, std::string>> pending_edges_;
  };

  SecurityLattice() = default;

  /// Convenience factory: a total order low-to-high, e.g.
  /// Chain({"u","c","s","t"}) is the paper's U < C < S < T hierarchy.
  static SecurityLattice Chain(const std::vector<std::string>& low_to_high);

  /// The paper's four-level military hierarchy: u < c < s < t
  /// (Unclassified < Classified < Secret < Top Secret).
  static SecurityLattice Military();

  /// The powerset of `categories` ordered by inclusion; element names are
  /// "{}", "{a}", "{a,b}", ... with categories sorted. This is the
  /// category component of a Bell-LaPadula access class.
  static SecurityLattice Powerset(const std::vector<std::string>& categories);

  /// Product order of two lattices; element names are "a.b". This builds
  /// full Bell-LaPadula access classes as hierarchy x category-set, where
  /// (h1,c1) <= (h2,c2) iff h1 <= h2 and c1 <= c2.
  static SecurityLattice Product(const SecurityLattice& a,
                                 const SecurityLattice& b);

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// Index of a declared level; NotFound otherwise.
  Result<size_t> Index(const std::string& name) const;
  const std::string& Name(size_t i) const { return names_[i]; }

  /// a <= b (b dominates a). Both must be declared (checked).
  Result<bool> Leq(const std::string& a, const std::string& b) const;
  /// a < b.
  Result<bool> Lt(const std::string& a, const std::string& b) const;
  /// a <= b or b <= a.
  Result<bool> Comparable(const std::string& a, const std::string& b) const;

  /// Index-based fast paths; indices must come from Index()/size().
  bool LeqIndex(size_t a, size_t b) const { return leq_[a][b]; }
  bool LtIndex(size_t a, size_t b) const { return a != b && leq_[a][b]; }

  /// Least upper bound, if a unique one exists: the minimum of the common
  /// upper bounds. nullopt when there is no upper bound or no least one.
  Result<std::optional<std::string>> Lub(const std::string& a,
                                         const std::string& b) const;

  /// Lub folded over a non-empty set; nullopt if undefined at any step.
  Result<std::optional<std::string>> LubOfSet(
      const std::vector<std::string>& names) const;

  /// Greatest lower bound, dually to Lub.
  Result<std::optional<std::string>> Glb(const std::string& a,
                                         const std::string& b) const;

  /// Levels with nothing strictly below / above them.
  std::vector<std::string> MinimalElements() const;
  std::vector<std::string> MaximalElements() const;

  /// All levels l with l <= bound (the clearance-visible sub-order).
  Result<std::vector<std::string>> DownSet(const std::string& bound) const;

  /// True when every pair of levels is comparable.
  bool IsTotalOrder() const;

  /// The declared cover edges (low, high), i.e. the h-atoms.
  const std::vector<std::pair<std::string, std::string>>& CoverEdges() const {
    return covers_;
  }

  /// Level names in a topological order (lower levels first).
  std::vector<std::string> TopologicalOrder() const;

  /// Renders the Hasse diagram as a Graphviz digraph (edges point from
  /// lower to higher levels); pipe through `dot -Tsvg` to visualize.
  std::string ToDot() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<bool>> leq_;  // leq_[a][b] <=> a <= b
  std::vector<std::pair<std::string, std::string>> covers_;
};

}  // namespace multilog::lattice

#endif  // MULTILOG_LATTICE_LATTICE_H_
