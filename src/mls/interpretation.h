#ifndef MULTILOG_MLS_INTERPRETATION_H_
#define MULTILOG_MLS_INTERPRETATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mls/jukic_vrbsky.h"
#include "mls/relation.h"

namespace multilog::mls {

/// Computes a Jukic-Vrbsky-style interpretation (Figure 5's categories)
/// for a *stored tuple version* of a plain MLS relation, without any
/// asserted belief labels - the labels are reconstructed from the
/// polyinstantiation structure itself:
///
///  - invisible:   the version's TC is not dominated by `level`;
///  - true:        some visible version of the entity with the same
///                 attribute values is asserted exactly at `level` (the
///                 level itself stands behind the data);
///  - cover story: a strictly higher (but visible) version of the entity
///                 disagrees on some attribute value - the level can see
///                 that better-informed data supersedes this version;
///  - irrelevant:  visible, but the level neither asserts nor disputes
///                 it.
///
/// *mirage* is NOT derivable from a plain relation: it encodes an
/// explicit "verified false, no replacement" assertion that exists only
/// as Jukic-Vrbsky label data (see JvRelation). This is precisely the
/// paper's Section 3.1 point - fixed interpretations need extra asserted
/// state, while the belief function beta lets users reason dynamically.
Result<JvInterpretation> ComputeInterpretation(const Relation& relation,
                                               const Tuple& tuple,
                                               const std::string& level);

/// Renders the computed interpretation matrix for every stored version
/// across `levels` (Figure 5's shape, derived instead of asserted).
Result<std::string> RenderComputedInterpretations(
    const Relation& relation, const std::vector<std::string>& levels);

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_INTERPRETATION_H_
