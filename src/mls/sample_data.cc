#include "mls/sample_data.h"

#include <random>

namespace multilog::mls {

namespace {

Result<Scheme> MissionScheme(const lattice::SecurityLattice& lat) {
  return Scheme::Create("Mission",
                        {{"Starship", "u", "t"},
                         {"Objective", "u", "t"},
                         {"Destin", "u", "t"}},
                        "Starship", lat);
}

Tuple MakeTuple(const std::string& starship, const std::string& c1,
                const std::string& objective, const std::string& c2,
                const std::string& destination, const std::string& c3,
                const std::string& tc) {
  Tuple t;
  t.cells = {Cell{Value::Str(starship), c1}, Cell{Value::Str(objective), c2},
             Cell{Value::Str(destination), c3}};
  t.tc = tc;
  return t;
}

JvLabel B(std::vector<std::string> believed) {
  return JvLabel{std::move(believed), {}};
}

JvLabel BV(std::vector<std::string> believed,
           std::vector<std::string> verified_false) {
  return JvLabel{std::move(believed), std::move(verified_false)};
}

Status AddJv(JvRelation* rel, const std::string& id,
             const std::string& created_at, const std::string& starship,
             const std::string& objective, const std::string& destination,
             JvLabel l1, JvLabel l2, JvLabel l3, JvLabel tuple_label) {
  JvTuple t;
  t.id = id;
  t.created_at = created_at;
  t.values = {Value::Str(starship), Value::Str(objective),
              Value::Str(destination)};
  t.cell_labels = {std::move(l1), std::move(l2), std::move(l3)};
  t.tuple_label = std::move(tuple_label);
  return rel->Add(std::move(t));
}

}  // namespace

Result<MissionDataset> BuildMissionDataset() {
  MissionDataset ds;
  ds.lattice = std::make_unique<lattice::SecurityLattice>(
      lattice::SecurityLattice::Military());

  MULTILOG_ASSIGN_OR_RETURN(Scheme scheme, MissionScheme(*ds.lattice));
  ds.mission = std::make_unique<Relation>(scheme, ds.lattice.get());

  // Figure 1, tuples t1..t10 in order.
  const Tuple tuples[] = {
      MakeTuple("Avenger", "s", "Shipping", "s", "Pluto", "s", "s"),
      MakeTuple("Atlantis", "u", "Diplomacy", "u", "Vulcan", "u", "s"),
      MakeTuple("Voyager", "u", "Spying", "s", "Mars", "u", "s"),
      MakeTuple("Phantom", "u", "Spying", "s", "Omega", "u", "s"),
      MakeTuple("Phantom", "c", "Supply", "s", "Venus", "s", "s"),
      MakeTuple("Atlantis", "u", "Diplomacy", "u", "Vulcan", "u", "c"),
      MakeTuple("Atlantis", "u", "Diplomacy", "u", "Vulcan", "u", "u"),
      MakeTuple("Voyager", "u", "Training", "u", "Mars", "u", "u"),
      MakeTuple("Falcon", "u", "Piracy", "u", "Venus", "u", "u"),
      MakeTuple("Eagle", "u", "Patrolling", "u", "Degoba", "u", "u"),
  };
  for (const Tuple& t : tuples) {
    MULTILOG_RETURN_IF_ERROR(
        ds.mission->InsertTuple(t).WithContext("loading Figure 1"));
  }

  // Figure 4: the Jukic-Vrbsky labeled representation.
  ds.jv_mission = std::make_unique<JvRelation>(scheme, ds.lattice.get());
  JvRelation* jv = ds.jv_mission.get();
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t1", "s", "Avenger", "Shipping",
                                 "Pluto", B({"s"}), B({"s"}), B({"s"}),
                                 B({"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(
      jv, "t2", "u", "Atlantis", "Diplomacy", "Vulcan", B({"u", "c", "s"}),
      B({"u", "c", "s"}), B({"u", "c", "s"}), B({"u", "c", "s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t3", "s", "Voyager", "Spying", "Mars",
                                 B({"u", "s"}), B({"s"}), B({"u", "s"}),
                                 B({"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t4", "u", "Phantom", "Spying", "Omega",
                                 B({"u", "s"}), BV({"u"}, {"s"}),
                                 B({"u", "s"}), BV({"u"}, {"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t4'", "s", "Phantom", "Spying", "Omega",
                                 B({"u", "s"}), B({"s"}), B({"u", "s"}),
                                 B({"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t5", "s", "Phantom", "Supply", "Venus",
                                 B({"c", "s"}), B({"s"}), B({"s"}),
                                 B({"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t5'", "c", "Phantom", "Supply", "Venus",
                                 B({"c", "s"}), BV({"c"}, {"s"}),
                                 BV({"c"}, {"s"}), BV({"c"}, {"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t8", "u", "Voyager", "Training", "Mars",
                                 B({"u", "s"}), BV({"u"}, {"s"}),
                                 B({"u", "s"}), BV({"u"}, {"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t9", "u", "Falcon", "Piracy", "Venus",
                                 BV({"u"}, {"s"}), BV({"u"}, {"s"}),
                                 BV({"u"}, {"s"}), BV({"u"}, {"s"})));
  MULTILOG_RETURN_IF_ERROR(AddJv(jv, "t10", "u", "Eagle", "Patrolling",
                                 "Degoba", B({"u"}), B({"u"}), B({"u"}),
                                 B({"u"})));
  return ds;
}

const char* D1Source() {
  return R"(
% Figure 10: database D1.
level(u).                                   % r1
level(c).                                   % r2
level(s).                                   % r3
order(u, c).                                % r4
order(c, s).                                % r5
u[p(k : a -u-> v)].                         % r6
c[p(k : a -c-> t)] :- q(j).                 % r7
s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau.   % r8
q(j).                                       % r9
?- c[p(k : a -R-> v)] << opt.               % r10
)";
}

Result<Relation> BuildSyntheticRelation(const lattice::SecurityLattice& lat,
                                        size_t entities,
                                        size_t versions_per_entity,
                                        unsigned seed) {
  MULTILOG_ASSIGN_OR_RETURN(
      Scheme scheme,
      Scheme::Create("Synthetic",
                     {{"Id", lat.MinimalElements().front(),
                       lat.MaximalElements().front()},
                      {"Payload", lat.MinimalElements().front(),
                       lat.MaximalElements().front()},
                      {"Region", lat.MinimalElements().front(),
                       lat.MaximalElements().front()}},
                     "Id", lat));
  Relation rel(scheme, &lat);

  std::mt19937 rng(seed);
  const std::vector<std::string> topo = lat.TopologicalOrder();
  std::uniform_int_distribution<size_t> level_dist(0, topo.size() - 1);
  std::uniform_int_distribution<int> payload_dist(0, 9999);

  for (size_t e = 0; e < entities; ++e) {
    const std::string key = "entity" + std::to_string(e);
    for (size_t v = 0; v < versions_per_entity; ++v) {
      // A uniformly classified version at a random level; duplicate
      // (key class, attr class) pairs with new values would break
      // polyinstantiation integrity, so retry with fresh payloads and
      // give up quietly after a few attempts (the instance stays valid).
      const std::string& level = topo[level_dist(rng)];
      Tuple t;
      t.cells = {Cell{Value::Str(key), level},
                 Cell{Value::Int(payload_dist(rng)), level},
                 Cell{Value::Str("region" + std::to_string(level_dist(rng))),
                      level}};
      t.tc = level;
      Status st = rel.InsertTuple(std::move(t));
      if (!st.ok() && !st.IsIntegrityViolation()) return st;
    }
  }
  return rel;
}

}  // namespace multilog::mls
