#include "mls/relation.h"

#include <algorithm>

#include "common/table_printer.h"

namespace multilog::mls {

Status Relation::ValidateTuple(const Tuple& t) const {
  if (t.cells.size() != scheme_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.cells.size()) +
        " does not match scheme arity " + std::to_string(scheme_.arity()));
  }

  // Classifications are known levels within attribute ranges.
  for (size_t i = 0; i < t.cells.size(); ++i) {
    MULTILOG_ASSIGN_OR_RETURN(bool in_range,
                              scheme_.InRange(i, t.cells[i].classification,
                                              *lat_));
    if (!in_range) {
      return Status::IntegrityViolation(
          "classification '" + t.cells[i].classification +
          "' of attribute '" + scheme_.attributes()[i].name +
          "' is outside its range");
    }
  }

  // Entity integrity (Definition 5.4): key attributes non-null and
  // uniformly classified; non-key classifications dominate the key
  // classification.
  const size_t key_arity = scheme_.key_arity();
  const Cell& key = t.key_cell();
  for (size_t i = 0; i < key_arity; ++i) {
    if (t.cells[i].value.is_null()) {
      return Status::IntegrityViolation(
          "entity integrity: null apparent-key attribute '" +
          scheme_.attributes()[i].name + "'");
    }
    if (t.cells[i].classification != key.classification) {
      return Status::IntegrityViolation(
          "entity integrity: the apparent key is not uniformly classified "
          "('" +
          key.classification + "' vs '" + t.cells[i].classification + "')");
    }
  }
  for (size_t i = key_arity; i < t.cells.size(); ++i) {
    MULTILOG_ASSIGN_OR_RETURN(
        bool dominates, lat_->Leq(key.classification,
                                  t.cells[i].classification));
    if (!dominates) {
      return Status::IntegrityViolation(
          "entity integrity: classification of attribute '" +
          scheme_.attributes()[i].name +
          "' does not dominate the key classification");
    }
    // Null integrity: nulls are classified at the key level.
    if (t.cells[i].value.is_null() &&
        t.cells[i].classification != key.classification) {
      return Status::IntegrityViolation(
          "null integrity: null in attribute '" + scheme_.attributes()[i].name +
          "' must be classified at the key classification '" +
          key.classification + "'");
    }
  }

  // TC records the access class where the tuple was inserted or last
  // updated (Section 2 of the paper), so it must dominate the lub of the
  // cell classifications. (Definition 2.2 states tc = lub, but the
  // paper's own Figure 1 stores all-U cells under TC = S - e.g. t2 -
  // because an S subject re-asserted the tuple; we follow the figures.)
  std::vector<std::string> classes;
  classes.reserve(t.cells.size());
  for (const Cell& c : t.cells) classes.push_back(c.classification);
  MULTILOG_ASSIGN_OR_RETURN(std::optional<std::string> lub,
                            lat_->LubOfSet(classes));
  if (!lub.has_value()) {
    return Status::IntegrityViolation(
        "cell classifications have no least upper bound; cannot assign TC");
  }
  MULTILOG_ASSIGN_OR_RETURN(bool tc_dominates, lat_->Leq(*lub, t.tc));
  if (!tc_dominates) {
    return Status::IntegrityViolation(
        "TC '" + t.tc +
        "' does not dominate the lub of the cell classifications '" + *lub +
        "'");
  }

  // Polyinstantiation integrity: AK, C_AK, C_i -> A_i. Also reject exact
  // duplicates.
  for (const Tuple& existing : tuples_) {
    if (existing == t) {
      return Status::IntegrityViolation("exact duplicate tuple " +
                                        t.ToString());
    }
    bool same_key = existing.key_cell().classification == key.classification;
    for (size_t i = 0; same_key && i < key_arity; ++i) {
      same_key = existing.cells[i].value == t.cells[i].value;
    }
    if (!same_key) continue;
    for (size_t i = key_arity; i < t.cells.size(); ++i) {
      if (existing.cells[i].classification == t.cells[i].classification &&
          existing.cells[i].value != t.cells[i].value) {
        return Status::IntegrityViolation(
            "polyinstantiation integrity: attribute '" +
            scheme_.attributes()[i].name + "' of key " + key.value.ToString() +
            " already has value " + existing.cells[i].value.ToString() +
            " at classification '" + t.cells[i].classification + "'");
      }
    }
  }
  return Status::OK();
}

Status Relation::InsertTuple(Tuple t) {
  // Fill in TC when the caller left it empty.
  if (t.tc.empty()) {
    std::vector<std::string> classes;
    for (const Cell& c : t.cells) classes.push_back(c.classification);
    MULTILOG_ASSIGN_OR_RETURN(std::optional<std::string> lub,
                              lat_->LubOfSet(classes));
    if (!lub.has_value()) {
      return Status::IntegrityViolation(
          "cell classifications have no least upper bound; cannot assign TC");
    }
    t.tc = *lub;
  }
  MULTILOG_RETURN_IF_ERROR(ValidateTuple(t));
  tuples_.push_back(std::move(t));
  return Status::OK();
}

Status Relation::InsertAt(const std::string& level,
                          const std::vector<Value>& values) {
  MULTILOG_RETURN_IF_ERROR(lat_->Index(level).status());
  if (values.size() != scheme_.arity()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(scheme_.arity()) + " values, got " +
        std::to_string(values.size()));
  }
  Tuple t;
  t.cells.reserve(values.size());
  for (const Value& v : values) t.cells.push_back(Cell{v, level});
  t.tc = level;
  return InsertTuple(std::move(t)).WithContext("insert at level '" + level +
                                               "'");
}

Status Relation::UpdateAt(const std::string& level, const Value& key,
                          const std::string& attribute, const Value& value) {
  return UpdateAt(level, std::vector<Value>{key}, attribute, value);
}

Status Relation::UpdateAt(const std::string& level,
                          const std::vector<Value>& key,
                          const std::string& attribute, const Value& value) {
  MULTILOG_RETURN_IF_ERROR(lat_->Index(level).status());
  if (key.size() != scheme_.key_arity()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(scheme_.key_arity()) +
        " key value(s), got " + std::to_string(key.size()));
  }
  MULTILOG_ASSIGN_OR_RETURN(size_t attr, scheme_.AttributeIndex(attribute));
  if (scheme_.IsKeyPosition(attr)) {
    return Status::InvalidArgument(
        "cannot update the apparent key; delete and re-insert instead");
  }

  // Versions of the entity whose key classification the subject can see.
  std::vector<size_t> visible;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    if (!KeyMatches(t, key)) continue;
    MULTILOG_ASSIGN_OR_RETURN(bool sees,
                              lat_->Leq(t.key_cell().classification, level));
    if (sees) visible.push_back(i);
  }
  if (visible.empty()) {
    return Status::NotFound("no visible tuple with key " +
                            key.front().ToString() + " at level '" + level +
                            "'");
  }

  // In-place when the subject owns a version of the cell at its level.
  for (size_t i : visible) {
    if (tuples_[i].cells[attr].classification == level) {
      Tuple updated = tuples_[i];
      updated.cells[attr].value = value;
      Tuple original = std::move(tuples_[i]);
      tuples_.erase(tuples_.begin() + i);
      Status st = InsertTuple(std::move(updated));
      if (!st.ok()) {
        tuples_.insert(tuples_.begin() + i, std::move(original));
        return st.WithContext("update at level '" + level + "'");
      }
      return Status::OK();
    }
  }

  // Otherwise polyinstantiate: start from the version the subject sees
  // best (maximal TC among those with TC <= level, falling back to the
  // first visible one), copy the visible cells, hide the rest as nulls
  // at the key classification - which stays unchanged, the very step the
  // paper identifies as the genesis of surprise stories.
  size_t base = visible[0];
  bool have_dominated_version = false;
  for (size_t i : visible) {
    MULTILOG_ASSIGN_OR_RETURN(bool below, lat_->Leq(tuples_[i].tc, level));
    if (!below) continue;
    if (!have_dominated_version) {
      base = i;
      have_dominated_version = true;
      continue;
    }
    MULTILOG_ASSIGN_OR_RETURN(bool better,
                              lat_->Leq(tuples_[base].tc, tuples_[i].tc));
    if (better) base = i;
  }

  const Tuple& src = tuples_[base];
  Tuple fresh;
  fresh.cells.reserve(scheme_.arity());
  for (size_t i = 0; i < scheme_.arity(); ++i) {
    MULTILOG_ASSIGN_OR_RETURN(bool sees,
                              lat_->Leq(src.cells[i].classification, level));
    if (sees) {
      fresh.cells.push_back(src.cells[i]);
    } else {
      fresh.cells.push_back(
          Cell{Value::NullValue(), src.key_cell().classification});
    }
  }
  fresh.cells[attr] = Cell{value, level};
  fresh.tc.clear();  // recomputed by InsertTuple
  return InsertTuple(std::move(fresh))
      .WithContext("polyinstantiating update at level '" + level + "'");
}

Status Relation::DeleteAt(const std::string& level, const Value& key) {
  return DeleteAt(level, std::vector<Value>{key});
}

Status Relation::DeleteAt(const std::string& level,
                          const std::vector<Value>& key) {
  MULTILOG_RETURN_IF_ERROR(lat_->Index(level).status());
  if (key.size() != scheme_.key_arity()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(scheme_.key_arity()) +
        " key value(s), got " + std::to_string(key.size()));
  }
  size_t before = tuples_.size();
  tuples_.erase(std::remove_if(tuples_.begin(), tuples_.end(),
                               [&](const Tuple& t) {
                                 return KeyMatches(t, key) && t.tc == level;
                               }),
                tuples_.end());
  if (tuples_.size() == before) {
    return Status::NotFound("no tuple with key " + key.front().ToString() +
                            " at level '" + level + "' to delete");
  }
  return Status::OK();
}

std::vector<Value> Relation::KeyOf(const Tuple& t) const {
  std::vector<Value> out;
  out.reserve(scheme_.key_arity());
  for (size_t i = 0; i < scheme_.key_arity(); ++i) {
    out.push_back(t.cells[i].value);
  }
  return out;
}

bool Relation::KeyMatches(const Tuple& t,
                          const std::vector<Value>& key) const {
  if (key.size() != scheme_.key_arity()) return false;
  for (size_t i = 0; i < key.size(); ++i) {
    if (t.cells[i].value != key[i]) return false;
  }
  return true;
}

std::vector<Tuple> Relation::Subsume(const lattice::SecurityLattice& lat,
                                     std::vector<Tuple> tuples) {
  std::vector<Tuple> kept;
  for (size_t i = 0; i < tuples.size(); ++i) {
    bool subsumed = false;
    for (size_t j = 0; j < tuples.size() && !subsumed; ++j) {
      if (i == j) continue;
      const Tuple& other = tuples[j];
      const Tuple& mine = tuples[i];
      if (!other.SubsumesCells(mine)) continue;
      if (other.cells != mine.cells) {
        subsumed = true;  // strictly more informative cells
      } else {
        // Equal cells: the higher-TC copy wins; break exact ties by
        // index so exactly one copy survives.
        bool other_higher = lat.Lt(mine.tc, other.tc).value_or(false);
        bool equal = other.tc == mine.tc;
        if (other_higher || (equal && j < i)) subsumed = true;
      }
    }
    if (!subsumed) kept.push_back(tuples[i]);
  }
  return kept;
}

Result<Relation> Relation::ViewAt(const std::string& level,
                                  bool apply_subsumption) const {
  MULTILOG_RETURN_IF_ERROR(lat_->Index(level).status());
  Relation view(scheme_, lat_);

  std::vector<Tuple> produced;
  for (const Tuple& t : tuples_) {
    MULTILOG_ASSIGN_OR_RETURN(bool key_visible,
                              lat_->Leq(t.key_cell().classification, level));
    if (!key_visible) continue;

    Tuple vt;
    vt.cells.reserve(t.cells.size());
    for (const Cell& c : t.cells) {
      MULTILOG_ASSIGN_OR_RETURN(bool sees, lat_->Leq(c.classification, level));
      if (sees) {
        vt.cells.push_back(c);
      } else {
        vt.cells.push_back(
            Cell{Value::NullValue(), t.key_cell().classification});
      }
    }
    MULTILOG_ASSIGN_OR_RETURN(bool tc_visible, lat_->Leq(t.tc, level));
    vt.tc = tc_visible ? t.tc : level;
    produced.push_back(std::move(vt));
  }

  // Set semantics: identical view tuples collapse.
  std::sort(produced.begin(), produced.end());
  produced.erase(std::unique(produced.begin(), produced.end()),
                 produced.end());

  if (apply_subsumption) {
    produced = Subsume(*lat_, std::move(produced));
  }
  view.tuples_ = std::move(produced);
  return view;
}

Status Relation::AppendDerived(Tuple t) {
  if (t.cells.size() != scheme_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.cells.size()) +
        " does not match scheme arity " + std::to_string(scheme_.arity()));
  }
  for (const Cell& c : t.cells) {
    MULTILOG_RETURN_IF_ERROR(lat_->Index(c.classification).status());
  }
  MULTILOG_RETURN_IF_ERROR(lat_->Index(t.tc).status());
  tuples_.push_back(std::move(t));
  return Status::OK();
}

std::vector<const Tuple*> Relation::TuplesWithKey(const Value& key) const {
  return TuplesWithKey(std::vector<Value>{key});
}

std::vector<const Tuple*> Relation::TuplesWithKey(
    const std::vector<Value>& key) const {
  std::vector<const Tuple*> out;
  for (const Tuple& t : tuples_) {
    if (KeyMatches(t, key)) out.push_back(&t);
  }
  return out;
}

std::string Relation::ToString() const {
  std::vector<std::string> header;
  for (const AttributeDef& a : scheme_.attributes()) {
    header.push_back(a.name);
    header.push_back("C");
  }
  header.push_back("TC");
  TablePrinter printer(std::move(header));
  for (const Tuple& t : tuples_) {
    std::vector<std::string> row;
    for (const Cell& c : t.cells) {
      row.push_back(c.value.ToString());
      row.push_back(c.classification);
    }
    row.push_back(t.tc);
    printer.AddRow(std::move(row));
  }
  return scheme_.relation_name() + "\n" + printer.ToString();
}

}  // namespace multilog::mls
