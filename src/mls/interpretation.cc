#include "mls/interpretation.h"

#include "common/table_printer.h"

namespace multilog::mls {

Result<JvInterpretation> ComputeInterpretation(const Relation& relation,
                                               const Tuple& tuple,
                                               const std::string& level) {
  const lattice::SecurityLattice& lat = relation.lat();

  MULTILOG_ASSIGN_OR_RETURN(bool visible, lat.Leq(tuple.tc, level));
  if (!visible) return JvInterpretation::kInvisible;

  const std::vector<const Tuple*> versions =
      relation.TuplesWithKey(relation.KeyOf(tuple));

  // True: the level itself (or rather, exactly this level) asserts a
  // version with identical attribute values.
  for (const Tuple* v : versions) {
    if (v->tc == level && v->cells == tuple.cells) {
      return JvInterpretation::kTrue;
    }
  }

  // Cover story: a strictly higher yet visible version disagrees on some
  // attribute value.
  for (const Tuple* v : versions) {
    MULTILOG_ASSIGN_OR_RETURN(bool higher, lat.Lt(tuple.tc, v->tc));
    if (!higher) continue;
    MULTILOG_ASSIGN_OR_RETURN(bool sees, lat.Leq(v->tc, level));
    if (!sees) continue;
    bool disagrees = false;
    for (size_t i = relation.scheme().key_arity();
         i < tuple.cells.size() && !disagrees; ++i) {
      disagrees = v->cells[i].value != tuple.cells[i].value;
    }
    if (disagrees) return JvInterpretation::kCoverStory;
  }

  return JvInterpretation::kIrrelevant;
}

Result<std::string> RenderComputedInterpretations(
    const Relation& relation, const std::vector<std::string>& levels) {
  std::vector<std::string> header = {"Tuple"};
  for (const std::string& l : levels) header.push_back(l + " level");
  TablePrinter printer(std::move(header));
  for (const Tuple& t : relation.tuples()) {
    std::vector<std::string> row = {t.ToString()};
    for (const std::string& l : levels) {
      MULTILOG_ASSIGN_OR_RETURN(JvInterpretation i,
                                ComputeInterpretation(relation, t, l));
      row.push_back(JvInterpretationToString(i));
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

}  // namespace multilog::mls
