#include "mls/cuppens.h"

namespace multilog::mls {

Result<std::vector<Tuple>> AdditiveView(const Relation& relation,
                                        const std::string& level) {
  MULTILOG_ASSIGN_OR_RETURN(BeliefOutcome out,
                            Believe(relation, level,
                                    BeliefMode::kOptimistic));
  return out.relation.tuples();
}

Result<std::vector<Tuple>> TrustedView(const Relation& relation,
                                       const std::string& level) {
  BeliefOptions options;
  options.merge_key_versions = true;
  MULTILOG_ASSIGN_OR_RETURN(
      BeliefOutcome out,
      Believe(relation, level, BeliefMode::kCautious, options));
  return out.relation.tuples();
}

Result<std::vector<Tuple>> SuspiciousView(const Relation& relation,
                                          const std::string& level) {
  const lattice::SecurityLattice& lat = relation.lat();

  // Start from the firm core...
  MULTILOG_ASSIGN_OR_RETURN(BeliefOutcome firm,
                            Believe(relation, level, BeliefMode::kFirm));

  std::vector<Tuple> out;
  for (const Tuple& t : firm.relation.tuples()) {
    // ...and keep only tuples whose every cell is classified exactly at
    // the believing level (nothing a higher level could silently have
    // polyinstantiated under a lower classification)...
    bool all_own_level = true;
    for (const Cell& c : t.cells) {
      if (c.classification != level) {
        all_own_level = false;
        break;
      }
    }
    if (!all_own_level) continue;

    // ...and with no polyinstantiated sibling anywhere in the stored
    // instance (a sibling version is evidence someone disputes the
    // entity, which the suspicious reader takes as taint).
    bool disputed = false;
    for (const Tuple* sibling : relation.TuplesWithKey(relation.KeyOf(t))) {
      if (sibling->tc != t.tc || sibling->cells != t.cells) {
        disputed = true;
        break;
      }
    }
    if (!disputed) out.push_back(t);
  }
  (void)lat;
  return out;
}

Status RegisterCuppensModes(BeliefModeRegistry* registry) {
  MULTILOG_RETURN_IF_ERROR(registry->Register("additive", AdditiveView));
  MULTILOG_RETURN_IF_ERROR(registry->Register("trusted", TrustedView));
  return registry->Register("suspicious", SuspiciousView);
}

}  // namespace multilog::mls
