#ifndef MULTILOG_MLS_TUPLE_H_
#define MULTILOG_MLS_TUPLE_H_

#include <string>
#include <vector>

#include "mls/value.h"

namespace multilog::mls {

/// An attribute value together with its classification attribute:
/// the pair (A_i, C_i) of Definition 2.2.
struct Cell {
  Value value;
  std::string classification;

  bool operator==(const Cell& other) const {
    return value == other.value && classification == other.classification;
  }
  bool operator!=(const Cell& other) const { return !(*this == other); }
  bool operator<(const Cell& other) const {
    if (value != other.value) return value < other.value;
    return classification < other.classification;
  }

  /// "Shipping/s" or "⊥/u".
  std::string ToString() const {
    return value.ToString() + "/" + classification;
  }
};

/// A multilevel tuple: one cell per scheme attribute (cell 0 is the
/// apparent key) plus the tuple class TC.
struct Tuple {
  std::vector<Cell> cells;
  std::string tc;

  const Cell& key_cell() const { return cells[0]; }

  bool operator==(const Tuple& other) const {
    return cells == other.cells && tc == other.tc;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    if (cells != other.cells) return cells < other.cells;
    return tc < other.tc;
  }

  /// "(avenger/s, shipping/s, pluto/s | TC=s)".
  std::string ToString() const;

  /// True when `this` subsumes `other` cell-wise (Definition 5.4's null
  /// integrity, clause 2): for every position either the cells are equal,
  /// or this cell is non-null while the other is null. TC is ignored.
  bool SubsumesCells(const Tuple& other) const;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_TUPLE_H_
