#ifndef MULTILOG_MLS_TRANSACTION_H_
#define MULTILOG_MLS_TRANSACTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mls/relation.h"

namespace multilog::mls {

/// A single-subject transaction over one MLS relation: operations are
/// buffered against a snapshot copy and only applied to the live
/// relation on Commit. Abort (or destruction without Commit) leaves the
/// live relation untouched.
///
/// The transaction is bound to one clearance level - the paper's model
/// fixes the subject's level per session - so every buffered operation
/// runs at that level, and reads inside the transaction see the
/// snapshot plus the transaction's own writes (read-your-writes at the
/// subject's clearance).
///
/// Single-writer semantics: Commit re-plays the operation log against
/// the live relation and fails atomically (no partial application) if
/// the live relation changed incompatibly since Begin.
class Transaction {
 public:
  /// Starts a transaction for a subject cleared at `level`. `relation`
  /// must outlive the transaction.
  static Result<Transaction> Begin(Relation* relation,
                                   const std::string& level);

  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Buffered polyinstantiating operations (see Relation).
  Status Insert(const std::vector<Value>& values);
  Status Update(const Value& key, const std::string& attribute,
                const Value& value);
  Status Delete(const Value& key);

  /// The subject's view of the in-transaction state (snapshot + own
  /// writes), through the Jajodia-Sandhu view at the subject's level.
  Result<Relation> View() const;

  /// Re-plays the buffered operations against the live relation; all or
  /// nothing. A committed or aborted transaction rejects further use.
  Status Commit();

  /// Discards all buffered operations.
  void Abort();

  bool active() const { return state_ == State::kActive; }
  size_t pending_operations() const { return log_.size(); }
  const std::string& level() const { return level_; }

 private:
  enum class State { kActive, kCommitted, kAborted };

  struct Op {
    enum class Kind { kInsert, kUpdate, kDelete };
    Kind kind;
    std::vector<Value> values;  // insert
    Value key;                  // update/delete
    std::string attribute;      // update
    Value value;                // update
  };

  Transaction(Relation* live, Relation scratch, std::string level)
      : live_(live), scratch_(std::move(scratch)), level_(std::move(level)) {}

  Status RequireActive() const;

  Relation* live_;
  Relation scratch_;  // snapshot + own writes
  std::string level_;
  std::vector<Op> log_;
  State state_ = State::kActive;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_TRANSACTION_H_
