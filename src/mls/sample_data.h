#ifndef MULTILOG_MLS_SAMPLE_DATA_H_
#define MULTILOG_MLS_SAMPLE_DATA_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "lattice/lattice.h"
#include "mls/jukic_vrbsky.h"
#include "mls/relation.h"

namespace multilog::mls {

/// The paper's running example, shared by tests, examples, and the
/// figure-regeneration benches.
struct MissionDataset {
  /// u < c < s < t (only u, c, s are used by the data). Heap-allocated so
  /// the relations' lattice pointers survive moves of the dataset.
  std::unique_ptr<lattice::SecurityLattice> lattice;
  /// Figure 1: Mission(Starship, C1, Objective, C2, Destination, C3, TC)
  /// with tuples t1..t10.
  std::unique_ptr<Relation> mission;
  /// Figure 4: the Jukic-Vrbsky labeled rendering (versions t1, t2, t3,
  /// t4, t4', t5, t5', t8, t9, t10).
  std::unique_ptr<JvRelation> jv_mission;
};

/// Builds the full Mission dataset. Infallible by construction; any
/// internal failure indicates a bug and is returned as a Status.
Result<MissionDataset> BuildMissionDataset();

/// The MultiLog database D1 of Figure 10, in MultiLog concrete syntax,
/// including the query r10 used by the Figure 11 proof tree.
const char* D1Source();

/// A synthetic MLS relation for scaling benchmarks: `entities` keys, each
/// polyinstantiated across the levels of `lat` with probability
/// proportional to `versions_per_entity`, deterministic in `seed`.
Result<Relation> BuildSyntheticRelation(const lattice::SecurityLattice& lat,
                                        size_t entities,
                                        size_t versions_per_entity,
                                        unsigned seed);

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_SAMPLE_DATA_H_
