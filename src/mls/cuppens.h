#ifndef MULTILOG_MLS_CUPPENS_H_
#define MULTILOG_MLS_CUPPENS_H_

#include "common/status.h"
#include "mls/belief.h"

namespace multilog::mls {

/// The three views Cuppens proposes for multilevel databases (the
/// paper's Section 3.1 cites them and claims "our views subsume all the
/// views he has proposed, namely the additive view, the suspicious view
/// and the trusted view"). We implement them as user-defined belief
/// modes over beta, which makes the subsumption claim executable
/// (tested in tests/mls/cuppens_test.cc):
///
///  - **additive**: accumulate every assertion visible at the level,
///    each taken at face value - beta's *optimistic* mode verbatim;
///  - **trusted**: when sources conflict, trust the dominating (more
///    classified) source - beta's *cautious* mode with key versions
///    merged (inheritance with overriding);
///  - **suspicious**: distrust anything a strictly dominating level has
///    overridden *or could have overridden*: keep only tuples all of
///    whose cells are classified exactly at the believing level - the
///    *firm* core of what no higher level ever touched, restricted
///    further to entities with no polyinstantiated sibling anywhere in
///    the visible instance.
///
/// Registered names: "additive", "trusted", "suspicious".
Status RegisterCuppensModes(BeliefModeRegistry* registry);

/// The individual mode functions (also usable directly).
Result<std::vector<Tuple>> AdditiveView(const Relation& relation,
                                        const std::string& level);
Result<std::vector<Tuple>> TrustedView(const Relation& relation,
                                       const std::string& level);
Result<std::vector<Tuple>> SuspiciousView(const Relation& relation,
                                          const std::string& level);

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_CUPPENS_H_
