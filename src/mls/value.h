#ifndef MULTILOG_MLS_VALUE_H_
#define MULTILOG_MLS_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace multilog::mls {

/// An attribute value in a multilevel relation: a string, an integer, or
/// the distinguished null ⊥ (the paper's bottom symbol, produced when a
/// classified cell is hidden from a lower view).
class Value {
 public:
  /// Constructs ⊥.
  Value() : repr_(Null{}) {}

  static Value NullValue() { return Value(); }
  static Value Str(std::string s) {
    Value v;
    v.repr_ = std::move(s);
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.repr_ = i;
    return v;
  }

  bool is_null() const { return std::holds_alternative<Null>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }

  /// Requires is_string().
  const std::string& str() const { return std::get<std::string>(repr_); }
  /// Requires is_int().
  int64_t int_value() const { return std::get<int64_t>(repr_); }

  /// "⊥" for null, the text for strings, digits for ints.
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
    bool operator<(const Null&) const { return false; }
  };
  std::variant<Null, std::string, int64_t> repr_;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_VALUE_H_
