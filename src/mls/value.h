#ifndef MULTILOG_MLS_VALUE_H_
#define MULTILOG_MLS_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

#include "common/symbol.h"

namespace multilog::mls {

/// An attribute value in a multilevel relation: a string, an integer, or
/// the distinguished null ⊥ (the paper's bottom symbol, produced when a
/// classified cell is hidden from a lower view).
///
/// String values are interned: the variant holds a 32-bit Symbol, so
/// equality is an integer compare (the dominant operation of the belief
/// computation's key matching). `operator<` keeps the old ordering -
/// null < strings (lexicographic) < ints - because Symbol compares by
/// resolved text.
class Value {
 public:
  /// Constructs ⊥.
  Value() : repr_(Null{}) {}

  static Value NullValue() { return Value(); }
  static Value Str(std::string_view s) {
    Value v;
    v.repr_ = Symbol::Intern(s);
    return v;
  }
  static Value Str(Symbol s) {
    Value v;
    v.repr_ = s;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.repr_ = i;
    return v;
  }

  bool is_null() const { return std::holds_alternative<Null>(repr_); }
  bool is_string() const { return std::holds_alternative<Symbol>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }

  /// Requires is_string(). The reference is stable (arena-backed).
  const std::string& str() const { return std::get<Symbol>(repr_).str(); }
  /// Requires is_string().
  Symbol symbol() const { return std::get<Symbol>(repr_); }
  /// Requires is_int().
  int64_t int_value() const { return std::get<int64_t>(repr_); }

  /// "⊥" for null, the text for strings, digits for ints.
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  /// Integer hash (null tag / symbol id / int), for hashed grouping.
  size_t Hash() const {
    if (is_null()) return 0x517cc1b727220a95ULL;
    if (is_string()) return symbol().Hash();
    return std::hash<int64_t>()(int_value()) * 0x9e3779b97f4a7c15ULL + 2;
  }

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
    bool operator<(const Null&) const { return false; }
  };
  std::variant<Null, Symbol, int64_t> repr_;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_VALUE_H_
