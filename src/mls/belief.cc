#include "mls/belief.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <unordered_map>

#include "common/str_util.h"
#include "common/trace.h"

namespace multilog::mls {

Result<BeliefMode> ParseBeliefMode(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "fir" || n == "firm" || n == "firmly") return BeliefMode::kFirm;
  if (n == "opt" || n == "optimistic" || n == "optimistically") {
    return BeliefMode::kOptimistic;
  }
  if (n == "cau" || n == "cautious" || n == "cautiously") {
    return BeliefMode::kCautious;
  }
  return Status::NotFound("unknown belief mode '" + name + "'");
}

const char* BeliefModeToString(BeliefMode mode) {
  switch (mode) {
    case BeliefMode::kFirm:
      return "fir";
    case BeliefMode::kOptimistic:
      return "opt";
    case BeliefMode::kCautious:
      return "cau";
  }
  return "?";
}

namespace {

Result<BeliefOutcome> BelieveFirm(const Relation& relation,
                                  const std::string& level) {
  BeliefOutcome out{Relation(relation.scheme(), &relation.lat()), false};
  for (const Tuple& t : relation.tuples()) {
    if (t.tc == level) {
      MULTILOG_RETURN_IF_ERROR(out.relation.AppendDerived(t));
    }
  }
  return out;
}

Result<BeliefOutcome> BelieveOptimistic(const Relation& relation,
                                        const std::string& level) {
  const lattice::SecurityLattice& lat = relation.lat();
  MULTILOG_ASSIGN_OR_RETURN(size_t level_index, lat.Index(level));
  std::vector<Tuple> believed;
  for (const Tuple& t : relation.tuples()) {
    MULTILOG_ASSIGN_OR_RETURN(size_t tc_index, lat.Index(t.tc));
    if (!lat.LeqIndex(tc_index, level_index)) continue;
    Tuple copy = t;
    copy.tc = level;  // the believer adopts the data at its own level
    believed.push_back(std::move(copy));
  }
  std::sort(believed.begin(), believed.end());
  believed.erase(std::unique(believed.begin(), believed.end()),
                 believed.end());

  BeliefOutcome out{Relation(relation.scheme(), &relation.lat()), false};
  for (Tuple& t : believed) {
    MULTILOG_RETURN_IF_ERROR(out.relation.AppendDerived(std::move(t)));
  }
  return out;
}

/// Keeps the classification-maximal cells of `candidates` (no candidate
/// strictly dominates them); deduplicated and sorted. Classifications
/// are resolved to lattice indices once, so the pairwise dominance test
/// is the O(1) index fast path.
Result<std::vector<Cell>> MaximalCells(const lattice::SecurityLattice& lat,
                                       std::vector<Cell> candidates) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<size_t> cls(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    MULTILOG_ASSIGN_OR_RETURN(cls[i],
                              lat.Index(candidates[i].classification));
  }
  std::vector<Cell> maximal;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (lat.LtIndex(cls[i], cls[j])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(candidates[i]);
  }
  return maximal;
}

/// Integer hash of a composite key value (symbol ids / ints / null).
struct KeyVectorHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// The per-key-group core of cautious belief: key versions, maximal
/// candidate cells per attribute, cartesian assembly, and the per-tuple
/// representability filter. beta_cau factors through the partition of
/// the visible tuples by key value - groups neither read nor write each
/// other's state - which is what makes the incremental regrouping of
/// CautiousBeliefView exact. Returns the group's believed tuples,
/// sorted and unique; ORs `conflict` on multiple maximal candidates,
/// surviving merged key versions, or unrepresentable combinations.
Result<std::vector<Tuple>> CautiousGroup(const lattice::SecurityLattice& lat,
                                         const std::string& level,
                                         size_t arity, size_t key_arity,
                                         const std::vector<const Tuple*>& group,
                                         const BeliefOptions& options,
                                         bool* conflict) {
  // Key versions: every distinct visible (AK, C_AK) prefix (Definition
  // 3.1's "exists u"; with a composite key the prefix is the first
  // key_arity cells, uniformly classified), or - with
  // merge_key_versions - only the classification-maximal ones (the
  // Section 3.1 overriding story).
  std::vector<std::vector<Cell>> key_versions;
  for (const Tuple* t : group) {
    key_versions.emplace_back(t->cells.begin(),
                              t->cells.begin() + key_arity);
  }
  std::sort(key_versions.begin(), key_versions.end());
  key_versions.erase(std::unique(key_versions.begin(), key_versions.end()),
                     key_versions.end());
  if (options.merge_key_versions) {
    // Keep versions whose (uniform) classification is maximal.
    std::vector<size_t> cls(key_versions.size());
    for (size_t i = 0; i < key_versions.size(); ++i) {
      MULTILOG_ASSIGN_OR_RETURN(
          cls[i], lat.Index(key_versions[i].front().classification));
    }
    std::vector<std::vector<Cell>> maximal;
    for (size_t i = 0; i < key_versions.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < key_versions.size(); ++j) {
        if (lat.LtIndex(cls[i], cls[j])) {
          dominated = true;
          break;
        }
      }
      if (!dominated) maximal.push_back(key_versions[i]);
    }
    key_versions = std::move(maximal);
  }

  // Per non-key attribute: the classification-maximal candidate cells,
  // pooled across every visible version of the entity.
  std::vector<std::vector<Cell>> attr_choices(arity);
  for (size_t i = key_arity; i < arity; ++i) {
    std::vector<Cell> candidates;
    for (const Tuple* t : group) candidates.push_back(t->cells[i]);
    MULTILOG_ASSIGN_OR_RETURN(attr_choices[i],
                              MaximalCells(lat, std::move(candidates)));
    if (attr_choices[i].size() > 1) *conflict = true;
  }
  if (key_versions.size() > 1 && options.merge_key_versions) {
    *conflict = true;
  }

  // Cartesian assembly of one believed tuple per combination.
  std::vector<Tuple> assembled;
  for (const std::vector<Cell>& key_cells : key_versions) {
    std::vector<Tuple> partial(1);
    partial[0].cells = key_cells;
    for (size_t i = key_arity; i < arity; ++i) {
      std::vector<Tuple> next;
      for (const Tuple& p : partial) {
        for (const Cell& choice : attr_choices[i]) {
          Tuple extended = p;
          extended.cells.push_back(choice);
          next.push_back(std::move(extended));
        }
      }
      partial = std::move(next);
    }
    for (Tuple& t : partial) {
      t.tc = level;
      assembled.push_back(std::move(t));
    }
  }
  std::sort(assembled.begin(), assembled.end());
  assembled.erase(std::unique(assembled.begin(), assembled.end()),
                  assembled.end());

  // The assembled tuples may violate per-tuple entity integrity when a
  // maximal cell's class does not dominate the chosen key class (possible
  // across polyinstantiated key versions); such combinations are not
  // representable and are dropped, mirroring the paper's observation
  // that cautious views under partial orders may lose predictability.
  std::vector<Tuple> believed;
  believed.reserve(assembled.size());
  for (Tuple& t : assembled) {
    bool representable = true;
    MULTILOG_ASSIGN_OR_RETURN(size_t key_cls,
                              lat.Index(t.key_cell().classification));
    for (size_t i = key_arity; i < t.cells.size(); ++i) {
      MULTILOG_ASSIGN_OR_RETURN(size_t cell_cls,
                                lat.Index(t.cells[i].classification));
      if (!lat.LeqIndex(key_cls, cell_cls)) {
        representable = false;
        break;
      }
    }
    if (!representable) {
      *conflict = true;
      continue;
    }
    believed.push_back(std::move(t));
  }
  return believed;
}

Result<BeliefOutcome> BelieveCautious(const Relation& relation,
                                      const std::string& level,
                                      const BeliefOptions& options) {
  const lattice::SecurityLattice& lat = relation.lat();
  const size_t arity = relation.scheme().arity();
  const size_t key_arity = relation.scheme().key_arity();

  // Visible tuples, grouped by (possibly composite) key value in one
  // hashed pass; group processing order is irrelevant because the
  // per-group outputs are disjoint and globally re-sorted below.
  MULTILOG_ASSIGN_OR_RETURN(size_t level_index, lat.Index(level));
  std::unordered_map<std::vector<Value>, std::vector<const Tuple*>,
                     KeyVectorHash>
      groups;
  for (const Tuple& t : relation.tuples()) {
    MULTILOG_ASSIGN_OR_RETURN(size_t tc_index, lat.Index(t.tc));
    if (lat.LeqIndex(tc_index, level_index)) {
      groups[relation.KeyOf(t)].push_back(&t);
    }
  }

  bool conflict = false;
  std::vector<Tuple> believed;
  for (const auto& [key, group] : groups) {
    MULTILOG_ASSIGN_OR_RETURN(
        std::vector<Tuple> group_believed,
        CautiousGroup(lat, level, arity, key_arity, group, options,
                      &conflict));
    believed.insert(believed.end(),
                    std::make_move_iterator(group_believed.begin()),
                    std::make_move_iterator(group_believed.end()));
  }

  // Group outputs are disjoint (the key values name the group), so the
  // served order is a plain sort of the concatenation.
  std::sort(believed.begin(), believed.end());
  BeliefOutcome out{Relation(relation.scheme(), &relation.lat()), conflict};
  for (Tuple& t : believed) {
    MULTILOG_RETURN_IF_ERROR(out.relation.AppendDerived(std::move(t)));
  }
  return out;
}

}  // namespace

Result<CautiousBeliefView> CautiousBeliefView::Build(
    const Relation& relation, const std::string& level,
    const BeliefOptions& options) {
  CautiousBeliefView view(relation.scheme(), &relation.lat(), level,
                          options);
  MULTILOG_ASSIGN_OR_RETURN(view.level_index_,
                            relation.lat().Index(level));
  for (const Tuple& t : relation.tuples()) {
    MULTILOG_RETURN_IF_ERROR(view.Apply(t, /*remove=*/false));
  }
  return view;
}

Status CautiousBeliefView::Apply(const Tuple& t, bool remove) {
  trace::Span span(trace::Stage::kRegroup);
  if (t.cells.size() != scheme_.arity()) {
    return Status::InvalidArgument("arity mismatch: tuple " + t.ToString() +
                                   " vs scheme " + scheme_.relation_name());
  }
  MULTILOG_ASSIGN_OR_RETURN(size_t tc_index, lat_->Index(t.tc));
  // Invisible tuples never reach beta_cau's candidate pool; the delta
  // is a no-op for this believing level.
  if (!lat_->LeqIndex(tc_index, level_index_)) return Status::OK();

  std::vector<Value> key;
  key.reserve(scheme_.key_arity());
  for (size_t i = 0; i < scheme_.key_arity(); ++i) {
    key.push_back(t.cells[i].value);
  }
  auto it = groups_.find(key);

  // Stage the mutated group base, then recompute its believed tuples
  // *before* committing anything, so a lattice error leaves the view
  // untouched.
  std::vector<Tuple> base =
      it == groups_.end() ? std::vector<Tuple>{} : it->second.base;
  if (remove) {
    auto pos = std::find(base.begin(), base.end(), t);
    if (pos == base.end()) {
      return Status::NotFound("tuple not in the maintained base: " +
                              t.ToString());
    }
    base.erase(pos);
  } else {
    base.push_back(t);
  }

  Group next;
  next.base = std::move(base);
  if (!next.base.empty()) {
    std::vector<const Tuple*> group;
    group.reserve(next.base.size());
    for (const Tuple& b : next.base) group.push_back(&b);
    MULTILOG_ASSIGN_OR_RETURN(
        next.believed,
        CautiousGroup(*lat_, level_, scheme_.arity(), scheme_.key_arity(),
                      group, options_, &next.conflict));
  }

  // Commit: diff the group's believed tuples into the global ordered
  // set (disjointness across groups makes the erase/insert exact).
  if (it != groups_.end()) {
    for (const Tuple& b : it->second.believed) believed_.erase(b);
    if (it->second.conflict) --conflict_groups_;
    if (next.base.empty()) {
      groups_.erase(it);
      return Status::OK();
    }
    it->second = std::move(next);
  } else {
    it = groups_.emplace(std::move(key), std::move(next)).first;
  }
  believed_.insert(it->second.believed.begin(), it->second.believed.end());
  if (it->second.conflict) ++conflict_groups_;
  return Status::OK();
}

Result<BeliefOutcome> CautiousBeliefView::Outcome() const {
  BeliefOutcome out{Relation(scheme_, lat_), conflict_groups_ > 0};
  for (const Tuple& t : believed_) {
    MULTILOG_RETURN_IF_ERROR(out.relation.AppendDerived(t));
  }
  return out;
}

Result<BeliefOutcome> Believe(const Relation& relation,
                              const std::string& level, BeliefMode mode,
                              const BeliefOptions& options) {
  MULTILOG_RETURN_IF_ERROR(relation.lat().Index(level).status());
  switch (mode) {
    case BeliefMode::kFirm: {
      trace::Span span(trace::Stage::kBeliefFirm);
      return BelieveFirm(relation, level);
    }
    case BeliefMode::kOptimistic: {
      trace::Span span(trace::Stage::kBeliefOptimistic);
      return BelieveOptimistic(relation, level);
    }
    case BeliefMode::kCautious: {
      trace::Span span(trace::Stage::kBeliefCautious);
      return BelieveCautious(relation, level, options);
    }
  }
  return Status::Internal("unreachable belief mode");
}

Status BeliefModeRegistry::Register(const std::string& name,
                                    UserBeliefFn fn) {
  if (ParseBeliefMode(name).ok()) {
    return Status::InvalidArgument("cannot override built-in belief mode '" +
                                   name + "'");
  }
  if (user_modes_.count(name)) {
    return Status::InvalidArgument("belief mode '" + name +
                                   "' already registered");
  }
  user_modes_.emplace(name, std::move(fn));
  return Status::OK();
}

bool BeliefModeRegistry::Has(const std::string& name) const {
  return ParseBeliefMode(name).ok() || user_modes_.count(name) > 0;
}

Result<BeliefOutcome> BeliefModeRegistry::Believe(
    const Relation& relation, const std::string& level,
    const std::string& mode_name, const BeliefOptions& options) const {
  Result<BeliefMode> builtin = ParseBeliefMode(mode_name);
  if (builtin.ok()) {
    return mls::Believe(relation, level, builtin.value(), options);
  }
  auto it = user_modes_.find(mode_name);
  if (it == user_modes_.end()) {
    return Status::NotFound("unknown belief mode '" + mode_name + "'");
  }
  MULTILOG_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                            it->second(relation, level));
  BeliefOutcome out{Relation(relation.scheme(), &relation.lat()), false};
  for (Tuple& t : tuples) {
    MULTILOG_RETURN_IF_ERROR(out.relation.AppendDerived(std::move(t)));
  }
  return out;
}

std::vector<std::string> BeliefModeRegistry::ModeNames() const {
  std::vector<std::string> names = {"cau", "fir", "opt"};
  for (const auto& [name, fn] : user_modes_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace multilog::mls
