#ifndef MULTILOG_MLS_BELIEF_H_
#define MULTILOG_MLS_BELIEF_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "mls/relation.h"

namespace multilog::mls {

/// The paper's built-in belief modes (Definition 3.1):
///  - firm ("fir"): believe only data created exactly at one's own level
///    (Figure 6);
///  - optimistic ("opt"): believe everything visible, monotonically
///    (Figure 7);
///  - cautious ("cau"): inheritance with overriding - per attribute keep
///    the visible cell with the dominating classification (Figure 8).
enum class BeliefMode { kFirm, kOptimistic, kCautious };

/// Accepts the long and short names from the paper: "firm"/"fir",
/// "optimistic"/"opt", "cautious"/"cau" (case-insensitive).
Result<BeliefMode> ParseBeliefMode(const std::string& name);
const char* BeliefModeToString(BeliefMode mode);

/// Extra knobs for the belief computation.
struct BeliefOptions {
  /// When true, cautious belief also overrides across key
  /// classifications - polyinstantiated key versions merge into the one
  /// with the dominating key class, as in the paper's Section 3.1
  /// narrative construction of Figure 8. When false (default), Definition
  /// 3.1 is followed literally: every visible (AK, C_AK) version yields
  /// its own believed tuple.
  bool merge_key_versions = false;
};

/// The result of a belief computation.
struct BeliefOutcome {
  Relation relation;
  /// Set when cautious belief met incomparable or equally-classified yet
  /// distinct candidate cells - the paper's "multiple models and
  /// associated unpredictability" situation. All maximal candidates are
  /// kept (deterministically ordered).
  bool conflict = false;
};

/// The parametric belief function beta(r, s, m) of Definition 3.1.
/// `level` is the believing agent's clearance s. Output tuples carry
/// TC = s for optimistic and cautious belief (per Figures 7-8, "the TC
/// values become C"); firm belief keeps tuples unchanged.
///
/// beta never generates surprise stories: it reads the raw relation, so
/// null-bearing tuples that the sigma filter would migrate downward
/// (Figure 3's t4/t5) cannot enter the believed set - the property the
/// paper claims for beta at the end of Section 3.2.
Result<BeliefOutcome> Believe(const Relation& relation,
                              const std::string& level, BeliefMode mode,
                              const BeliefOptions& options = {});

/// An incrementally maintained cautious belief view - the regroup stage
/// of the delta pipeline. beta_cau factors through the partition of the
/// base relation by key value: a single-tuple delta touches exactly one
/// key group, whose believed tuples are recomputed in O(|group|) and
/// diffed into a globally ordered set, so Outcome() stays byte-identical
/// to a scratch Believe(base, level, kCautious) of the mutated relation
/// without rescanning the other groups.
class CautiousBeliefView {
 public:
  /// Builds the maintained view over `relation`'s current tuples. The
  /// scheme is copied; the lattice is borrowed from the relation and
  /// must outlive the view.
  static Result<CautiousBeliefView> Build(const Relation& relation,
                                          const std::string& level,
                                          const BeliefOptions& options = {});

  /// Applies one base-relation delta: with `remove` retracts a tuple
  /// equal to `t` (NotFound when absent), otherwise inserts `t`.
  /// Tuples invisible to the believing level are tracked as no-ops.
  /// On error the view is left unchanged.
  Status Apply(const Tuple& t, bool remove);

  /// The believed relation; equals Believe(base, level, kCautious) over
  /// the accumulated deltas.
  Result<BeliefOutcome> Outcome() const;

  /// Number of key groups with at least one visible base tuple.
  size_t group_count() const { return groups_.size(); }

 private:
  /// Per-key-group state: the visible base tuples (a multiset - the
  /// delta source may carry structural duplicates) and their believed
  /// projection, replaced wholesale on every delta to the group.
  struct Group {
    std::vector<Tuple> base;
    std::vector<Tuple> believed;
    bool conflict = false;
  };

  CautiousBeliefView(Scheme scheme, const lattice::SecurityLattice* lat,
                     std::string level, BeliefOptions options)
      : scheme_(std::move(scheme)),
        lat_(lat),
        level_(std::move(level)),
        options_(options) {}

  Scheme scheme_;
  const lattice::SecurityLattice* lat_;
  std::string level_;
  size_t level_index_ = 0;
  BeliefOptions options_;
  std::map<std::vector<Value>, Group> groups_;
  /// Union of the groups' believed tuples, kept in served order; group
  /// outputs are disjoint (their key values differ), so per-group
  /// erase/insert diffs are exact.
  std::set<Tuple> believed_;
  size_t conflict_groups_ = 0;
};

/// Signature of a user-defined belief mode (Section 7): given the raw
/// relation and the believing level, produce the believed tuples.
using UserBeliefFn =
    std::function<Result<std::vector<Tuple>>(const Relation&,
                                             const std::string& level)>;

/// A registry dispatching belief computation by mode name; the three
/// built-in modes are always present and cannot be overridden (the paper
/// notes user modes must not change the meaning of m-atoms - here,
/// they must not change the built-in modes either).
class BeliefModeRegistry {
 public:
  BeliefModeRegistry() = default;

  /// Registers `name` as a user-defined mode. Rejects the built-in names
  /// and duplicates.
  Status Register(const std::string& name, UserBeliefFn fn);

  bool Has(const std::string& name) const;

  /// Dispatches to a built-in or user-defined mode.
  Result<BeliefOutcome> Believe(const Relation& relation,
                                const std::string& level,
                                const std::string& mode_name,
                                const BeliefOptions& options = {}) const;

  /// Built-in and registered mode names, sorted.
  std::vector<std::string> ModeNames() const;

 private:
  std::map<std::string, UserBeliefFn> user_modes_;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_BELIEF_H_
