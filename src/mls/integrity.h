#ifndef MULTILOG_MLS_INTEGRITY_H_
#define MULTILOG_MLS_INTEGRITY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "mls/relation.h"

namespace multilog::mls {

/// Instance-level checks of the core integrity properties the paper
/// adopts from Jajodia-Sandhu (Definition 5.4). Relation mutators enforce
/// these incrementally; the free functions re-validate a whole instance
/// (used on loaded datasets and as property-test oracles).

/// Entity integrity: every tuple has a non-null key and non-key
/// classifications dominating the key classification.
Status CheckEntityIntegrity(const Relation& relation);

/// Null integrity, first clause: nulls are classified at the key level.
Status CheckNullIntegrity(const Relation& relation);

/// Null integrity, second clause (subsumption-freeness): no two distinct
/// tuples *at the same TC* subsume each other. The same-TC restriction is
/// our reading of Definition 5.4: the paper's own running example stores
/// identical cells at several levels (Figure 1's t2/t6/t7), so mutual
/// subsumption can only be meant per level.
Status CheckSubsumptionFreeness(const Relation& relation);

/// Polyinstantiation integrity: the functional dependency
/// AK, C_AK, C_i -> A_i holds across the instance.
Status CheckPolyinstantiationIntegrity(const Relation& relation);

/// All of the above - Definition 5.4's "consistent".
Status CheckConsistent(const Relation& relation);

/// Filter compositionality: for every pair of levels c' <= c,
/// sigma_{c'}(sigma_c(r)) = sigma_{c'}(r) - the sane fragment of
/// Jajodia-Sandhu's inter-instance property in our view semantics.
Status CheckFilterCompositionality(const Relation& relation);

/// The paper's *surprise stories* (Section 3): null-bearing tuples that
/// survive subsumption in the view at `level`, i.e. leaked evidence of
/// higher-level polyinstantiation (Figure 3's t4/t5). Returns the
/// offending view tuples; empty means the view is surprise-free.
Result<std::vector<Tuple>> FindSurpriseStories(const Relation& relation,
                                               const std::string& level);

/// Root-cause analysis for one leak: identifies the stored tuples whose
/// masked cells produced a surprise story, and per masked attribute the
/// hidden classification level - the information a *high-side* auditor
/// needs to fix the leak (lower the key classification, re-insert a low
/// cover tuple, or purge the low key). The paper attributes such leaks
/// to "unawareness or intentional malice on the part of the higher
/// level user"; this is the tool for the unaware.
struct SurpriseStoryExplanation {
  /// The leaked view tuple.
  Tuple leaked;
  /// The stored source tuple whose cells were masked.
  Tuple source;
  /// For each masked attribute: its name and the hidden classification.
  std::vector<std::pair<std::string, std::string>> masked;
};

Result<std::vector<SurpriseStoryExplanation>> ExplainSurpriseStories(
    const Relation& relation, const std::string& level);

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_INTEGRITY_H_
