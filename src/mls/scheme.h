#ifndef MULTILOG_MLS_SCHEME_H_
#define MULTILOG_MLS_SCHEME_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "lattice/lattice.h"

namespace multilog::mls {

/// One data attribute A_i of a multilevel relation scheme, with the
/// classification range [low, high] of its classification attribute C_i
/// (Definition 2.1 of the paper).
struct AttributeDef {
  std::string name;
  /// Lower and upper bounds of admissible classifications; level names in
  /// the lattice the scheme is validated against.
  std::string low;
  std::string high;
};

/// A multilevel relation scheme R(A1,C1,...,An,Cn,TC) per Definition 2.1.
/// The apparent key AK (Section 2) is a designated attribute - or, per
/// the Section 7 relaxation, a set of attributes, uniformly classified
/// (Definition 5.4's entity integrity). Key attributes always occupy the
/// first `key_arity()` positions.
class Scheme {
 public:
  /// Single-attribute key (the paper's default). Validates attribute
  /// names (non-empty, unique), that `key` names one of them, and that
  /// every range [low, high] satisfies low <= high in `lat`. On success
  /// the key attribute is moved to position 0.
  static Result<Scheme> Create(std::string relation_name,
                               std::vector<AttributeDef> attributes,
                               const std::string& key,
                               const lattice::SecurityLattice& lat);

  /// Multi-attribute key (Section 7). The key attributes are moved to
  /// the front, in the order given.
  static Result<Scheme> CreateComposite(
      std::string relation_name, std::vector<AttributeDef> attributes,
      const std::vector<std::string>& key,
      const lattice::SecurityLattice& lat);

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Number of key attributes (>= 1); they are attributes 0..key_arity-1.
  size_t key_arity() const { return key_arity_; }
  bool IsKeyPosition(size_t i) const { return i < key_arity_; }

  /// The first key attribute (the whole key when key_arity() == 1).
  const std::string& key_attribute() const { return attributes_[0].name; }

  /// Index of `name`, or NotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;

  /// True when classification `level` lies within attribute i's range.
  Result<bool> InRange(size_t attribute_index, const std::string& level,
                       const lattice::SecurityLattice& lat) const;

 private:
  std::string relation_name_;
  std::vector<AttributeDef> attributes_;
  size_t key_arity_ = 1;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_SCHEME_H_
