#ifndef MULTILOG_MLS_JUKIC_VRBSKY_H_
#define MULTILOG_MLS_JUKIC_VRBSKY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lattice/lattice.h"
#include "mls/scheme.h"
#include "mls/value.h"

namespace multilog::mls {

/// The five-way tuple interpretation of Jukic and Vrbsky's belief model
/// (the paper's Figure 5):
///  - invisible:   the level cannot see the tuple version at all;
///  - true:        the level asserts belief in it;
///  - cover story: the level has verified it false and holds a
///                 replacement version;
///  - mirage:      the level has verified it false with no replacement;
///  - irrelevant:  the level sees it but neither believes nor disputes it
///                 (lower-level data the level does not care about).
enum class JvInterpretation {
  kInvisible,
  kTrue,
  kCoverStory,
  kMirage,
  kIrrelevant,
};

const char* JvInterpretationToString(JvInterpretation i);

/// A Jukic-Vrbsky belief label on one asserted value: the levels that
/// believe this version's value, and the levels that have verified it
/// false. Rendered in the style of the paper's Figure 4: believers
/// concatenated bottom-up ("UCS", "US"), with verified-false levels
/// appended after a dash ("U-S" = believed at U, verified false at S).
struct JvLabel {
  std::vector<std::string> believed_by;
  std::vector<std::string> verified_false_by;

  /// Renders against `lat` (levels sorted bottom-up, upper-cased).
  std::string Render(const lattice::SecurityLattice& lat) const;
};

/// One tuple version in the Jukic-Vrbsky representation: plain values
/// with per-cell labels plus a tuple-level label. `id` is a display tag
/// ("t4"); `created_at` is the level that asserted the version (versions
/// are invisible below it).
struct JvTuple {
  std::string id;
  std::string created_at;
  std::vector<Value> values;
  std::vector<JvLabel> cell_labels;
  JvLabel tuple_label;
};

/// A relation in the Jukic-Vrbsky labeled model. The labels are *data* -
/// users assert beliefs explicitly - which is exactly the rigidity the
/// paper criticizes ("too restrictive... only fixed interpretations");
/// this class exists to reproduce Figures 4-5 and to contrast with the
/// dynamic belief function beta.
class JvRelation {
 public:
  JvRelation(Scheme scheme, const lattice::SecurityLattice* lat)
      : scheme_(std::move(scheme)), lat_(lat) {}

  /// Validates arity, level names, and that believers dominate the
  /// creating level.
  Status Add(JvTuple tuple);

  const std::vector<JvTuple>& tuples() const { return tuples_; }
  const Scheme& scheme() const { return scheme_; }

  /// The Figure 5 logic: classify `tuple` as seen from `level`.
  Result<JvInterpretation> Interpret(const JvTuple& tuple,
                                     const std::string& level) const;

  /// Renders the labeled relation (Figure 4).
  std::string RenderLabeled() const;

  /// Renders the interpretation matrix (Figure 5) for the given levels.
  Result<std::string> RenderInterpretations(
      const std::vector<std::string>& levels) const;

 private:
  Scheme scheme_;
  const lattice::SecurityLattice* lat_;
  std::vector<JvTuple> tuples_;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_JUKIC_VRBSKY_H_
