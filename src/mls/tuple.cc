#include "mls/tuple.h"

namespace multilog::mls {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += cells[i].ToString();
  }
  out += " | TC=" + tc + ")";
  return out;
}

bool Tuple::SubsumesCells(const Tuple& other) const {
  if (cells.size() != other.cells.size()) return false;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i] == other.cells[i]) continue;
    if (!cells[i].value.is_null() && other.cells[i].value.is_null()) continue;
    return false;
  }
  return true;
}

}  // namespace multilog::mls
