#include "mls/jukic_vrbsky.h"

#include <algorithm>

#include "common/str_util.h"
#include "common/table_printer.h"

namespace multilog::mls {

const char* JvInterpretationToString(JvInterpretation i) {
  switch (i) {
    case JvInterpretation::kInvisible:
      return "invisible";
    case JvInterpretation::kTrue:
      return "true";
    case JvInterpretation::kCoverStory:
      return "cover story";
    case JvInterpretation::kMirage:
      return "mirage";
    case JvInterpretation::kIrrelevant:
      return "irrelevant";
  }
  return "?";
}

namespace {

/// Sorts level names bottom-up using the lattice's topological order.
std::vector<std::string> SortLevels(const lattice::SecurityLattice& lat,
                                    std::vector<std::string> levels) {
  std::vector<std::string> topo = lat.TopologicalOrder();
  std::sort(levels.begin(), levels.end(),
            [&topo](const std::string& a, const std::string& b) {
              auto pa = std::find(topo.begin(), topo.end(), a);
              auto pb = std::find(topo.begin(), topo.end(), b);
              return pa < pb;
            });
  return levels;
}

bool Contains(const std::vector<std::string>& v, const std::string& x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

std::string JvLabel::Render(const lattice::SecurityLattice& lat) const {
  std::string out;
  for (const std::string& l : SortLevels(lat, believed_by)) {
    out += ToUpper(l);
  }
  if (!verified_false_by.empty()) {
    out += "-";
    for (const std::string& l : SortLevels(lat, verified_false_by)) {
      out += ToUpper(l);
    }
  }
  return out;
}

Status JvRelation::Add(JvTuple tuple) {
  if (tuple.values.size() != scheme_.arity() ||
      tuple.cell_labels.size() != scheme_.arity()) {
    return Status::InvalidArgument(
        "J-V tuple arity does not match the scheme");
  }
  MULTILOG_RETURN_IF_ERROR(lat_->Index(tuple.created_at).status());
  // Cell labels may list believers below the version's creating level
  // (they believe the *value* through another visible version, e.g. the
  // paper's t3 whose Voyager key is also believed at U via t8); only the
  // tuple-level label is constrained: a level strictly below the
  // creating level cannot assert belief in a version it cannot see.
  auto check_levels = [this](const JvLabel& label) -> Status {
    for (const std::string& l : label.believed_by) {
      MULTILOG_RETURN_IF_ERROR(lat_->Index(l).status());
    }
    for (const std::string& l : label.verified_false_by) {
      MULTILOG_RETURN_IF_ERROR(lat_->Index(l).status());
    }
    return Status::OK();
  };
  for (const JvLabel& label : tuple.cell_labels) {
    MULTILOG_RETURN_IF_ERROR(check_levels(label));
  }
  MULTILOG_RETURN_IF_ERROR(check_levels(tuple.tuple_label));
  for (const std::string& l : tuple.tuple_label.believed_by) {
    MULTILOG_ASSIGN_OR_RETURN(bool strictly_below,
                              lat_->Lt(l, tuple.created_at));
    if (strictly_below) {
      return Status::InvalidArgument(
          "level '" + l + "' cannot believe a tuple created above it at '" +
          tuple.created_at + "'");
    }
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Result<JvInterpretation> JvRelation::Interpret(
    const JvTuple& tuple, const std::string& level) const {
  MULTILOG_ASSIGN_OR_RETURN(bool sees, lat_->Leq(tuple.created_at, level));
  if (!sees) return JvInterpretation::kInvisible;
  if (Contains(tuple.tuple_label.believed_by, level)) {
    return JvInterpretation::kTrue;
  }
  if (Contains(tuple.tuple_label.verified_false_by, level)) {
    // Cover story when a replacement version for the same entity is
    // believed at this level; mirage otherwise.
    for (const JvTuple& other : tuples_) {
      if (&other == &tuple) continue;
      if (other.values[0] != tuple.values[0]) continue;
      if (Contains(other.tuple_label.believed_by, level)) {
        return JvInterpretation::kCoverStory;
      }
    }
    return JvInterpretation::kMirage;
  }
  return JvInterpretation::kIrrelevant;
}

std::string JvRelation::RenderLabeled() const {
  std::vector<std::string> header = {"Tid"};
  for (const AttributeDef& a : scheme_.attributes()) {
    header.push_back(a.name);
    header.push_back("");
  }
  header.push_back("TC");
  TablePrinter printer(std::move(header));
  for (const JvTuple& t : tuples_) {
    std::vector<std::string> row = {t.id};
    for (size_t i = 0; i < t.values.size(); ++i) {
      row.push_back(t.values[i].ToString());
      row.push_back(t.cell_labels[i].Render(*lat_));
    }
    row.push_back(t.tuple_label.Render(*lat_));
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

Result<std::string> JvRelation::RenderInterpretations(
    const std::vector<std::string>& levels) const {
  std::vector<std::string> header = {"Tid"};
  for (const std::string& l : levels) {
    header.push_back(ToUpper(l) + " level");
  }
  TablePrinter printer(std::move(header));
  for (const JvTuple& t : tuples_) {
    std::vector<std::string> row = {t.id};
    for (const std::string& l : levels) {
      MULTILOG_ASSIGN_OR_RETURN(JvInterpretation i, Interpret(t, l));
      row.push_back(JvInterpretationToString(i));
    }
    printer.AddRow(std::move(row));
  }
  return printer.ToString();
}

}  // namespace multilog::mls
