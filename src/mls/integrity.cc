#include "mls/integrity.h"

#include <algorithm>

namespace multilog::mls {

Status CheckEntityIntegrity(const Relation& relation) {
  const lattice::SecurityLattice& lat = relation.lat();
  const size_t key_arity = relation.scheme().key_arity();
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < key_arity; ++i) {
      if (t.cells[i].value.is_null()) {
        return Status::IntegrityViolation("entity integrity: null key in " +
                                          t.ToString());
      }
      if (t.cells[i].classification != t.key_cell().classification) {
        return Status::IntegrityViolation(
            "entity integrity: apparent key not uniformly classified in " +
            t.ToString());
      }
    }
    for (size_t i = key_arity; i < t.cells.size(); ++i) {
      MULTILOG_ASSIGN_OR_RETURN(
          bool dominates, lat.Leq(t.key_cell().classification,
                                  t.cells[i].classification));
      if (!dominates) {
        return Status::IntegrityViolation(
            "entity integrity: attribute '" +
            relation.scheme().attributes()[i].name +
            "' classified below the key in " + t.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckNullIntegrity(const Relation& relation) {
  const size_t key_arity = relation.scheme().key_arity();
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = key_arity; i < t.cells.size(); ++i) {
      if (t.cells[i].value.is_null() &&
          t.cells[i].classification != t.key_cell().classification) {
        return Status::IntegrityViolation(
            "null integrity: null attribute '" +
            relation.scheme().attributes()[i].name +
            "' not classified at the key level in " + t.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckSubsumptionFreeness(const Relation& relation) {
  const std::vector<Tuple>& tuples = relation.tuples();
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      if (tuples[i].tc != tuples[j].tc) continue;
      if (tuples[i].SubsumesCells(tuples[j]) &&
          tuples[j].SubsumesCells(tuples[i])) {
        return Status::IntegrityViolation(
            "subsumption-freeness: tuples " + tuples[i].ToString() + " and " +
            tuples[j].ToString() + " subsume each other at TC '" +
            tuples[i].tc + "'");
      }
    }
  }
  return Status::OK();
}

Status CheckPolyinstantiationIntegrity(const Relation& relation) {
  const std::vector<Tuple>& tuples = relation.tuples();
  const size_t key_arity = relation.scheme().key_arity();
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      const Tuple& a = tuples[i];
      const Tuple& b = tuples[j];
      bool same_key = true;
      for (size_t k = 0; same_key && k < key_arity; ++k) {
        same_key = a.cells[k] == b.cells[k];
      }
      if (!same_key) continue;
      for (size_t k = key_arity; k < a.cells.size(); ++k) {
        if (a.cells[k].classification == b.cells[k].classification &&
            a.cells[k].value != b.cells[k].value) {
          return Status::IntegrityViolation(
              "polyinstantiation integrity: AK,C_AK,C_i -> A_i violated for "
              "attribute '" +
              relation.scheme().attributes()[k].name + "' between " +
              a.ToString() + " and " + b.ToString());
        }
      }
    }
  }
  return Status::OK();
}

Status CheckConsistent(const Relation& relation) {
  MULTILOG_RETURN_IF_ERROR(CheckEntityIntegrity(relation));
  MULTILOG_RETURN_IF_ERROR(CheckNullIntegrity(relation));
  MULTILOG_RETURN_IF_ERROR(CheckSubsumptionFreeness(relation));
  return CheckPolyinstantiationIntegrity(relation);
}

Status CheckFilterCompositionality(const Relation& relation) {
  const lattice::SecurityLattice& lat = relation.lat();
  for (const std::string& high : lat.names()) {
    MULTILOG_ASSIGN_OR_RETURN(Relation high_view, relation.ViewAt(high));
    for (const std::string& low : lat.names()) {
      MULTILOG_ASSIGN_OR_RETURN(bool leq, lat.Leq(low, high));
      if (!leq) continue;
      MULTILOG_ASSIGN_OR_RETURN(Relation direct, relation.ViewAt(low));
      MULTILOG_ASSIGN_OR_RETURN(Relation composed, high_view.ViewAt(low));
      std::vector<Tuple> a = direct.tuples();
      std::vector<Tuple> b = composed.tuples();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        return Status::IntegrityViolation(
            "filter compositionality fails: sigma_" + low + "(sigma_" + high +
            "(r)) differs from sigma_" + low + "(r)");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Tuple>> FindSurpriseStories(const Relation& relation,
                                               const std::string& level) {
  MULTILOG_ASSIGN_OR_RETURN(Relation view, relation.ViewAt(level));
  std::vector<Tuple> surprises;
  for (const Tuple& t : view.tuples()) {
    for (const Cell& c : t.cells) {
      if (c.value.is_null()) {
        surprises.push_back(t);
        break;
      }
    }
  }
  return surprises;
}

Result<std::vector<SurpriseStoryExplanation>> ExplainSurpriseStories(
    const Relation& relation, const std::string& level) {
  const lattice::SecurityLattice& lat = relation.lat();
  MULTILOG_ASSIGN_OR_RETURN(std::vector<Tuple> leaks,
                            FindSurpriseStories(relation, level));
  std::vector<SurpriseStoryExplanation> out;
  for (const Tuple& leaked : leaks) {
    // A stored source masks into `leaked` when its key cell matches and
    // each leaked cell is either equal to the stored one or a null
    // standing for a stored cell classified above `level`.
    for (const Tuple& source : relation.tuples()) {
      if (source.key_cell() != leaked.key_cell()) continue;
      bool matches = true;
      std::vector<std::pair<std::string, std::string>> masked;
      for (size_t i = 0; i < leaked.cells.size() && matches; ++i) {
        if (leaked.cells[i].value.is_null() &&
            !source.cells[i].value.is_null()) {
          MULTILOG_ASSIGN_OR_RETURN(
              bool hidden,
              lat.Leq(source.cells[i].classification, level));
          if (hidden) {
            matches = false;  // a visible cell cannot mask to null
          } else {
            masked.emplace_back(relation.scheme().attributes()[i].name,
                                source.cells[i].classification);
          }
        } else if (leaked.cells[i] != source.cells[i]) {
          matches = false;
        }
      }
      if (matches && !masked.empty()) {
        out.push_back(SurpriseStoryExplanation{leaked, source,
                                               std::move(masked)});
      }
    }
  }
  return out;
}

}  // namespace multilog::mls
