#include "mls/scheme.h"

#include <algorithm>
#include <unordered_set>

namespace multilog::mls {

Result<Scheme> Scheme::Create(std::string relation_name,
                              std::vector<AttributeDef> attributes,
                              const std::string& key,
                              const lattice::SecurityLattice& lat) {
  return CreateComposite(std::move(relation_name), std::move(attributes),
                         {key}, lat);
}

Result<Scheme> Scheme::CreateComposite(
    std::string relation_name, std::vector<AttributeDef> attributes,
    const std::vector<std::string>& key,
    const lattice::SecurityLattice& lat) {
  if (attributes.empty()) {
    return Status::InvalidArgument("scheme needs at least one attribute");
  }
  if (key.empty()) {
    return Status::InvalidArgument("the apparent key needs at least one "
                                   "attribute");
  }
  std::unordered_set<std::string> names;
  for (const AttributeDef& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + a.name +
                                     "'");
    }
    MULTILOG_ASSIGN_OR_RETURN(bool ok, lat.Leq(a.low, a.high));
    if (!ok) {
      return Status::InvalidArgument(
          "attribute '" + a.name + "' has an empty classification range [" +
          a.low + ", " + a.high + "]");
    }
  }

  // Move the key attributes to the front, in key order.
  std::vector<AttributeDef> reordered;
  std::unordered_set<std::string> key_set;
  for (const std::string& k : key) {
    if (!key_set.insert(k).second) {
      return Status::InvalidArgument("duplicate key attribute '" + k + "'");
    }
    auto it = std::find_if(
        attributes.begin(), attributes.end(),
        [&k](const AttributeDef& a) { return a.name == k; });
    if (it == attributes.end()) {
      return Status::InvalidArgument("apparent key attribute '" + k +
                                     "' is not an attribute");
    }
    reordered.push_back(*it);
  }
  for (const AttributeDef& a : attributes) {
    if (!key_set.count(a.name)) reordered.push_back(a);
  }

  Scheme s;
  s.relation_name_ = std::move(relation_name);
  s.attributes_ = std::move(reordered);
  s.key_arity_ = key.size();
  return s;
}

Result<size_t> Scheme::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute '" + name + "' in relation '" +
                          relation_name_ + "'");
}

Result<bool> Scheme::InRange(size_t attribute_index, const std::string& level,
                             const lattice::SecurityLattice& lat) const {
  const AttributeDef& a = attributes_[attribute_index];
  MULTILOG_ASSIGN_OR_RETURN(bool above_low, lat.Leq(a.low, level));
  MULTILOG_ASSIGN_OR_RETURN(bool below_high, lat.Leq(level, a.high));
  return above_low && below_high;
}

}  // namespace multilog::mls
