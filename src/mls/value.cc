#include "mls/value.h"

namespace multilog::mls {

std::string Value::ToString() const {
  if (is_null()) return "⊥";
  if (is_string()) return str();
  return std::to_string(int_value());
}

}  // namespace multilog::mls
