#include "mls/transaction.h"

namespace multilog::mls {

Result<Transaction> Transaction::Begin(Relation* relation,
                                       const std::string& level) {
  MULTILOG_RETURN_IF_ERROR(relation->lat().Index(level).status());
  // Snapshot: a deep copy of the live relation (tuples are values).
  Relation scratch(relation->scheme(), &relation->lat());
  for (const Tuple& t : relation->tuples()) {
    MULTILOG_RETURN_IF_ERROR(scratch.InsertTuple(t));
  }
  return Transaction(relation, std::move(scratch), level);
}

Status Transaction::RequireActive() const {
  if (state_ == State::kActive) return Status::OK();
  return Status::InvalidArgument(
      state_ == State::kCommitted
          ? "transaction already committed"
          : "transaction already aborted");
}

Status Transaction::Insert(const std::vector<Value>& values) {
  MULTILOG_RETURN_IF_ERROR(RequireActive());
  MULTILOG_RETURN_IF_ERROR(scratch_.InsertAt(level_, values));
  Op op;
  op.kind = Op::Kind::kInsert;
  op.values = values;
  log_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Update(const Value& key, const std::string& attribute,
                           const Value& value) {
  MULTILOG_RETURN_IF_ERROR(RequireActive());
  MULTILOG_RETURN_IF_ERROR(scratch_.UpdateAt(level_, key, attribute, value));
  Op op;
  op.kind = Op::Kind::kUpdate;
  op.key = key;
  op.attribute = attribute;
  op.value = value;
  log_.push_back(std::move(op));
  return Status::OK();
}

Status Transaction::Delete(const Value& key) {
  MULTILOG_RETURN_IF_ERROR(RequireActive());
  MULTILOG_RETURN_IF_ERROR(scratch_.DeleteAt(level_, key));
  Op op;
  op.kind = Op::Kind::kDelete;
  op.key = key;
  log_.push_back(std::move(op));
  return Status::OK();
}

Result<Relation> Transaction::View() const {
  MULTILOG_RETURN_IF_ERROR(RequireActive());
  return scratch_.ViewAt(level_);
}

Status Transaction::Commit() {
  MULTILOG_RETURN_IF_ERROR(RequireActive());

  // Dry-run against a copy of the *current* live state so a mid-replay
  // failure cannot leave the live relation half-updated.
  Relation trial(live_->scheme(), &live_->lat());
  for (const Tuple& t : live_->tuples()) {
    MULTILOG_RETURN_IF_ERROR(trial.InsertTuple(t));
  }
  auto replay = [this](Relation* target) -> Status {
    for (const Op& op : log_) {
      switch (op.kind) {
        case Op::Kind::kInsert:
          MULTILOG_RETURN_IF_ERROR(target->InsertAt(level_, op.values));
          break;
        case Op::Kind::kUpdate:
          MULTILOG_RETURN_IF_ERROR(
              target->UpdateAt(level_, op.key, op.attribute, op.value));
          break;
        case Op::Kind::kDelete:
          MULTILOG_RETURN_IF_ERROR(target->DeleteAt(level_, op.key));
          break;
      }
    }
    return Status::OK();
  };
  Status dry = replay(&trial);
  if (!dry.ok()) {
    return dry.WithContext("commit conflict; transaction still active");
  }

  Status real = replay(live_);
  if (!real.ok()) {
    // The dry run succeeded on an identical copy, so this is a bug.
    return Status::Internal("commit diverged from its dry run: " +
                            real.message());
  }
  state_ = State::kCommitted;
  return Status::OK();
}

void Transaction::Abort() {
  if (state_ == State::kActive) state_ = State::kAborted;
  log_.clear();
}

}  // namespace multilog::mls
