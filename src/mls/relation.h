#ifndef MULTILOG_MLS_RELATION_H_
#define MULTILOG_MLS_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lattice/lattice.h"
#include "mls/scheme.h"
#include "mls/tuple.h"

namespace multilog::mls {

/// A multilevel relation instance (Definition 2.2) over a Scheme, with
/// the Jajodia-Sandhu-style operations the paper builds on:
///
///  - polyinstantiating insert/update/delete performed *by a subject at
///    a clearance level*, enforcing the Bell-LaPadula properties
///    (simple security: no read up; star-property: writes happen at the
///    subject's own level),
///  - the filter function sigma = the view at an access class
///    (Definition 2.3), with subsumption,
///  - per-tuple integrity validation (entity, null, polyinstantiation
///    integrity of Definition 5.4) at every mutation.
///
/// The lattice is borrowed; it must outlive the relation.
class Relation {
 public:
  Relation(Scheme scheme, const lattice::SecurityLattice* lat)
      : scheme_(std::move(scheme)), lat_(lat) {}

  const Scheme& scheme() const { return scheme_; }
  const lattice::SecurityLattice& lat() const { return *lat_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Inserts a fully specified tuple (used to load datasets such as the
  /// paper's Figure 1, whose tuples carry mixed classifications from
  /// their update history). Validates:
  ///  - every classification is a lattice level within its attribute
  ///    range,
  ///  - entity integrity: key non-null, non-key classes dominate the key
  ///    class,
  ///  - null integrity: nulls are classified at the key class,
  ///  - tc equals the lub of the cell classes (computed when empty),
  ///  - polyinstantiation integrity against the existing instance,
  ///  - the tuple is not an exact duplicate.
  Status InsertTuple(Tuple t);

  /// Insert by a subject cleared at `level`: all cells and TC classified
  /// at `level` (a subject writes at its own level - star-property).
  Status InsertAt(const std::string& level, const std::vector<Value>& values);

  /// Update by a subject at `level`: sets `attribute` of the entity named
  /// by `key` to `value`. If the subject owns a version whose cell is
  /// classified exactly at `level`, the cell is updated in place;
  /// otherwise the update *polyinstantiates*: a new tuple is created at
  /// the subject's level that copies the cells the subject can see and
  /// keeps the key classification unchanged - the mechanism that, after
  /// a later delete of the low tuple, yields the paper's surprise
  /// stories (Section 3). The composite-key overload takes one value per
  /// key attribute (Section 7 relaxation).
  Status UpdateAt(const std::string& level, const Value& key,
                  const std::string& attribute, const Value& value);
  Status UpdateAt(const std::string& level, const std::vector<Value>& key,
                  const std::string& attribute, const Value& value);

  /// Delete by a subject at `level`: removes the versions of `key` whose
  /// TC is exactly `level` (a subject deletes only what lives at its own
  /// level). Returns NotFound if nothing was removed.
  Status DeleteAt(const std::string& level, const Value& key);
  Status DeleteAt(const std::string& level, const std::vector<Value>& key);

  /// The view at access class `level` (Definition 2.3; Jajodia-Sandhu's
  /// filter): keeps tuples whose key classification is dominated by
  /// `level`; hides cells classified above `level` as ⊥ at the key
  /// class (null integrity); clamps TC into the view (TC' = TC when
  /// TC <= level, else `level` - the view must not reveal a
  /// classification above the viewer); optionally removes subsumed
  /// tuples. Reproduces the paper's Figures 2 and 3.
  Result<Relation> ViewAt(const std::string& level,
                          bool apply_subsumption = true) const;

  /// Appends a tuple to a *derived* relation (a sigma view or a believed
  /// relation), bypassing base-instance integrity: derived tuples
  /// legitimately carry a TC above the lub of their cells (Figures 7-8
  /// set TC to the believing level while the cells keep their source
  /// classifications). Validates only arity and that every level exists.
  Status AppendDerived(Tuple t);

  /// All stored versions of `key` (any classification).
  std::vector<const Tuple*> TuplesWithKey(const Value& key) const;
  std::vector<const Tuple*> TuplesWithKey(const std::vector<Value>& key) const;

  /// The key values of a tuple (the first key_arity() cells).
  std::vector<Value> KeyOf(const Tuple& t) const;

  /// True when `t`'s key values equal `key`.
  bool KeyMatches(const Tuple& t, const std::vector<Value>& key) const;

  /// Renders the instance in the visual style of the paper's figures.
  std::string ToString() const;

  /// Removes tuples cell-subsumed by another tuple (strictly more
  /// informative cells, or equal cells with strictly higher TC).
  static std::vector<Tuple> Subsume(const lattice::SecurityLattice& lat,
                                    std::vector<Tuple> tuples);

 private:
  /// Shared validation for InsertTuple (exact-duplicate and
  /// polyinstantiation checks against the current instance).
  Status ValidateTuple(const Tuple& t) const;

  Scheme scheme_;
  const lattice::SecurityLattice* lat_;
  std::vector<Tuple> tuples_;
};

}  // namespace multilog::mls

#endif  // MULTILOG_MLS_RELATION_H_
