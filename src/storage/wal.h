#ifndef MULTILOG_STORAGE_WAL_H_
#define MULTILOG_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace multilog::storage {

/// # The write-ahead log format
///
/// An append-only sequence of CRC32C-framed, length-prefixed records.
/// Each record on disk is
///
///     [u32 payload_len][u32 crc32c(payload)][payload_len bytes]
///
/// with both integers little-endian. The payload starts with a one-byte
/// record type:
///
///  - kSymbol (0x01): `u32 id, u32 len, len bytes` - a symbol-table
///    delta. Symbol ids are WAL-local, assigned densely from 0 in
///    append order; a symbol record always precedes the first mutation
///    record that references its id. Today symbols carry the security
///    levels mutations are tagged with (the hot, highly repetitive
///    field); the fact text itself stays readable for debuggability.
///  - kAssert (0x02) / kRetract (0x03): `u64 seqno, u32 level_symbol_id,
///    u32 len, len bytes of MultiLog fact source`. `seqno` is the
///    database-wide mutation sequence number; recovery skips records
///    whose seqno the snapshot already covers, which makes replay
///    idempotent across a crash between "snapshot renamed" and "WAL
///    reset" during a checkpoint.
///
/// A record whose frame is incomplete or whose CRC does not match ends
/// the readable prefix. ReplayWal reports where the good prefix ends so
/// the caller can truncate the tail (a torn append is the expected
/// crash signature, but the caller surfaces it as kDataLoss rather
/// than guessing whether bytes were lost).
enum class WalRecordType : uint8_t {
  kSymbol = 0x01,
  kAssert = 0x02,
  kRetract = 0x03,
};

/// One logical mutation, decoded (symbol ids already resolved).
struct WalRecord {
  WalRecordType type = WalRecordType::kAssert;
  uint64_t seqno = 0;
  std::string level;  // the writing subject's level
  std::string fact;   // MultiLog fact source, e.g. "s[p(k : a -s-> v)]."
};

/// Appends framed records to a WAL file. Not thread-safe; the storage
/// manager serializes writers.
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if missing. When the file
  /// already has contents, `existing_symbols` must be the symbol table
  /// ReplayWal recovered from it, so new records keep extending the
  /// same id space.
  static Result<WalWriter> Open(
      const std::string& path,
      const std::vector<std::string>& existing_symbols = {});

  /// A closed writer; Open() produces usable ones.
  WalWriter() = default;

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one mutation (emitting a kSymbol delta first when the
  /// level is new to this WAL) and flushes it to the OS. `sync` also
  /// fsyncs, making the record crash-durable before returning.
  Status Append(const WalRecord& record, bool sync = true);

  /// fdatasync the file.
  Status Sync();

  /// Bytes written to the file so far (== file size while the writer
  /// is the only appender).
  uint64_t offset() const { return offset_; }

  void Close();

 private:
  Status AppendFrame(std::string_view payload);

  int fd_ = -1;
  uint64_t offset_ = 0;
  std::unordered_map<std::string, uint32_t> symbol_ids_;
};

/// The readable prefix of a WAL file.
struct WalReplay {
  /// Decoded mutation records, in append order (symbol deltas are
  /// consumed internally and not surfaced).
  std::vector<WalRecord> records;
  /// The symbol table accumulated over the prefix, indexed by id; pass
  /// to WalWriter::Open when appending to the same file.
  std::vector<std::string> symbols;
  /// Offset one past the last intact record: the length the file
  /// should be truncated to when `tail` is not OK.
  uint64_t valid_bytes = 0;
  /// OK when the file ended exactly at a record boundary; kDataLoss
  /// (with a description of the damage) when a torn or corrupt tail
  /// follows the good prefix.
  Status tail;
};

/// Reads the longest intact prefix of the WAL at `path`. Only I/O
/// failures and malformed *intact* records (undecodable payloads with
/// valid CRCs, i.e. writer bugs) are errors; corruption is reported
/// through WalReplay::tail. A missing file replays as empty.
Result<WalReplay> ReplayWal(const std::string& path);

/// A tailing iterator over a WAL that a live WalWriter may still be
/// appending to - the primary-side feed of log-shipping replication.
///
/// ReplayWal reads a file nobody is writing, so any damage it finds is
/// corruption. A tailing reader races the writer instead: the frame at
/// the end of the file may be *in flight* - its header, payload, or CRC
/// only partially visible - and that must read as "end of the intact
/// prefix, poll again", never as corruption. The rule that makes this
/// deterministic: damage that touches the current end of file is a torn
/// in-flight append (kEndOfPrefix); damage with further bytes durably
/// beyond it can never be completed by the writer and is real
/// (kDataLoss).
///
/// Checkpoints reset the WAL (truncate to empty, fresh symbol table).
/// Next() detects the shrink and reports kReset: the reader's offset
/// and symbol table are stale, so the caller must re-open - and because
/// records between its last read and the reset may now live only in the
/// snapshot, a log shipper goes back to the snapshot before tailing
/// again (the catch-up state machine in DESIGN.md §16).
class WalReader {
 public:
  /// Opens a tailing reader at offset 0. The file may not exist yet
  /// (the writer creates it lazily); reads report kEndOfPrefix until it
  /// appears.
  static Result<WalReader> Open(const std::string& path);

  WalReader() = default;
  WalReader(WalReader&& other) noexcept;
  WalReader& operator=(WalReader&& other) noexcept;
  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;
  ~WalReader();

  enum class Event {
    kRecord,       // `record` holds the next decoded mutation
    kEndOfPrefix,  // no complete intact record yet; poll again later
    kReset,        // the file shrank (checkpoint); re-open the reader
  };
  struct Item {
    Event event = Event::kEndOfPrefix;
    WalRecord record;
  };

  /// Advances past symbol records and returns the next mutation record,
  /// or one of the non-record events above. Errors are I/O failures,
  /// undecodable intact records (writer bugs), and non-tail damage
  /// (kDataLoss).
  Result<Item> Next();

  /// Byte offset one past the last record consumed.
  uint64_t offset() const { return offset_; }

 private:
  explicit WalReader(std::string path) : path_(std::move(path)) {}

  /// Tops up `buffer_` from the file. Sets `*shrank` when the file is
  /// now smaller than the bytes already consumed (checkpoint reset).
  Status Fill(bool* shrank);

  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;       // consumed bytes (start of buffer_)
  uint64_t file_size_ = 0;    // size observed by the last Fill
  std::string buffer_;        // read-ahead: bytes [offset_, offset_+size)
  std::vector<std::string> symbols_;
};

/// Truncates `path` to `valid_bytes` (recovery's torn-tail repair).
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace multilog::storage

#endif  // MULTILOG_STORAGE_WAL_H_
