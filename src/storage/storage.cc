#include "storage/storage.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/trace.h"

namespace multilog::storage {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Internal("mkdir '" + dir + "': " + std::strerror(errno));
}

}  // namespace

std::string ShardDataDir(const std::string& base, size_t shard_index) {
  std::string dir = base;
  if (!dir.empty() && dir.back() != '/') dir.push_back('/');
  dir.append("shard-").append(std::to_string(shard_index));
  return dir;
}

Result<Storage> Storage::Open(const std::string& dir,
                              std::string_view initial_source) {
  trace::Span span(trace::Stage::kRecovery);
  MULTILOG_RETURN_IF_ERROR(EnsureDir(dir));
  Storage st;
  st.dir_ = dir;

  // 1. The snapshot is the base image. First open seeds it from
  // `initial_source` so a later crash-before-first-checkpoint still has
  // a base to replay onto.
  Result<Snapshot> snap = ReadSnapshot(st.snapshot_path());
  if (!snap.ok() && snap.status().IsNotFound()) {
    MULTILOG_RETURN_IF_ERROR(
        WriteSnapshot(st.snapshot_path(), 0, initial_source));
    snap = ReadSnapshot(st.snapshot_path());
  }
  if (!snap.ok()) return snap.status();  // kDataLoss: nothing safe to serve
  st.recovered_.snapshot_source = std::move(snap->source);

  // 2. Replay the WAL over it. A damaged tail is truncated to the last
  // intact record boundary and surfaced as kDataLoss - recovery
  // continues, because everything before the damage is sound.
  MULTILOG_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(st.wal_path()));
  if (!replay.tail.ok()) {
    MULTILOG_RETURN_IF_ERROR(TruncateWal(st.wal_path(), replay.valid_bytes));
  }
  st.recovered_.data_loss = replay.tail;

  // 3. Records the snapshot already covers are skipped (the crash
  // window between a checkpoint's rename and its WAL reset leaves
  // such records behind; seqnos make their replay a no-op).
  st.snapshot_seqno_ = snap->seqno;
  st.next_seqno_ = snap->seqno + 1;
  for (WalRecord& rec : replay.records) {
    if (rec.seqno <= snap->seqno) continue;
    if (rec.seqno >= st.next_seqno_) st.next_seqno_ = rec.seqno + 1;
    st.recovered_.records.push_back(std::move(rec));
  }
  st.wal_records_ = st.recovered_.records.size();

  MULTILOG_ASSIGN_OR_RETURN(st.writer_,
                            WalWriter::Open(st.wal_path(), replay.symbols));
  return st;
}

Result<uint64_t> Storage::Append(WalRecordType type, const std::string& level,
                                 const std::string& fact, bool sync) {
  WalRecord rec;
  rec.type = type;
  rec.seqno = next_seqno_;
  rec.level = level;
  rec.fact = fact;
  MULTILOG_RETURN_IF_ERROR(writer_.Append(rec, sync));
  ++wal_records_;
  if (!sync) {
    // Publish the ticket only after the record reached the OS, so a
    // SyncTo leader that reads appended_ticket and fdatasyncs is
    // guaranteed to cover it.
    group_->appended_ticket.fetch_add(1, std::memory_order_release);
  }
  return next_seqno_++;
}

Result<uint64_t> Storage::AppendAssert(const std::string& level,
                                       const std::string& fact, bool sync) {
  return Append(WalRecordType::kAssert, level, fact, sync);
}

Result<uint64_t> Storage::AppendRetract(const std::string& level,
                                        const std::string& fact, bool sync) {
  return Append(WalRecordType::kRetract, level, fact, sync);
}

Status Storage::SyncTo(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(group_->mu);
  while (group_->durable_ticket < ticket) {
    if (group_->sync_in_progress) {
      // A leader's fdatasync is in flight; its result may or may not
      // cover this ticket - re-check after it lands.
      group_->cv.wait(lock);
      continue;
    }
    // Become the leader. Capture the high-water mark first: every
    // append ticketed <= target has already write()n its bytes, so one
    // fdatasync makes them all durable - that batching is the whole
    // point. The lock drops during the fsync so later committers can
    // queue up as followers instead of serializing behind us.
    group_->sync_in_progress = true;
    const uint64_t target =
        group_->appended_ticket.load(std::memory_order_acquire);
    lock.unlock();
    const Status synced = writer_.Sync();
    lock.lock();
    group_->sync_in_progress = false;
    group_->group_syncs.fetch_add(1, std::memory_order_relaxed);
    if (synced.ok() && target > group_->durable_ticket) {
      group_->durable_ticket = target;
    }
    group_->cv.notify_all();
    if (!synced.ok()) return synced;
  }
  return Status::OK();
}

Status Storage::AppendReplicated(const WalRecord& record) {
  if (record.seqno < next_seqno_) {
    return Status::InvalidArgument(
        "replicated seqno " + std::to_string(record.seqno) +
        " revisits the past (next is " + std::to_string(next_seqno_) + ")");
  }
  MULTILOG_RETURN_IF_ERROR(writer_.Append(record, /*sync=*/true));
  ++wal_records_;
  next_seqno_ = record.seqno + 1;
  return Status::OK();
}

Status Storage::InstallSnapshot(uint64_t seqno, std::string_view source) {
  // Quiesce group commit for the writer swap: holding `mu` for the
  // duration blocks new sync leaders, and the wait drains any
  // fdatasync already in flight - otherwise the leader would sync a
  // writer_ this function is closing and reopening under it. Appends
  // are already excluded by the engine's exclusive database lock.
  std::unique_lock<std::mutex> lock(group_->mu);
  group_->cv.wait(lock, [this] { return !group_->sync_in_progress; });
  MULTILOG_RETURN_IF_ERROR(WriteSnapshot(snapshot_path(), seqno, source));
  writer_.Close();
  MULTILOG_RETURN_IF_ERROR(TruncateWal(wal_path(), 0));
  MULTILOG_ASSIGN_OR_RETURN(writer_, WalWriter::Open(wal_path()));
  wal_records_ = 0;
  snapshot_seqno_ = seqno;
  next_seqno_ = seqno + 1;
  ++checkpoints_;
  // The durably renamed snapshot covers every append buffered so far,
  // so parked committers' tickets are satisfied without an fsync.
  group_->durable_ticket =
      group_->appended_ticket.load(std::memory_order_acquire);
  group_->cv.notify_all();
  return Status::OK();
}

Status Storage::Checkpoint(std::string_view source) {
  // Durable order: new snapshot first (atomic rename), then the WAL
  // reset. A crash in between is benign - leftover WAL records carry
  // seqnos <= the snapshot's and replay as no-ops.
  return InstallSnapshot(next_seqno_ - 1, source);
}

}  // namespace multilog::storage
