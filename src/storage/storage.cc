#include "storage/storage.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/trace.h"

namespace multilog::storage {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::Internal("mkdir '" + dir + "': " + std::strerror(errno));
}

}  // namespace

std::string ShardDataDir(const std::string& base, size_t shard_index) {
  std::string dir = base;
  if (!dir.empty() && dir.back() != '/') dir.push_back('/');
  dir.append("shard-").append(std::to_string(shard_index));
  return dir;
}

Result<Storage> Storage::Open(const std::string& dir,
                              std::string_view initial_source) {
  trace::Span span(trace::Stage::kRecovery);
  MULTILOG_RETURN_IF_ERROR(EnsureDir(dir));
  Storage st;
  st.dir_ = dir;

  // 1. The snapshot is the base image. First open seeds it from
  // `initial_source` so a later crash-before-first-checkpoint still has
  // a base to replay onto.
  Result<Snapshot> snap = ReadSnapshot(st.snapshot_path());
  if (!snap.ok() && snap.status().IsNotFound()) {
    MULTILOG_RETURN_IF_ERROR(
        WriteSnapshot(st.snapshot_path(), 0, initial_source));
    snap = ReadSnapshot(st.snapshot_path());
  }
  if (!snap.ok()) return snap.status();  // kDataLoss: nothing safe to serve
  st.recovered_.snapshot_source = std::move(snap->source);

  // 2. Replay the WAL over it. A damaged tail is truncated to the last
  // intact record boundary and surfaced as kDataLoss - recovery
  // continues, because everything before the damage is sound.
  MULTILOG_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(st.wal_path()));
  if (!replay.tail.ok()) {
    MULTILOG_RETURN_IF_ERROR(TruncateWal(st.wal_path(), replay.valid_bytes));
  }
  st.recovered_.data_loss = replay.tail;

  // 3. Records the snapshot already covers are skipped (the crash
  // window between a checkpoint's rename and its WAL reset leaves
  // such records behind; seqnos make their replay a no-op).
  st.snapshot_seqno_ = snap->seqno;
  st.next_seqno_ = snap->seqno + 1;
  for (WalRecord& rec : replay.records) {
    if (rec.seqno <= snap->seqno) continue;
    if (rec.seqno >= st.next_seqno_) st.next_seqno_ = rec.seqno + 1;
    st.recovered_.records.push_back(std::move(rec));
  }
  st.wal_records_ = st.recovered_.records.size();

  MULTILOG_ASSIGN_OR_RETURN(st.writer_,
                            WalWriter::Open(st.wal_path(), replay.symbols));
  return st;
}

Result<uint64_t> Storage::Append(WalRecordType type, const std::string& level,
                                 const std::string& fact) {
  WalRecord rec;
  rec.type = type;
  rec.seqno = next_seqno_;
  rec.level = level;
  rec.fact = fact;
  MULTILOG_RETURN_IF_ERROR(writer_.Append(rec, /*sync=*/true));
  ++wal_records_;
  return next_seqno_++;
}

Result<uint64_t> Storage::AppendAssert(const std::string& level,
                                       const std::string& fact) {
  return Append(WalRecordType::kAssert, level, fact);
}

Result<uint64_t> Storage::AppendRetract(const std::string& level,
                                        const std::string& fact) {
  return Append(WalRecordType::kRetract, level, fact);
}

Status Storage::AppendReplicated(const WalRecord& record) {
  if (record.seqno < next_seqno_) {
    return Status::InvalidArgument(
        "replicated seqno " + std::to_string(record.seqno) +
        " revisits the past (next is " + std::to_string(next_seqno_) + ")");
  }
  MULTILOG_RETURN_IF_ERROR(writer_.Append(record, /*sync=*/true));
  ++wal_records_;
  next_seqno_ = record.seqno + 1;
  return Status::OK();
}

Status Storage::InstallSnapshot(uint64_t seqno, std::string_view source) {
  MULTILOG_RETURN_IF_ERROR(WriteSnapshot(snapshot_path(), seqno, source));
  writer_.Close();
  MULTILOG_RETURN_IF_ERROR(TruncateWal(wal_path(), 0));
  MULTILOG_ASSIGN_OR_RETURN(writer_, WalWriter::Open(wal_path()));
  wal_records_ = 0;
  snapshot_seqno_ = seqno;
  next_seqno_ = seqno + 1;
  ++checkpoints_;
  return Status::OK();
}

Status Storage::Checkpoint(std::string_view source) {
  // Durable order: new snapshot first (atomic rename), then the WAL
  // reset. A crash in between is benign - leftover WAL records carry
  // seqnos <= the snapshot's and replay as no-ops.
  return InstallSnapshot(next_seqno_ - 1, source);
}

}  // namespace multilog::storage
