#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"

namespace multilog::storage {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kHeaderBytes = 8 + 8 + 4 + 4;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Result<Snapshot> ReadSnapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at '" + path + "'");
    }
    return Status::Internal("snapshot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string data;
  {
    char buf[64 * 1024];
    while (true) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Status::Internal(std::string("snapshot read: ") +
                                          std::strerror(errno));
        ::close(fd);
        return s;
      }
      if (r == 0) break;
      data.append(buf, static_cast<size_t>(r));
    }
  }
  ::close(fd);

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("snapshot '" + path +
                            "' has a missing or foreign header");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const uint64_t seqno = static_cast<uint64_t>(GetU32(p + 8)) |
                         (static_cast<uint64_t>(GetU32(p + 12)) << 32);
  const uint32_t body_len = GetU32(p + 16);
  const uint32_t crc = GetU32(p + 20);
  if (data.size() - kHeaderBytes != body_len) {
    return Status::DataLoss(
        "snapshot '" + path + "' body is " +
        std::to_string(data.size() - kHeaderBytes) + " bytes, header says " +
        std::to_string(body_len));
  }
  if (Crc32c(data.data() + kHeaderBytes, body_len) != crc) {
    return Status::DataLoss("snapshot '" + path + "' failed its checksum");
  }
  Snapshot snap;
  snap.seqno = seqno;
  snap.source = data.substr(kHeaderBytes);
  return snap;
}

Status WriteSnapshot(const std::string& path, uint64_t seqno,
                     std::string_view source) {
  std::string image;
  image.reserve(kHeaderBytes + source.size());
  image.append(kMagic, sizeof(kMagic));
  PutU32(&image, static_cast<uint32_t>(seqno & 0xFFFFFFFFu));
  PutU32(&image, static_cast<uint32_t>(seqno >> 32));
  PutU32(&image, static_cast<uint32_t>(source.size()));
  PutU32(&image, Crc32c(source));
  image.append(source);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot open '" + tmp +
                            "': " + std::strerror(errno));
  }
  size_t sent = 0;
  while (sent < image.size()) {
    const ssize_t w = ::write(fd, image.data() + sent, image.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::Internal(std::string("snapshot write: ") +
                                        std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    sent += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    const Status s = Status::Internal(std::string("snapshot fsync: ") +
                                      std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s = Status::Internal("snapshot rename '" + tmp + "' -> '" +
                                      path + "': " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return s;
  }
  return Status::OK();
}

}  // namespace multilog::storage
