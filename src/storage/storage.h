#ifndef MULTILOG_STORAGE_STORAGE_H_
#define MULTILOG_STORAGE_STORAGE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace multilog::storage {

/// What Open recovered from disk: the snapshot image plus the WAL tail
/// the engine must replay over it. The storage layer is deliberately
/// text-level - it knows framing, checksums, and sequence numbers, not
/// MultiLog semantics - so applying `records` to the parsed database is
/// the engine's job and the dependency arrow stays common <- storage <-
/// multilog.
struct RecoveredState {
  /// Canonical source of the database at snapshot time.
  std::string snapshot_source;
  /// WAL records with seqno > the snapshot's, in append order.
  std::vector<WalRecord> records;
  /// OK, or kDataLoss describing a torn/corrupt WAL tail that recovery
  /// truncated (the expected signature of a crash mid-append). The
  /// store is fully usable either way; the caller decides whether to
  /// log, alert, or refuse.
  Status data_loss;
};

/// The canonical data directory for shard `shard_index` of a sharded
/// deployment rooted at `base`: "<base>/shard-<index>". One naming rule
/// shared by the demo scripts, the tests, and operators, so a fleet's
/// on-disk layout is self-describing.
std::string ShardDataDir(const std::string& base, size_t shard_index);

/// A durable home for one MultiLog database: `<dir>/snapshot.mls` (the
/// latest compacted image) plus `<dir>/wal.log` (mutations since).
///
/// Lifecycle: Open() recovers, the engine replays `recovered()`, then
/// every committed mutation calls Append* (write-ahead: the engine
/// validates and logs *before* applying in memory), and Checkpoint()
/// periodically folds the WAL into a fresh snapshot. Not thread-safe:
/// the engine serializes all writers behind its database lock.
class Storage {
 public:
  /// Opens (creating if necessary) the store in `dir`. On first open -
  /// no snapshot present - `initial_source` seeds snapshot seqno 0. On
  /// later opens `initial_source` is ignored: disk wins. A torn WAL
  /// tail is truncated and reported via RecoveredState::data_loss; a
  /// corrupt snapshot is kDataLoss and fails Open (there is nothing
  /// safe to serve).
  static Result<Storage> Open(const std::string& dir,
                              std::string_view initial_source);

  Storage(Storage&&) = default;
  Storage& operator=(Storage&&) = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  const RecoveredState& recovered() const { return recovered_; }

  /// Next unused mutation sequence number (snapshot + replayed WAL).
  uint64_t next_seqno() const { return next_seqno_; }

  /// Seqno the on-disk snapshot covers (0 until the first checkpoint).
  uint64_t snapshot_seqno() const { return snapshot_seqno_; }

  /// Logs one mutation and returns its sequence number. With
  /// `sync` (the default) the record is fdatasynced before returning -
  /// one fsync per append. With `sync == false` the record reaches the
  /// OS but not the platter: the caller must capture
  /// last_append_ticket() (while still holding whatever lock
  /// serializes appends) and make it durable with SyncTo() before
  /// acknowledging the write. That split is the group-commit path:
  /// concurrent committers share one fdatasync instead of queueing
  /// ~0.15 ms of it each.
  Result<uint64_t> AppendAssert(const std::string& level,
                                const std::string& fact, bool sync = true);
  Result<uint64_t> AppendRetract(const std::string& level,
                                 const std::string& fact, bool sync = true);

  /// Ticket of the most recent append (0 before any). Tickets are a
  /// monotonic count of appends, deliberately not file offsets: a
  /// checkpoint resets the WAL file but never reissues a ticket, so a
  /// committer that parked across a checkpoint still compares its
  /// ticket meaningfully against durable progress.
  uint64_t last_append_ticket() const {
    return group_->appended_ticket.load(std::memory_order_acquire);
  }

  /// Blocks until every append ticketed <= `ticket` is durable. One
  /// caller at a time becomes the sync leader and fdatasyncs the WAL
  /// (covering every append buffered so far, its own and everyone
  /// else's); the rest wait on the leader's result. A checkpoint that
  /// lands first also satisfies the ticket - the snapshot rename is
  /// durable and covers all buffered records. Thread-safe; safe to
  /// call without holding the append lock.
  Status SyncTo(uint64_t ticket);

  /// Group fdatasyncs performed (each one covering >= 1 append).
  uint64_t group_syncs() const {
    return group_->group_syncs.load(std::memory_order_relaxed);
  }

  /// Logs a mutation shipped from a primary, keeping the primary's
  /// seqno instead of allocating a local one - replicas must agree with
  /// the primary on seqnos or catch-up arithmetic breaks. The seqno
  /// must not revisit the past (>= next_seqno()); gaps are legal (the
  /// primary's rejected writes never reach the log... they never
  /// allocate seqnos either, but a snapshot-then-tail handoff can skip
  /// ahead).
  Status AppendReplicated(const WalRecord& record);

  /// Replaces the on-disk state wholesale with a shipped snapshot:
  /// writes `source` as the snapshot at `seqno` and resets the WAL.
  /// Used by a replica whose local state is too stale to catch up by
  /// log replay alone. Same crash ordering as Checkpoint.
  Status InstallSnapshot(uint64_t seqno, std::string_view source);

  /// Folds the log into a new snapshot of `source` (the engine's
  /// current canonical dump) and resets the WAL. Crash-ordered: the new
  /// snapshot is durable before the WAL shrinks, and WAL seqnos make a
  /// replay of any leftover tail idempotent.
  Status Checkpoint(std::string_view source);

  /// Observability for the stats surface and tests.
  uint64_t wal_records() const { return wal_records_; }
  uint64_t wal_bytes() const { return writer_.offset(); }
  uint64_t checkpoints() const { return checkpoints_; }

  const std::string& dir() const { return dir_; }
  std::string wal_path() const { return dir_ + "/wal.log"; }
  std::string snapshot_path() const { return dir_ + "/snapshot.mls"; }

 private:
  /// Group-commit coordination state, heap-held so Storage stays
  /// movable. `mu` serializes leadership and checkpoint/sync exclusion;
  /// the atomics let the append path (serialized by the engine's
  /// database lock, which SyncTo deliberately does NOT hold) publish
  /// progress without taking `mu`.
  struct GroupSync {
    std::mutex mu;
    std::condition_variable cv;
    bool sync_in_progress = false;    // a leader's fdatasync is running
    uint64_t durable_ticket = 0;      // guarded by mu
    std::atomic<uint64_t> appended_ticket{0};
    std::atomic<uint64_t> group_syncs{0};
  };

  Storage() : group_(std::make_unique<GroupSync>()) {}

  Result<uint64_t> Append(WalRecordType type, const std::string& level,
                          const std::string& fact, bool sync);

  std::string dir_;
  RecoveredState recovered_;
  WalWriter writer_;
  uint64_t next_seqno_ = 1;
  uint64_t snapshot_seqno_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t checkpoints_ = 0;
  std::unique_ptr<GroupSync> group_;
};

}  // namespace multilog::storage

#endif  // MULTILOG_STORAGE_STORAGE_H_
